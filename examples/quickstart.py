#!/usr/bin/env python3
"""Quickstart: compute a 2-approximate Steiner minimal tree.

Recreates the paper's Fig. 1 scenario — a small weighted graph, a few
"seed" vertices of interest, and the tree that explains how they are
connected — then shows the same computation on the simulated
distributed runtime with its per-phase measurements.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import CSRGraph, validate_steiner_tree
from repro.api import sequential_steiner_tree, solve


def fig1_graph() -> tuple[CSRGraph, list[int]]:
    """The example graph of the paper's Fig. 1: vertices 1..9 (zero-based
    0..8 here), seed vertices {2, 4, 6, 7} (paper ids 3, 5, 7, 8)."""
    edges = [
        # (u, v, weight) — the paper's drawn topology
        (0, 1, 16),   # 1-2
        (0, 4, 2),    # 1-5
        (1, 2, 20),   # 2-3
        (1, 5, 4),    # 2-6
        (2, 3, 24),   # 3-4
        (2, 6, 2),    # 3-7
        (3, 7, 1),    # 4-8
        (4, 5, 18),   # 5-6
        (5, 6, 2),    # 6-7
        (6, 7, 1),    # 7-8
        (5, 8, 1),    # 6-9
        (7, 8, 2),    # 8-9
    ]
    arr = np.asarray(edges, dtype=np.int64)
    graph = CSRGraph.from_edges(9, arr[:, :2], arr[:, 2])
    seeds = [2, 4, 6, 7]
    return graph, seeds


def main() -> None:
    graph, seeds = fig1_graph()
    print(f"graph: {graph.n_vertices} vertices, {graph.n_edges} edges")
    print(f"seed vertices: {seeds}\n")

    # --- the one-call API ------------------------------------------------
    result = sequential_steiner_tree(graph, seeds)
    validate_steiner_tree(graph, seeds, result.edges)

    print("Steiner tree (sequential reference):")
    for u, v, w in result.edges:
        print(f"  {u} -- {v}   (distance {w})")
    print(f"total distance D(GS) = {result.total_distance}")
    print(f"Steiner vertices S'  = {result.steiner_vertices().tolist()}\n")

    # --- the simulated distributed solver (repro.api facade) -------------
    dist_result = solve(graph, seeds, n_ranks=4)
    assert np.array_equal(dist_result.edges, result.edges), (
        "distributed and sequential solvers must agree"
    )
    print("same tree from the simulated 4-rank distributed solver; "
          "per-phase breakdown:")
    for phase in dist_result.phases:
        print(
            f"  {phase.name:<24} sim_time={phase.sim_time * 1e6:8.1f}us  "
            f"messages={phase.n_messages}"
        )
    print(f"\nsimulated parallel time: {dist_result.sim_time() * 1e3:.3f} ms")
    print(f"host wall time:          {dist_result.wall_time_s * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
