#!/usr/bin/env python3
"""Knowledge-network exploration — the paper's motivating application.

The paper's introduction: an analyst has a massive knowledge network
and a handful of entities of interest, and wants a small subgraph
explaining how they relate; when |S| > 2, low-weight Steiner trees are
the right generalisation of shortest paths.  The analyst iterates:
inspect the tree, reweight relationship classes, recompute — so the
computation must be fast and repeatable.

This example plays out that loop on a synthetic co-authorship network:

1. find the tree connecting a set of "author" entities;
2. inspect the discovered intermediary entities (Steiner vertices);
3. penalise a relationship class (edges through the top hub) and
   recompute — the tree reroutes;
4. compare seed-selection regimes (close vs far entity sets).

Run:  python examples/knowledge_discovery.py
"""

from __future__ import annotations

import numpy as np

from repro import assign_uniform_weights, preferential_attachment_graph
from repro.api import Session, sequential_steiner_tree
from repro.seeds import select_seeds


def build_network(n_authors: int = 2_000):
    """Co-authorship-style network: preferential attachment (hubs =
    prolific authors), with edge weight = collaboration distance."""
    topology = preferential_attachment_graph(n_authors, attach=4, seed=10)
    return assign_uniform_weights(topology, (1, 100), seed=11)


def describe(result, label: str) -> None:
    steiner = result.steiner_vertices()
    print(f"{label}:")
    print(f"  tree edges       : {result.n_edges}")
    print(f"  total distance   : {result.total_distance}")
    print(f"  intermediaries   : {steiner.size} "
          f"(e.g. {steiner[:8].tolist()})")


def main() -> None:
    graph = build_network()
    print(
        f"knowledge network: {graph.n_vertices} entities, "
        f"{graph.n_edges} relationships, max degree {graph.max_degree}\n"
    )

    # ----- 1. entities of interest, tree connecting them ----------------
    entities = select_seeds(graph, 12, "uniform-random", seed=3)
    print(f"entities of interest: {entities.tolist()}\n")
    tree = sequential_steiner_tree(graph, entities)
    describe(tree, "initial connection tree")

    # ----- 2. the analyst notices everything routes through a hub -------
    hub = int(np.argmax(graph.degree()))
    via_hub = int(
        ((tree.edges[:, 0] == hub) | (tree.edges[:, 1] == hub)).sum()
    )
    print(f"\ntop hub is entity {hub} (degree {graph.max_degree}); "
          f"{via_hub} tree edges touch it")

    # ----- 3. penalise hub relationships and recompute -------------------
    # (the paper: "the user adding or removing classes of edges and/or
    #  vertices and adjusting edge distance functions")
    new_weights = graph.weights.copy()
    u = np.repeat(np.arange(graph.n_vertices), np.diff(graph.indptr))
    touches_hub = (u == hub) | (graph.indices == hub)
    new_weights[touches_hub] *= 50
    reweighted = graph.reweighted(new_weights)
    rerouted = sequential_steiner_tree(reweighted, entities)
    describe(rerouted, "\nafter penalising the hub's relationships")
    still_via_hub = int(
        ((rerouted.edges[:, 0] == hub) | (rerouted.edges[:, 1] == hub)).sum()
    )
    print(f"  edges touching the hub now: {still_via_hub}")

    # ----- 4. proximate vs eccentric entity sets -------------------------
    # a Session keeps the partitioned graph warm across the analyst's
    # repeated queries — the same state `repro-steiner serve` holds
    print("\nseed-regime comparison (paper §V-E):")
    with Session(graph, n_ranks=8) as session:
        for strategy in ("proximate", "eccentric"):
            seeds = select_seeds(graph, 12, strategy, seed=3)
            res = session.solve(seeds)
            print(
                f"  {strategy:<10} D(GS)={res.total_distance:>8}  "
                f"|ES|={res.n_edges:>4}  sim_time={res.sim_time() * 1e3:.2f} ms"
            )
    print("\n(proximate entity sets yield far smaller trees — the "
          "degenerate case the paper's evaluation avoids)")


if __name__ == "__main__":
    main()
