#!/usr/bin/env python3
"""Multicast-tree construction in a wireless communication network.

The paper cites approximate Steiner trees as the standard approach for
building multicast trees in communication networks and wireless sensor
networks (Sun et al.; Gong et al., MobiHoc'15).  The model: nodes are
radios placed in the plane, edges connect nodes in radio range, edge
weight is a transmission cost (distance-derived), the multicast group
is the seed set, and the multicast tree is a low-cost Steiner tree.

This example builds a random geometric network, constructs multicast
trees for groups of several sizes, compares against the exact optimum
for a small group, and measures how the tree cost amortises as the
group grows (the multicast efficiency argument).

Run:  python examples/multicast_routing.py
"""

from __future__ import annotations

import numpy as np

from repro import random_geometric_graph
from repro.api import sequential_steiner_tree
from repro.baselines import exact_steiner_tree, takahashi_steiner_tree
from repro.graph.connectivity import largest_component_vertices
from repro.graph.csr import CSRGraph
from repro.shortest_paths.dijkstra import dijkstra


def build_network(n_nodes: int = 600, radius: float = 0.08, seed: int = 21):
    """Radio network: geometric topology, weight ~ squared distance
    (transmission power) discretised to positive integers."""
    topo = random_geometric_graph(n_nodes, radius, seed=seed)
    rng = np.random.default_rng(seed + 1)
    pts = rng.random((n_nodes, 2))  # same RNG stream shape as generator
    src, dst, _ = topo.edge_array()
    d2 = ((pts[src] - pts[dst]) ** 2).sum(axis=1)
    weights = np.maximum(1, (d2 * 1e5).astype(np.int64))
    edges = np.stack([src, dst], axis=1)
    return CSRGraph.from_edges(topo.n_vertices, edges, weights)


def main() -> None:
    net = build_network()
    comp = largest_component_vertices(net)
    print(
        f"radio network: {net.n_vertices} nodes, {net.n_edges} links, "
        f"largest component {comp.size} nodes\n"
    )
    rng = np.random.default_rng(5)

    # ----- multicast group sizes: cost amortisation ----------------------
    source = int(comp[0])
    print("group size | multicast tree cost | sum of unicast paths | saving")
    for group_size in (2, 4, 8, 16, 32):
        members = rng.choice(comp[1:], size=group_size - 1, replace=False)
        group = sorted({source, *(int(m) for m in members)})
        tree = sequential_steiner_tree(net, group)
        # naive alternative: independent unicast shortest paths
        dist, _ = dijkstra(net, source)
        unicast = int(sum(dist[m] for m in group if m != source))
        saving = 1 - tree.total_distance / max(unicast, 1)
        print(
            f"{group_size:>10} | {tree.total_distance:>19} | "
            f"{unicast:>20} | {saving:6.1%}"
        )

    # ----- quality check against the optimum on a small group ------------
    members = rng.choice(comp[1:], size=4, replace=False)
    group = sorted({source, *(int(m) for m in members)})
    approx = sequential_steiner_tree(net, group)
    greedy = takahashi_steiner_tree(net, group)
    optimal = exact_steiner_tree(net, group)
    print(f"\n5-member group: optimal cost        = {optimal.total_distance}")
    print(f"               Voronoi 2-approx     = {approx.total_distance} "
          f"(ratio {approx.total_distance / optimal.total_distance:.4f})")
    print(f"               Takahashi-Matsuyama  = {greedy.total_distance} "
          f"(ratio {greedy.total_distance / optimal.total_distance:.4f})")
    print("\n(both within the 2x bound; the paper measures an average "
          "ratio of 1.0527 across its datasets)")


if __name__ == "__main__":
    main()
