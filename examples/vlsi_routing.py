#!/usr/bin/env python3
"""Multi-pin net routing on a placement grid — the VLSI application.

Steiner minimal trees are the classic model for routing a multi-pin net
in VLSI design (the paper cites Ihler et al. and Caldwell et al.): the
grid is the routing fabric, the net's pins are the seed vertices,
congested regions cost more, and the routed net is a low-wirelength
Steiner tree.

This example routes a net on a 24x24 grid with a congested block,
compares the 2-approximation against the exact optimum (feasible at
this size), and renders the route as ASCII art.

Run:  python examples/vlsi_routing.py
"""

from __future__ import annotations

import numpy as np

from repro import grid_graph
from repro.api import sequential_steiner_tree
from repro.baselines import exact_steiner_tree

ROWS = COLS = 24
#: pins of the net to route (row, col)
PINS = [(2, 2), (2, 21), (21, 3), (20, 20), (11, 12)]
#: congested block (inclusive): routing through it costs 10x
CONGESTED = (8, 14, 5, 11)  # r0, r1, c0, c1


def vid(r: int, c: int) -> int:
    return r * COLS + c


def build_fabric():
    """Unit-cost grid with a 10x congestion block."""
    g = grid_graph(ROWS, COLS)
    weights = g.weights.copy()
    r0, r1, c0, c1 = CONGESTED
    u = np.repeat(np.arange(g.n_vertices), np.diff(g.indptr))
    v = g.indices
    for end in (u, v):
        rr, cc = end // COLS, end % COLS
        inside = (rr >= r0) & (rr <= r1) & (cc >= c0) & (cc <= c1)
        weights[inside] *= 10
    return g.reweighted(np.maximum(weights, 1))


def render(result, pins: set[int]) -> str:
    on_route = set()
    for u, v, _ in result.edges:
        on_route.add(int(u))
        on_route.add(int(v))
    r0, r1, c0, c1 = CONGESTED
    rows = []
    for r in range(ROWS):
        row = []
        for c in range(COLS):
            x = vid(r, c)
            if x in pins:
                row.append("P")
            elif x in on_route:
                row.append("*")
            elif r0 <= r <= r1 and c0 <= c <= c1:
                row.append("#")
            else:
                row.append(".")
        rows.append("".join(row))
    return "\n".join(rows)


def main() -> None:
    fabric = build_fabric()
    pin_ids = [vid(r, c) for r, c in PINS]
    print(f"routing fabric: {ROWS}x{COLS} grid, congestion block 10x cost")
    print(f"net pins: {PINS}\n")

    route = sequential_steiner_tree(fabric, pin_ids)
    print(render(route, set(pin_ids)))
    print(f"\n2-approximation wirelength: {route.total_distance}")
    print(f"route edges: {route.n_edges}, "
          f"Steiner points: {route.steiner_vertices().size}")

    # exact optimum is feasible at 5 pins on this fabric
    optimal = exact_steiner_tree(fabric, pin_ids)
    ratio = route.total_distance / optimal.total_distance
    print(f"exact optimal wirelength:  {optimal.total_distance}")
    print(f"approximation ratio:       {ratio:.4f} "
          f"(bound: <= 2, paper average: 1.0527)")

    # the route must avoid the congested block unless forced through
    r0, r1, c0, c1 = CONGESTED
    through = sum(
        1
        for u, v, _ in route.edges
        for x in (int(u), int(v))
        if r0 <= x // COLS <= r1 and c0 <= x % COLS <= c1
    )
    print(f"route vertices inside congestion block: {through}")


if __name__ == "__main__":
    main()
