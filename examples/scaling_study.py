#!/usr/bin/env python3
"""Run the paper's scaling experiments on your own graph.

Demonstrates the measurement side of the library: take any graph (here
an R-MAT web-graph stand-in), and reproduce the paper's three headline
performance analyses on it —

* strong scaling (Fig. 3): simulated time vs rank count,
* queue-discipline ablation (Figs. 5-6): FIFO vs priority runtime and
  message traffic,
* seed-count sweep (Fig. 4): phase breakdown as |S| grows.

Run:  python examples/scaling_study.py
"""

from __future__ import annotations

from repro import assign_uniform_weights, rmat_graph
from repro.api import Session
from repro.harness.reporting import fmt_si, fmt_time, render_stacked, render_table
from repro.seeds import select_seeds


def build_graph():
    g = rmat_graph(scale=11, edge_factor=12, seed=42)
    return assign_uniform_weights(g, (1, 10_000), seed=43)


def strong_scaling(session: Session, seeds) -> None:
    print("=== strong scaling (paper Fig. 3) ===")
    rows = []
    base = None
    for ranks in (2, 4, 8, 16, 32):
        res = session.solve(seeds, n_ranks=ranks)
        total = res.sim_time()
        if base is None:
            base = total
        rows.append(
            [
                ranks,
                fmt_time(res.phase_time("Voronoi Cell")),
                fmt_time(total),
                f"{base / total:.2f}x",
                fmt_si(res.message_count()),
            ]
        )
    print(render_table(
        ["ranks", "Voronoi Cell", "total sim time", "speedup", "messages"],
        rows,
    ))
    print()


def queue_ablation(session: Session, seeds) -> None:
    print("=== FIFO vs priority queue (paper Figs. 5-6) ===")
    rows = []
    results = {}
    for disc in ("fifo", "priority"):
        res = session.solve(seeds, n_ranks=16, discipline=disc)
        results[disc] = res
        rows.append(
            [disc, fmt_time(res.sim_time()), fmt_si(res.message_count())]
        )
    speedup = results["fifo"].sim_time() / results["priority"].sim_time()
    reduction = results["fifo"].message_count() / results[
        "priority"
    ].message_count()
    print(render_table(["queue", "sim time", "messages"], rows))
    print(f"priority-queue speedup: {speedup:.1f}x, "
          f"message reduction: {reduction:.1f}x "
          "(paper: 3.5-13.1x / 4.9-22.1x)\n")


def seed_sweep(session: Session, graph) -> None:
    print("=== seed-count sweep (paper Fig. 4) ===")
    for k in (10, 30, 100):
        seeds = select_seeds(graph, k, "bfs-level", seed=2)
        res = session.solve(seeds, n_ranks=16)
        print(render_stacked(
            f"|S|={k}", {p.name: p.sim_time for p in res.phases}
        ))
        print()


def main() -> None:
    graph = build_graph()
    print(
        f"study graph: {graph.n_vertices} vertices, {graph.n_edges} edges, "
        f"max degree {graph.max_degree}\n"
    )
    seeds = select_seeds(graph, 30, "bfs-level", seed=2)
    # one Session serves every sweep: the graph loads once, a warm
    # solver is kept per distinct configuration fingerprint
    with Session(graph) as session:
        strong_scaling(session, seeds)
        queue_ablation(session, seeds)
        seed_sweep(session, graph)


if __name__ == "__main__":
    main()
