from setuptools import find_packages, setup

# numba is deliberately an *extra*: the whole native JIT tier
# (delta-numba backend, bsp-native engine) degrades to its NumPy twins
# when the import fails, and CI runs both sides.  See docs/kernels.md.
setup(
    name="repro-steiner",
    version="0.6.0",
    description=(
        "Reproduction of distributed 2-approximation Steiner minimal trees "
        "(IPDPS 2022)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    # PEP 561: the package ships inline type annotations
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "scipy": ["scipy"],
        "native": ["numba"],
        "docs": ["mkdocs", "mkdocs-material", "mkdocstrings[python]"],
    },
    entry_points={
        "console_scripts": ["repro-steiner=repro.harness.cli:main"],
    },
)
