"""Registry mapping experiment ids to their ``run`` callables.

Keys are the ids used by the CLI (``repro-steiner run <id>``), the
benchmarks and EXPERIMENTS.md.  Importing is lazy so ``repro.harness``
stays cheap to import.
"""

from __future__ import annotations

import importlib
from typing import Callable

from repro.harness.experiments._shared import ExperimentReport

__all__ = ["EXPERIMENTS", "get_runner", "run_experiment"]

#: experiment id -> module path (each module exposes run(quick=False))
EXPERIMENTS: dict[str, str] = {
    "table1": "repro.harness.experiments.table1_apsp_vs_voronoi",
    "table3": "repro.harness.experiments.table3_datasets",
    "fig2": "repro.harness.experiments.fig2_walkthrough",
    "fig3": "repro.harness.experiments.fig3_strong_scaling",
    "fig4": "repro.harness.experiments.fig4_seed_count",
    "table4": "repro.harness.experiments.table4_tree_edges",
    "fig5": "repro.harness.experiments.fig5_fifo_vs_priority",
    "fig6": "repro.harness.experiments.fig6_message_counts",
    "fig7": "repro.harness.experiments.fig7_weight_distribution",
    "table5": "repro.harness.experiments.table5_seed_selection",
    "fig8": "repro.harness.experiments.fig8_memory",
    "table6": "repro.harness.experiments.table6_related_work",
    "table7": "repro.harness.experiments.table7_quality",
    "fig9": "repro.harness.experiments.fig9_mico_trees",
    "ablation-async-vs-bsp": "repro.harness.experiments.ablation_async_vs_bsp",
    "ablation-delegates": "repro.harness.experiments.ablation_delegates",
    "ablation-mst": "repro.harness.experiments.ablation_mst",
    "ablation-kernel": "repro.harness.experiments.ablation_kernel",
    "ablation-chunked-collectives": (
        "repro.harness.experiments.ablation_chunked_collectives"
    ),
    "ablation-aggregation": "repro.harness.experiments.ablation_aggregation",
}


def get_runner(exp_id: str) -> Callable[..., ExperimentReport]:
    """Resolve an experiment id to its ``run`` function."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    module = importlib.import_module(EXPERIMENTS[exp_id])
    return module.run


def run_experiment(
    exp_id: str, *, quick: bool = False, **kwargs
) -> ExperimentReport:
    """Run one experiment and return its report.

    Extra keyword arguments (e.g. ``engine=`` for the runs that thread
    the runtime-engine choice through) are forwarded only when the
    experiment's ``run`` accepts them, so sweep commands can pass a
    global option without every experiment opting in.
    """
    import inspect

    runner = get_runner(exp_id)
    accepted = inspect.signature(runner).parameters
    kwargs = {k: v for k, v in kwargs.items() if k in accepted}
    return runner(quick=quick, **kwargs)
