"""Generate EXPERIMENTS.md: run every experiment and record
paper-vs-measured for each table and figure.

Usage::

    python -m repro.harness.experiments_md [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import time

from repro.harness.registry import EXPERIMENTS, run_experiment

#: what the paper reports per experiment, quoted for the side-by-side
PAPER_EXPECTATIONS: dict[str, str] = {
    "table1": (
        "APSP grows ~linearly with |S| (LVJ: 49.7s -> 5,813.3s from "
        "|S|=10 to 1000) while Voronoi cells stay nearly flat (30.0s -> "
        "104.5s).  Shape to match: APSP growth factor >> VC growth factor."
    ),
    "table3": (
        "eight real graphs from CiteSeer (3.3K vertices, 328KB) to "
        "WDC12 (3.5B vertices, 257B arcs, 5.7TB).  Stand-ins preserve the "
        "ordering, skew and weight ranges at ~10^3 scale reduction."
    ),
    "fig3": (
        "strong scaling on FRS/UKW/CLW/WDC, 1.3x-2.9x per node-count "
        "doubling, up to 90% efficiency on the largest graphs; Voronoi-cell "
        "computation dominates and is the scalability bottleneck."
    ),
    "fig4": (
        "across |S|=10..10K the async phases stay flat or speed up "
        "(large |S| converges faster); MST/collective phases only become "
        "visible at |S|=10K where G'1 has ~50M edges."
    ),
    "table4": (
        "|ES| ranges from 66 (CTS, |S|=10) to 85,586 (WDC, |S|=10K) "
        "— always orders of magnitude below the graph size; N/A where the "
        "graph is smaller than the seed request."
    ),
    "fig5": (
        "priority queue beats FIFO 3.5x (FRS) to 13.1x (LVJ) "
        "end-to-end, almost entirely in the Voronoi Cell phase."
    ),
    "fig6": (
        "the runtime gap is explained by message traffic — 4.9x "
        "(FRS) to 22.1x (LVJ) fewer messages under the priority queue."
    ),
    "fig7": (
        "weight range [1,100] converges fastest; FIFO std-dev across "
        "ranges is 13.5s, 14.7x the priority queue's 0.91s; priority is "
        "10.8x faster on average on LVJ."
    ),
    "table5": (
        "BFS-level / uniform-random / eccentric perform similarly; "
        "proximate produces much smaller trees (16.0K vs 426.9K total "
        "distance at |S|=100) — avoided in the evaluation."
    ),
    "fig8": (
        "LVJ runtime state grows 35.9x from |S|=1K to 10K (C(|S|,2) "
        "replicated buffers); for CLW/WDC the graph dominates (4.4x/1.7x "
        "growth); chunked collectives trade runtime for memory."
    ),
    "table6": (
        "SCIP-Jack needs minutes-to-an-hour; WWW is flat in |S|; "
        "Mehlhorn grows with |S|; the distributed solution is up to 27x "
        "faster than Mehlhorn and 5x faster than WWW on LVJ/PTN."
    ),
    "table7": (
        "D(GS)/Dmin between 1.0112 and 1.1684, average 1.0527 "
        "(5.3% error) — far inside the 2(1-1/l) bound."
    ),
    "fig9": (
        "renders MiCo trees for |S|=10/100/1000, seeds red, Steiner "
        "vertices blue.  We report tree composition and emit DOT."
    ),
    "ablation-async-vs-bsp": (
        "§IV (design choice, from prior work): asynchronous "
        "processing converges faster than BSP for distributed shortest "
        "paths.  Runs every registered runtime engine (async-heap, bsp, "
        "bsp-batched); the vectorised batched engine reproduces the "
        "per-message BSP messages exactly at a fraction of the wall time."
    ),
    "ablation-delegates": (
        "§IV (design choice): vertex-cut delegates are crucial for "
        "scale-free graphs with skewed degree distributions."
    ),
    "ablation-mst": (
        "§III (design choice): G'1 is small, so a sequential MST "
        "(~2s at |S|=10K) beats parallel MST, whose available parallelism "
        "collapses (Bader & Cong; Galois Lonestar)."
    ),
    "fig2": (
        "Fig. 2 illustrates the five artefacts of the algorithm: Voronoi "
        "cells with cross-cell edges, the distance graph G'1, its MST "
        "G'2, post-MST pruning, and the final tree.  We materialise each "
        "on a worked instance."
    ),
    "ablation-kernel": (
        "§III (design choice): Delta-stepping is work-efficient but "
        "bucket-synchronous ('does not naturally extend to distributed "
        "memory'); the paper bases the distributed kernel on "
        "Bellman-Ford and recovers efficiency with the priority queue."
    ),
    "ablation-chunked-collectives": (
        "§V-F: chunked collectives ('e.g., 500K or 1M items per chunk') "
        "bound the EN communication buffer at the expense of runtime."
    ),
    "ablation-aggregation": (
        "§IV (substrate property): HavoqGT batches visitor messages per "
        "destination rank, part of why an MPI implementation beats "
        "Hadoop/Spark-based alternatives."
    ),
}

HEADER = """# EXPERIMENTS — paper vs measured

Reproduction record for every table and figure in the evaluation of
*"Towards Distributed 2-Approximation Steiner Minimal Trees in
Billion-edge Graphs"* (Reza, Sanders, Pearce; IPDPS 2022).

**How to read this file.**  Each section quotes what the paper reports,
then shows the measured output of the corresponding harness experiment
on the scaled stand-in datasets (see DESIGN.md for the substitution
table; `|S|` mapping: paper 10/100/1K/10K -> scaled 10/30/100/300).
Absolute numbers are *not* comparable — the paper ran a 2.6-PFLOP
cluster on up-to-257B-arc graphs, this repo runs a discrete-event
simulation on ~10^5-arc stand-ins.  The **shape** — who wins, what
grows, where crossovers sit — is the reproduction target, and each
section's "shape check" note states it.

Regenerate with:

```
python -m repro.harness.experiments_md            # full sweep
python -m repro.harness.experiments_md --quick    # smoke version
```
"""


def generate(quick: bool = False) -> str:
    """Run every registered experiment and render the full document."""
    parts = [HEADER]
    for exp_id in EXPERIMENTS:
        t0 = time.perf_counter()
        report = run_experiment(exp_id, quick=quick)
        elapsed = time.perf_counter() - t0
        parts.append(f"\n## {exp_id}: {report.title}\n")
        expectation = PAPER_EXPECTATIONS.get(exp_id)
        if expectation:
            parts.append(f"**Paper**: {expectation}\n")
        parts.append("**Measured** (harness output):\n")
        for table in report.tables:
            parts.append("```\n" + table + "\n```\n")
        for note in report.notes:
            parts.append(f"*Shape check*: {note}\n")
        parts.append(f"*(experiment wall time: {elapsed:.1f}s)*\n")
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.harness.experiments_md``)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", default="EXPERIMENTS.md")
    args = parser.parse_args(argv)
    text = generate(quick=args.quick)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"wrote {args.out} ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
