"""Scaled synthetic stand-ins for the paper's Table III datasets.

The originals span CiteSeer (9.4K edges, 328KB) to WDC12 (257B edges,
5.7TB); the billion-edge ones cannot exist in this environment, so each
gets a generator-based stand-in that preserves the properties that drive
the paper's behaviour:

* **relative size ordering** (WDC > CLW > UKW > FRS > LVJ > PTN > MCO >
  CTS),
* **degree skew** — R-MAT for the web/social graphs (heavy-tailed hubs
  stress partitioning and the delegate mechanism), preferential
  attachment for the citation/co-author graphs,
* **average degree** roughly matching Table III,
* **edge-weight ranges** taken verbatim from Table III.

Seed-count mapping: the paper sweeps ``|S| ∈ {10, 100, 1K, 10K}`` on
multi-million-vertex graphs; on the stand-ins the same *fraction sweep*
maps to ``{10, 30, 100, 300}``.  :data:`SEED_COUNTS` records the mapping
used by every experiment and by EXPERIMENTS.md.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable

from repro.graph.csr import CSRGraph
from repro.graph.generators import preferential_attachment_graph, rmat_graph
from repro.graph.weights import WeightSpec, assign_uniform_weights

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "SEED_COUNTS"]

#: paper seed counts -> scaled stand-in seed counts
SEED_COUNTS = {10: 10, 100: 30, 1000: 100, 10000: 300}


@dataclass(frozen=True)
class DatasetSpec:
    """One Table-III row: the original's facts and our stand-in recipe."""

    name: str                      # short key (paper's abbreviation)
    full_name: str
    paper_vertices: str            # Table III columns, for documentation
    paper_arcs: str
    weight_range: WeightSpec
    builder: Callable[[], CSRGraph]
    kind: str                      # "web", "social", "citation", "coauthor"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DatasetSpec({self.name})"


def _rmat(scale: int, edge_factor: int, spec: WeightSpec, seed: int):
    def build() -> CSRGraph:
        """Materialise this RMAT stand-in (deterministic)."""
        g = rmat_graph(scale, edge_factor, seed=seed)
        return assign_uniform_weights(g, spec, seed=seed + 1)

    return build


def _pa(n: int, attach: int, spec: WeightSpec, seed: int):
    def build() -> CSRGraph:
        """Materialise this preferential-attachment stand-in."""
        g = preferential_attachment_graph(n, attach, seed=seed)
        return assign_uniform_weights(g, spec, seed=seed + 1)

    return build


DATASETS: dict[str, DatasetSpec] = {
    "WDC": DatasetSpec(
        name="WDC",
        full_name="Web Data Commons 2012 (stand-in)",
        paper_vertices="3.5B",
        paper_arcs="257B",
        weight_range=WeightSpec(1, 500_000),
        builder=_rmat(scale=12, edge_factor=24, spec=WeightSpec(1, 500_000), seed=11),
        kind="web",
    ),
    "CLW": DatasetSpec(
        name="CLW",
        full_name="ClueWeb 2012 (stand-in)",
        paper_vertices="978M",
        paper_arcs="85B",
        weight_range=WeightSpec(1, 100_000),
        builder=_rmat(scale=12, edge_factor=18, spec=WeightSpec(1, 100_000), seed=22),
        kind="web",
    ),
    "UKW": DatasetSpec(
        name="UKW",
        full_name="UK Web 2007-05 (stand-in)",
        paper_vertices="105M",
        paper_arcs="7.5B",
        weight_range=WeightSpec(1, 75_000),
        builder=_rmat(scale=11, edge_factor=18, spec=WeightSpec(1, 75_000), seed=33),
        kind="web",
    ),
    "FRS": DatasetSpec(
        name="FRS",
        full_name="Friendster (stand-in)",
        paper_vertices="66M",
        paper_arcs="3.6B",
        weight_range=WeightSpec(1, 50_000),
        builder=_rmat(scale=11, edge_factor=14, spec=WeightSpec(1, 50_000), seed=44),
        kind="social",
    ),
    "LVJ": DatasetSpec(
        name="LVJ",
        full_name="LiveJournal (stand-in)",
        paper_vertices="4.8M",
        paper_arcs="85.7M",
        weight_range=WeightSpec(1, 5_000),
        builder=_rmat(scale=11, edge_factor=9, spec=WeightSpec(1, 5_000), seed=55),
        kind="social",
    ),
    "PTN": DatasetSpec(
        name="PTN",
        full_name="Patent citations (stand-in)",
        paper_vertices="2.7M",
        paper_arcs="28M",
        weight_range=WeightSpec(1, 5_000),
        builder=_pa(n=2_000, attach=5, spec=WeightSpec(1, 5_000), seed=66),
        kind="citation",
    ),
    "MCO": DatasetSpec(
        name="MCO",
        full_name="MiCo co-authors (stand-in)",
        paper_vertices="100K",
        paper_arcs="2.2M",
        weight_range=WeightSpec(1, 2_000),
        builder=_pa(n=1_200, attach=11, spec=WeightSpec(1, 2_000), seed=77),
        kind="coauthor",
    ),
    "CTS": DatasetSpec(
        name="CTS",
        full_name="CiteSeer (stand-in, near full scale)",
        paper_vertices="3.3K",
        paper_arcs="9.4K",
        weight_range=WeightSpec(1, 1_000),
        builder=_pa(n=1_000, attach=2, spec=WeightSpec(1, 1_000), seed=88),
        kind="citation",
    ),
}


@functools.lru_cache(maxsize=None)
def _load_dataset_cached(key: str) -> CSRGraph:
    return DATASETS[key].builder()


def load_dataset(name: str) -> CSRGraph:
    """Build (and memoise) the stand-in graph for a Table III key.

    Generation is deterministic; repeated calls within a process return
    the same object (case-insensitive), which keeps benchmark setup cheap
    (the paper also excludes graph loading from its timings).
    """
    key = name.upper()
    if key not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    return _load_dataset_cached(key)
