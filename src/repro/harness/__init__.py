"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`~repro.harness.datasets` — the scaled stand-ins for Table III's
  eight real-world graphs;
* :mod:`~repro.harness.experiments` — one module per table/figure (see
  :data:`repro.harness.registry.EXPERIMENTS`);
* :mod:`~repro.harness.reporting` — ASCII table rendering in the paper's
  layout;
* :mod:`~repro.harness.cli` — ``repro-steiner run <experiment>``.
"""

from repro.harness.datasets import DATASETS, DatasetSpec, load_dataset
from repro.harness.registry import EXPERIMENTS, run_experiment

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "EXPERIMENTS",
    "load_dataset",
    "run_experiment",
]
