"""Fig. 2 — stage-by-stage walkthrough of the algorithm.

The paper's Fig. 2 illustrates the five artefacts the algorithm builds:
(a) Voronoi cells with cross-cell edges, (b) the distance graph ``G'1``,
(c) its MST ``G'2``, (d) post-MST edge pruning, (e) the final Steiner
tree.  This experiment materialises each artefact on a small instance
and prints it — the textual counterpart of the figure, and a worked
example for library users.
"""

from __future__ import annotations

import numpy as np

from repro.core.distance_graph import build_distance_graph
from repro.core.tree_edge import walk_tree_edges
from repro.graph.generators import grid_graph
from repro.graph.weights import assign_uniform_weights
from repro.harness.experiments._shared import ExperimentReport
from repro.harness.reporting import render_table
from repro.mst.prim import prim_mst
from repro.seeds.selection import select_seeds
from repro.shortest_paths.voronoi import (
    canonicalize_predecessors,
    compute_voronoi_cells,
)

EXP_ID = "fig2"
TITLE = "Stage-by-stage walkthrough (Voronoi cells -> G'1 -> MST -> pruning -> tree)"


def run(quick: bool = False) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use (see the module docstring for the paper claim
    being reproduced)."""
    graph = assign_uniform_weights(grid_graph(6, 6), (1, 9), seed=3)
    seeds = select_seeds(graph, 4, "uniform-random", seed=5)
    report = ExperimentReport(EXP_ID, TITLE)

    # (a) Voronoi cells
    vd = compute_voronoi_cells(graph, seeds)
    vd.pred = canonicalize_predecessors(graph, vd.src, vd.dist)
    sizes = vd.cell_sizes()
    report.tables.append(
        render_table(
            ["seed s", "|N(s)|", "max dist in cell"],
            [
                [s, sizes[int(s)], int(vd.dist[vd.cell(int(s))].max())]
                for s in seeds
            ],
            title="(a) Voronoi cells",
        )
    )

    # (b) distance graph G'1
    dg = build_distance_graph(graph, seeds, vd.src, vd.dist)
    report.tables.append(
        render_table(
            ["cell pair (s,t)", "bridge edge (u,v)", "d'1(s,t)"],
            [
                [f"({s},{t})", f"({u},{v})", d]
                for s, t, u, v, d in zip(
                    dg.cell_s, dg.cell_t, dg.u, dg.v, dg.dprime
                )
            ],
            title="(b) distance graph G'1",
        )
    )

    # (c) MST G'2
    si, ti = dg.seed_indices()
    mst_idx = prim_mst(len(seeds), si, ti, dg.dprime)
    report.tables.append(
        render_table(
            ["MST edge (s,t)", "d'1"],
            [
                [f"({dg.cell_s[e]},{dg.cell_t[e]})", int(dg.dprime[e])]
                for e in mst_idx
            ],
            title="(c) MST G'2 of G'1",
        )
    )

    # (d) pruning
    active = np.zeros(dg.n_edges, dtype=bool)
    active[mst_idx] = True
    n_deleted = int((~active).sum())

    # (e) final tree
    endpoints = np.concatenate([dg.u[active], dg.v[active]])
    path_edges = walk_tree_edges(vd.src, vd.pred, vd.dist, endpoints)
    cross_w = dg.dprime[active] - vd.dist[dg.u[active]] - vd.dist[dg.v[active]]
    rows = [
        [f"({u},{v})", int(w), "cross-cell"]
        for u, v, w in zip(dg.u[active], dg.v[active], cross_w)
    ] + [[f"({u},{v})", w, "pred walk"] for u, v, w in sorted(path_edges)]
    total = sum(r[1] for r in rows)
    report.tables.append(
        render_table(
            ["tree edge", "weight", "origin"],
            rows,
            title=f"(d)+(e) pruned {n_deleted} cross edges; final tree, D(GS)={total}",
        )
    )
    report.notes.append(
        "artefacts correspond one-to-one with the paper's Fig. 2 panels"
    )
    report.data = {
        "cell_sizes": {int(s): sizes[int(s)] for s in seeds},
        "n_distance_edges": dg.n_edges,
        "n_mst_edges": int(mst_idx.size),
        "n_pruned": n_deleted,
        "total_distance": total,
    }
    return report
