"""One module per table/figure of the paper's evaluation (§V).

Every module exposes ``run(quick: bool = False) -> ExperimentReport``.
``quick=True`` shrinks sweeps for test-suite use; the default settings
are what ``benchmarks/`` and EXPERIMENTS.md use.
"""

from repro.harness.experiments._shared import ExperimentReport

__all__ = ["ExperimentReport"]
