"""Table I — APSP vs Voronoi-cell runtime, single thread.

Paper: on LVJ and PTN with ``|S| ∈ {10, 100, 1000}``, APSP time grows
~linearly with the seed count (49.7s → 5813s on LVJ) while Voronoi-cell
time stays nearly flat (30s → 104s) — the motivating measurement for the
whole design.

Reproduction: wall-clock both kernels on the LVJ/PTN stand-ins with the
scaled seed counts.  Expected shape: APSP/VC ratio grows by roughly the
seed-count ratio; VC nearly flat.
"""

from __future__ import annotations

import time

from repro.harness.datasets import SEED_COUNTS, load_dataset
from repro.harness.experiments._shared import ExperimentReport, seeds_for
from repro.harness.reporting import fmt_time, render_table
from repro.shortest_paths.apsp import seed_pairs_apsp
from repro.shortest_paths.voronoi import compute_voronoi_cells

EXP_ID = "table1"
TITLE = "APSP vs Voronoi-cell computation time (single thread)"

_PAPER_SEED_COUNTS = (10, 100, 1000)


def run(quick: bool = False) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use (see the module docstring for the paper claim
    being reproduced)."""
    datasets = ["LVJ", "PTN"]
    seed_counts = _PAPER_SEED_COUNTS[:2] if quick else _PAPER_SEED_COUNTS

    headers = ["|S| (paper)", "|S| (scaled)"]
    for ds in datasets:
        headers += [f"{ds} APSP", f"{ds} VC"]
    rows = []
    raw: dict[str, dict[int, dict[str, float]]] = {ds: {} for ds in datasets}
    for paper_k in seed_counts:
        k = SEED_COUNTS[paper_k]
        row: list[object] = [paper_k, k]
        for ds in datasets:
            graph = load_dataset(ds)
            seeds = seeds_for(ds, k)
            t0 = time.perf_counter()
            seed_pairs_apsp(graph, seeds)
            t_apsp = time.perf_counter() - t0
            t0 = time.perf_counter()
            compute_voronoi_cells(graph, seeds)
            t_vc = time.perf_counter() - t0
            raw[ds][paper_k] = {"apsp": t_apsp, "vc": t_vc}
            row += [fmt_time(t_apsp), fmt_time(t_vc)]
        rows.append(row)

    report = ExperimentReport(EXP_ID, TITLE)
    report.tables.append(render_table(headers, rows))
    for ds in datasets:
        ks = sorted(raw[ds])
        if len(ks) >= 2:
            growth_apsp = raw[ds][ks[-1]]["apsp"] / max(raw[ds][ks[0]]["apsp"], 1e-12)
            growth_vc = raw[ds][ks[-1]]["vc"] / max(raw[ds][ks[0]]["vc"], 1e-12)
            report.notes.append(
                f"{ds}: APSP grew {growth_apsp:.1f}x from |S|={ks[0]} to "
                f"{ks[-1]}; Voronoi cells grew {growth_vc:.1f}x "
                "(paper: APSP ~linear in |S|, VC nearly flat)"
            )
    report.data = raw
    return report
