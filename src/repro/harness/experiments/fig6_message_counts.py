"""Fig. 6 — FIFO vs priority message queues: message counts.

Paper: the runtime gains of Fig. 5 are explained by message-traffic
reduction — 4.9x (FRS) to 22.1x (LVJ) fewer messages with the priority
queue, nearly all in the Voronoi-cell phase; the tree-edge phase is
negligible; collective phases are excluded (they are not visitor
traffic).

Reproduction: same runs as Fig. 5 (shared runner), message counters per
phase from the engine.
"""

from __future__ import annotations

from repro.harness.datasets import SEED_COUNTS
from repro.harness.experiments._shared import ExperimentReport
from repro.harness.experiments.fig5_fifo_vs_priority import _CONFIGS, _PAPER_K, run_pair
from repro.harness.reporting import fmt_si, render_table

EXP_ID = "fig6"
TITLE = "FIFO vs priority queue: message counts by phase"

#: phases whose traffic Fig. 6 plots (async visitor phases only; the
#: paper excludes collective phases)
_ASYNC_PHASES = ("Voronoi Cell", "Local Min Dist. Edge", "Steiner Tree Edge")


def run(
    quick: bool = False,
    engine: str = "async-heap",
    workers: int | None = None,
) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use, ``engine`` selects the runtime engine from
    :mod:`repro.runtime.engines` and ``workers`` sizes the
    ``bsp-mp`` process pool (see the module docstring for the
    paper claim being reproduced)."""
    datasets = ["LVJ"] if quick else list(_CONFIGS)
    k = SEED_COUNTS[_PAPER_K]
    report = ExperimentReport(EXP_ID, TITLE)
    if engine != "async-heap":
        report.notes.append(f"runtime engine: {engine}")
    raw: dict[str, dict] = {}

    headers = ["dataset", "queue"] + list(_ASYNC_PHASES) + ["total", "reduction"]
    rows = []
    for ds in datasets:
        fifo, prio = run_pair(ds, k, _CONFIGS[ds], engine, workers)
        counts = {}
        for label, res in (("FIFO", fifo), ("Priority", prio)):
            per_phase = {p.name: p.n_messages for p in res.phases}
            counts[label] = {
                "per_phase": per_phase,
                "total": sum(per_phase.get(ph, 0) for ph in _ASYNC_PHASES),
            }
        reduction = counts["FIFO"]["total"] / max(counts["Priority"]["total"], 1)
        for label in ("FIFO", "Priority"):
            per_phase = counts[label]["per_phase"]
            rows.append(
                [ds, label]
                + [fmt_si(per_phase.get(ph, 0)) for ph in _ASYNC_PHASES]
                + [
                    fmt_si(counts[label]["total"]),
                    f"{reduction:.1f}x" if label == "Priority" else "",
                ]
            )
        raw[ds] = {
            "fifo": counts["FIFO"],
            "priority": counts["Priority"],
            "reduction": reduction,
        }
    report.tables.append(
        render_table(headers, rows, title=f"|S|={_PAPER_K} (scaled {k})")
    )
    report.notes.append(
        "message reduction concentrates in the Voronoi Cell phase; the "
        "Steiner Tree Edge phase is negligible (paper: 4.9x-22.1x)"
    )
    report.data = raw
    return report
