"""Table V — seed-selection strategies compared.

Paper: on LVJ with ``|S| ∈ {100, 1K, 10K}``, the four strategies
(BFS-level, uniform random, eccentric, proximate) perform similarly in
runtime, but *proximate* produces dramatically smaller and cheaper trees
(16.0K total distance vs 426.9K for BFS-level at ``|S| = 100``) — which
is why the paper's evaluation avoids it.

Reproduction: same grid on the LVJ stand-in with scaled seed counts;
reported: runtime, ``D(GS)``, ``|ES|`` per strategy.
"""

from __future__ import annotations

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import SEED_COUNTS, load_dataset
from repro.harness.experiments._shared import ExperimentReport
from repro.harness.reporting import fmt_si, fmt_time, render_table
from repro.seeds.selection import SeedStrategy, select_seeds

EXP_ID = "table5"
TITLE = "Seed-selection strategies: runtime, total distance, tree size (LVJ)"

_PAPER_SEEDS = (100, 1000, 10000)
_STRATEGIES = (
    SeedStrategy.BFS_LEVEL,
    SeedStrategy.UNIFORM_RANDOM,
    SeedStrategy.ECCENTRIC,
    SeedStrategy.PROXIMATE,
)


def run(quick: bool = False) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use (see the module docstring for the paper claim
    being reproduced)."""
    paper_seeds = _PAPER_SEEDS[:1] if quick else _PAPER_SEEDS
    strategies = _STRATEGIES[:2] + (_STRATEGIES[3],) if quick else _STRATEGIES
    graph = load_dataset("LVJ")
    solver = DistributedSteinerSolver(graph, SolverConfig(n_ranks=16))
    report = ExperimentReport(EXP_ID, TITLE)
    raw: dict[str, dict[int, dict]] = {}

    headers = ["strategy", "|S| (paper)", "|S|", "time", "D(GS)", "|ES|"]
    rows = []
    for strat in strategies:
        raw[strat.value] = {}
        for paper_k in paper_seeds:
            k = SEED_COUNTS[paper_k]
            seeds = select_seeds(graph, k, strat, seed=1)
            res = solver.solve(seeds)
            rows.append(
                [
                    strat.value,
                    paper_k,
                    k,
                    fmt_time(res.sim_time()),
                    fmt_si(res.total_distance),
                    res.n_edges,
                ]
            )
            raw[strat.value][paper_k] = {
                "time": res.sim_time(),
                "distance": res.total_distance,
                "n_edges": res.n_edges,
            }
    report.tables.append(render_table(headers, rows))

    if SeedStrategy.PROXIMATE.value in raw and SeedStrategy.BFS_LEVEL.value in raw:
        pk = paper_seeds[0]
        bfs_d = raw[SeedStrategy.BFS_LEVEL.value][pk]["distance"]
        prox_d = raw[SeedStrategy.PROXIMATE.value][pk]["distance"]
        report.notes.append(
            f"proximate trees are {bfs_d / max(prox_d, 1):.1f}x cheaper than "
            "BFS-level at the smallest seed count (paper: ~27x at |S|=100) — "
            "the degenerate case the paper's evaluation avoids"
        )
    report.data = raw
    return report
