"""Ablation — delegate (vertex-cut) partitioning for high-degree hubs.

Paper §IV credits HavoqGT's delegate mechanism ("load balancing for
scale-free graphs through vertex-cut partitioning by distributing edges
of high-degree vertices across multiple partitions") as crucial for
skewed graphs.  This ablation solves on the most skewed stand-in with
delegates off vs on and reports the arc-load imbalance and Voronoi-cell
simulated time.
"""

from __future__ import annotations

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import SEED_COUNTS, load_dataset
from repro.harness.experiments._shared import ExperimentReport
from repro.harness.reporting import fmt_time, render_table
from repro.seeds.selection import select_seeds

EXP_ID = "ablation-delegates"
TITLE = "Delegate partitioning (vertex-cut for hubs) on skewed graphs"

_PAPER_K = 100


def run(quick: bool = False) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use (see the module docstring for the paper claim
    being reproduced)."""
    datasets = ["WDC"] if not quick else ["UKW"]
    k = SEED_COUNTS[_PAPER_K]
    report = ExperimentReport(EXP_ID, TITLE)
    raw: dict[str, dict] = {}

    headers = [
        "dataset",
        "delegates",
        "n hubs",
        "arc imbalance (max/mean)",
        "Voronoi time",
        "total time",
    ]
    rows = []
    for ds in datasets:
        graph = load_dataset(ds)
        seeds = select_seeds(graph, k, "bfs-level", seed=1)
        deg_threshold = max(64, int(graph.avg_degree * 8))
        raw[ds] = {}
        for label, threshold in (("off", None), ("on", deg_threshold)):
            solver = DistributedSteinerSolver(
                graph,
                SolverConfig(n_ranks=16, delegate_threshold=threshold),
            )
            res = solver.solve(seeds)
            imbalance = solver.partition.load_imbalance()
            rows.append(
                [
                    ds,
                    label,
                    solver.partition.delegates.size,
                    f"{imbalance:.2f}",
                    fmt_time(res.phase_time("Voronoi Cell")),
                    fmt_time(res.sim_time()),
                ]
            )
            raw[ds][label] = {
                "imbalance": imbalance,
                "voronoi_time": res.phase_time("Voronoi Cell"),
                "total_time": res.sim_time(),
                "n_delegates": int(solver.partition.delegates.size),
                "distance": res.total_distance,
            }
        if raw[ds]["off"]["distance"] != raw[ds]["on"]["distance"]:
            raise AssertionError("delegate partitioning changed the tree weight")
    report.tables.append(render_table(headers, rows, title=f"|S| scaled to {k}"))
    report.notes.append(
        "delegates stripe hub adjacency across ranks, cutting the arc-load "
        "imbalance that block partitioning suffers on power-law graphs"
    )
    report.data = raw
    return report
