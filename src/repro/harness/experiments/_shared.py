"""Common scaffolding for experiment modules."""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.config import SolverConfig
from repro.core.result import SteinerTreeResult
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import load_dataset
from repro.runtime.queues import QueueDiscipline
from repro.seeds.selection import select_seeds

__all__ = [
    "ExperimentReport",
    "phase_times",
    "seeds_for",
    "solve",
    "solve_on_engines",
]


def _jsonable(obj: Any) -> Any:
    """Best-effort conversion of report data to JSON-safe values."""
    import numpy as np

    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return obj


@dataclass
class ExperimentReport:
    """Rendered + raw output of one experiment.

    ``tables`` holds pre-rendered ASCII blocks; ``data`` holds the raw
    numbers for programmatic use (tests, benches, EXPERIMENTS.md).
    """

    exp_id: str
    title: str
    tables: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    data: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable report (title + tables + notes)."""
        parts = [f"== {self.exp_id}: {self.title} =="]
        parts.extend(self.tables)
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)

    def to_json(self, *, indent: int | None = 2) -> str:
        """Machine-readable form (``repro-steiner run --json``): the raw
        ``data`` plus metadata, with NumPy scalars coerced."""
        return json.dumps(
            {
                "exp_id": self.exp_id,
                "title": self.title,
                "notes": self.notes,
                "data": _jsonable(self.data),
            },
            indent=indent,
        )


def seeds_for(dataset: str, k: int, *, seed: int = 1):
    """BFS-level seeds (the paper's default strategy) on a stand-in."""
    return select_seeds(load_dataset(dataset), k, "bfs-level", seed=seed)


def solve(
    dataset: str,
    k: int,
    *,
    n_ranks: int = 16,
    discipline: QueueDiscipline | str = QueueDiscipline.PRIORITY,
    seed: int = 1,
    **config_kwargs,
) -> SteinerTreeResult:
    """Run the distributed solver on a stand-in with BFS-level seeds."""
    graph = load_dataset(dataset)
    seeds = select_seeds(graph, k, "bfs-level", seed=seed)
    cfg = SolverConfig(n_ranks=n_ranks, discipline=discipline, **config_kwargs)
    return DistributedSteinerSolver(graph, cfg).solve(seeds)


def phase_times(result: SteinerTreeResult) -> dict[str, float]:
    """``{phase name: sim seconds}`` in Alg. 3 order."""
    return {p.name: p.sim_time for p in result.phases}


def solve_on_engines(
    graph,
    seeds,
    *,
    n_ranks: int = 16,
    engines: Sequence[str] | None = None,
    **config_kwargs,
) -> dict[str, tuple[SteinerTreeResult, float]]:
    """Solve one instance on every runtime engine, wall-timing each run.

    The registry's parity contract is enforced before anything is
    returned: every engine must produce the bit-identical tree (raises
    :class:`AssertionError` otherwise), so the timings are always
    verified-correct runs.  Returns ``{engine: (result, wall_seconds)}``
    in registry order (default engine first, rest alphabetical — a
    deterministic iteration order, so two bench logs line up); shared by
    the async-vs-BSP ablation and the ``repro-steiner engines --bench``
    report.  Extra keyword arguments (``workers=...``, ``discipline=``,
    ...) reach every run's :class:`~repro.core.config.SolverConfig`.
    """
    import numpy as np

    from repro.runtime.engines import available_engines

    names = list(engines) if engines is not None else available_engines()
    results: dict[str, tuple[SteinerTreeResult, float]] = {}
    reference: SteinerTreeResult | None = None
    for engine in names:
        solver = DistributedSteinerSolver(
            graph, SolverConfig(n_ranks=n_ranks, engine=engine, **config_kwargs)
        )
        t0 = time.perf_counter()
        res = solver.solve(seeds)
        wall = time.perf_counter() - t0
        if reference is None:
            reference = res
        elif not (
            np.array_equal(reference.edges, res.edges)
            and reference.total_distance == res.total_distance
        ):
            raise AssertionError(f"engine {engine!r} changed the output tree")
        results[engine] = (res, wall)
    return results
