"""Fig. 7 — influence of the edge-weight distribution on runtime.

Paper: LVJ with ``|S| = 1000``; edge-weight ranges swept from [1, 100]
to [1, 100K] under both queue disciplines.  Findings: runtime is
sensitive to the weight range (narrow ranges converge fastest); the
FIFO queue is far more sensitive (std-dev 13.5s, 14.7x the priority
queue's 0.91s); the priority queue is both faster (avg 10.8x on LVJ)
and more stable.

Reproduction: reweight the LVJ stand-in topology for each range (same
RNG seed — only the range varies) and solve under both disciplines.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.graph.weights import WeightSpec, assign_uniform_weights
from repro.harness.datasets import SEED_COUNTS, load_dataset
from repro.harness.experiments._shared import ExperimentReport
from repro.harness.reporting import fmt_time, render_table
from repro.seeds.selection import select_seeds

EXP_ID = "fig7"
TITLE = "Edge-weight distribution vs end-to-end runtime (FIFO vs priority)"

_RANGES = (100, 500, 1_000, 5_000, 10_000, 50_000, 100_000)
_PAPER_K = 1000


def run(quick: bool = False) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use (see the module docstring for the paper claim
    being reproduced)."""
    ranges = _RANGES[:3] if quick else _RANGES
    k = SEED_COUNTS[_PAPER_K]
    base = load_dataset("LVJ")
    report = ExperimentReport(EXP_ID, TITLE)
    raw: dict[str, dict[int, float]] = {"fifo": {}, "priority": {}}

    headers = ["weights", "FIFO", "Priority", "FIFO/Priority"]
    rows = []
    for high in ranges:
        spec = WeightSpec(1, high)
        graph = assign_uniform_weights(base, spec, seed=7)
        seeds = select_seeds(graph, k, "bfs-level", seed=1)
        times = {}
        for disc in ("fifo", "priority"):
            solver = DistributedSteinerSolver(
                graph, SolverConfig(n_ranks=16, discipline=disc)
            )
            res = solver.solve(seeds)
            times[disc] = res.sim_time()
            raw[disc][high] = res.sim_time()
        rows.append(
            [
                spec.label(),
                fmt_time(times["fifo"]),
                fmt_time(times["priority"]),
                f"{times['fifo'] / times['priority']:.1f}x",
            ]
        )

    report.tables.append(
        render_table(headers, rows, title=f"LVJ stand-in, |S|={_PAPER_K} (scaled {k})")
    )
    fifo_sd = float(np.std(list(raw["fifo"].values())))
    prio_sd = float(np.std(list(raw["priority"].values())))
    report.notes.append(
        f"std-dev across weight ranges: FIFO {fmt_time(fifo_sd)}, priority "
        f"{fmt_time(prio_sd)} ({fifo_sd / max(prio_sd, 1e-12):.1f}x) — the "
        "priority queue is less sensitive to the weight distribution "
        "(paper: 14.7x)"
    )
    report.data = {
        "times": raw,
        "fifo_std": fifo_sd,
        "priority_std": prio_sd,
    }
    return report
