"""Ablation — sequential MST of ``G'1`` vs parallel-MST parallelism.

Paper §III argues a *sequential* MST on the replicated distance graph is
the right call: ``G'1`` is small, and parallel MST suffers "rapid
decrease in the available parallelism" (citing Bader & Cong and the
Galois Lonestar study).  This ablation (a) times Prim/Kruskal/Borůvka on
real ``G'1`` instances from the stand-ins, confirming the MST is a
negligible slice of end-to-end time, and (b) reports Borůvka's
per-round live-component counts — the parallelism-collapse curve behind
the paper's argument.
"""

from __future__ import annotations

import time

from repro.core.distance_graph import build_distance_graph
from repro.harness.datasets import SEED_COUNTS, load_dataset
from repro.harness.experiments._shared import ExperimentReport
from repro.harness.reporting import fmt_time, render_table
from repro.mst.boruvka import boruvka_rounds
from repro.mst.kruskal import kruskal_mst
from repro.mst.prim import prim_mst
from repro.seeds.selection import select_seeds
from repro.shortest_paths.voronoi import compute_voronoi_cells

EXP_ID = "ablation-mst"
TITLE = "MST of G'1: sequential kernels + Boruvka parallelism collapse"

_PAPER_K = 1000


def run(quick: bool = False) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use (see the module docstring for the paper claim
    being reproduced)."""
    ds = "LVJ"
    k = SEED_COUNTS[_PAPER_K // 10] if quick else SEED_COUNTS[_PAPER_K]
    graph = load_dataset(ds)
    seeds = select_seeds(graph, k, "bfs-level", seed=1)
    vd = compute_voronoi_cells(graph, seeds)
    dg = build_distance_graph(graph, seeds, vd.src, vd.dist)
    si, ti = dg.seed_indices()

    report = ExperimentReport(EXP_ID, TITLE)
    rows = []
    weights = {}
    for name, fn in (
        ("Prim (paper's choice)", prim_mst),
        ("Kruskal", kruskal_mst),
        ("Boruvka", lambda *a: boruvka_rounds(*a)[0]),
    ):
        t0 = time.perf_counter()
        idx = fn(k, si, ti, dg.dprime)
        dt = time.perf_counter() - t0
        w = int(dg.dprime[idx].sum())
        weights[name] = w
        rows.append([name, f"{dg.n_edges} edges", fmt_time(dt), w])
    if len(set(weights.values())) != 1:
        raise AssertionError(f"MST kernels disagree on weight: {weights}")
    report.tables.append(
        render_table(
            ["kernel", "G'1 size", "time", "MST weight"],
            rows,
            title=f"{ds}, |S| scaled to {k}",
        )
    )

    _, rounds = boruvka_rounds(k, si, ti, dg.dprime)
    collapse = [["round " + str(i), c] for i, c in enumerate(rounds)]
    report.tables.append(
        render_table(
            ["Boruvka round", "live components (available parallelism)"],
            collapse,
        )
    )
    report.notes.append(
        "available parallelism halves (or worse) each round — the collapse "
        "the paper cites as the reason to keep the MST sequential; all "
        "kernels agree on the MST weight"
    )
    report.data = {
        "n_distance_edges": dg.n_edges,
        "boruvka_rounds": rounds,
        "mst_weight": next(iter(weights.values())),
    }
    return report
