"""Table IV — number of edges in the output Steiner tree.

Paper: ``|ES|`` for every (graph, seed-count) pair; trees stay orders of
magnitude smaller than the graphs (e.g. 12,488 edges for WDC/1K seeds on
a 257B-edge graph), which is what makes Alg. 6's walk cheap.  MCO and
CTS have "N/A" at ``|S| = 10K`` (fewer vertices than seeds).

Reproduction: same grid on the stand-ins; the N/A cells appear where the
scaled seed count exceeds what the component supports.
"""

from __future__ import annotations

from repro.errors import SeedError
from repro.harness.datasets import SEED_COUNTS, load_dataset
from repro.harness.experiments._shared import ExperimentReport, solve
from repro.harness.reporting import render_table

EXP_ID = "table4"
TITLE = "Total number of edges in the output Steiner tree"

_ORDER = ["WDC", "CLW", "UKW", "FRS", "LVJ", "PTN", "MCO", "CTS"]
_PAPER_SEEDS = (10, 100, 1000, 10000)


def run(quick: bool = False) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use (see the module docstring for the paper claim
    being reproduced)."""
    datasets = ["LVJ", "PTN", "MCO", "CTS"] if quick else _ORDER
    paper_seeds = _PAPER_SEEDS[:2] if quick else _PAPER_SEEDS
    report = ExperimentReport(EXP_ID, TITLE)
    raw: dict[int, dict[str, object]] = {}

    headers = ["|S| (paper)", "|S|"] + datasets
    rows = []
    for paper_k in paper_seeds:
        k = SEED_COUNTS[paper_k]
        row: list[object] = [paper_k, k]
        raw[paper_k] = {}
        for ds in datasets:
            graph = load_dataset(ds)
            # N/A when the component cannot supply k seeds with headroom
            if k * 3 > graph.n_vertices:
                row.append("N/A")
                raw[paper_k][ds] = None
                continue
            try:
                res = solve(ds, k, n_ranks=8)
            except SeedError:
                row.append("N/A")
                raw[paper_k][ds] = None
                continue
            row.append(res.n_edges)
            raw[paper_k][ds] = res.n_edges
        rows.append(row)

    report.tables.append(render_table(headers, rows))
    ratios = []
    for paper_k, per_ds in raw.items():
        for ds, n_edges in per_ds.items():
            if n_edges:
                g = load_dataset(ds)
                ratios.append(g.n_edges / n_edges)
    if ratios:
        report.notes.append(
            f"tree edge counts are {min(ratios):.0f}x-{max(ratios):.0f}x "
            "smaller than the background graphs (paper: orders of magnitude)"
        )
    report.data = raw
    return report
