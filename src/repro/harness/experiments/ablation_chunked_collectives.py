"""Ablation — single-shot vs chunked collectives (§V-F).

The paper: "Memory consumption improves when, instead of a single
collective operation on the entire edge buffer, multiple collective
operations are performed on smaller chunks ... at the expense of
runtime performance of course."  This ablation runs the solver with
``collective_chunk_elements`` swept from single-shot down to small
chunks and reports the collective-phase time against the resident
pairwise-buffer memory.
"""

from __future__ import annotations

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import SEED_COUNTS, load_dataset
from repro.harness.experiments._shared import ExperimentReport
from repro.harness.reporting import fmt_bytes, fmt_time, render_table
from repro.seeds.selection import select_seeds

EXP_ID = "ablation-chunked-collectives"
TITLE = "Single-shot vs chunked EN collectives: runtime/memory trade-off"

_PAPER_K = 10000  # the seed count where the paper hits the memory wall


def run(quick: bool = False) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use (see the module docstring for the paper claim
    being reproduced)."""
    k = SEED_COUNTS[1000] if quick else SEED_COUNTS[_PAPER_K]
    graph = load_dataset("LVJ")
    seeds = select_seeds(graph, k, "bfs-level", seed=1)
    n_pairs = k * (k - 1) // 2
    chunk_settings = [None, n_pairs // 4, n_pairs // 16, 500]

    report = ExperimentReport(EXP_ID, TITLE)
    raw: dict[str, dict] = {}
    headers = ["chunking", "collective time", "resident EN buffer", "D(GS)"]
    rows = []
    base_distance = None
    for chunk in chunk_settings:
        solver = DistributedSteinerSolver(
            graph,
            SolverConfig(n_ranks=16, collective_chunk_elements=chunk),
        )
        res = solver.solve(seeds)
        coll_time = res.phase_time("Global Min Dist. Edge") + res.phase_time(
            "Global Edge Pruning"
        )
        label = "single shot" if chunk is None else f"{chunk} items"
        assert res.memory is not None
        rows.append(
            [
                label,
                fmt_time(coll_time),
                fmt_bytes(res.memory.en_buffer_bytes),
                res.total_distance,
            ]
        )
        raw[label] = {
            "collective_time": coll_time,
            "en_buffer_bytes": res.memory.en_buffer_bytes,
            "distance": res.total_distance,
        }
        if base_distance is None:
            base_distance = res.total_distance
        elif res.total_distance != base_distance:
            raise AssertionError("chunking changed the output tree")
    report.tables.append(
        render_table(headers, rows, title=f"LVJ, |S| scaled to {k} ({n_pairs} pairs)")
    )
    report.notes.append(
        "smaller chunks bound the resident buffer but pay one latency term "
        "per chunk — the paper's §V-F trade-off; the output tree is "
        "unchanged"
    )
    report.data = raw
    return report
