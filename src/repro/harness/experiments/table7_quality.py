"""Table VII — approximation quality of the distributed solution.

Paper: ``D(GS)/Dmin`` and the % error on LVJ/PTN/MCO/CTS ×
``|S| ∈ {10, 100, 1000}`` against SCIP-Jack's exact optimum: ratios
1.0112–1.1684, average 1.0527 (5.3% error) — far inside the theoretical
``<= 2 (1 - 1/l)`` bound.

Reproduction: exact Dreyfus–Wagner optimum at ``|S| = 10`` (feasible
exactly); the refined-reference tree stands in for larger seed sets
(marked, see DESIGN.md).  Reported per cell: ratio and % error; the
bound is asserted on every cell.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.exact import MAX_EXACT_SEEDS, exact_steiner_tree
from repro.baselines.refine import refined_reference_tree
from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import SEED_COUNTS, load_dataset
from repro.harness.experiments._shared import ExperimentReport
from repro.harness.reporting import render_table
from repro.seeds.selection import select_seeds

EXP_ID = "table7"
TITLE = "Approximation quality: D(GS)/Dmin and % error"

_DATASETS = ["LVJ", "PTN", "MCO", "CTS"]
_PAPER_SEEDS = (10, 100, 1000)


def run(quick: bool = False) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use (see the module docstring for the paper claim
    being reproduced)."""
    datasets = ["MCO", "CTS"] if quick else _DATASETS
    paper_seeds = _PAPER_SEEDS[:1] if quick else _PAPER_SEEDS
    report = ExperimentReport(EXP_ID, TITLE)
    raw: dict[str, dict[int, dict[str, float]]] = {}

    headers = ["dataset", "|S| (paper)", "|S|", "Dmin source", "D(GS)/Dmin", "% error"]
    rows = []
    ratios = []
    for ds in datasets:
        graph = load_dataset(ds)
        raw[ds] = {}
        solver = DistributedSteinerSolver(graph, SolverConfig(n_ranks=16))
        for paper_k in paper_seeds:
            k = SEED_COUNTS[paper_k]
            seeds = select_seeds(graph, k, "bfs-level", seed=1)
            ours = solver.solve(seeds)
            if k <= MAX_EXACT_SEEDS:
                ref = exact_steiner_tree(graph, seeds)
                source = "exact"
            else:
                ref = refined_reference_tree(graph, seeds)
                source = "reference"
            dmin = ref.total_distance
            # a "reference" Dmin is itself a Steiner tree, so the ratio
            # can dip below 1 only if ours beats the reference — clamp
            # semantics: report min(ref, ours) as the divisor's floor
            dmin = min(dmin, ours.total_distance) if source == "reference" else dmin
            ratio = ours.total_distance / dmin
            err = (ratio - 1.0) * 100.0
            if ratio > 2.0:
                raise AssertionError(
                    f"2-approximation bound violated on {ds} |S|={k}: {ratio}"
                )
            ratios.append(ratio)
            rows.append([ds, paper_k, k, source, f"{ratio:.4f}", f"{err:.2f}"])
            raw[ds][paper_k] = {"ratio": ratio, "error_pct": err, "source": source}
    report.tables.append(render_table(headers, rows))
    report.notes.append(
        f"average ratio {np.mean(ratios):.4f} "
        f"({(np.mean(ratios) - 1) * 100:.2f}% error); paper: 1.0527 (5.3%). "
        "All cells within the 2(1-1/l) bound."
    )
    report.data = {"cells": raw, "average_ratio": float(np.mean(ratios))}
    return report
