"""Table VI — runtime comparison with related work.

Paper: our solution with 16 ranks on one machine vs the exact solver
SCIP-Jack (S), WWW (W) and Mehlhorn (M) on the four small graphs
(LVJ/PTN/MCO/CTS) × ``|S| ∈ {10, 100, 1000}``.  Findings: the exact
solver is minutes-to-an-hour; WWW's runtime is nearly flat in ``|S|``;
Mehlhorn's implementation grows with ``|S|``; the distributed solution
wins on the larger graphs (up to 27x vs Mehlhorn, 5x vs WWW).

Reproduction: SCIP-Jack -> Dreyfus–Wagner exact where feasible
(``|S| = 10``) and the refined-reference solver otherwise (labelled);
WWW/Mehlhorn/KMB wall-clock; ours reported as both DES *simulated
parallel time* (the honest 16-rank figure) and host wall-clock of the
sequential reference implementation.
"""

from __future__ import annotations

import time

from repro.baselines.exact import MAX_EXACT_SEEDS, exact_steiner_tree
from repro.baselines.mehlhorn import mehlhorn_steiner_tree
from repro.baselines.refine import refined_reference_tree
from repro.baselines.www import www_steiner_tree
from repro.core.config import SolverConfig
from repro.core.sequential import sequential_steiner_tree
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import SEED_COUNTS, load_dataset
from repro.harness.experiments._shared import ExperimentReport
from repro.harness.reporting import fmt_time, render_table
from repro.seeds.selection import select_seeds

EXP_ID = "table6"
TITLE = "Runtime vs related work (S=exact/ref, W=WWW, M=Mehlhorn, D=ours)"

_DATASETS = ["LVJ", "PTN", "MCO", "CTS"]
_PAPER_SEEDS = (10, 100, 1000)


def run(quick: bool = False) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use (see the module docstring for the paper claim
    being reproduced)."""
    datasets = ["MCO", "CTS"] if quick else _DATASETS
    paper_seeds = _PAPER_SEEDS[:2] if quick else _PAPER_SEEDS
    report = ExperimentReport(EXP_ID, TITLE)
    raw: dict[str, dict[int, dict[str, float]]] = {}

    headers = ["dataset", "|S| (paper)", "|S|", "S (exact/ref)", "W", "M", "D sim", "D wall"]
    rows = []
    for ds in datasets:
        graph = load_dataset(ds)
        raw[ds] = {}
        solver = DistributedSteinerSolver(graph, SolverConfig(n_ranks=16))
        for paper_k in paper_seeds:
            k = SEED_COUNTS[paper_k]
            seeds = select_seeds(graph, k, "bfs-level", seed=1)

            if k <= MAX_EXACT_SEEDS:
                t0 = time.perf_counter()
                exact_steiner_tree(graph, seeds)
                t_s = time.perf_counter() - t0
                s_label = fmt_time(t_s)
            else:
                t0 = time.perf_counter()
                refined_reference_tree(graph, seeds, passes=1, n_candidates=16)
                t_s = time.perf_counter() - t0
                s_label = fmt_time(t_s) + "*"

            t0 = time.perf_counter()
            www_steiner_tree(graph, seeds)
            t_w = time.perf_counter() - t0

            t0 = time.perf_counter()
            mehlhorn_steiner_tree(graph, seeds)
            t_m = time.perf_counter() - t0

            res = solver.solve(seeds)
            t_d_sim = res.sim_time()
            t0 = time.perf_counter()
            sequential_steiner_tree(graph, seeds)
            t_d_wall = time.perf_counter() - t0

            rows.append(
                [
                    ds,
                    paper_k,
                    k,
                    s_label,
                    fmt_time(t_w),
                    fmt_time(t_m),
                    fmt_time(t_d_sim),
                    fmt_time(t_d_wall),
                ]
            )
            raw[ds][paper_k] = {
                "exact_or_ref": t_s,
                "www": t_w,
                "mehlhorn": t_m,
                "ours_sim": t_d_sim,
                "ours_wall": t_d_wall,
            }
    report.tables.append(render_table(headers, rows))
    report.notes.append(
        "'*' = refined-reference solver stands in for the exact solver "
        "beyond the Dreyfus-Wagner limit (the paper uses SCIP-Jack). "
        "Shape to verify: exact/ref >> 2-approximations; ours fastest on "
        "the larger graphs."
    )
    report.data = raw
    return report
