"""Fig. 3 — strong scaling on the four largest graphs.

Paper: WDC/CLW/UKW/FRS with ``|S| ∈ {100, 1000}``, compute-node counts
doubling twice from the smallest fitting scale; runtime decomposed into
the six phases; per-doubling speedups 1.3–2.9x; Voronoi-cell computation
dominates and is the scalability bottleneck; larger graphs scale better
(up to 90% efficiency).

Reproduction: DES rank counts double twice per dataset (the paper maps
nodes -> 16 ranks/node; ranks are the scaling unit here).  Reported:
per-phase simulated time and the speedup over the smallest scale.
"""

from __future__ import annotations

from repro.core.result import PHASE_NAMES
from repro.harness.datasets import SEED_COUNTS
from repro.harness.experiments._shared import ExperimentReport, phase_times, solve
from repro.harness.reporting import fmt_time, render_stacked, render_table

EXP_ID = "fig3"
TITLE = "Strong scaling (per-phase simulated time, speedup over smallest scale)"

#: smallest simulated rank count per dataset (the paper's smallest node
#: count is the one that fits the graph; relative ordering preserved)
_BASE_RANKS = {"FRS": 4, "UKW": 4, "CLW": 8, "WDC": 8}
_PAPER_SEEDS = (100, 1000)


def run(
    quick: bool = False,
    engine: str = "async-heap",
    workers: int | None = None,
) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use, ``engine`` selects the runtime engine from
    :mod:`repro.runtime.engines` and ``workers`` sizes the
    ``bsp-mp`` process pool (see the module docstring for the
    paper claim being reproduced)."""
    datasets = ["FRS", "UKW"] if quick else ["FRS", "UKW", "CLW", "WDC"]
    paper_seeds = _PAPER_SEEDS[:1] if quick else _PAPER_SEEDS
    report = ExperimentReport(EXP_ID, TITLE)
    if engine != "async-heap":
        report.notes.append(f"runtime engine: {engine}")
    raw: dict[str, dict] = {}

    for paper_k in paper_seeds:
        k = SEED_COUNTS[paper_k]
        headers = ["dataset", "ranks"] + list(PHASE_NAMES) + [
            "total",
            "speedup",
            "efficiency",
        ]
        rows = []
        for ds in datasets:
            base = _BASE_RANKS[ds]
            scales = [base, base * 2] if quick else [base, base * 2, base * 4]
            base_total = None
            for ranks in scales:
                res = solve(
                    ds, k, n_ranks=ranks, engine=engine, workers=workers
                )
                pt = phase_times(res)
                total = res.sim_time()
                if base_total is None:
                    base_total = total
                speedup = base_total / total
                # parallel efficiency relative to the smallest scale
                # (the paper's "up to 90% efficient" metric)
                efficiency = speedup / (ranks / base)
                rows.append(
                    [ds, ranks]
                    + [fmt_time(pt[p]) for p in PHASE_NAMES]
                    + [
                        fmt_time(total),
                        f"{speedup:.1f}x",
                        f"{efficiency:.0%}",
                    ]
                )
                raw.setdefault(ds, {}).setdefault(paper_k, {})[ranks] = {
                    "phases": pt,
                    "total": total,
                    "speedup": speedup,
                    "efficiency": efficiency,
                }
        report.tables.append(
            render_table(headers, rows, title=f"|S|={paper_k} (scaled {k})")
        )

    # one stacked-bar rendering, mirroring the paper's chart style
    if raw:
        ds = datasets[-1]
        pk = paper_seeds[0]
        ranks = sorted(raw[ds][pk])[-1]
        report.tables.append(
            render_stacked(
                f"{ds} |S|={pk} ranks={ranks}", raw[ds][pk][ranks]["phases"]
            )
        )
    report.notes.append(
        "Voronoi-cell computation dominates every configuration and is the "
        "scalability bottleneck, as in the paper; speedups are sub-linear "
        "per rank-doubling (paper: 1.3-2.9x)."
    )
    report.data = raw
    return report
