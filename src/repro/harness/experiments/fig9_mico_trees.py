"""Fig. 9 — Steiner trees in the MiCo graph (visualisation data).

Paper: renders the trees for three seed-set sizes on MiCo, seeds in red,
Steiner vertices in blue.  The textual reproduction reports the tree
composition (seed vs Steiner vertex counts, edges, total distance) and
emits Graphviz DOT for each tree so the figures can be re-rendered with
any DOT viewer.
"""

from __future__ import annotations

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import SEED_COUNTS, load_dataset
from repro.harness.experiments._shared import ExperimentReport
from repro.harness.reporting import render_table
from repro.seeds.selection import select_seeds

EXP_ID = "fig9"
TITLE = "Steiner trees in the MiCo stand-in (composition + DOT export)"

_PAPER_SEEDS = (10, 100, 1000)


def tree_to_dot(result, name: str) -> str:
    """Graphviz DOT with the paper's colour scheme (seeds red, Steiner
    vertices blue)."""
    seed_set = {int(s) for s in result.seeds}
    lines = [f"graph {name} {{", "  node [style=filled];"]
    for v in result.vertices():
        colour = "red" if int(v) in seed_set else "lightblue"
        lines.append(f'  {int(v)} [fillcolor="{colour}"];')
    for u, v, w in result.edges:
        lines.append(f"  {int(u)} -- {int(v)} [label={int(w)}];")
    lines.append("}")
    return "\n".join(lines)


def run(quick: bool = False) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use (see the module docstring for the paper claim
    being reproduced)."""
    paper_seeds = _PAPER_SEEDS[:2] if quick else _PAPER_SEEDS
    graph = load_dataset("MCO")
    solver = DistributedSteinerSolver(graph, SolverConfig(n_ranks=8))
    report = ExperimentReport(EXP_ID, TITLE)
    raw: dict[int, dict] = {}

    headers = ["|S| (paper)", "|S|", "tree vertices", "Steiner vertices", "|ES|", "D(GS)"]
    rows = []
    for paper_k in paper_seeds:
        k = SEED_COUNTS[paper_k]
        seeds = select_seeds(graph, k, "bfs-level", seed=1)
        res = solver.solve(seeds)
        dot = tree_to_dot(res, f"mico_s{k}")
        rows.append(
            [
                paper_k,
                k,
                res.vertices().size,
                res.steiner_vertices().size,
                res.n_edges,
                res.total_distance,
            ]
        )
        raw[paper_k] = {
            "n_vertices": int(res.vertices().size),
            "n_steiner": int(res.steiner_vertices().size),
            "n_edges": res.n_edges,
            "distance": res.total_distance,
            "dot": dot,
        }
    report.tables.append(render_table(headers, rows))
    report.notes.append(
        "DOT sources for each tree are in report.data[k]['dot'] "
        "(render with `dot -Tpng`)"
    )
    report.data = raw
    return report
