"""Fig. 8 — cluster-wide peak memory usage.

Paper: LVJ/CLW/WDC at ``|S| ∈ {1K, 10K}`` — memory split into the
in-memory graph and "application runtime" (algorithm state, the
replicated ``C(|S|,2)`` buffers, communication).  For the small LVJ,
algorithm state dominates and grows 35.9x from 1K to 10K seeds; for the
big graphs the graph itself dominates (1.7x growth for WDC).  §V-F also
notes that chunked collectives bound the buffer at a runtime cost.

Reproduction: the memory model over the same grid (scaled seed counts
{100, 300}), plus the chunked-allreduce trade-off table.
"""

from __future__ import annotations

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import SEED_COUNTS, load_dataset
from repro.harness.experiments._shared import ExperimentReport
from repro.harness.reporting import fmt_bytes, fmt_time, render_table
from repro.runtime.collectives import chunked_allreduce_time
from repro.runtime.cost_model import MachineModel
from repro.seeds.selection import select_seeds

EXP_ID = "fig8"
TITLE = "Cluster-wide peak memory: graph vs application runtime"

_DATASETS = ["LVJ", "CLW", "WDC"]
_PAPER_SEEDS = (1000, 10000)


def run(quick: bool = False) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use (see the module docstring for the paper claim
    being reproduced)."""
    datasets = ["LVJ"] if quick else _DATASETS
    paper_seeds = _PAPER_SEEDS[:1] if quick else _PAPER_SEEDS
    report = ExperimentReport(EXP_ID, TITLE)
    raw: dict[str, dict[int, dict]] = {}

    headers = [
        "dataset",
        "|S| (paper)",
        "|S|",
        "graph",
        "runtime state",
        "total",
        "runtime growth",
    ]
    rows = []
    for ds in datasets:
        graph = load_dataset(ds)
        raw[ds] = {}
        prev_runtime = None
        for paper_k in paper_seeds:
            k = SEED_COUNTS[paper_k]
            seeds = select_seeds(graph, k, "bfs-level", seed=1)
            solver = DistributedSteinerSolver(graph, SolverConfig(n_ranks=16))
            res = solver.solve(seeds)
            mem = res.memory
            assert mem is not None
            growth = ""
            if prev_runtime:
                growth = f"{mem.runtime_bytes / prev_runtime:.1f}x"
            prev_runtime = mem.runtime_bytes
            rows.append(
                [
                    ds,
                    paper_k,
                    k,
                    fmt_bytes(mem.graph_bytes),
                    fmt_bytes(mem.runtime_bytes),
                    fmt_bytes(mem.total_bytes),
                    growth,
                ]
            )
            raw[ds][paper_k] = {
                "graph_bytes": mem.graph_bytes,
                "runtime_bytes": mem.runtime_bytes,
                "total_bytes": mem.total_bytes,
            }
    report.tables.append(render_table(headers, rows))

    # §V-F chunked-collective trade-off on the largest seed count
    machine = MachineModel()
    k = SEED_COUNTS[paper_seeds[-1]]
    n_elems = k * (k - 1) // 2
    chunk_rows = []
    for chunk in (n_elems, 50_000, 10_000, 1_000):
        t = chunked_allreduce_time(machine, 16, n_elems, chunk, elem_bytes=24)
        chunk_rows.append(
            [
                "single shot" if chunk == n_elems else f"{chunk} items",
                fmt_bytes(min(chunk, n_elems) * 24),
                fmt_time(t),
            ]
        )
    report.tables.append(
        render_table(
            ["collective chunking", "peak comm buffer", "allreduce time"],
            chunk_rows,
            title=f"chunked allreduce trade-off (|S'|={k}, {n_elems} pairs)",
        )
    )
    report.notes.append(
        "runtime state grows with C(|S|,2) (replicated G'1/EN buffers); "
        "the graph bar dominates only for the large datasets — the same "
        "crossover as the paper's Fig. 8"
    )
    report.data = raw
    return report
