"""Ablation — multi-source distance kernel choice (§III's discussion).

The paper picks Bellman–Ford over Δ-stepping for the distributed
Voronoi kernel: Δ-stepping (as used by Ceccarello et al. for
multi-source sweeps) is work-efficient but bucket-synchronous, which
"does not naturally extend to distributed memory".  Sequentially all
the kernels are legal — this ablation times them on the same
instances and verifies they reach the identical fixpoint, quantifying
the work-efficiency trade the paper accepted for asynchrony.  The
fused JIT tier (``delta-numba``) rides along when numba is installed;
without it the row would duplicate the vectorised-NumPy row (the
fallback), so it is skipped rather than reported twice.
"""

from __future__ import annotations

import time

import numpy as np

from repro.harness.datasets import SEED_COUNTS, load_dataset
from repro.harness.experiments._shared import ExperimentReport
from repro.harness.reporting import fmt_time, render_table
from repro.seeds.selection import select_seeds
from repro.shortest_paths.multisource import (
    compute_voronoi_cells_delta_stepping,
    compute_voronoi_cells_spfa,
)
from repro.native import NUMBA_AVAILABLE, warmup
from repro.shortest_paths.native import compute_voronoi_cells_delta_numba
from repro.shortest_paths.vectorized import compute_voronoi_cells_delta_numpy
from repro.shortest_paths.voronoi import compute_voronoi_cells

EXP_ID = "ablation-kernel"
TITLE = "Multi-source kernel: Dijkstra-order vs SPFA vs Delta-stepping"

_KERNELS = [
    ("Dijkstra-order (reference)", compute_voronoi_cells),
    ("SPFA / Bellman-Ford (paper's distributed basis)", compute_voronoi_cells_spfa),
    ("Delta-stepping (Ceccarello-style)", compute_voronoi_cells_delta_stepping),
    ("Delta-stepping (vectorised NumPy)", compute_voronoi_cells_delta_numpy),
]
if NUMBA_AVAILABLE:
    # without numba this entry IS the vectorised-NumPy kernel (the
    # fallback); reporting the same measurement twice would be noise
    _KERNELS.append(
        ("Delta-stepping (fused numba JIT)", compute_voronoi_cells_delta_numba)
    )


def run(quick: bool = False) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use (see the module docstring for the paper claim
    being reproduced)."""
    datasets = ["LVJ"] if quick else ["LVJ", "PTN", "UKW"]
    k = SEED_COUNTS[100]
    warmup()  # JIT compilation must never land inside a timing loop
    report = ExperimentReport(EXP_ID, TITLE)
    raw: dict[str, dict[str, float]] = {}

    headers = ["dataset"] + [name.split(" (")[0] for name, _ in _KERNELS]
    rows = []
    for ds in datasets:
        graph = load_dataset(ds)
        seeds = select_seeds(graph, k, "bfs-level", seed=1)
        times: dict[str, float] = {}
        results = []
        for name, kernel in _KERNELS:
            t0 = time.perf_counter()
            vd = kernel(graph, seeds)
            times[name] = time.perf_counter() - t0
            results.append(vd)
        # all kernels must agree on the fixpoint
        for other in results[1:]:
            if not (
                np.array_equal(results[0].src, other.src)
                and np.array_equal(results[0].dist, other.dist)
            ):
                raise AssertionError(f"kernel fixpoints disagree on {ds}")
        rows.append([ds] + [fmt_time(times[name]) for name, _ in _KERNELS])
        raw[ds] = {name: t for name, t in times.items()}
    report.tables.append(render_table(headers, rows, title=f"|S| scaled to {k}"))
    report.notes.append(
        "all kernels converge to the identical (src, dist) fixpoint; the "
        "paper trades SPFA's extra relaxations for asynchrony, recovering "
        "the loss with the priority queue (Figs. 5-6)"
    )
    report.data = raw
    return report
