"""Fig. 5 — FIFO vs priority message queues: runtime.

Paper: LVJ (1 node), FRS and UKW (32 nodes), ``|S| = 100``; the priority
queue wins 3.5x (FRS) to 13.1x (LVJ), concentrated in the Voronoi-cell
phase.  Fig. 6 (next module) plots the matching message counts.

Reproduction: identical runs under both disciplines; output trees are
bit-identical (the discipline affects performance, never the result —
an invariant the paper relies on and our tests pin down).
"""

from __future__ import annotations

import numpy as np

from repro.core.result import PHASE_NAMES
from repro.harness.datasets import SEED_COUNTS
from repro.harness.experiments._shared import ExperimentReport, phase_times, solve
from repro.harness.reporting import fmt_time, render_table

EXP_ID = "fig5"
TITLE = "FIFO vs priority queue: runtime by phase"

_CONFIGS = {"LVJ": 16, "FRS": 16, "UKW": 16}
_PAPER_K = 100


def run_pair(
    dataset: str,
    k: int,
    n_ranks: int,
    engine: str = "async-heap",
    workers: int | None = None,
):
    """One FIFO + one priority run (on the chosen runtime engine
    and ``bsp-mp`` pool size); returns both results."""
    fifo = solve(
        dataset,
        k,
        n_ranks=n_ranks,
        discipline="fifo",
        engine=engine,
        workers=workers,
    )
    prio = solve(
        dataset,
        k,
        n_ranks=n_ranks,
        discipline="priority",
        engine=engine,
        workers=workers,
    )
    if not np.array_equal(fifo.edges, prio.edges):  # pragma: no cover
        raise AssertionError("queue discipline changed the output tree")
    return fifo, prio


def run(
    quick: bool = False,
    engine: str = "async-heap",
    workers: int | None = None,
) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use, ``engine`` selects the runtime engine from
    :mod:`repro.runtime.engines` and ``workers`` sizes the
    ``bsp-mp`` process pool (see the module docstring for the
    paper claim being reproduced)."""
    datasets = ["LVJ"] if quick else list(_CONFIGS)
    k = SEED_COUNTS[_PAPER_K]
    report = ExperimentReport(EXP_ID, TITLE)
    if engine != "async-heap":
        report.notes.append(f"runtime engine: {engine}")
    raw: dict[str, dict] = {}

    headers = ["dataset", "queue"] + list(PHASE_NAMES) + ["total", "speedup"]
    rows = []
    for ds in datasets:
        fifo, prio = run_pair(ds, k, _CONFIGS[ds], engine, workers)
        speedup = fifo.sim_time() / prio.sim_time()
        for label, res in (("FIFO", fifo), ("Priority", prio)):
            pt = phase_times(res)
            rows.append(
                [ds, label]
                + [fmt_time(pt[p]) for p in PHASE_NAMES]
                + [
                    fmt_time(res.sim_time()),
                    f"{speedup:.1f}x" if label == "Priority" else "",
                ]
            )
        raw[ds] = {
            "fifo_total": fifo.sim_time(),
            "priority_total": prio.sim_time(),
            "speedup": speedup,
            "fifo_phases": phase_times(fifo),
            "priority_phases": phase_times(prio),
            "fifo_messages": {p.name: p.n_messages for p in fifo.phases},
            "priority_messages": {p.name: p.n_messages for p in prio.phases},
        }
    report.tables.append(render_table(headers, rows, title=f"|S|={_PAPER_K} (scaled {k})"))
    report.notes.append(
        "priority-queue speedup comes almost entirely from the Voronoi "
        "Cell phase (paper: 3.5x-13.1x end-to-end)"
    )
    report.data = raw
    return report
