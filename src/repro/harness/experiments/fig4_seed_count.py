"""Fig. 4 — runtime vs seed-vertex count.

Paper: ``|S| ∈ {10, 100, 1K, 10K}`` on six graphs at a fixed process
count.  Findings: (a) for the larger graphs, Voronoi-cell time *drops*
at the largest ``|S|`` because many nearby sources accelerate
convergence; (b) the collective/MST phases only become visible at
``|S| = 10K`` where ``G'1`` approaches ~50M edges; (c) "Local Min Dist.
Edge" grows with ``|S|``.

Reproduction: scaled counts {10, 30, 100, 300} on the six stand-ins at
16 ranks, phase breakdown per cell.
"""

from __future__ import annotations

from repro.core.result import PHASE_NAMES
from repro.harness.datasets import SEED_COUNTS
from repro.harness.experiments._shared import ExperimentReport, phase_times, solve
from repro.harness.reporting import fmt_time, render_table

EXP_ID = "fig4"
TITLE = "Runtime vs number of seed vertices (per-phase, fixed ranks)"

_DATASETS = ["PTN", "LVJ", "FRS", "UKW", "CLW", "WDC"]
_PAPER_SEEDS = (10, 100, 1000, 10000)


def run(quick: bool = False) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use (see the module docstring for the paper claim
    being reproduced)."""
    datasets = ["PTN", "LVJ"] if quick else _DATASETS
    paper_seeds = _PAPER_SEEDS[:2] if quick else _PAPER_SEEDS
    report = ExperimentReport(EXP_ID, TITLE)
    raw: dict[str, dict] = {}

    headers = ["dataset", "|S| (paper)", "|S|"] + list(PHASE_NAMES) + ["total"]
    rows = []
    for ds in datasets:
        for paper_k in paper_seeds:
            k = SEED_COUNTS[paper_k]
            res = solve(ds, k, n_ranks=16)
            pt = phase_times(res)
            rows.append(
                [ds, paper_k, k]
                + [fmt_time(pt[p]) for p in PHASE_NAMES]
                + [fmt_time(res.sim_time())]
            )
            raw.setdefault(ds, {})[paper_k] = {
                "phases": pt,
                "total": res.sim_time(),
                "n_tree_edges": res.n_edges,
            }
    report.tables.append(render_table(headers, rows))
    report.notes.append(
        "Collective (Global Min Dist. Edge / Pruning) and MST phases grow "
        "with C(|S|,2) and only become visible at the largest seed count, "
        "mirroring the paper's |S|=10K behaviour."
    )
    report.data = raw
    return report
