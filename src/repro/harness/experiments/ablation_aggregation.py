"""Ablation — HavoqGT-style remote-message aggregation.

HavoqGT (the paper's substrate) batches visitor messages bound for the
same destination rank into aggregated buffers, amortising per-send
overhead — one of the reasons the paper expects "an MPI-based
implementation [to be] more efficient than a Hadoop/Spark based
solution".  This ablation runs the solver with aggregation off vs on
and reports the Voronoi-phase simulated time; the output tree and the
visitor message counts are unchanged (aggregation affects the wire, not
the algorithm).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import SEED_COUNTS, load_dataset
from repro.harness.experiments._shared import ExperimentReport
from repro.harness.reporting import fmt_si, fmt_time, render_table
from repro.seeds.selection import select_seeds

EXP_ID = "ablation-aggregation"
TITLE = "Remote-message aggregation (HavoqGT buffering) on vs off"

_PAPER_K = 100


def run(quick: bool = False) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use (see the module docstring for the paper claim
    being reproduced)."""
    datasets = ["WDC"] if not quick else ["LVJ"]
    k = SEED_COUNTS[_PAPER_K]
    report = ExperimentReport(EXP_ID, TITLE)
    raw: dict[str, dict] = {}

    headers = ["dataset", "aggregation", "Voronoi time", "total time", "messages"]
    rows = []
    for ds in datasets:
        graph = load_dataset(ds)
        seeds = select_seeds(graph, k, "bfs-level", seed=1)
        results = {}
        for label, agg in (("off", False), ("on", True)):
            solver = DistributedSteinerSolver(
                graph,
                SolverConfig(n_ranks=16, aggregate_remote_messages=agg),
            )
            res = solver.solve(seeds)
            results[label] = res
            rows.append(
                [
                    ds,
                    label,
                    fmt_time(res.phase_time("Voronoi Cell")),
                    fmt_time(res.sim_time()),
                    fmt_si(res.message_count()),
                ]
            )
        if not np.array_equal(results["off"].edges, results["on"].edges):
            raise AssertionError("aggregation changed the output tree")
        raw[ds] = {
            "off_time": results["off"].sim_time(),
            "on_time": results["on"].sim_time(),
            "off_messages": results["off"].message_count(),
            "on_messages": results["on"].message_count(),
        }
    report.tables.append(render_table(headers, rows, title=f"|S| scaled to {k}"))
    report.notes.append(
        "aggregation amortises per-send CPU overhead without changing the "
        "algorithm: identical output tree, lower simulated time (message "
        "counts may shift slightly because arrival timing changes the "
        "async relaxation order, never the fixpoint)"
    )
    report.data = raw
    return report
