"""Ablation — asynchronous vs bulk-synchronous execution.

Paper §IV motivates HavoqGT's asynchronous processing by prior findings
that async beats BSP for distributed shortest paths ("the former
enabling faster convergence").  This ablation runs the identical
Voronoi-cell program on both engines and compares simulated time,
message counts and (for BSP) the superstep count — quantifying the
design choice the paper takes from the literature.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import SEED_COUNTS, load_dataset
from repro.harness.experiments._shared import ExperimentReport
from repro.harness.reporting import fmt_si, fmt_time, render_table
from repro.seeds.selection import select_seeds

EXP_ID = "ablation-async-vs-bsp"
TITLE = "Async (HavoqGT-style) vs bulk-synchronous execution"

_DATASETS = ["LVJ", "UKW"]
_PAPER_K = 100


def run(quick: bool = False) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use (see the module docstring for the paper claim
    being reproduced)."""
    datasets = _DATASETS[:1] if quick else _DATASETS
    k = SEED_COUNTS[_PAPER_K]
    report = ExperimentReport(EXP_ID, TITLE)
    raw: dict[str, dict] = {}

    headers = ["dataset", "engine", "Voronoi time", "messages", "total time"]
    rows = []
    for ds in datasets:
        graph = load_dataset(ds)
        seeds = select_seeds(graph, k, "bfs-level", seed=1)
        results = {}
        for label, bsp in (("async", False), ("BSP", True)):
            solver = DistributedSteinerSolver(
                graph, SolverConfig(n_ranks=16, bsp=bsp)
            )
            res = solver.solve(seeds)
            results[label] = res
            rows.append(
                [
                    ds,
                    label,
                    fmt_time(res.phase_time("Voronoi Cell")),
                    fmt_si(res.message_count()),
                    fmt_time(res.sim_time()),
                ]
            )
        if not np.array_equal(results["async"].edges, results["BSP"].edges):
            raise AssertionError("engine choice changed the output tree")
        raw[ds] = {
            "async_time": results["async"].sim_time(),
            "bsp_time": results["BSP"].sim_time(),
            "async_messages": results["async"].message_count(),
            "bsp_messages": results["BSP"].message_count(),
            "speedup": results["BSP"].sim_time() / results["async"].sim_time(),
        }
    report.tables.append(render_table(headers, rows, title=f"|S| scaled to {k}"))
    report.notes.append(
        "both engines converge to the identical tree; async wins on time "
        "by overlapping communication (no superstep barriers)"
    )
    report.data = raw
    return report
