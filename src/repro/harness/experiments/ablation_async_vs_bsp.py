"""Ablation — asynchronous vs bulk-synchronous execution.

Paper §IV motivates HavoqGT's asynchronous processing by prior findings
that async beats BSP for distributed shortest paths ("the former
enabling faster convergence").  This ablation runs the identical
Voronoi-cell program on every registered runtime engine
(:mod:`repro.runtime.engines`) and compares simulated time, message
counts and wall-clock execution time — quantifying both the design
choice the paper takes from the literature (async vs BSP simulated
time) and the interpreter-overhead win of the vectorised batched
superstep engine (``bsp-batched`` wall time vs ``bsp``).
"""

from __future__ import annotations

from repro.harness.datasets import SEED_COUNTS, load_dataset
from repro.harness.experiments._shared import ExperimentReport, solve_on_engines
from repro.harness.reporting import fmt_si, fmt_time, render_table
from repro.seeds.selection import select_seeds

EXP_ID = "ablation-async-vs-bsp"
TITLE = "Async (HavoqGT-style) vs bulk-synchronous execution"

_DATASETS = ["LVJ", "UKW"]
_PAPER_K = 100


def run(quick: bool = False, workers: int | None = None) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use, ``workers`` sizes the ``bsp-mp`` process pool (see
    the module docstring for the paper claim being reproduced)."""
    datasets = _DATASETS[:1] if quick else _DATASETS
    k = SEED_COUNTS[_PAPER_K]
    report = ExperimentReport(EXP_ID, TITLE)
    raw: dict[str, dict] = {}

    headers = ["dataset", "engine", "Voronoi time", "messages", "total time", "wall"]
    rows = []
    for ds in datasets:
        graph = load_dataset(ds)
        seeds = select_seeds(graph, k, "bfs-level", seed=1)
        # tree identity across engines is asserted inside the helper
        runs = solve_on_engines(graph, seeds, n_ranks=16, workers=workers)
        results = {engine: res for engine, (res, _) in runs.items()}
        walls = {engine: wall for engine, (_, wall) in runs.items()}
        for engine, res in results.items():
            rows.append(
                [
                    ds,
                    engine,
                    fmt_time(res.phase_time("Voronoi Cell")),
                    fmt_si(res.message_count()),
                    fmt_time(res.sim_time()),
                    fmt_time(walls[engine]),
                ]
            )
        ref = results["async-heap"]
        bsp = results["bsp"]
        # the whole BSP family executes the same supersteps: exact parity
        for sibling in ("bsp-batched", "bsp-mp"):
            if bsp.message_count() != results[sibling].message_count():
                raise AssertionError(
                    f"{sibling} changed the message counts vs bsp"
                )
        raw[ds] = {
            "async_time": ref.sim_time(),
            "bsp_time": bsp.sim_time(),
            "async_messages": ref.message_count(),
            "bsp_messages": bsp.message_count(),
            "bsp_batched_messages": results["bsp-batched"].message_count(),
            "bsp_mp_messages": results["bsp-mp"].message_count(),
            "speedup": bsp.sim_time() / ref.sim_time(),
            "bsp_wall_s": walls["bsp"],
            "bsp_batched_wall_s": walls["bsp-batched"],
            "bsp_mp_wall_s": walls["bsp-mp"],
            "batch_wall_speedup": walls["bsp"] / walls["bsp-batched"],
            "mp_wall_speedup": walls["bsp"] / walls["bsp-mp"],
        }
    report.tables.append(render_table(headers, rows, title=f"|S| scaled to {k}"))
    report.notes.append(
        "all engines converge to the identical tree; async wins on "
        "simulated time by overlapping communication (no superstep "
        "barriers); bsp-batched and bsp-mp reproduce bsp's messages "
        "exactly while replacing the per-message Python loop with array "
        "supersteps — in-process and sharded across a forked worker "
        "pool respectively (wall-clock column)"
    )
    report.data = raw
    return report
