"""Table III — dataset characteristics (stand-in edition).

Paper: the eight evaluation graphs with ``|V|``, ``2|E|``, max/avg
degree, weight range and binary size.  The reproduction prints the same
columns for the scaled stand-ins side-by-side with the originals'
figures, so every other experiment's context is documented.
"""

from __future__ import annotations

from repro.graph.io import npz_nbytes
from repro.graph.stats import graph_stats
from repro.harness.datasets import DATASETS, load_dataset
from repro.harness.experiments._shared import ExperimentReport
from repro.harness.reporting import fmt_bytes, fmt_si, render_table

EXP_ID = "table3"
TITLE = "Dataset characteristics: paper originals vs scaled stand-ins"


def run(quick: bool = False) -> ExperimentReport:
    """Run this experiment; ``quick=True`` shrinks the sweep for
    test-suite use (see the module docstring for the paper claim
    being reproduced)."""
    names = list(DATASETS) if not quick else ["LVJ", "CTS"]
    report = ExperimentReport(EXP_ID, TITLE)
    headers = [
        "dataset",
        "paper |V|",
        "paper 2|E|",
        "|V|",
        "2|E|",
        "max deg",
        "avg deg",
        "weights",
        "size",
    ]
    rows = []
    raw = {}
    for name in names:
        spec = DATASETS[name]
        g = load_dataset(name)
        st = graph_stats(g)
        rows.append(
            [
                name,
                spec.paper_vertices,
                spec.paper_arcs,
                fmt_si(st.n_vertices),
                fmt_si(st.n_arcs),
                st.max_degree,
                f"{st.avg_degree:.1f}",
                spec.weight_range.label(),
                fmt_bytes(npz_nbytes(g)),
            ]
        )
        raw[name] = {
            "n_vertices": st.n_vertices,
            "n_arcs": st.n_arcs,
            "max_degree": st.max_degree,
            "avg_degree": st.avg_degree,
            "nbytes": npz_nbytes(g),
        }
    report.tables.append(render_table(headers, rows))
    report.notes.append(
        "stand-ins preserve relative size ordering, degree skew and the "
        "paper's weight ranges (see DESIGN.md substitution table)"
    )
    report.data = raw
    return report
