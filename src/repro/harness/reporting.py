"""ASCII report rendering in the paper's table/figure layouts."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["fmt_time", "fmt_si", "fmt_bytes", "render_table", "render_stacked"]


def fmt_time(seconds: float) -> str:
    """Format a duration the way the paper's tables do (ms/s/m/h)."""
    if seconds < 0:
        return "-" + fmt_time(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.1f}s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.1f}m"
    return f"{seconds / 3600.0:.1f}h"


def fmt_si(x: float) -> str:
    """1234567 -> '1.2M' (message counts, edge counts)."""
    for suffix, scale in (("B", 1e9), ("M", 1e6), ("K", 1e3)):
        if abs(x) >= scale:
            return f"{x / scale:.1f}{suffix}"
    return f"{x:.0f}" if float(x).is_integer() else f"{x:.2f}"


def fmt_bytes(n: int) -> str:
    """Bytes with binary units, Table-III style."""
    for suffix, scale in (("TB", 1 << 40), ("GB", 1 << 30), ("MB", 1 << 20), ("KB", 1 << 10)):
        if n >= scale:
            return f"{n / scale:.1f}{suffix}"
    return f"{n}B"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Monospace table with aligned columns."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_stacked(
    label: str,
    phase_times: dict[str, float],
    *,
    width: int = 46,
) -> str:
    """One 'stacked bar' as text: phase breakdown with proportional bars
    (the textual analogue of the paper's Figs. 3-5)."""
    total = sum(phase_times.values())
    lines = [f"{label}  total={fmt_time(total)}"]
    for name, t in phase_times.items():
        frac = (t / total) if total > 0 else 0.0
        bar = "#" * max(0, round(frac * width))
        lines.append(f"  {name:<24} {fmt_time(t):>8} |{bar}")
    return "\n".join(lines)
