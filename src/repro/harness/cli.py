"""Command-line interface: ``repro-steiner``.

Subcommands
-----------
``list``
    Show every available experiment id with its title.
``run <id> [...ids] [--quick]``
    Run experiments and print their reports.
``all [--quick]``
    Run the full evaluation sweep (every table and figure), printing
    each report — the command behind EXPERIMENTS.md.
``solve --dataset LVJ --seeds 30 [--ranks 16] [--queue priority]
[--engine async-heap|bsp|bsp-batched|bsp-mp|bsp-native] [--workers N]
[--backend simulate|dijkstra|delta-numpy|delta-numba|scipy|...]
[--shm-transport auto|on|off] [--coalesce-threshold N]
[--coalesce-max K]``
    One-off solve on a stand-in dataset, printing the tree summary and
    the phase breakdown.  ``--engine`` picks the runtime engine the
    message-driven phases execute on (``--workers`` sizes the
    ``bsp-mp`` process pool; ``--shm-transport`` / ``--coalesce-*``
    tune its data plane, results identical at any setting);
    ``--backend simulate`` (default) runs the
    message-driven Voronoi phase; any registered shortest-path backend
    name computes the identical tree via that sequential kernel.
``serve [--tcp HOST:PORT] [--preload LVJ,MCO] [--backend delta-numpy]
[--ranks 16] [--engine ...] [--batch-window-ms 5] [--max-batch 8]
[--max-queue-depth N] [--cache-size 128] [--disk-cache DIR]
[--no-cache]``
    Run the persistent solver service (see ``docs/serve.md``): graphs
    load once, concurrent requests sharing a graph are coalesced into
    fused multi-source sweeps, and repeated requests hit the result
    cache.  Default transport is line-delimited JSON on stdin/stdout;
    ``--tcp`` listens on a socket instead (``:0`` picks a free port,
    printed on startup).
``backends [--bench] [--dataset LVJ] [--seeds 30]``
    List the registered multi-source shortest-path backends — each with
    its availability (``available`` / ``fallback -> twin`` /
    ``unavailable``, plus the import-failure reason for the optional
    tiers); with ``--bench``, time each one on the chosen instance and
    verify they agree bit-for-bit.
``check [PATHS...] [--format text|json] [--show-suppressed]
[--files-only] [--list-rules]``
    Run the repo-invariant static-analysis pass (``docs/analysis.md``):
    determinism lint, fingerprint-coverage audit, ``prange`` race
    detector, mp-protocol and registry-contract conformance.  Exits 0
    iff every finding is fixed or carries a justified
    ``# repro: ignore[REPxxx]`` suppression — the pre-PR gate CI runs
    as the blocking ``check`` job.
``engines [--bench] [--dataset LVJ] [--seeds 30] [--ranks 16]
[--workers N]``
    List the registered runtime engines with their availability (same
    format as ``backends``); with ``--bench``, solve the
    chosen instance on each engine, verify the trees are identical and
    report per-engine wall/simulated time and message counts.  The
    bench is deterministic apart from the wall-clock column: seeded
    seed selection, registry order fixed (default engine first, rest
    alphabetical) and a fixed ``bsp-mp`` pool size, so the counters in
    two CI logs are comparable line-for-line.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.registry import EXPERIMENTS, run_experiment


def _cmd_list(_args) -> int:
    import importlib

    for exp_id, module_path in EXPERIMENTS.items():
        mod = importlib.import_module(module_path)
        print(f"{exp_id:24s} {getattr(mod, 'TITLE', '')}")
    return 0


def _cmd_run(args) -> int:
    import inspect

    from repro.harness.registry import get_runner
    from repro.runtime.engines import get_engine

    engine = getattr(args, "engine", "async-heap")
    try:
        get_engine(engine)  # fail fast, before any experiment runs
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for exp_id in args.experiment:
        if (
            engine != "async-heap"
            and "engine" not in inspect.signature(get_runner(exp_id)).parameters
        ):
            print(
                f"note: {exp_id} does not thread --engine; "
                f"it runs on its default runtime",
                file=sys.stderr,
            )
        t0 = time.perf_counter()
        report = run_experiment(
            exp_id,
            quick=args.quick,
            engine=engine,
            workers=getattr(args, "workers", None),
        )
        if getattr(args, "json", False):
            print(report.to_json())
        else:
            print(report.render())
            print(
                f"\n[{exp_id} completed in {time.perf_counter() - t0:.1f}s wall]\n"
            )
    return 0


def _cmd_all(args) -> int:
    args.experiment = list(EXPERIMENTS)
    return _cmd_run(args)


def _cmd_solve(args) -> int:
    from repro.core.config import SolverConfig
    from repro.core.solver import DistributedSteinerSolver
    from repro.harness.datasets import load_dataset
    from repro.harness.reporting import fmt_si, fmt_time
    from repro.seeds.selection import select_seeds

    graph = load_dataset(args.dataset)
    seeds = select_seeds(graph, args.seeds, args.strategy, seed=args.seed)
    backend = None if args.backend == "simulate" else args.backend
    shm = {"auto": None, "on": True, "off": False}[args.shm_transport]
    try:
        config = SolverConfig(
            n_ranks=args.ranks,
            discipline=args.queue,
            engine=args.engine,
            workers=args.workers,
            voronoi_backend=backend,
            shm_transport=shm,
            coalesce_threshold=args.coalesce_threshold,
            coalesce_max=args.coalesce_max,
        )
    except ValueError as exc:  # e.g. a typo'd --backend/--engine name
        print(f"error: {exc}", file=sys.stderr)
        return 2
    res = DistributedSteinerSolver(graph, config).solve(seeds)
    print(res.summary())
    for p in res.phases:
        print(
            f"  {p.name:<24} {fmt_time(p.sim_time):>8}  "
            f"msgs={fmt_si(p.n_messages)}"
        )
    return 0


def _cmd_serve(args) -> int:
    from repro.core.config import SolverConfig
    from repro.serve import SolveCache, SolverService, make_tcp_server, serve_stdio

    backend = None if args.backend == "simulate" else args.backend
    try:
        config = SolverConfig(
            n_ranks=args.ranks,
            engine=args.engine,
            workers=args.workers,
            voronoi_backend=backend,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache: SolveCache | bool = (
        False
        if args.no_cache
        else SolveCache(max_solutions=args.cache_size, disk_dir=args.disk_cache)
    )
    service = SolverService(
        config=config,
        cache=cache,
        batch_window_s=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch,
        max_queue_depth=args.max_queue_depth,
    )
    for name in filter(None, (args.preload or "").split(",")):
        try:
            service.open_graph(name.strip())
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            service.close()
            return 2
        print(f"preloaded graph {name.strip()!r}", file=sys.stderr)

    try:
        if args.tcp:
            host, _, port_s = args.tcp.rpartition(":")
            host = host or "127.0.0.1"
            try:
                port = int(port_s)
            except ValueError:
                print(f"error: --tcp wants HOST:PORT, got {args.tcp!r}",
                      file=sys.stderr)
                return 2
            with make_tcp_server(service, host, port) as server:
                bound_host, bound_port = server.server_address[:2]
                # announced on stdout so wrappers can scrape the port
                print(f"listening on {bound_host}:{bound_port}", flush=True)
                server.serve_forever(poll_interval=0.1)
        else:
            serve_stdio(service)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        service.close()
    return 0


def _print_registry_listing(availability: dict[str, dict]) -> None:
    """Shared ``backends``/``engines`` listing: name, status, one-liner.

    Optional tiers that degraded (``fallback``) or failed to register
    (``unavailable``) get a second, indented line naming the twin they
    delegate to and the import-failure reason — so "why am I not getting
    the JIT tier?" is answerable from the listing alone.
    """
    for name, record in availability.items():
        status = record["status"]
        print(f"{name:16s} {status:12s} {record['help']}")
        if status == "fallback":
            print(
                f"{'':16s} {'':12s} -> runs as {record['fallback']!r} "
                f"({record['reason']})"
            )
        elif status == "unavailable":
            print(f"{'':16s} {'':12s} -> not registered ({record['reason']})")


def _cmd_backends(args) -> int:
    from repro.shortest_paths.backends import (
        backend_availability,
        backend_help,
        compute_multisource,
    )

    if not args.bench:
        _print_registry_listing(backend_availability())
        return 0
    help_by_name = backend_help()

    from repro.harness.datasets import load_dataset
    from repro.harness.reporting import fmt_time
    from repro.seeds.selection import select_seeds

    graph = load_dataset(args.dataset)
    seeds = select_seeds(graph, args.seeds, "bfs-level", seed=args.seed)
    # one run per backend: the same results are both timed and checked
    # for bit-equality, so every speedup is consistent (reference = 1.0x)
    results = {
        name: compute_multisource(graph, seeds, backend=name)
        for name in help_by_name
    }
    ref = next(iter(results.values()))
    for res in results.values():
        if not ref.agrees_with(res):
            print(f"error: backend {res.backend!r} disagrees with {ref.backend!r}")
            return 1
    print(
        f"{args.dataset}: |V|={graph.n_vertices} 2|E|={graph.n_arcs} "
        f"|S|={len(seeds)} — all backends agree bit-for-bit"
    )
    for name, res in results.items():
        speedup = ref.elapsed_s / res.elapsed_s if res.elapsed_s else float("inf")
        print(
            f"{name:16s} {fmt_time(res.elapsed_s):>8}  "
            f"{speedup:5.1f}x vs {ref.backend}"
        )
    return 0


def _cmd_engines(args) -> int:
    from repro.runtime.engines import engine_availability

    if not args.bench:
        _print_registry_listing(engine_availability())
        return 0

    from repro.harness.datasets import load_dataset
    from repro.harness.experiments._shared import solve_on_engines
    from repro.harness.reporting import fmt_si, fmt_time
    from repro.seeds.selection import select_seeds

    graph = load_dataset(args.dataset)
    seeds = select_seeds(graph, args.seeds, "bfs-level", seed=args.seed)
    # one solve per engine: the shared helper both times the runs and
    # checks tree identity, so every reported speedup is verified-correct
    try:
        runs = solve_on_engines(
            graph, seeds, n_ranks=args.ranks, workers=args.workers
        )
    except AssertionError as exc:
        print(f"error: {exc}")
        return 1
    results = {name: res for name, (res, _) in runs.items()}
    walls = {name: wall for name, (_, wall) in runs.items()}
    ref_name = next(iter(results))
    from repro.runtime.engine_mp import DEFAULT_WORKERS, fork_available

    # report the *effective* pool size (ranks cap, no-fork fallback),
    # not the requested one — the header is CI-log provenance
    pool = min(
        args.workers if args.workers is not None else DEFAULT_WORKERS,
        args.ranks,
    )
    if pool > 1 and not fork_available():
        pool = 1
    print(
        f"{args.dataset}: |V|={graph.n_vertices} 2|E|={graph.n_arcs} "
        f"|S|={len(seeds)} ranks={args.ranks} bsp-mp-workers={pool} — "
        f"all engines produce the identical tree"
    )
    for name, res in results.items():
        speedup = walls[ref_name] / walls[name] if walls[name] else float("inf")
        print(
            f"{name:16s} wall {fmt_time(walls[name]):>8}  "
            f"sim {fmt_time(res.sim_time()):>8}  "
            f"msgs={fmt_si(res.message_count()):>8}  "
            f"{speedup:5.1f}x vs {ref_name}"
        )
    return 0


def _cmd_check(args) -> int:
    from repro.analysis import rule_catalogue, run_check

    if args.list_rules:
        for rule_id, text in rule_catalogue().items():
            print(f"{rule_id}  {text}")
        return 0
    report = run_check(args.paths, repo_rules=not args.files_only)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render(show_suppressed=args.show_suppressed))
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-steiner`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-steiner",
        description="Reproduction harness for distributed 2-approximation "
        "Steiner minimal trees (Reza et al., IPDPS 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one or more experiments")
    p_run.add_argument("experiment", nargs="+", choices=sorted(EXPERIMENTS))
    p_run.add_argument("--quick", action="store_true", help="shrunk sweeps")
    p_run.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    p_run.add_argument(
        "--engine",
        default="async-heap",
        help="runtime engine, forwarded to experiments that accept it "
        "(see `repro-steiner engines`)",
    )
    p_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="bsp-mp process-pool size, forwarded like --engine",
    )
    p_run.set_defaults(func=_cmd_run)

    p_all = sub.add_parser("all", help="run the full evaluation sweep")
    p_all.add_argument("--quick", action="store_true")
    p_all.add_argument("--engine", default="async-heap", help="runtime engine")
    p_all.add_argument(
        "--workers", type=int, default=None, help="bsp-mp process-pool size"
    )
    p_all.set_defaults(func=_cmd_all)

    p_solve = sub.add_parser("solve", help="solve one instance")
    p_solve.add_argument("--dataset", default="LVJ")
    p_solve.add_argument("--seeds", type=int, default=30)
    p_solve.add_argument("--ranks", type=int, default=16)
    p_solve.add_argument(
        "--queue", choices=["fifo", "priority"], default="priority"
    )
    p_solve.add_argument(
        "--strategy",
        choices=["bfs-level", "uniform-random", "eccentric", "proximate"],
        default="bfs-level",
    )
    p_solve.add_argument("--seed", type=int, default=1, help="RNG seed")
    p_solve.add_argument(
        "--engine",
        default="async-heap",
        help="runtime engine for the message-driven phases "
        "(see `repro-steiner engines`)",
    )
    p_solve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for --engine bsp-mp (default: the "
        "engine's reproducible default; 1 forces in-process execution)",
    )
    p_solve.add_argument(
        "--backend",
        default="simulate",
        help="Voronoi phase: 'simulate' (message-driven engine, default) "
        "or a registered shortest-path backend name "
        "(see `repro-steiner backends`)",
    )
    p_solve.add_argument(
        "--shm-transport",
        choices=["auto", "on", "off"],
        default="auto",
        help="bsp-mp data plane: 'auto' uses shared-memory rings when "
        "the platform supports them, 'on' requires them, 'off' forces "
        "the pickled-pipe fallback (results identical either way)",
    )
    p_solve.add_argument(
        "--coalesce-threshold",
        type=int,
        default=None,
        metavar="N",
        help="bsp-mp: group supersteps behind one barrier while the "
        "inbox stays below N messages (0 disables; default: the "
        "engine's built-in threshold)",
    )
    p_solve.add_argument(
        "--coalesce-max",
        type=int,
        default=None,
        metavar="K",
        help="bsp-mp: at most K logical supersteps per coalesced group "
        "(1 disables; default: the engine's built-in cap)",
    )
    p_solve.set_defaults(func=_cmd_solve)

    p_serve = sub.add_parser(
        "serve", help="run the persistent solver service"
    )
    p_serve.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="listen on a TCP socket instead of stdin/stdout "
        "(':0' binds a free port, printed on startup)",
    )
    p_serve.add_argument(
        "--preload",
        default="",
        metavar="NAMES",
        help="comma-separated dataset names to load before serving",
    )
    p_serve.add_argument(
        "--backend",
        default="delta-numpy",
        help="default Voronoi backend for requests that do not override "
        "it; 'simulate' runs the message-driven engine (no sweep fusion)",
    )
    p_serve.add_argument("--ranks", type=int, default=16)
    p_serve.add_argument("--engine", default="async-heap")
    p_serve.add_argument("--workers", type=int, default=None)
    p_serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        help="how long to wait for coalescable requests after the first "
        "pending one (0 disables batching delays)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=8,
        help="max requests fused into one multi-source sweep",
    )
    p_serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="bound the admission queue: beyond N queued requests new "
        "ones are shed with a structured error carrying retry_after_ms "
        "(default: unbounded)",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=128,
        help="LRU capacity (solutions) of the result cache",
    )
    p_serve.add_argument(
        "--disk-cache", default=None, metavar="DIR",
        help="persist solutions under DIR so they survive restarts",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true", help="disable result caching"
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_back = sub.add_parser(
        "backends", help="list/bench the shortest-path backends"
    )
    p_back.add_argument(
        "--bench", action="store_true", help="time each backend on one instance"
    )
    p_back.add_argument("--dataset", default="LVJ")
    p_back.add_argument("--seeds", type=int, default=30)
    p_back.add_argument("--seed", type=int, default=1, help="RNG seed")
    p_back.set_defaults(func=_cmd_backends)

    p_check = sub.add_parser(
        "check", help="run the repo-invariant static-analysis pass"
    )
    p_check.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks", "tests"],
        metavar="PATH",
        help="files/directories to check (default: src benchmarks tests)",
    )
    p_check.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (json is the CI artifact form)",
    )
    p_check.add_argument(
        "--show-suppressed", action="store_true",
        help="also print findings silenced by # repro: ignore[...]",
    )
    p_check.add_argument(
        "--files-only", action="store_true",
        help="skip the repo rules (registry/fingerprint audits that "
        "import the live package); file rules only",
    )
    p_check.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    p_check.set_defaults(func=_cmd_check)

    p_eng = sub.add_parser(
        "engines", help="list/bench the runtime engines"
    )
    p_eng.add_argument(
        "--bench", action="store_true", help="time each engine on one instance"
    )
    p_eng.add_argument("--dataset", default="LVJ")
    p_eng.add_argument("--seeds", type=int, default=30)
    p_eng.add_argument("--ranks", type=int, default=16)
    p_eng.add_argument("--seed", type=int, default=1, help="RNG seed")
    p_eng.add_argument(
        "--workers",
        type=int,
        default=None,
        help="bsp-mp process-pool size used in the bench",
    )
    p_eng.set_defaults(func=_cmd_engines)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro-steiner list | head`
        import os

        # flush-safe exit: stdout is already gone
        try:
            sys.stdout.close()
        except Exception:
            pass
        os._exit(0)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
