"""Disjoint-set forest with union by rank and path halving."""

from __future__ import annotations

import numpy as np

__all__ = ["UnionFind"]


class UnionFind:
    """Array-backed disjoint-set structure over ``0 .. n-1``.

    Used by Kruskal/Borůvka and by the tree-validity checker (a set of
    edges is acyclic iff every union succeeds).
    """

    __slots__ = ("parent", "rank", "n_components")

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.rank = np.zeros(n, dtype=np.int8)
        self.n_components = n

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path halving)."""
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; False if already merged."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.n_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """True iff ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)
