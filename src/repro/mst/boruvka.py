"""Borůvka's MST (component-parallel rounds).

Included because the paper's discussion of *why not* a distributed MST
(§III, citing Bader & Cong and the Galois Lonestar study) hinges on the
behaviour of exactly this algorithm: available parallelism collapses as
components merge.  The MST ablation bench measures that collapse —
components per round — to reproduce the argument quantitatively.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.mst.union_find import UnionFind

__all__ = ["boruvka_mst", "boruvka_rounds"]


def boruvka_mst(
    n_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weight: np.ndarray,
) -> np.ndarray:
    """Indices of a minimum spanning forest (Borůvka)."""
    chosen, _ = boruvka_rounds(n_vertices, src, dst, weight)
    return chosen


def boruvka_rounds(
    n_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weight: np.ndarray,
) -> tuple[np.ndarray, list[int]]:
    """Borůvka MST plus per-round component counts.

    Returns
    -------
    (edge_indices, components_per_round):
        ``components_per_round[r]`` is the number of live components at
        the *start* of round ``r`` — the "available parallelism" curve the
        paper cites as the reason to avoid distributed MST.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    weight = np.asarray(weight, dtype=np.int64)
    m = src.size
    if dst.size != m or weight.size != m:
        raise GraphError("src/dst/weight must have equal length")
    if m and (min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= n_vertices):
        raise GraphError("edge endpoint out of range")

    uf = UnionFind(n_vertices)
    chosen: set[int] = set()
    rounds: list[int] = []
    while True:
        # cheapest outgoing edge per component, deterministic tie-break on
        # (weight, edge index)
        best: dict[int, int] = {}
        live_edges = 0
        for e in range(m):
            ra, rb = uf.find(int(src[e])), uf.find(int(dst[e]))
            if ra == rb:
                continue
            live_edges += 1
            we = int(weight[e])
            for comp in (ra, rb):
                cur = best.get(comp)
                if cur is None or (we, e) < (int(weight[cur]), cur):
                    best[comp] = e
        if not best:
            break
        rounds.append(uf.n_components)
        merged_any = False
        for e in best.values():
            if uf.union(int(src[e]), int(dst[e])):
                chosen.add(e)
                merged_any = True
        if not merged_any:  # pragma: no cover - defensive
            break
        if live_edges == 0:
            break
    return np.asarray(sorted(chosen), dtype=np.int64), rounds
