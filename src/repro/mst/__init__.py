"""Minimum-spanning-tree kernels.

The paper computes the MST ``G'2`` of the small, replicated distance graph
``G'1`` with a *sequential* routine (Boost's Prim), arguing that
parallelising an MST over at most ``C(|S|, 2)`` edges buys nothing.  We
provide Prim (the paper's choice), Kruskal and Borůvka over plain edge
lists; all three are exercised against each other in tests and in the
MST-choice ablation bench.
"""

from repro.mst.union_find import UnionFind
from repro.mst.prim import prim_mst
from repro.mst.kruskal import kruskal_mst
from repro.mst.boruvka import boruvka_mst

__all__ = ["UnionFind", "prim_mst", "kruskal_mst", "boruvka_mst"]
