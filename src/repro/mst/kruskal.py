"""Kruskal's MST (sort + union-find)."""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.mst.union_find import UnionFind

__all__ = ["kruskal_mst"]


def kruskal_mst(
    n_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weight: np.ndarray,
) -> np.ndarray:
    """Indices of a minimum spanning forest, Kruskal order.

    Same contract as :func:`repro.mst.prim.prim_mst`; identical total
    weight is guaranteed (and asserted in tests) though the chosen edge
    set may differ when weights tie.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    weight = np.asarray(weight, dtype=np.int64)
    m = src.size
    if dst.size != m or weight.size != m:
        raise GraphError("src/dst/weight must have equal length")
    if m and (min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= n_vertices):
        raise GraphError("edge endpoint out of range")

    # deterministic order: weight, then endpoints
    order = np.lexsort((dst, src, weight))
    uf = UnionFind(n_vertices)
    chosen: list[int] = []
    for e in order:
        if uf.union(int(src[e]), int(dst[e])):
            chosen.append(int(e))
            if uf.n_components == 1:
                break
    return np.asarray(sorted(chosen), dtype=np.int64)
