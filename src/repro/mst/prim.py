"""Prim's MST with a binary heap — the paper's choice for ``G'2``.

Operates on a plain edge list (the distance graph ``G'1`` is materialised
as arrays, not a CSRGraph, because it is tiny and rebuilt per run).  Ties
are broken on ``(weight, endpoint ids)`` so the result is a deterministic
function of the input, which the cross-implementation agreement tests rely
on.  Handles disconnected inputs by returning a minimum spanning *forest*.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import GraphError

__all__ = ["prim_mst"]


def prim_mst(
    n_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weight: np.ndarray,
) -> np.ndarray:
    """Indices (into the edge list) of a minimum spanning forest.

    Parameters
    ----------
    n_vertices:
        Vertex count; ids in ``src``/``dst`` must be ``< n_vertices``.
    src, dst, weight:
        Parallel arrays describing undirected edges.

    Returns
    -------
    ``int64[k]`` edge indices, sorted ascending, forming an MSF.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    weight = np.asarray(weight, dtype=np.int64)
    m = src.size
    if dst.size != m or weight.size != m:
        raise GraphError("src/dst/weight must have equal length")
    if m and (min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= n_vertices):
        raise GraphError("edge endpoint out of range")

    # adjacency: vertex -> list of (other endpoint, edge index)
    adj: list[list[tuple[int, int]]] = [[] for _ in range(n_vertices)]
    for e in range(m):
        u, v = int(src[e]), int(dst[e])
        adj[u].append((v, e))
        adj[v].append((u, e))

    in_tree = np.zeros(n_vertices, dtype=bool)
    chosen: list[int] = []
    for start in range(n_vertices):
        if in_tree[start]:
            continue
        in_tree[start] = True
        heap: list[tuple[int, int, int, int]] = []
        for v, e in adj[start]:
            heapq.heappush(heap, (int(weight[e]), int(v), int(start), e))
        while heap:
            w, v, _u, e = heapq.heappop(heap)
            if in_tree[v]:
                continue
            in_tree[v] = True
            chosen.append(e)
            for nxt, e2 in adj[v]:
                if not in_tree[nxt]:
                    heapq.heappush(heap, (int(weight[e2]), int(nxt), int(v), e2))
    return np.asarray(sorted(chosen), dtype=np.int64)
