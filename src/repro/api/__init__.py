"""``repro.api`` — the stable public facade.

Everything a downstream consumer needs lives here, documented and
versioned; the server, the CLI, the examples and the tests all call
these entry points instead of reaching into ``repro.core`` internals:

* :func:`solve` — one-shot: graph (object or dataset name) + seeds +
  configuration keywords -> :class:`SteinerTreeResult`;
* :class:`Session` — open a graph once, issue many ``.solve()`` calls
  against warm partition/solver state (with optional result caching),
  close explicitly or via ``with``;
* :class:`SolverConfig` / :class:`SteinerTreeResult` — the
  configuration and result contracts, re-exported from
  :mod:`repro.core`;
* :mod:`repro.api.schema` — the versioned JSON request/response shapes
  shared by :meth:`SteinerTreeResult.to_json` and the
  ``repro-steiner serve`` protocol;
* :func:`native_status` — is the optional numba JIT tier active?
  (``voronoi_backend="delta-numba"`` / ``engine="bsp-native"`` are
  always legal names; without numba they run as their NumPy twins —
  this reports which you are getting, and why.)

Quickstart
----------
>>> from repro import grid_graph
>>> from repro.api import Session, solve
>>> g = grid_graph(8, 8)
>>> solve(g, [0, 7, 56, 63], voronoi_backend="delta-numpy").n_edges >= 3
True
>>> with Session(g, voronoi_backend="delta-numpy") as session:
...     a = session.solve([0, 7, 56, 63])
...     b = session.solve([0, 63])
>>> a.total_distance >= b.total_distance
True
"""

from __future__ import annotations

import warnings
from dataclasses import replace as _dc_replace
from typing import TYPE_CHECKING, Any, Sequence

from repro.api import schema
from repro.api.schema import SCHEMA_VERSION
from repro.core.config import CONFIG_FIELD_ALIASES, SolverConfig
from repro.core.result import SteinerTreeResult
from repro.core.sequential import sequential_steiner_tree
from repro.core.solver import DistributedSteinerSolver
from repro.native import native_status

if TYPE_CHECKING:
    from repro.graph.csr import CSRGraph
    from repro.serve.cache import SolveCache

__all__ = [
    "SCHEMA_VERSION",
    "Session",
    "SolverConfig",
    "SteinerTreeResult",
    "native_status",
    "schema",
    "sequential_steiner_tree",
    "solve",
]


def _as_graph(graph: "CSRGraph | str") -> "CSRGraph":
    """Accept a :class:`~repro.graph.csr.CSRGraph` or a Table-III
    dataset name (``"LVJ"``, ``"MCO"``, ...)."""
    if isinstance(graph, str):
        from repro.harness.datasets import load_dataset

        return load_dataset(graph)
    return graph


def _apply_overrides(config: SolverConfig, overrides: dict[str, Any]) -> SolverConfig:
    """``dataclasses.replace`` with the deprecated alias spellings of
    :data:`CONFIG_FIELD_ALIASES` accepted (warning) — the override path
    of :meth:`Session.solve`."""
    resolved: dict[str, Any] = {}
    for key, value in overrides.items():
        if key in CONFIG_FIELD_ALIASES:
            canonical = CONFIG_FIELD_ALIASES[key]
            warnings.warn(
                f"SolverConfig keyword {key!r} is deprecated; use {canonical!r}",
                DeprecationWarning,
                stacklevel=3,
            )
            key = canonical
        if key in resolved:
            raise TypeError(
                f"SolverConfig field {key!r} given twice "
                f"(canonical name and deprecated alias)"
            )
        resolved[key] = value
    return _dc_replace(config, **resolved) if resolved else config


def solve(
    graph: "CSRGraph | str",
    seeds: Sequence[int],
    *,
    config: SolverConfig | None = None,
    cache: "SolveCache | None" = None,
    **config_kwargs: Any,
) -> SteinerTreeResult:
    """Compute a 2-approximate Steiner minimal tree — the one documented
    entry point.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.csr.CSRGraph`, or a dataset name from
        :mod:`repro.harness.datasets` (loaded and memoised).
    seeds:
        The terminal set ``S`` (distinct vertex ids).
    config / config_kwargs:
        Either a ready :class:`SolverConfig` or its fields as keywords
        (``engine=...``, ``voronoi_backend=...``, ``n_ranks=...``;
        deprecated spellings are accepted with a warning).  The default
        configuration simulates the paper-faithful asynchronous
        runtime; pass ``voronoi_backend="delta-numpy"`` for the fast
        vectorised sweep — the tree is identical either way.
    cache:
        Optional :class:`repro.serve.cache.SolveCache`-style cache; see
        :class:`~repro.core.solver.DistributedSteinerSolver`.

    For many solves on one graph, prefer :class:`Session` — it keeps
    the partition (and optionally a result cache) warm across calls.
    """
    if config is not None and config_kwargs:
        raise TypeError(
            "pass either a SolverConfig or its fields as keyword "
            f"arguments, not both: {sorted(config_kwargs)}"
        )
    return DistributedSteinerSolver(
        _as_graph(graph), config, cache=cache, **config_kwargs
    ).solve(seeds)


class Session:
    """A warm solver bound to one graph, for many-query workloads.

    Opening a session loads/partitions the graph once; every
    :meth:`solve` then reuses that state (the paper's interactive
    analyst scenario, and the building block of ``repro-steiner
    serve``).  Configuration overrides per call are allowed — a solver
    is kept warm per distinct configuration fingerprint.

    Parameters
    ----------
    graph:
        :class:`~repro.graph.csr.CSRGraph` or a dataset name.
    config / config_kwargs:
        Session-default configuration, as for :func:`solve`.
    cache:
        Optional result cache shared by every solver in the session
        (:class:`repro.serve.cache.SolveCache` for the shipped LRU +
        disk implementation).  Repeated seed sets then hit the cache
        (``provenance["cache_hit"]``) instead of re-solving.

    Use as a context manager, or call :meth:`close` explicitly; solving
    on a closed session raises :class:`RuntimeError`.
    """

    def __init__(
        self,
        graph: "CSRGraph | str",
        *,
        config: SolverConfig | None = None,
        cache: "SolveCache | None" = None,
        **config_kwargs: Any,
    ) -> None:
        if config is not None and config_kwargs:
            raise TypeError(
                "pass either a SolverConfig or its fields as keyword "
                f"arguments, not both: {sorted(config_kwargs)}"
            )
        self.graph = _as_graph(graph)
        self.config = (
            config
            if config is not None
            else SolverConfig.from_kwargs(**config_kwargs)
        )
        self.cache = cache
        self._solvers: dict[tuple[Any, ...], DistributedSteinerSolver] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    def solver_for(self, config: SolverConfig) -> DistributedSteinerSolver:
        """The warm solver for ``config`` (created on first use).

        Keyed by the configuration fingerprint *plus* the
        fault-tolerance knobs: those are excluded from the fingerprint
        (they never change results, so cache entries stay shared) but
        they do change how a solver executes — two configs differing
        only in, say, ``fault_plan`` must not share a solver instance.
        """
        if self._closed:
            raise RuntimeError("Session is closed")
        key = (
            config.fingerprint(),
            config.checkpoint_interval,
            config.max_restarts,
            config.worker_timeout_s,
            id(config.fault_plan) if config.fault_plan is not None else None,
        )
        solver = self._solvers.get(key)
        if solver is None:
            solver = DistributedSteinerSolver(
                self.graph, config, cache=self.cache
            )
            self._solvers[key] = solver
        return solver

    def solve(self, seeds: Sequence[int], **overrides: Any) -> SteinerTreeResult:
        """Solve one terminal set on the warm graph state.

        ``overrides`` are :class:`SolverConfig` fields replacing the
        session defaults for this call only (deprecated alias spellings
        accepted with a warning).
        """
        config = _apply_overrides(self.config, overrides)
        return self.solver_for(config).solve(seeds)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release warm solver state; idempotent."""
        self._solvers.clear()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Session":
        if self._closed:
            raise RuntimeError("Session is closed")
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (
            f"Session({self.graph!r}, engine={self.config.engine!r}, "
            f"{state}, warm_solvers={len(self._solvers)})"
        )
