"""Versioned JSON schema for solve requests, responses and results.

This module is the *single* source of truth for every wire/dump shape
the library emits: the ``repro-steiner serve`` line-delimited protocol
(:mod:`repro.serve.protocol`), :meth:`SteinerTreeResult.to_json
<repro.core.result.SteinerTreeResult.to_json>`, and the experiment
reports' machine-readable form all build their payloads here, so a
field rename happens in exactly one place and is always accompanied by
a legacy alias.

Request payload (``schema_version`` 1)
--------------------------------------

.. code-block:: json

    {"schema_version": 1, "id": "req-7", "op": "solve",
     "graph": "LVJ", "seeds": [3, 14, 159],
     "config": {"voronoi_backend": "delta-numpy", "n_ranks": 16},
     "deadline_ms": 5000}

``op`` defaults to ``"solve"``; the serve loop also accepts ``"ping"``,
``"stats"``, ``"graphs"``, ``"health"``, ``"drain"`` and
``"shutdown"``.  ``config`` holds
:class:`~repro.core.config.SolverConfig` field names (legacy spellings
such as ``ranks``/``queue``/``backend`` are accepted through
:meth:`SolverConfig.from_kwargs` with a :class:`DeprecationWarning`).
``deadline_ms`` (optional, solve only) bounds how long the request may
wait + run: past it the service answers with a structured ``timeout``
error instead of a result — it never hangs.

Response payload
----------------

.. code-block:: json

    {"schema_version": 1, "id": "req-7", "ok": true, "result": {...}}
    {"schema_version": 1, "id": "req-7", "ok": false,
     "error": {"type": "DisconnectedSeedsError", "message": "..."}}

Structured error envelopes may carry machine-actionable fields next to
``type``/``message``: ``code`` (a stable short string — ``"timeout"``
for expired deadlines, ``"shed"`` for load-shed admissions,
``"draining"`` while the service drains, ``"oversized"`` for frames
beyond the protocol's line bound) and ``retry_after_ms`` (attached to
``shed`` responses: a backoff hint derived from the current queue
depth).  Both are copied from same-named attributes on the raised
exception, so any layer can emit them.

The ``result`` object is exactly :func:`result_payload`: ``seeds``,
``edges`` (``[u, v, w]`` rows, ``u < v``), ``total_distance``,
``n_edges``, ``wall_time_s``, ``sim_time_s``, ``phases`` and
``provenance`` (cache/batching counters — see ``docs/serve.md``).

Legacy field names
------------------

Earlier ad-hoc dumps used ``request_id``/``terminals``/``dataset`` in
requests and ``total``/``tree_edges`` in result dicts.
:func:`parse_request` and :func:`upgrade_result_payload` accept them,
emit a :class:`DeprecationWarning`, and normalise to the canonical
names above.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:
    from repro.core.result import SteinerTreeResult

__all__ = [
    "SCHEMA_VERSION",
    "SchemaError",
    "SolveRequest",
    "error_payload",
    "jsonable",
    "parse_request",
    "response_payload",
    "result_payload",
    "upgrade_result_payload",
]

#: current wire-format version; bump on incompatible field changes
SCHEMA_VERSION = 1

#: request operations the serve loop understands
KNOWN_OPS = ("solve", "ping", "stats", "graphs", "health", "drain", "shutdown")

#: legacy request field -> canonical field (pre-schema ad-hoc dumps)
_LEGACY_REQUEST_FIELDS = {
    "request_id": "id",
    "terminals": "seeds",
    "dataset": "graph",
    "options": "config",
}

#: legacy result field -> canonical field
_LEGACY_RESULT_FIELDS = {
    "total": "total_distance",
    "tree_edges": "edges",
    "terminals": "seeds",
    "wall_time": "wall_time_s",
}


class SchemaError(ValueError):
    """A payload does not conform to the request/response schema."""


def jsonable(obj: Any) -> Any:
    """Best-effort conversion of payload data to JSON-safe values
    (NumPy scalars/arrays become Python ints/floats/lists)."""
    import numpy as np

    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in sorted(obj)] if isinstance(
            obj, (set, frozenset)
        ) else [jsonable(v) for v in obj]
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return obj


# --------------------------------------------------------------------- #
# requests
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SolveRequest:
    """One parsed protocol request.

    ``config`` holds raw :class:`~repro.core.config.SolverConfig`
    overrides (field names or their deprecated aliases); it is resolved
    against the server's default configuration at execution time.
    """

    id: str
    op: str = "solve"
    graph: str | None = None
    seeds: tuple[int, ...] = ()
    config: Mapping[str, Any] = field(default_factory=dict)
    deadline_ms: int | None = None
    schema_version: int = SCHEMA_VERSION

    def to_payload(self) -> dict[str, Any]:
        """Canonical JSON-safe dict form of this request."""
        payload: dict[str, Any] = {
            "schema_version": self.schema_version,
            "id": self.id,
            "op": self.op,
        }
        if self.graph is not None:
            payload["graph"] = self.graph
        if self.seeds:
            payload["seeds"] = list(self.seeds)
        if self.config:
            payload["config"] = dict(self.config)
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return payload


def parse_request(payload: Mapping[str, Any]) -> SolveRequest:
    """Validate and normalise a request dict into a :class:`SolveRequest`.

    Accepts the legacy field spellings (``request_id``, ``terminals``,
    ``dataset``, ``options``) with a :class:`DeprecationWarning`; raises
    :class:`SchemaError` on malformed payloads or a ``schema_version``
    newer than this library understands.
    """
    if not isinstance(payload, Mapping):
        raise SchemaError(f"request must be a JSON object, got {type(payload).__name__}")
    data = dict(payload)
    for old, new in _LEGACY_REQUEST_FIELDS.items():
        if old in data:
            if new in data:
                raise SchemaError(f"request has both {old!r} and {new!r}")
            warnings.warn(
                f"request field {old!r} is deprecated; use {new!r}",
                DeprecationWarning,
                stacklevel=2,
            )
            data[new] = data.pop(old)

    version = data.get("schema_version", SCHEMA_VERSION)
    if not isinstance(version, int) or version < 1:
        raise SchemaError(f"invalid schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise SchemaError(
            f"request schema_version {version} is newer than the supported "
            f"version {SCHEMA_VERSION}"
        )

    req_id = data.get("id")
    if req_id is None:
        raise SchemaError("request is missing required field 'id'")
    req_id = str(req_id)

    op = data.get("op", "solve")
    if op not in KNOWN_OPS:
        raise SchemaError(f"unknown op {op!r}; known ops: {list(KNOWN_OPS)}")

    graph = data.get("graph")
    if graph is not None and not isinstance(graph, str):
        raise SchemaError("'graph' must be a string dataset/graph name")

    raw_seeds = data.get("seeds", ())
    if raw_seeds is None:
        raw_seeds = ()
    if isinstance(raw_seeds, (str, bytes)) or not hasattr(raw_seeds, "__iter__"):
        raise SchemaError("'seeds' must be a list of vertex ids")
    try:
        seeds = tuple(int(s) for s in raw_seeds)
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"'seeds' must be integers: {exc}") from None

    config = data.get("config", {})
    if config is None:
        config = {}
    if not isinstance(config, Mapping):
        raise SchemaError("'config' must be a JSON object of SolverConfig fields")

    deadline_ms = data.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(
            deadline_ms, (int, float)
        ):
            raise SchemaError("'deadline_ms' must be a positive number")
        deadline_ms = int(deadline_ms)
        if deadline_ms <= 0:
            raise SchemaError("'deadline_ms' must be a positive number")

    if op == "solve":
        if graph is None:
            raise SchemaError("solve request is missing required field 'graph'")
        if not seeds:
            raise SchemaError("solve request needs a non-empty 'seeds' list")

    return SolveRequest(
        id=req_id,
        op=op,
        graph=graph,
        seeds=seeds,
        config=dict(config),
        deadline_ms=deadline_ms,
        schema_version=version,
    )


# --------------------------------------------------------------------- #
# results and responses
# --------------------------------------------------------------------- #
def result_payload(result: SteinerTreeResult) -> dict[str, Any]:
    """The canonical JSON-safe dict form of a
    :class:`~repro.core.result.SteinerTreeResult`."""
    payload: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "seeds": jsonable(result.seeds),
        "edges": jsonable(result.edges),
        "n_edges": result.n_edges,
        "total_distance": int(result.total_distance),
        "wall_time_s": float(result.wall_time_s),
        "sim_time_s": float(result.sim_time()),
        "phases": [
            {
                "name": p.name,
                "sim_time_s": float(p.sim_time),
                "n_messages": int(p.n_messages),
            }
            for p in result.phases
        ],
        "provenance": jsonable(dict(result.provenance)),
    }
    if result.memory is not None:
        payload["memory"] = {
            "graph_bytes": int(result.memory.graph_bytes),
            "runtime_bytes": int(result.memory.runtime_bytes),
            "total_bytes": int(result.memory.total_bytes),
        }
    return payload


def upgrade_result_payload(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Normalise a result dict that may use pre-schema field names.

    ``total`` -> ``total_distance``, ``tree_edges`` -> ``edges``,
    ``terminals`` -> ``seeds``, ``wall_time`` -> ``wall_time_s``; each
    legacy name triggers a :class:`DeprecationWarning`.  Canonical
    payloads pass through unchanged (minus a ``schema_version`` stamp
    added when absent).
    """
    data = dict(payload)
    for old, new in _LEGACY_RESULT_FIELDS.items():
        if old in data:
            if new in data:
                raise SchemaError(f"result has both {old!r} and {new!r}")
            warnings.warn(
                f"result field {old!r} is deprecated; use {new!r}",
                DeprecationWarning,
                stacklevel=2,
            )
            data[new] = data.pop(old)
    data.setdefault("schema_version", SCHEMA_VERSION)
    return data


def response_payload(
    request_id: str, result: SteinerTreeResult | None = None, **extra: Any
) -> dict[str, Any]:
    """A success envelope; ``result`` may be a
    :class:`~repro.core.result.SteinerTreeResult` (serialised via
    :func:`result_payload`) or an already-JSON-safe object (``stats``,
    ``pong`` bodies) passed through ``extra``."""
    payload: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "id": str(request_id),
        "ok": True,
    }
    if result is not None:
        payload["result"] = result_payload(result)
    payload.update(jsonable(extra))
    return payload


def error_payload(request_id: str | None, error: BaseException | str) -> dict[str, Any]:
    """The error envelope: ``ok: false`` plus a typed message.

    Exceptions carrying a ``code`` attribute (``"timeout"``, ``"shed"``,
    ``"draining"``, ``"oversized"``) surface it for machine dispatch;
    a ``retry_after_ms`` attribute (load-shed backoff hint) passes
    through the same way.
    """
    if isinstance(error, BaseException):
        err = {"type": type(error).__name__, "message": str(error)}
        code = getattr(error, "code", None)
        if code is not None:
            err["code"] = str(code)
        retry_after = getattr(error, "retry_after_ms", None)
        if retry_after is not None:
            err["retry_after_ms"] = int(retry_after)
    else:
        err = {"type": "Error", "message": str(error)}
    return {
        "schema_version": SCHEMA_VERSION,
        "id": str(request_id) if request_id is not None else None,
        "ok": False,
        "error": err,
    }


def dumps(payload: Mapping[str, Any]) -> str:
    """Compact single-line JSON — the line-delimited protocol framing."""
    return json.dumps(jsonable(dict(payload)), separators=(",", ":"))
