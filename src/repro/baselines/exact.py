"""Exact Steiner minimal trees — the SCIP-Jack substitute.

Dreyfus–Wagner dynamic programming with the Erickson–Monma–Veinott
(EMV) improvement: for every terminal subset ``T`` (as a bitmask over
``S \\ {root}``) and every vertex ``v``, ``dp[T][v]`` is the minimal
weight of a tree spanning ``T ∪ {v}``.  The recurrence alternates

* **merge**: ``dp[T][v] = min over proper submasks T' of
  dp[T'][v] + dp[T \\ T'][v]``, and
* **grow** (EMV): one Dijkstra pass relaxes ``dp[T]`` over the graph
  (``dp[T][v] <= dp[T][u] + d(u, v)``),

finishing at ``dp[S \\ {root}][root]`` — the true optimum ``Dmin(G)``.
Complexity ``O(3^k · |V| + 2^k · (|E| + |V| log |V|))``: exact answers
are practical for ``|S| <= ~12`` on the graph sizes the quality tables
use, which covers every Table VII cell that SCIP-Jack's role requires
(larger seed sets fall back to
:func:`repro.baselines.refine.refined_reference_tree`, clearly labelled
in the harness output).

Unlike a plain optimum-weight oracle, this implementation reconstructs
the optimal tree itself (via merge/grow backtracking), so tests can
validate it structurally too.
"""

from __future__ import annotations

import heapq
import time
from typing import Sequence

import numpy as np

from repro.baselines._common import prune_steiner_leaves, result_from_edge_rows
from repro.core.result import SteinerTreeResult
from repro.errors import DisconnectedSeedsError, SeedError
from repro.graph.csr import CSRGraph
from repro.seeds.selection import validate_seed_set

__all__ = ["exact_steiner_tree", "MAX_EXACT_SEEDS"]

#: DP is exponential in the seed count; refuse beyond this (callers use
#: the refined reference instead).
MAX_EXACT_SEEDS = 14


def exact_steiner_tree(graph: CSRGraph, seeds: Sequence[int]) -> SteinerTreeResult:
    """Compute the exact Steiner minimal tree (Dreyfus–Wagner/EMV).

    Raises
    ------
    SeedError
        If ``|S| > MAX_EXACT_SEEDS`` (exponential blow-up guard).
    DisconnectedSeedsError
        If the seeds are not mutually reachable.
    """
    t0 = time.perf_counter()
    seeds_arr = validate_seed_set(graph, seeds)
    k = seeds_arr.size
    if k > MAX_EXACT_SEEDS:
        raise SeedError(
            f"exact solver limited to {MAX_EXACT_SEEDS} seeds (got {k}); "
            "use refined_reference_tree for larger sets"
        )
    if k == 1:
        return result_from_edge_rows(seeds_arr, [], t0=t0)

    n = graph.n_vertices
    root = int(seeds_arr[-1])
    others = [int(s) for s in seeds_arr[:-1]]  # bit i <-> others[i]
    kk = len(others)
    full = (1 << kk) - 1

    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    # dp[mask] : float64[n]; int64 weights fit exactly in float64 for the
    # graph sizes involved (< 2^53), and float INF simplifies relaxation
    dp = np.full((full + 1, n), np.inf)
    # backtracking: merge_choice[mask][v] = submask merged at v (0 = none);
    # grow_pred[mask][v] = predecessor vertex in the grow pass (-1 = none)
    merge_choice = np.zeros((full + 1, n), dtype=np.int64)
    grow_pred = np.full((full + 1, n), -1, dtype=np.int64)

    for i, s in enumerate(others):
        dp[1 << i][s] = 0.0

    def grow(mask: int) -> None:
        """EMV Dijkstra relaxation of dp[mask] over the whole graph."""
        row = dp[mask]
        preds = grow_pred[mask]
        heap = [(row[v], v) for v in np.nonzero(np.isfinite(row))[0]]
        heapq.heapify(heap)
        while heap:
            d, u = heapq.heappop(heap)
            if d != row[u]:
                continue
            for i in range(indptr[u], indptr[u + 1]):
                v = int(indices[i])
                nd = d + weights[i]
                if nd < row[v]:
                    row[v] = nd
                    preds[v] = u
                    # a grow step supersedes any earlier merge at v
                    merge_choice[mask][v] = 0
                    heapq.heappush(heap, (nd, v))

    for mask in range(1, full + 1):
        if mask & (mask - 1):  # not a singleton: merge submask pairs
            row = dp[mask]
            sub = (mask - 1) & mask
            while sub > mask ^ sub:  # enumerate each {sub, mask^sub} once
                cand = dp[sub] + dp[mask ^ sub]
                better = cand < row
                if better.any():
                    row[better] = cand[better]
                    merge_choice[mask][better] = sub
                    grow_pred[mask][better] = -1
                sub = (sub - 1) & mask
        grow(mask)

    best = dp[full][root]
    if not np.isfinite(best):
        raise DisconnectedSeedsError(others)

    # ---- reconstruct the optimal tree ---------------------------------- #
    edge_rows: set[tuple[int, int, int]] = set()
    stack: list[tuple[int, int]] = [(full, root)]
    guard = 4 * (full + 1) * max(n, 1)
    while stack:
        guard -= 1
        if guard < 0:  # pragma: no cover - defensive
            raise RuntimeError("exact backtracking failed to terminate")
        mask, v = stack.pop()
        p = int(grow_pred[mask][v])
        if p >= 0:
            w = int(dp[mask][v] - dp[mask][p])
            edge_rows.add((min(p, v), max(p, v), w))
            stack.append((mask, p))
            continue
        sub = int(merge_choice[mask][v])
        if sub:
            stack.append((sub, v))
            stack.append((mask ^ sub, v))
        # else: singleton base case dp[{i}][s_i] = 0 — nothing to emit

    rows = prune_steiner_leaves(sorted(edge_rows), seeds_arr)
    result = result_from_edge_rows(seeds_arr, rows, t0=t0)
    # the reconstructed tree must realise the DP optimum exactly
    assert result.total_distance == int(best), (
        f"backtracked weight {result.total_distance} != DP optimum {int(best)}"
    )
    return result
