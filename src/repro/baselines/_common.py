"""Shared machinery for baseline Steiner-tree algorithms.

Every classic construction (KMB Alg. 1 steps 3-5, Mehlhorn, WWW) ends the
same way: take the union of shortest paths, compute an MST of the induced
subgraph, and prune non-terminal leaves.  These helpers implement that
tail once, on top of the library's MST kernels.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from repro.core.result import SteinerTreeResult
from repro.errors import ValidationError
from repro.graph.csr import CSRGraph
from repro.mst.kruskal import kruskal_mst

__all__ = [
    "prune_steiner_leaves",
    "mst_of_vertex_set",
    "finalize_tree",
    "result_from_edge_rows",
]


def prune_steiner_leaves(
    edges: list[tuple[int, int, int]],
    seeds: Sequence[int],
) -> list[tuple[int, int, int]]:
    """Iteratively delete non-terminal leaves (KMB Alg. 1 step 5).

    Removing a leaf can expose a new one, so this loops to a fixpoint.
    """
    seed_set = {int(s) for s in seeds}
    current = list(edges)
    while True:
        deg: dict[int, int] = {}
        for u, v, _ in current:
            deg[u] = deg.get(u, 0) + 1
            deg[v] = deg.get(v, 0) + 1
        doomed = {v for v, d in deg.items() if d == 1 and v not in seed_set}
        if not doomed:
            return current
        current = [
            (u, v, w) for u, v, w in current if u not in doomed and v not in doomed
        ]


def mst_of_vertex_set(
    graph: CSRGraph,
    vertices: Iterable[int],
) -> list[tuple[int, int, int]]:
    """MST (forest) of the subgraph induced on ``vertices``, as
    ``(u, v, w)`` triples in original vertex ids."""
    vset = np.unique(np.asarray(list(vertices), dtype=np.int64))
    mask = np.zeros(graph.n_vertices, dtype=bool)
    mask[vset] = True
    eu, ev, ew = graph.edge_array()
    keep = mask[eu] & mask[ev]
    eu, ev, ew = eu[keep], ev[keep], ew[keep]
    # relabel into 0..len(vset)-1 for the MST kernel
    new_id = np.zeros(graph.n_vertices, dtype=np.int64)
    new_id[vset] = np.arange(vset.size)
    idx = kruskal_mst(vset.size, new_id[eu], new_id[ev], ew)
    return [(int(eu[i]), int(ev[i]), int(ew[i])) for i in idx]


def finalize_tree(
    graph: CSRGraph,
    seeds: Sequence[int],
    vertices: Iterable[int],
    *,
    t0: float,
) -> SteinerTreeResult:
    """KMB steps 3-5: MST of the induced subgraph, prune non-seed
    leaves, package as a result."""
    tree = mst_of_vertex_set(graph, vertices)
    tree = prune_steiner_leaves(tree, seeds)
    return result_from_edge_rows(seeds, tree, t0=t0)


def result_from_edge_rows(
    seeds: Sequence[int],
    rows: list[tuple[int, int, int]],
    *,
    t0: float,
) -> SteinerTreeResult:
    """Package ``(u, v, w)`` rows into a :class:`SteinerTreeResult`."""
    norm = sorted((min(u, v), max(u, v), w) for u, v, w in rows)
    if len({(u, v) for u, v, _ in norm}) != len(norm):
        raise ValidationError("duplicate edge in constructed tree")
    edges = np.asarray(norm, dtype=np.int64).reshape(-1, 3)
    total = int(edges[:, 2].sum()) if edges.size else 0
    return SteinerTreeResult(
        seeds=np.asarray(sorted(int(s) for s in seeds), dtype=np.int64),
        edges=edges,
        total_distance=total,
        wall_time_s=time.perf_counter() - t0,
    )
