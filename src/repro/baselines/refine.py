"""Refined reference trees — the optimum proxy for large seed sets.

Table VII measures ``D(GS)/Dmin`` with SCIP-Jack's exact optimum.  Our
exact DP (:mod:`repro.baselines.exact`) covers ``|S| <= 14``; beyond
that no polynomial exact method exists, so the harness uses the
strongest *reference* tree we can construct cheaply:

1. run all four 2-approximations (KMB, Mehlhorn, WWW, Takahashi from
   several start terminals) and keep the best;
2. improve it by **Steiner-vertex insertion** local search: repeatedly
   try adding a candidate non-tree vertex, re-MST the induced subgraph,
   prune leaves, and keep strict improvements (the classic
   Rayward-Smith-style polish);
3. improve by **key-path re-routing**: drop one tree edge and reconnect
   the two halves by the globally shortest crossing path.

The result is an upper bound on ``Dmin`` that is empirically tight at
these scales; the harness marks ratios computed against it as
"reference" rather than "exact".
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.baselines._common import (
    mst_of_vertex_set,
    prune_steiner_leaves,
    result_from_edge_rows,
)
from repro.baselines.kmb import kmb_steiner_tree
from repro.baselines.mehlhorn import mehlhorn_steiner_tree
from repro.baselines.takahashi import takahashi_steiner_tree
from repro.baselines.www import www_steiner_tree
from repro.core.result import SteinerTreeResult
from repro.graph.csr import CSRGraph
from repro.seeds.selection import validate_seed_set

__all__ = ["refined_reference_tree", "prune_steiner_leaves"]


def _tree_weight(rows: list[tuple[int, int, int]]) -> int:
    return sum(w for _, _, w in rows)


def _insertion_pass(
    graph: CSRGraph,
    seeds: np.ndarray,
    rows: list[tuple[int, int, int]],
    rng: np.random.Generator,
    n_candidates: int,
) -> list[tuple[int, int, int]]:
    """One pass of Steiner-vertex insertion local search."""
    current = rows
    weight = _tree_weight(current)
    tree_vertices = {int(s) for s in seeds}
    for u, v, _ in current:
        tree_vertices.add(u)
        tree_vertices.add(v)
    # candidates: neighbours of the tree, sampled
    neigh: set[int] = set()
    for v in sorted(tree_vertices):
        neigh.update(int(x) for x in graph.neighbors(v))
    neigh -= tree_vertices
    candidates = sorted(neigh)
    if len(candidates) > n_candidates:
        idx = rng.choice(len(candidates), size=n_candidates, replace=False)
        candidates = [candidates[i] for i in sorted(idx)]
    for cand in candidates:
        trial_vertices = tree_vertices | {cand}
        trial = mst_of_vertex_set(graph, trial_vertices)
        trial = prune_steiner_leaves(trial, seeds)
        tw = _tree_weight(trial)
        if tw < weight:
            current, weight = trial, tw
            tree_vertices = {int(s) for s in seeds}
            for u, v, _ in current:
                tree_vertices.add(u)
                tree_vertices.add(v)
    return current


def refined_reference_tree(
    graph: CSRGraph,
    seeds: Sequence[int],
    *,
    seed: int = 0,
    passes: int = 3,
    n_candidates: int = 48,
    takahashi_starts: int = 3,
) -> SteinerTreeResult:
    """Best-of-many 2-approximations + local refinement.

    Parameters
    ----------
    passes:
        Insertion-search passes (each samples ``n_candidates`` non-tree
        vertices adjacent to the tree).
    takahashi_starts:
        Number of distinct Takahashi start terminals to try.
    """
    t0 = time.perf_counter()
    seeds_arr = validate_seed_set(graph, seeds)
    rng = np.random.default_rng(seed)

    best: SteinerTreeResult | None = None
    builders = [
        lambda: kmb_steiner_tree(graph, seeds_arr),
        lambda: mehlhorn_steiner_tree(graph, seeds_arr),
        lambda: www_steiner_tree(graph, seeds_arr),
    ]
    starts = list(seeds_arr[: max(1, takahashi_starts)])
    for s in starts:
        builders.append(
            lambda s=s: takahashi_steiner_tree(graph, seeds_arr, start=int(s))
        )
    for build in builders:
        res = build()
        if best is None or res.total_distance < best.total_distance:
            best = res
    assert best is not None

    rows = [(int(u), int(v), int(w)) for u, v, w in best.edges]
    before = _tree_weight(rows)
    for _ in range(passes):
        rows = _insertion_pass(graph, seeds_arr, rows, rng, n_candidates)
        after = _tree_weight(rows)
        if after == before:
            break
        before = after

    return result_from_edge_rows(seeds_arr, rows, t0=t0)
