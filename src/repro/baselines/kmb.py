"""The Kou–Markowsky–Berman (KMB) algorithm — the paper's Algorithm 1.

The classic 2-approximation (bound ``2 (1 - 1/l)``):

1. build the complete distance graph ``G1`` over the seeds via APSP;
2. MST ``G2`` of ``G1``;
3. expand every ``G2`` edge into its shortest path in ``G``;
4. MST ``G4`` of the expanded subgraph;
5. prune non-seed leaves.

Step 1 is the cost the paper's whole design avoids (Table I): one
Dijkstra per seed, so runtime grows linearly with ``|S|`` — visible in
the Table VI reproduction.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.baselines._common import finalize_tree
from repro.core.result import SteinerTreeResult
from repro.errors import DisconnectedSeedsError
from repro.graph.csr import CSRGraph
from repro.mst.kruskal import kruskal_mst
from repro.seeds.selection import validate_seed_set
from repro.shortest_paths.dijkstra import INF, dijkstra, reconstruct_path

__all__ = ["kmb_steiner_tree"]


def kmb_steiner_tree(graph: CSRGraph, seeds: Sequence[int]) -> SteinerTreeResult:
    """Compute a 2-approximate Steiner tree with the KMB algorithm."""
    t0 = time.perf_counter()
    seeds_arr = validate_seed_set(graph, seeds)
    k = seeds_arr.size
    if k == 1:
        return finalize_tree(graph, seeds_arr, seeds_arr, t0=t0)

    # Step 1: APSP among seeds, keeping predecessor trees for step 3
    dists = []
    preds = []
    for s in seeds_arr:
        d, p = dijkstra(graph, int(s))
        dists.append(d)
        preds.append(p)

    # G1: complete graph over seed indices
    pair_s: list[int] = []
    pair_t: list[int] = []
    pair_d: list[int] = []
    for i in range(k):
        di = dists[i]
        for j in range(i + 1, k):
            dij = di[seeds_arr[j]]
            if dij == INF:
                raise DisconnectedSeedsError([int(seeds_arr[j])])
            pair_s.append(i)
            pair_t.append(j)
            pair_d.append(int(dij))

    # Step 2: MST G2 of G1
    mst_idx = kruskal_mst(
        k,
        np.asarray(pair_s, dtype=np.int64),
        np.asarray(pair_t, dtype=np.int64),
        np.asarray(pair_d, dtype=np.int64),
    )

    # Step 3: expand each G2 edge into its shortest path in G
    vertices: set[int] = {int(s) for s in seeds_arr}
    for e in mst_idx:
        i, j = pair_s[e], pair_t[e]
        path = reconstruct_path(preds[i], int(seeds_arr[i]), int(seeds_arr[j]))
        vertices.update(path)

    # Steps 4-5: MST of the induced subgraph + leaf pruning
    return finalize_tree(graph, seeds_arr, vertices, t0=t0)
