"""Mehlhorn's sequential 2-approximation (Inf. Proc. Letters 1988).

Replaces KMB's APSP with one Voronoi-cell sweep: the distance graph
``G'1`` (cells as vertices, min cross-cell connections as edges) provably
contains an MST of KMB's ``G1``, so the same bound holds at
``O(|V| log |V| + |E|)`` sequential cost.  This is the algorithm the
paper parallelises; the library's
:func:`~repro.core.sequential.sequential_steiner_tree` is the
optimised shared-memory variant, while this module follows Mehlhorn's
original post-processing (expand paths, re-MST, prune) for an honest
baseline — the two may pick different (equally valid) trees.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.baselines._common import finalize_tree
from repro.core.distance_graph import build_distance_graph
from repro.core.result import SteinerTreeResult
from repro.errors import DisconnectedSeedsError
from repro.graph.csr import CSRGraph
from repro.mst.kruskal import kruskal_mst
from repro.seeds.selection import validate_seed_set
from repro.shortest_paths.voronoi import compute_voronoi_cells

__all__ = ["mehlhorn_steiner_tree"]


def mehlhorn_steiner_tree(
    graph: CSRGraph,
    seeds: Sequence[int],
    *,
    backend: str | None = None,
) -> SteinerTreeResult:
    """Compute a 2-approximate Steiner tree with Mehlhorn's algorithm.

    ``backend`` selects the multi-source sweep kernel (any name from
    :mod:`repro.shortest_paths.backends`); ``None`` keeps the in-module
    heap reference.  The sweep is this algorithm's asymptotic cost, so
    the knob matters on large instances.
    """
    t0 = time.perf_counter()
    seeds_arr = validate_seed_set(graph, seeds)
    k = seeds_arr.size
    if k == 1:
        return finalize_tree(graph, seeds_arr, seeds_arr, t0=t0)

    # Voronoi cells + distance graph G'1
    vd = compute_voronoi_cells(graph, seeds_arr, backend=backend)
    dg = build_distance_graph(graph, seeds_arr, vd.src, vd.dist)
    si, ti = dg.seed_indices()
    mst_idx = kruskal_mst(k, si, ti, dg.dprime)
    if mst_idx.size != k - 1:
        in_mst = np.zeros(k, dtype=bool)
        in_mst[si[mst_idx]] = True
        in_mst[ti[mst_idx]] = True
        raise DisconnectedSeedsError(
            [int(s) for s, ok in zip(seeds_arr, in_mst) if not ok]
        )

    # expand each MST edge (s, t) through its bridge (u, v):
    # path(u -> s) + (u, v) + path(v -> t), via Voronoi predecessors
    vertices: set[int] = {int(s) for s in seeds_arr}
    for e in mst_idx:
        for endpoint in (int(dg.u[e]), int(dg.v[e])):
            vertices.update(vd.path_to_seed(endpoint))

    return finalize_tree(graph, seeds_arr, vertices, t0=t0)
