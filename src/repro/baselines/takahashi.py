"""Takahashi–Matsuyama shortest-path heuristic (Math. Japonica 1980).

The oldest of the 2-approximations the paper's introduction surveys
(bound ``2 (1 - 1/|S|)``): grow the tree from one terminal, repeatedly
attaching the terminal *closest to the current tree* via its shortest
path.  Each round is one multi-source Dijkstra from the tree's vertex
set, so the cost is ``O(|S| (|E| + |V| log |V|))`` — between KMB and
Mehlhorn.  Often finds slightly better trees than KMB/Mehlhorn in
practice, which makes it a useful extra data point for the quality
tables and a component of the refined reference solver.
"""

from __future__ import annotations

import heapq
import time
from typing import Sequence

from repro.baselines._common import finalize_tree
from repro.core.result import SteinerTreeResult
from repro.errors import DisconnectedSeedsError
from repro.graph.csr import CSRGraph
from repro.seeds.selection import validate_seed_set
from repro.shortest_paths.dijkstra import INF, NO_VERTEX

__all__ = ["takahashi_steiner_tree"]


def takahashi_steiner_tree(
    graph: CSRGraph,
    seeds: Sequence[int],
    *,
    start: int | None = None,
) -> SteinerTreeResult:
    """Compute a 2-approximate Steiner tree by nearest-terminal addition.

    Parameters
    ----------
    start:
        Terminal to grow from (defaults to the smallest seed id; the
        refined reference solver retries several starts).
    """
    t0 = time.perf_counter()
    seeds_arr = validate_seed_set(graph, seeds)
    seed_set = {int(s) for s in seeds_arr}
    if start is None:
        start = int(seeds_arr[0])
    if start not in seed_set:
        raise ValueError("start must be one of the seeds")

    tree_vertices: set[int] = {start}
    remaining = set(seed_set) - {start}
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    n = graph.n_vertices

    while remaining:
        # multi-source Dijkstra from the current tree
        dist = [INF] * n
        pred = [int(NO_VERTEX)] * n
        heap: list[tuple[int, int]] = []
        for v in tree_vertices:
            dist[v] = 0
            heap.append((0, v))
        heapq.heapify(heap)
        found: int | None = None
        while heap:
            d, u = heapq.heappop(heap)
            if d != dist[u]:
                continue
            if u in remaining:
                found = u
                break
            for i in range(indptr[u], indptr[u + 1]):
                v = int(indices[i])
                nd = d + int(weights[i])
                if nd < dist[v]:
                    dist[v] = nd
                    pred[v] = u
                    heapq.heappush(heap, (nd, v))
        if found is None:
            raise DisconnectedSeedsError(sorted(remaining))
        # splice the path into the tree
        v = found
        while v != NO_VERTEX and v not in tree_vertices:
            tree_vertices.add(v)
            v = pred[v]
        remaining.discard(found)

    return finalize_tree(graph, seeds_arr, tree_vertices, t0=t0)
