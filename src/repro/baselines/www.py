"""The Wu–Widmayer–Wong (WWW) algorithm (Acta Informatica 1986).

A *generalised minimum spanning tree* 2-approximation: shortest-path
waves grow from every terminal simultaneously; whenever two waves from
different components meet, the meeting is a candidate connection, and
candidates are committed in increasing total-length order, Kruskal
style, merging terminal components until one remains.

The paper cites WWW (with Widmayer '87) as the work-efficient
generalised-MST family that is nevertheless *hard to parallelise* —
exactly the trade-off its Voronoi-cell design sidesteps.  The
implementation here realises the generalised MST as: one multi-source
shortest-path sweep (the simultaneous wave growth), candidate
connections ``d(s,u) + w(u,v) + d(v,t)`` for every wave-boundary edge,
then Kruskal with union-find over terminals, expanding each accepted
connection through the recorded predecessors.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.baselines._common import finalize_tree
from repro.core.result import SteinerTreeResult
from repro.errors import DisconnectedSeedsError
from repro.graph.csr import CSRGraph
from repro.mst.union_find import UnionFind
from repro.seeds.selection import validate_seed_set
from repro.shortest_paths.voronoi import NO_VERTEX, compute_voronoi_cells

__all__ = ["www_steiner_tree"]


def www_steiner_tree(graph: CSRGraph, seeds: Sequence[int]) -> SteinerTreeResult:
    """Compute a 2-approximate Steiner tree with the WWW construction."""
    t0 = time.perf_counter()
    seeds_arr = validate_seed_set(graph, seeds)
    k = seeds_arr.size
    if k == 1:
        return finalize_tree(graph, seeds_arr, seeds_arr, t0=t0)

    # simultaneous wave growth == multi-source shortest-path sweep
    vd = compute_voronoi_cells(graph, seeds_arr)
    seed_index = {int(s): i for i, s in enumerate(seeds_arr)}

    # candidate connections: every edge bridging two waves
    eu, ev, ew = graph.edge_array()
    cross = (
        (vd.src[eu] != NO_VERTEX)
        & (vd.src[ev] != NO_VERTEX)
        & (vd.src[eu] != vd.src[ev])
    )
    eu, ev, ew = eu[cross], ev[cross], ew[cross]
    total_len = vd.dist[eu] + ew + vd.dist[ev]
    order = np.lexsort((ev, eu, total_len))

    # Kruskal over terminal components, committing meeting points
    uf = UnionFind(k)
    vertices: set[int] = {int(s) for s in seeds_arr}
    accepted = 0
    for idx in order:
        u, v = int(eu[idx]), int(ev[idx])
        ci = seed_index[int(vd.src[u])]
        cj = seed_index[int(vd.src[v])]
        if uf.union(ci, cj):
            vertices.update(vd.path_to_seed(u))
            vertices.update(vd.path_to_seed(v))
            accepted += 1
            if accepted == k - 1:
                break
    if accepted != k - 1:
        root = uf.find(0)
        raise DisconnectedSeedsError(
            [int(seeds_arr[i]) for i in range(k) if uf.find(i) != root]
        )

    return finalize_tree(graph, seeds_arr, vertices, t0=t0)
