"""Baseline Steiner-tree algorithms the paper compares against (§V-G).

* :func:`kmb_steiner_tree` — Kou–Markowsky–Berman (paper Alg. 1), the
  classic 2-approximation built on APSP among seeds;
* :func:`mehlhorn_steiner_tree` — Mehlhorn's Voronoi-cell speed-up of
  KMB, the sequential ancestor of the paper's parallel algorithm;
* :func:`www_steiner_tree` — Wu–Widmayer–Wong, the generalised-MST
  2-approximation;
* :func:`takahashi_steiner_tree` — Takahashi–Matsuyama shortest-path
  heuristic (the 2(1-1/|S|) bound from the paper's introduction);
* :func:`exact_steiner_tree` — Dreyfus–Wagner dynamic programming, the
  SCIP-Jack substitute used to measure approximation quality
  (Table VII);
* :func:`refined_reference_tree` — best-of-many 2-approximations plus
  local refinement, the reference optimum proxy for seed sets too large
  for exact DP.

All return :class:`~repro.core.result.SteinerTreeResult` so the harness
treats every solver uniformly.
"""

from repro.baselines.kmb import kmb_steiner_tree
from repro.baselines.mehlhorn import mehlhorn_steiner_tree
from repro.baselines.www import www_steiner_tree
from repro.baselines.takahashi import takahashi_steiner_tree
from repro.baselines.exact import exact_steiner_tree
from repro.baselines.refine import refined_reference_tree, prune_steiner_leaves

__all__ = [
    "exact_steiner_tree",
    "kmb_steiner_tree",
    "mehlhorn_steiner_tree",
    "prune_steiner_leaves",
    "refined_reference_tree",
    "takahashi_steiner_tree",
    "www_steiner_tree",
]
