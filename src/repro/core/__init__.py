"""The paper's primary contribution: parallel 2-approximation Steiner
minimal trees via Voronoi cells.

Two entry points compute the *same* tree (asserted by the test suite):

* :func:`repro.core.sequential.sequential_steiner_tree` — the
  shared-memory reference of the parallel algorithm (paper Alg. 2),
  pure NumPy, fastest wall-clock path for library users;
* :class:`repro.core.solver.DistributedSteinerSolver` — the simulated
  distributed implementation (paper Alg. 3–6) running on the
  :mod:`repro.runtime` discrete-event engine, which additionally yields
  per-phase simulated times, message counts and memory estimates — the
  quantities the paper's evaluation reports.
"""

from repro.core.config import SolverConfig
from repro.core.result import SteinerTreeResult, PHASE_NAMES
from repro.core.sequential import sequential_steiner_tree
from repro.core.solver import DistributedSteinerSolver, distributed_steiner_tree

__all__ = [
    "PHASE_NAMES",
    "DistributedSteinerSolver",
    "SolverConfig",
    "SteinerTreeResult",
    "distributed_steiner_tree",
    "sequential_steiner_tree",
]
