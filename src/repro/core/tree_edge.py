"""Steiner-tree edge identification — the paper's Algorithm 6.

After pruning, each surviving ("active") cross-cell edge ``(u, v)`` seeds
two predecessor walks: from ``u`` back to ``src(u)`` and from ``v`` back
to ``src(v)``.  Every hop contributes one tree edge
``(pred(vj), vj)``.  The walks run as an asynchronous vertex-centric
traversal; a *visited* guard stops a walk as soon as it merges into a path
that has already been collected, which is what keeps the message count of
this phase "orders of magnitude smaller" than the graph (paper Table IV /
Fig. 6).

Edge weights are recovered arithmetically: on a tight shortest-path hop,
``d(pred(v), v) = dist(v) - dist(pred(v))`` exactly (integer weights), so
no adjacency lookup is needed — mirroring the distributed setting where
``v``'s rank knows both distances but would otherwise have to search its
CSR row.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator, Tuple

import numpy as np

from repro.runtime.partition import PartitionedGraph

__all__ = ["TreeEdgeProgram", "walk_tree_edges"]


class TreeEdgeProgram:
    """Alg. 6 as an engine program.

    ``collected`` marks vertices whose hop to their predecessor has been
    emitted; the resulting ``(u, v, w)`` triples accumulate in
    :attr:`edges`.
    """

    __slots__ = ("part", "src", "pred", "dist", "collected", "edges", "edge_vertex")

    def __init__(
        self,
        partition: PartitionedGraph,
        src: np.ndarray,
        pred: np.ndarray,
        dist: np.ndarray,
    ) -> None:
        self.part = partition
        self.src = src
        self.pred = pred
        self.dist = dist
        self.collected = np.zeros(partition.graph.n_vertices, dtype=bool)
        self.edges: list[tuple[int, int, int]] = []
        #: recording vertex of each edge (parallel to ``edges``): the
        #: walked vertex whose predecessor hop emitted it.  Lets
        #: :meth:`mp_collect` restrict an edge list by vertex ownership,
        #: which is what keeps worker edge sets exact even when replicas
        #: execute overlapping inboxes (coalesced superstep groups).
        self.edge_vertex: list[int] = []

    def initial_messages(
        self, endpoints: np.ndarray
    ) -> Iterator[tuple[int, Tuple]]:
        """One visitor per active cross-cell edge endpoint (Alg. 6
        lines 5-6)."""
        for v in endpoints:
            yield (int(v), (int(v),))

    def priority(self, payload: Tuple) -> float:
        """Tree-edge walks carry no distance ordering; constant priority
        makes priority and FIFO disciplines equivalent here."""
        return 0.0

    def visit(
        self, vertex: int, payload: Tuple, emit: Callable[[int, Tuple], None]
    ) -> None:
        """One predecessor hop (Alg. 6 visit): record the edge to
        ``pred(vertex)`` and continue the walk unless done."""
        if self.src[vertex] == vertex:  # reached the cell's seed
            return
        if self.collected[vertex]:  # another walk already passed through
            return
        self.collected[vertex] = True
        p = int(self.pred[vertex])
        w = int(self.dist[vertex] - self.dist[p])
        self.edges.append((min(p, vertex), max(p, vertex), w))
        self.edge_vertex.append(vertex)
        if p != self.src[vertex]:
            emit(p, (p,))

    def visit_rank(
        self, rank: int, payload: Tuple, emit: Callable[[int, Tuple], None]
    ) -> None:
        """Unused: tree-edge walks are vertex-addressed only."""
        raise AssertionError("tree-edge walks never address ranks")

    # ------------------------------------------------------------------ #
    # batch protocol (bsp-batched engine): one superstep = array ops
    # ------------------------------------------------------------------ #
    batch_payload_width = 1

    def batch_encode(self, target: int, payload: Tuple) -> Tuple[int]:
        """Payload as an int row: the walked vertex itself."""
        return payload

    def batch_visit(
        self, targets: np.ndarray, payload: np.ndarray, emitter: Any
    ) -> None:
        """One superstep of predecessor hops over message arrays.

        Duplicate arrivals at a vertex within a superstep collapse to
        one hop (the ``collected`` guard absorbs the rest), so a unique
        pass over the targets is exactly the scalar semantics.  The
        collected set — hence the edge set — is order-independent.
        """
        v = np.unique(targets)
        live = (self.src[v] != v) & ~self.collected[v]
        v = v[live]
        if v.size == 0:
            return
        self.collected[v] = True
        p = self.pred[v]
        w = self.dist[v] - self.dist[p]
        lo, hi = np.minimum(p, v), np.maximum(p, v)
        self.edges.extend(
            (int(a), int(b), int(c)) for a, b, c in zip(lo, hi, w)
        )
        self.edge_vertex.extend(int(x) for x in v)
        walk = p != self.src[v]
        if walk.any():
            out = p[walk].astype(np.int64)
            emitter.emit(
                self.part.owner[v[walk]].astype(np.int64),
                out,
                out.reshape(-1, 1),
            )

    def batch_visit_rank(
        self, ranks: np.ndarray, payload: np.ndarray, emitter: Any
    ) -> None:
        """Unused: tree-edge walks are vertex-addressed only."""
        raise AssertionError("tree-edge walks never address ranks")

    # ------------------------------------------------------------------ #
    # mp protocol (bsp-mp engine): replicate, shard, gather
    # ------------------------------------------------------------------ #
    def mp_clone_payload(self) -> dict:
        """Worker replicas need the (phase-1 output) ``src/pred/dist``
        arrays plus the visited guard; replicas start with an empty
        ``edges`` list, so the driver's already-collected edges are
        never duplicated by the merge."""
        return {
            "src": self.src,
            "pred": self.pred,
            "dist": self.dist,
            "collected": np.nonzero(self.collected)[0],
        }

    @classmethod
    def mp_materialize(
        cls, partition: PartitionedGraph, payload: dict
    ) -> "TreeEdgeProgram":
        prog = cls(partition, payload["src"], payload["pred"], payload["dist"])
        prog.collected[payload["collected"]] = True
        return prog

    def mp_collect(self, owned: np.ndarray) -> dict:
        """Visited marks of ``owned`` vertices plus every edge whose
        *recording* vertex is in ``owned``.  Filtering by recording
        vertex (not just "everything this replica saw") makes collects
        exact under replicated execution: when a coalesced superstep
        group runs the full inbox on every worker, each edge is
        recorded by several replicas but collected from exactly one —
        its recording vertex's owner."""
        in_owned = np.isin(
            np.asarray(self.edge_vertex, dtype=np.int64), owned
        )
        return {
            "collected": owned[self.collected[owned]],
            "edges": [e for e, keep in zip(self.edges, in_owned) if keep],
            "edge_vertex": [
                v for v, keep in zip(self.edge_vertex, in_owned) if keep
            ],
        }

    def mp_merge(self, collected: dict) -> None:
        self.collected[collected["collected"]] = True
        self.edges.extend(collected["edges"])
        self.edge_vertex.extend(collected["edge_vertex"])


def walk_tree_edges(
    src: np.ndarray,
    pred: np.ndarray,
    dist: np.ndarray,
    endpoints: np.ndarray,
) -> list[tuple[int, int, int]]:
    """Sequential equivalent of :class:`TreeEdgeProgram` (used by the
    shared-memory reference path; identical output by construction)."""
    n = src.size
    collected = np.zeros(n, dtype=bool)
    edges: list[tuple[int, int, int]] = []
    stack = [int(v) for v in endpoints]
    while stack:
        v = stack.pop()
        if src[v] == v or collected[v]:
            continue
        collected[v] = True
        p = int(pred[v])
        w = int(dist[v] - dist[p])
        edges.append((min(p, v), max(p, v), w))
        if p != src[v]:
            stack.append(p)
    return edges


if TYPE_CHECKING:
    from repro.contracts import MPCloneable

    # mypy verifies the all-or-none mp-clone protocol statically; the
    # REP401 checker rule is the review-time twin of this assignment.
    _MP_CONFORMANCE: type[MPCloneable] = TreeEdgeProgram
