"""The distributed Steiner-tree solver — the paper's Algorithm 3.

Orchestrates the six phases over the simulated runtime:

1. ``Voronoi Cell``          — async vertex-centric (Alg. 4, DES);
2. ``Local Min Dist. Edge``  — edge-centric local scans + halo exchange
   (Alg. 5, analytic cost + vectorised semantics);
3. ``Global Min Dist. Edge`` — ``MPI_Allreduce(MIN)`` over the ``EN``
   buffer (collective cost model);
4. ``MST``                   — sequential Prim on the replicated ``G'1``;
5. ``Global Edge Pruning``   — drop non-MST cross edges + second
   allreduce for per-pair uniqueness;
6. ``Steiner Tree Edge``     — async predecessor walks (Alg. 6, DES).

The message-driven phases (1 and 6) execute on the runtime engine
selected by ``SolverConfig.engine`` — any name registered in
:mod:`repro.runtime.engines` (``async-heap``, ``bsp``, ``bsp-batched``,
``bsp-mp``, ``bsp-native``); every engine converges to the identical
tree.  Engines
holding OS resources (``bsp-mp``'s worker pool, sized by
``SolverConfig.workers``) are closed in a ``finally`` once both phases
have run, so worker processes never outlive ``solve`` — even when a
phase raises.

The solver reports, per phase, the simulated parallel time and message
counts — the exact quantities behind the paper's Figs. 3-6 — plus a
cluster-wide memory estimate (Fig. 8) and the tree itself.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:
    from repro.graph.csr import CSRGraph
    from repro.serve.cache import SolveCache

import numpy as np

from repro.core.config import SolverConfig
from repro.core.distance_graph import (
    build_distance_graph,
    local_min_edge_costs,
)
from repro.core.result import PHASE_NAMES, SteinerTreeResult
from repro.core.tree_edge import TreeEdgeProgram
from repro.core.voronoi_visitor import VoronoiProgram
from repro.errors import DisconnectedSeedsError
from repro.mst.prim import prim_mst
from repro.mst.union_find import UnionFind
from repro.runtime.engine import PhaseStats
from repro.runtime.engines import make_engine
from repro.runtime.memory import estimate_memory
from repro.runtime.partition import block_partition, hash_partition
from repro.seeds.selection import validate_seed_set
from repro.shortest_paths.voronoi import (
    VoronoiDiagram,
    canonicalize_predecessors,
)

__all__ = ["DistributedSteinerSolver", "distributed_steiner_tree"]

# collective element sizes (bytes): EN distance entries carry (d, u, v);
# the pruning reduce carries (u, v) source-id pairs (paper Alg. 5).
_EN_REDUCE_BYTES = 24
_PRUNE_REDUCE_BYTES = 16


class DistributedSteinerSolver:
    """Reusable solver bound to one graph and one configuration.

    Partitioning happens once in the constructor (the paper excludes
    "graph partitioning and loading times" from its metric); ``solve``
    may then be called with many seed sets, as an interactive analyst
    session would.

    Parameters
    ----------
    config:
        A ready :class:`SolverConfig`; alternatively pass its fields as
        keyword arguments (resolved via
        :meth:`SolverConfig.from_kwargs`, so the deprecated
        ``ranks``/``queue``/``backend`` spellings still work, with a
        warning).  Mixing both raises :class:`TypeError`.
    cache:
        Optional result cache (duck-typed —
        :class:`repro.serve.cache.SolveCache` is the shipped
        implementation).  When present, ``solve`` is keyed by
        ``(graph_hash, frozenset(seeds), config_fingerprint)``: a
        solution hit skips the computation entirely (the returned
        result carries ``provenance["cache_hit"] = True``), and — for
        backend-driven configurations — a Voronoi-diagram hit skips the
        multi-source sweep while still assembling phases 2-6.
    """

    def __init__(
        self,
        graph: "CSRGraph",
        config: SolverConfig | None = None,
        *,
        cache: "SolveCache | None" = None,
        **config_kwargs: Any,
    ) -> None:
        if config is not None and config_kwargs:
            raise TypeError(
                "pass either a SolverConfig or its fields as keyword "
                f"arguments, not both: {sorted(config_kwargs)}"
            )
        self.graph = graph
        self.config = (
            config
            if config is not None
            else SolverConfig.from_kwargs(**config_kwargs)
        )
        self.cache = cache
        partition_fn = (
            block_partition if self.config.partition == "block" else hash_partition
        )
        self.partition = partition_fn(
            graph,
            self.config.n_ranks,
            delegate_threshold=self.config.delegate_threshold,
        )

    # ------------------------------------------------------------------ #
    def solution_key(self, seeds: Sequence[int]) -> tuple:
        """The cache key of one solve: ``(graph_hash, frozenset(seeds),
        config_fingerprint)`` — the contract documented in
        ``docs/serve.md``."""
        return (
            self.graph.content_hash(),
            frozenset(int(s) for s in seeds),
            self.config.fingerprint(),
        )

    def _diagram_key(self, seeds_arr: np.ndarray) -> tuple:
        """Diagram cache key: like :meth:`solution_key` but fingerprinted
        by the sweep kernel alone — any configuration sharing the
        backend shares the converged diagram."""
        return (
            self.graph.content_hash(),
            frozenset(int(s) for s in seeds_arr),
            f"diagram:{self.config.voronoi_backend}",
        )

    # ------------------------------------------------------------------ #
    def solve(
        self,
        seeds: Sequence[int],
        *,
        diagram: VoronoiDiagram | None = None,
    ) -> SteinerTreeResult:
        """Compute a 2-approximate Steiner minimal tree for ``seeds``.

        Parameters
        ----------
        diagram:
            A pre-converged Voronoi diagram for exactly these seeds —
            the serve batcher passes the per-request slice of a fused
            multi-source sweep here, skipping phase 1 while phases 2-6
            run normally.  Because every diagram is the canonical
            ``(dist, owner)`` fixpoint, the resulting tree is
            bit-identical to an independent solve.

        Raises
        ------
        DisconnectedSeedsError
            If the seeds do not share a connected component.
        """
        cfg = self.config
        machine = cfg.machine
        t0 = time.perf_counter()
        seeds_arr = validate_seed_set(self.graph, seeds)
        k = seeds_arr.size
        phases: list[PhaseStats] = []

        provenance: dict[str, Any] = {
            "engine": cfg.engine,
            "backend": cfg.voronoi_backend,
            "config_fingerprint": cfg.fingerprint(),
            "cache_hit": False,
        }
        if self.cache is not None:
            provenance["graph_hash"] = self.graph.content_hash()
            key = self.solution_key(seeds_arr)
            cached = self.cache.get_solution(key)
            if cached is not None:
                return replace(
                    cached,
                    wall_time_s=time.perf_counter() - t0,
                    provenance={**cached.provenance, "cache_hit": True},
                )

        if diagram is not None:
            if not np.array_equal(
                np.asarray(diagram.seeds, dtype=np.int64), seeds_arr
            ):
                raise ValueError(
                    "injected diagram was computed for a different seed set"
                )
            provenance["sweep"] = "injected"

        engine = make_engine(
            cfg.engine,
            self.partition,
            machine,
            cfg.discipline,
            aggregate_remote=cfg.aggregate_remote_messages,
            workers=cfg.workers,
            checkpoint_interval=cfg.checkpoint_interval,
            max_restarts=cfg.max_restarts,
            worker_timeout_s=cfg.worker_timeout_s,
            fault_plan=cfg.fault_plan,
            shm_transport=cfg.shm_transport,
            coalesce_threshold=cfg.coalesce_threshold,
            coalesce_max=cfg.coalesce_max,
        )

        try:
            # ---- Phase 1: Voronoi Cell (Alg. 4) --------------------------- #
            # Either simulate the asynchronous message-driven kernel (the
            # paper-faithful default, yields the Figs. 3-6 message trace),
            # run a sequential backend from the registry, or adopt a
            # pre-converged diagram (injected by the serve batcher or found
            # in the diagram cache) — all converge to the same deterministic
            # (dist, owner) fixpoint, so phases 2-6 and the output tree are
            # identical.
            if diagram is not None:
                src, dist, pred = diagram.src, diagram.dist, diagram.pred
                vc_stats = PhaseStats(
                    name=PHASE_NAMES[0],
                    sim_time=0.0,
                    busy_time=np.zeros(cfg.n_ranks),
                )
            elif cfg.voronoi_backend is None:
                provenance["sweep"] = "simulated"
                program = VoronoiProgram(self.partition)
                vc_stats = engine.run_phase(
                    PHASE_NAMES[0],
                    program,
                    list(program.initial_messages(seeds_arr)),
                    # 0 means uncapped, as it always has (falsy-guard legacy)
                    max_events=cfg.max_events or None,
                )
                src, dist = program.src, program.dist
                pred = canonicalize_predecessors(self.graph, src, dist)
            else:
                cached_vd = None
                if self.cache is not None:
                    cached_vd = self.cache.get_diagram(
                        self._diagram_key(seeds_arr)
                    )
                if cached_vd is not None:
                    provenance["sweep"] = "diagram-cache"
                    src, dist, pred = cached_vd.src, cached_vd.dist, cached_vd.pred
                    vc_stats = PhaseStats(
                        name=PHASE_NAMES[0],
                        sim_time=0.0,
                        busy_time=np.zeros(cfg.n_ranks),
                    )
                else:
                    from repro.shortest_paths.backends import compute_multisource

                    provenance["sweep"] = "backend"
                    ms = compute_multisource(
                        self.graph, seeds_arr, backend=cfg.voronoi_backend
                    )
                    src, dist, pred = ms.src, ms.dist, ms.pred
                    if self.cache is not None:
                        self.cache.put_diagram(
                            self._diagram_key(seeds_arr), ms.diagram
                        )
                    vc_stats = PhaseStats(
                        name=PHASE_NAMES[0],
                        sim_time=ms.elapsed_s,
                        busy_time=np.zeros(cfg.n_ranks),
                    )
            phases.append(vc_stats)

            # ---- Phase 2: Local Min Dist. Edge (Alg. 5, local) ------------ #
            dg = build_distance_graph(self.graph, seeds_arr, src, dist)
            lme_time, lme_msgs, lme_bytes = local_min_edge_costs(
                self.partition, machine
            )
            phases.append(
                PhaseStats(
                    name=PHASE_NAMES[1],
                    sim_time=lme_time,
                    n_messages_remote=lme_msgs,
                    bytes_sent=lme_bytes,
                    busy_time=np.zeros(cfg.n_ranks),
                )
            )

            # ---- Phase 3: Global Min Dist. Edge (collective) -------------- #
            # The paper allreduces the *full* C(|S|, 2) EN buffer (its |S|=10K
            # memory spike); we charge that cost while reducing only observed
            # pairs semantically.  With collective_chunk_elements set, the
            # §V-F chunked variant pays one latency term per chunk but bounds
            # the peak communication buffer.
            n_pairs_full = k * (k - 1) // 2
            gme_time = self._collective_time(n_pairs_full, _EN_REDUCE_BYTES)
            phases.append(
                PhaseStats(
                    name=PHASE_NAMES[2],
                    sim_time=gme_time,
                    bytes_sent=n_pairs_full * _EN_REDUCE_BYTES,
                    busy_time=np.zeros(cfg.n_ranks),
                )
            )

            # ---- Phase 4: MST of G'1 (sequential Prim, replicated) -------- #
            si, ti = dg.seed_indices()
            mst_idx = prim_mst(k, si, ti, dg.dprime)
            self._check_connected(seeds_arr, si, ti, mst_idx, k)
            # analytic time: Prim + copying results into distributed state
            mst_time = machine.mst_time(dg.n_edges, k) + (
                dg.n_edges * 8 / machine.bandwidth
            )
            phases.append(
                PhaseStats(
                    name=PHASE_NAMES[3],
                    sim_time=mst_time,
                    busy_time=np.zeros(cfg.n_ranks),
                )
            )

            # ---- Phase 5: Global Edge Pruning (collective) ---------------- #
            active = np.zeros(dg.n_edges, dtype=bool)
            active[mst_idx] = True
            prune_time = self._collective_time(n_pairs_full, _PRUNE_REDUCE_BYTES)
            phases.append(
                PhaseStats(
                    name=PHASE_NAMES[4],
                    sim_time=prune_time,
                    bytes_sent=n_pairs_full * _PRUNE_REDUCE_BYTES,
                    busy_time=np.zeros(cfg.n_ranks),
                )
            )

            # ---- Phase 6: Steiner Tree Edge (Alg. 6) ---------------------- #
            tree_prog = TreeEdgeProgram(self.partition, src, pred, dist)
            endpoints = np.concatenate([dg.u[active], dg.v[active]])
            te_stats = engine.run_phase(
                PHASE_NAMES[5],
                tree_prog,
                list(tree_prog.initial_messages(endpoints)),
            )
            phases.append(te_stats)

        finally:
            engine.close()

        # fault-recovery provenance: present iff the supervised engine
        # actually restarted a worker (results are bit-identical anyway)
        if getattr(engine, "restarts", 0):
            provenance["fault_recovery"] = {
                "restarts": engine.restarts,
                "replayed_supersteps": engine.replayed_supersteps,
                "recovery_wall_s": engine.recovery_wall_s,
            }

        # coalescing provenance: present iff ``bsp-mp`` actually grouped
        # supersteps behind shared barriers (logical counters — and hence
        # the tree — are identical either way); ``transport`` records the
        # data plane the pool ran on (shm rings vs pickled pipes)
        if getattr(engine, "coalesced_supersteps", 0):
            provenance["coalesced_supersteps"] = engine.coalesced_supersteps
        transport = getattr(engine, "transport_used", None)
        if transport is not None:
            provenance["transport"] = transport

        # ---- assemble the tree ---------------------------------------- #
        cross_w = dg.dprime[active] - dist[dg.u[active]] - dist[dg.v[active]]
        edge_rows = {
            (int(min(u, v)), int(max(u, v))): int(w)
            for u, v, w in zip(dg.u[active], dg.v[active], cross_w)
        }
        for u, v, w in tree_prog.edges:
            edge_rows[(u, v)] = w
        edges = np.asarray(
            [(u, v, w) for (u, v), w in sorted(edge_rows.items())],
            dtype=np.int64,
        ).reshape(-1, 3)
        total = int(edges[:, 2].sum()) if edges.size else 0

        # chunked collectives bound the pairwise buffer that must be
        # resident at once (§V-F); single-shot needs the full C(k, 2)
        chunk = cfg.collective_chunk_elements
        resident_pairs = n_pairs_full if chunk is None else min(chunk, n_pairs_full)
        memory = estimate_memory(
            self.partition,
            k,
            peak_queue_total=max(vc_stats.peak_queue_total, te_stats.peak_queue_total),
            n_distance_edges=resident_pairs,
            machine=machine,
        )
        out_diagram = None
        if cfg.collect_diagram:
            out_diagram = VoronoiDiagram(
                seeds=seeds_arr, src=src, pred=pred, dist=dist
            )

        result = SteinerTreeResult(
            seeds=seeds_arr,
            edges=edges,
            total_distance=total,
            phases=phases,
            wall_time_s=time.perf_counter() - t0,
            memory=memory,
            diagram=out_diagram,
            provenance=provenance,
        )
        if self.cache is not None:
            self.cache.put_solution(self.solution_key(seeds_arr), result)
        return result

    # ------------------------------------------------------------------ #
    def _collective_time(self, n_elements: int, elem_bytes: int) -> float:
        """Allreduce duration, single-shot or chunked per the config."""
        from repro.runtime.collectives import chunked_allreduce_time

        cfg = self.config
        if cfg.collective_chunk_elements is None:
            return cfg.machine.allreduce_time(cfg.n_ranks, n_elements * elem_bytes)
        return chunked_allreduce_time(
            cfg.machine,
            cfg.n_ranks,
            n_elements,
            cfg.collective_chunk_elements,
            elem_bytes=elem_bytes,
        )

    @staticmethod
    def _check_connected(
        seeds_arr: np.ndarray,
        si: np.ndarray,
        ti: np.ndarray,
        mst_idx: np.ndarray,
        k: int,
    ) -> None:
        """All seeds must end up in one MST component (else no Steiner
        tree exists)."""
        if mst_idx.size == k - 1:
            return
        uf = UnionFind(k)
        for e in mst_idx:
            uf.union(int(si[e]), int(ti[e]))
        root = uf.find(0)
        unreached = [int(seeds_arr[i]) for i in range(k) if uf.find(i) != root]
        raise DisconnectedSeedsError(unreached)


def distributed_steiner_tree(
    graph: "CSRGraph",
    seeds: Sequence[int],
    *,
    config: SolverConfig | None = None,
    cache: "SolveCache | None" = None,
    **config_kwargs: Any,
) -> SteinerTreeResult:
    """One-shot convenience wrapper around
    :class:`DistributedSteinerSolver`.

    Configuration may be given as a ready :class:`SolverConfig` *or* as
    keyword arguments in its field names (deprecated alias spellings
    are accepted with a warning — see
    :meth:`SolverConfig.from_kwargs`).
    """
    return DistributedSteinerSolver(
        graph, config, cache=cache, **config_kwargs
    ).solve(seeds)
