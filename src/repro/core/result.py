"""Result objects for Steiner-tree computations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.runtime.engine import PhaseStats
from repro.runtime.memory import MemoryReport
from repro.shortest_paths.voronoi import VoronoiDiagram

__all__ = ["SteinerTreeResult", "PHASE_NAMES"]

#: The six phases of Alg. 3, in order, matching the paper's chart legends.
PHASE_NAMES = (
    "Voronoi Cell",
    "Local Min Dist. Edge",
    "Global Min Dist. Edge",
    "MST",
    "Global Edge Pruning",
    "Steiner Tree Edge",
)


@dataclass
class SteinerTreeResult:
    """A computed Steiner tree plus the measurements the paper reports.

    Attributes
    ----------
    seeds:
        The terminal set ``S`` (sorted vertex ids).
    edges:
        ``int64[k, 3]`` rows ``(u, v, w)`` with ``u < v`` — the tree edge
        set ``ES`` with distances ``dS`` (Table IV counts ``k``).
    total_distance:
        ``D(GS) = sum of edge weights`` — the quality metric of
        Tables V–VII.
    phases:
        Per-phase :class:`~repro.runtime.engine.PhaseStats` in
        :data:`PHASE_NAMES` order (distributed solver only; empty for the
        sequential reference).
    wall_time_s:
        Host wall-clock spent computing (the *honest* Python runtime; the
        simulated parallel time lives in ``phases``/:meth:`sim_time`).
    memory:
        Cluster-wide memory estimate (distributed solver only).
    diagram:
        The Voronoi diagram, when requested via
        ``SolverConfig.collect_diagram`` (or always, for the sequential
        reference — it is a by-product there).
    provenance:
        How this result was produced — the cache/batching contract of
        ``docs/serve.md``.  Keys the solver sets: ``engine``,
        ``backend``, ``config_fingerprint``, ``cache_hit`` (and
        ``graph_hash`` when a cache is attached); the serve layer adds
        ``batch_size``, ``coalesced``, ``fused_sweep`` and
        ``request_id``.  Always JSON-safe (scalars/strings only), so it
        passes through :meth:`to_json` unmodified.
    """

    seeds: np.ndarray
    edges: np.ndarray
    total_distance: int
    phases: list[PhaseStats] = field(default_factory=list)
    wall_time_s: float = 0.0
    memory: Optional[MemoryReport] = None
    diagram: Optional[VoronoiDiagram] = None
    provenance: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def n_edges(self) -> int:
        """``|ES|`` — the Table IV metric."""
        return int(self.edges.shape[0])

    def vertices(self) -> np.ndarray:
        """``VS``: every vertex incident to a tree edge plus all seeds
        (a single seed with no edges is still a valid 1-vertex tree)."""
        if self.edges.size == 0:
            return np.asarray(self.seeds, dtype=np.int64)
        return np.unique(
            np.concatenate([self.edges[:, 0], self.edges[:, 1], self.seeds])
        ).astype(np.int64)

    def steiner_vertices(self) -> np.ndarray:
        """``S' = VS \\ S`` — non-terminal tree vertices."""
        return np.setdiff1d(self.vertices(), self.seeds)

    def sim_time(self) -> float:
        """End-to-end simulated parallel time (sum of phase makespans)."""
        return float(sum(p.sim_time for p in self.phases))

    def phase_time(self, name: str) -> float:
        """Simulated time of one named phase."""
        for p in self.phases:
            if p.name == name:
                return p.sim_time
        raise KeyError(name)

    def message_count(self) -> int:
        """Total messages over all phases (Fig. 6 sums the async ones)."""
        return int(sum(p.n_messages for p in self.phases))

    def to_networkx(self) -> Any:
        """Tree as a :class:`networkx.Graph` (weights under ``weight``)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(int(s) for s in self.seeds)
        for u, v, w in self.edges:
            g.add_edge(int(u), int(v), weight=int(w))
        return g

    def path_between(self, a: int, b: int) -> list[int]:
        """The unique tree path between two tree vertices.

        The analyst-facing query the paper's introduction motivates:
        once the tree connecting the seed set exists, "how are these two
        entities related *through* it?" is a path lookup.  Runs a BFS
        over the tree's adjacency (trees have unique paths).

        Raises ``KeyError`` if either vertex is not in the tree, or
        ``ValueError`` if they are in different components (cannot
        happen for a valid result, kept as a guard).
        """
        verts = {int(v) for v in self.vertices()}
        if int(a) not in verts or int(b) not in verts:
            missing = [v for v in (int(a), int(b)) if v not in verts]
            raise KeyError(f"vertex/vertices not in tree: {missing}")
        if a == b:
            return [int(a)]
        adj: dict[int, list[int]] = {}
        for u, v, _ in self.edges:
            adj.setdefault(int(u), []).append(int(v))
            adj.setdefault(int(v), []).append(int(u))
        # BFS from a to b
        parent: dict[int, int] = {int(a): -1}
        frontier = [int(a)]
        while frontier and int(b) not in parent:
            nxt: list[int] = []
            for u in frontier:
                for v in adj.get(u, ()):
                    if v not in parent:
                        parent[v] = u
                        nxt.append(v)
            frontier = nxt
        if int(b) not in parent:
            raise ValueError(f"no tree path between {a} and {b}")
        path = [int(b)]
        while path[-1] != int(a):
            path.append(parent[path[-1]])
        path.reverse()
        return path

    def path_distance(self, a: int, b: int) -> int:
        """Total distance along the unique tree path ``a .. b``."""
        path = self.path_between(a, b)
        lookup = {
            (int(u), int(v)): int(w) for u, v, w in self.edges
        }
        total = 0
        for u, v in zip(path, path[1:]):
            total += lookup[(min(u, v), max(u, v))]
        return total

    def to_payload(self) -> dict[str, Any]:
        """The canonical JSON-safe dict form — the shared schema of
        :func:`repro.api.schema.result_payload` (``schema_version``,
        ``seeds``, ``edges``, ``total_distance``, ``phases``,
        ``provenance``, ...), the exact ``result`` object the serve
        protocol returns."""
        from repro.api.schema import result_payload

        return result_payload(self)

    def to_json(self, *, indent: int | None = None) -> str:
        """:meth:`to_payload` as a JSON string."""
        import json

        return json.dumps(self.to_payload(), indent=indent)

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"SteinerTree(|S|={len(self.seeds)}, |ES|={self.n_edges}, "
            f"D(GS)={self.total_distance}, sim_time={self.sim_time():.4f}s)"
        )
