"""Solver configuration."""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field, fields
from typing import Any, Optional

from repro.runtime.cost_model import MachineModel
from repro.runtime.queues import QueueDiscipline

__all__ = ["SolverConfig", "CONFIG_FIELD_ALIASES", "FINGERPRINT_EXCLUSIONS"]

#: deprecated kwarg spelling -> canonical :class:`SolverConfig` field.
#: These are the historical CLI-flag names that drifted from the config
#: field names; :meth:`SolverConfig.from_kwargs` accepts them with a
#: :class:`DeprecationWarning` so old call sites keep working.
CONFIG_FIELD_ALIASES = {
    "ranks": "n_ranks",
    "queue": "discipline",
    "backend": "voronoi_backend",
    "num_workers": "workers",
}

#: The documented exclusion set of :meth:`SolverConfig.fingerprint` —
#: ``{field name: why excluding it is sound}``.  This is *data shared by
#: the runtime and the static checker*: ``fingerprint()`` skips exactly
#: these fields, the ``repro-steiner check`` fingerprint-coverage audit
#: (rules REP201-REP203, :mod:`repro.analysis.rules_fingerprint`) fails
#: if any :class:`SolverConfig` field is neither hashed nor listed here
#: with a reason, and ``tests/test_api.py`` pins the two views equal.
#: A field belongs here iff changing it can never change a correct
#: run's *results* — only how they are computed.
FINGERPRINT_EXCLUSIONS: dict[str, str] = {
    "bsp": "derived mirror of `engine` (set in __post_init__); the "
    "engine field itself is fingerprinted",
    "checkpoint_interval": "checkpoint cadence steers recovery cost "
    "only; recovery preserves parity (docs/robustness.md)",
    "max_restarts": "restart budget changes when WorkerCrashError "
    "escalates, never a successful run's results",
    "worker_timeout_s": "hang-detection heartbeat; recovery preserves "
    "parity, so results are identical at any timeout",
    "fault_plan": "injected faults are recovered bit-identically (the "
    "recovery-preserves-parity contract), so a plan never changes a "
    "correct run's output",
    "shm_transport": "transport selection moves the identical message "
    "bytes through shared-memory rings or pickled pipes; trees and "
    "every BSP counter are bit-identical either way (pinned by "
    "tests/test_engine_conformance.py)",
    "coalesce_threshold": "superstep coalescing groups physical "
    "barriers only; logical visit/message/superstep accounting is "
    "preserved bit-identically (conformance harness), so the "
    "threshold never changes results",
    "coalesce_max": "cap on logical supersteps per coalesced group — "
    "same physical-grouping-only argument as coalesce_threshold; "
    "results are bit-identical at any cap",
}


@dataclass(frozen=True)
class SolverConfig:
    """Knobs of the distributed solver (paper §IV defaults).

    Attributes
    ----------
    n_ranks:
        Simulated MPI world size.  The paper runs 16 ranks per node; the
        harness maps "node counts" to ranks with that factor where a
        figure is keyed by nodes.
    discipline:
        Pending-message scheduling: :attr:`QueueDiscipline.PRIORITY`
        (the paper's optimisation, default) or ``FIFO`` (HavoqGT default,
        the §V-C baseline).
    partition:
        ``"block"`` (contiguous equal-vertex ranges, paper default) or
        ``"hash"``.
    delegate_threshold:
        Degree above which a vertex's adjacency is striped across ranks
        (HavoqGT vertex-cut).  ``None`` disables delegates.
    machine:
        Cost-model constants for the simulation.
    engine:
        Runtime engine the message-driven phases execute on — any name
        registered in :mod:`repro.runtime.engines`: ``"async-heap"``
        (asynchronous event engine, the paper-faithful default),
        ``"bsp"`` (per-message bulk-synchronous supersteps, the §IV
        ablation baseline), ``"bsp-batched"`` (vectorised supersteps —
        identical semantics and message counts to ``"bsp"``, NumPy
        array operations instead of per-message Python), ``"bsp-mp"``
        (the batched supersteps sharded across a pool of forked worker
        processes — true cross-rank parallelism, same counts again) or
        ``"bsp-native"`` (each superstep fused into one numba-JIT
        kernel; transparently runs as ``"bsp-batched"`` when numba is
        not installed — same counts either way).  Every engine
        converges to the identical Steiner tree.
    workers:
        Process-pool size for the ``"bsp-mp"`` engine: ``None`` (the
        engine's reproducible default, currently 2), or an explicit
        count >= 1 (capped at ``n_ranks``; ``1`` forces the in-process
        fallback).  Accepted and ignored by the in-process engines, so
        configurations stay valid across engine switches.
    bsp:
        Deprecated alias: ``bsp=True`` selects ``engine="bsp"``.  After
        construction the field reflects whether the chosen engine is
        bulk-synchronous.
    collect_diagram:
        Attach the full Voronoi diagram arrays to the result (useful for
        inspection/tests; costs O(|V|) memory in the result object).
    max_events:
        Optional hard cap on simulation events per phase (guards runaway
        FIFO configurations in tests).
    collective_chunk_elements:
        When set, the ``EN`` allreduce runs in chunks of this many
        elements instead of one shot — the paper's §V-F memory/runtime
        trade-off ("multiple collective operations ... on smaller
        chunks, e.g., 500K or 1M items per chunk, at the expense of
        runtime performance").  Bounds the peak communication buffer in
        the memory model and adds latency terms to the collective
        phases.  ``None`` (default) = single-shot, as in the paper's
        headline runs.
    aggregate_remote_messages:
        HavoqGT-style message aggregation: messages a visit emits to the
        same remote rank share one wire transfer, cutting per-send CPU
        overhead (biggest win when hub vertices fan out).  Off by
        default so the headline numbers model unaggregated visitors;
        the aggregation ablation turns it on.
    voronoi_backend:
        ``None`` (default) simulates the Voronoi Cell phase on the
        message-driven engine — the paper-faithful path that produces
        the per-phase message counts behind Figs. 3-6.  Any registered
        name from :mod:`repro.shortest_paths.backends` (``"dijkstra"``,
        ``"delta-numpy"``, ``"delta-numba"``, ``"scipy"``, ...) instead
        computes the identical ``(src, pred, dist)`` fixpoint with that
        sequential kernel and charges only wall time for the phase —
        the fast path for workloads that need the tree, not the message
        trace.  ``"delta-numba"`` is the JIT tier; without numba it
        transparently runs as ``"delta-numpy"``.
    checkpoint_interval:
        ``bsp-mp`` fault tolerance: supersteps between in-memory
        owned-vertex checkpoints (``None`` = the engine's default,
        currently 4).  Smaller = less replay on recovery, more snapshot
        traffic.  Never changes results.
    max_restarts:
        Worker restarts tolerated per phase before ``bsp-mp`` escalates
        to :class:`~repro.errors.WorkerCrashError` (``None`` = the
        engine's default, currently 2).
    worker_timeout_s:
        Per-superstep heartbeat for ``bsp-mp``: a worker that takes
        longer than this to answer is declared hung, hard-killed, and
        recovered.  ``None`` (default) disables hang detection — crash
        detection via pipe EOF is always on.
    fault_plan:
        Deterministic chaos: a :class:`repro.faults.FaultPlan` whose
        actions the runtime and serve tiers inject at their scheduled
        points (``None`` = the ``REPRO_FAULT_PLAN`` env hook, which is
        itself usually unset).  Testing machinery — recovery keeps
        results bit-identical, so a fault plan never changes a correct
        run's output.
    shm_transport:
        ``bsp-mp`` message transport: ``None`` (default) auto-selects
        shared-memory rings when ``multiprocessing.shared_memory`` is
        available, ``True`` requests them explicitly, ``False`` forces
        the pickled-pipe fallback (the parity reference).  Results are
        bit-identical either way.
    coalesce_threshold:
        ``bsp-mp`` adaptive superstep coalescing: when a superstep's
        inbox holds fewer than this many messages, workers run several
        logical supersteps behind one barrier (``None`` = the engine's
        default, currently 1024; ``0`` disables coalescing).  Physical
        grouping only — logical counters are preserved bit-identically.
    coalesce_max:
        Cap on logical supersteps per coalesced group (``None`` = the
        engine's default, currently 16; groups also never straddle a
        ``checkpoint_interval`` boundary).
    """

    n_ranks: int = 16
    discipline: QueueDiscipline = QueueDiscipline.PRIORITY
    partition: str = "block"
    delegate_threshold: Optional[int] = None
    machine: MachineModel = field(default_factory=MachineModel)
    engine: str = "async-heap"
    workers: Optional[int] = None
    bsp: bool = False
    collect_diagram: bool = False
    max_events: Optional[int] = None
    collective_chunk_elements: Optional[int] = None
    aggregate_remote_messages: bool = False
    voronoi_backend: Optional[str] = None
    checkpoint_interval: Optional[int] = None
    max_restarts: Optional[int] = None
    worker_timeout_s: Optional[float] = None
    fault_plan: Optional[Any] = None
    shm_transport: Optional[bool] = None
    coalesce_threshold: Optional[int] = None
    coalesce_max: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if self.partition not in ("block", "hash"):
            raise ValueError("partition must be 'block' or 'hash'")
        if (
            self.collective_chunk_elements is not None
            and self.collective_chunk_elements < 1
        ):
            raise ValueError("collective_chunk_elements must be >= 1")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None for the default)")
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise ValueError(
                "checkpoint_interval must be >= 1 (or None for the default)"
            )
        if self.max_restarts is not None and self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0 (or None for the default)")
        if self.worker_timeout_s is not None and self.worker_timeout_s <= 0:
            raise ValueError("worker_timeout_s must be > 0 (or None to disable)")
        if self.coalesce_threshold is not None and self.coalesce_threshold < 0:
            raise ValueError(
                "coalesce_threshold must be >= 0 (or None for the default)"
            )
        if self.coalesce_max is not None and self.coalesce_max < 1:
            raise ValueError("coalesce_max must be >= 1 (or None for the default)")
        object.__setattr__(self, "discipline", QueueDiscipline(self.discipline))
        # the legacy bsp flag is an alias for engine="bsp"; afterwards
        # the field mirrors whether the engine is bulk-synchronous
        from repro.runtime.engines import get_engine as _get_engine

        if self.bsp and self.engine == "async-heap":
            object.__setattr__(self, "engine", "bsp")
        _get_engine(self.engine)  # fail fast on typos
        object.__setattr__(self, "bsp", self.engine.startswith("bsp"))
        if self.voronoi_backend is not None:
            # fail fast on typos rather than deep inside solve()
            from repro.shortest_paths.backends import get_backend

            get_backend(self.voronoi_backend)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "SolverConfig":
        """Build a config from keyword arguments, accepting the
        deprecated alias spellings in :data:`CONFIG_FIELD_ALIASES`.

        The canonical names are the dataclass field names; ``ranks``,
        ``queue``, ``backend`` and ``num_workers`` (the historical
        CLI-flag spellings) are mapped onto ``n_ranks``,
        ``discipline``, ``voronoi_backend`` and ``workers`` with a
        :class:`DeprecationWarning`.  Passing both an alias and its
        canonical field raises :class:`TypeError`; so does any unknown
        keyword.
        """
        resolved: dict[str, Any] = {}
        field_names = {f.name for f in fields(cls)}
        for key, value in kwargs.items():
            if key in CONFIG_FIELD_ALIASES:
                canonical = CONFIG_FIELD_ALIASES[key]
                warnings.warn(
                    f"SolverConfig keyword {key!r} is deprecated; "
                    f"use {canonical!r}",
                    DeprecationWarning,
                    stacklevel=2,
                )
                key = canonical
            if key not in field_names:
                raise TypeError(f"unknown SolverConfig field {key!r}")
            if key in resolved:
                raise TypeError(
                    f"SolverConfig field {key!r} given twice "
                    f"(canonical name and deprecated alias)"
                )
            resolved[key] = value
        return cls(**resolved)

    # ------------------------------------------------------------------ #
    def fingerprint_material(self) -> dict[str, Any]:
        """The exact ``{field: canonical value}`` dict the fingerprint
        hashes — every dataclass field except the documented
        :data:`FINGERPRINT_EXCLUSIONS`.

        Exposed separately so the fingerprint-coverage audit (REP202)
        and the regression tests can verify *what* is hashed without
        reversing the digest: a new ``SolverConfig`` field is covered
        automatically, and can only leave the material by being added to
        the exclusion dict with a written justification.
        """
        material: dict[str, Any] = {}
        for f in fields(self):
            if f.name in FINGERPRINT_EXCLUSIONS:
                continue
            value = getattr(self, f.name)
            if f.name == "machine":
                value = {
                    mf.name: getattr(value, mf.name) for mf in fields(value)
                }
            elif isinstance(value, QueueDiscipline):
                value = value.value
            material[f.name] = value
        return material

    def fingerprint(self) -> str:
        """Stable short hash over every behaviour-affecting field.

        This is the ``config_fingerprint`` component of the serve/cache
        key ``(graph_hash, frozenset(seeds), config_fingerprint)``: two
        configurations share a fingerprint iff a cached result computed
        under one is valid for the other.  Every dataclass field except
        the documented :data:`FINGERPRINT_EXCLUSIONS` participates — the
        derived ``bsp`` mirror and the fault-tolerance knobs never
        change a correct run's results (the recovery-preserves-parity
        contract, ``docs/robustness.md``), so results cached under one
        setting are valid under any other.  The machine model is
        flattened into its constants, values are canonicalised (enum ->
        value) and serialised with sorted keys, so the digest is
        independent of field ordering and of dict-insertion order.
        """
        blob = json.dumps(self.fingerprint_material(), sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]
