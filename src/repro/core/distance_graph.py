"""Distance-graph construction — the paper's Algorithm 5 (min-distance
cross-cell edges) plus its cost model.

Semantics (Mehlhorn / paper §II):

    ``E'1 = {(s, t) : an edge (u, v) in E exists with u in N(s),
    v in N(t)}`` and
    ``d'1(s, t) = min(d1(s, u) + d(u, v) + d1(v, t))``.

The simulation computes the *global* result with one vectorised pass over
the unique undirected edges — element-for-element what the per-rank local
scans followed by ``MPI_Allreduce(MPI_MIN)`` would produce — and charges
the distributed cost separately:

* **Local Min Dist. Edge** (edge-centric, asynchronous in the paper):
  every rank scans its local arcs; boundary vertices' ``(src, dist)``
  states are pulled from their owner ranks, one message per
  (remote vertex, holding rank) pair — a halo exchange.
* **Global Min Dist. Edge** (collective): allreduce over the ``EN``
  buffer.  The paper allocates the full ``C(|S|, 2)`` buffer up front
  (Alg. 3 line 2) — the memory model accounts for that — but only the
  observed pairs can carry finite distances, so the simulation reduces
  over the observed-pair buffer.

Tie-breaking: among equal-distance cross-cell edges bridging the same
cell pair, the lexicographically smallest ``(u, v)`` wins — the effect of
the paper's second ``Allreduce(MPI_MIN)`` over source-vertex ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.graph.csr import CSRGraph

from repro.runtime.cost_model import MachineModel
from repro.runtime.partition import PartitionedGraph
from repro.shortest_paths.voronoi import NO_VERTEX

__all__ = ["DistanceGraph", "build_distance_graph", "local_min_edge_costs"]

_STATE_MSG_BYTES = 24  # (vertex, src, dist) halo-exchange record


@dataclass
class DistanceGraph:
    """``G'1`` plus the bridging edges of ``EN``.

    For row ``i``: cells ``(cell_s[i], cell_t[i])`` (seed vertex ids,
    ``s < t``) are bridged by graph edge ``(u[i], v[i])`` with
    ``u in N(s), v in N(t)`` and ``d1(s,t) = dprime[i]``.
    """

    seeds: np.ndarray
    cell_s: np.ndarray
    cell_t: np.ndarray
    u: np.ndarray
    v: np.ndarray
    dprime: np.ndarray

    @property
    def n_edges(self) -> int:
        """``|E'1|`` — observed cross-cell pairs."""
        return int(self.cell_s.size)

    def seed_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """``(si, ti)`` rows as indices into :attr:`seeds` (for MST)."""
        lookup = {int(s): i for i, s in enumerate(self.seeds)}
        si = np.asarray([lookup[int(s)] for s in self.cell_s], dtype=np.int64)
        ti = np.asarray([lookup[int(t)] for t in self.cell_t], dtype=np.int64)
        return si, ti


def build_distance_graph(
    graph: "CSRGraph",
    seeds: np.ndarray,
    src: np.ndarray,
    dist: np.ndarray,
) -> DistanceGraph:
    """Vectorised global construction of ``G'1`` / ``EN``.

    One lexsort over the cross-cell edge candidates groups them by cell
    pair and places the winner — smallest ``(d', u, v)`` — first in each
    group.
    """
    eu, ev, ew = graph.edge_array()
    ok = (src[eu] != NO_VERTEX) & (src[ev] != NO_VERTEX)
    cross = ok & (src[eu] != src[ev])
    eu, ev, ew = eu[cross], ev[cross], ew[cross]
    if eu.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return DistanceGraph(seeds, empty, empty, empty, empty, empty)

    s_arr = np.minimum(src[eu], src[ev])
    t_arr = np.maximum(src[eu], src[ev])
    d_arr = dist[eu] + ew + dist[ev]
    # orient the bridge so u lies in the smaller-id cell
    swap = src[eu] != s_arr
    bu = np.where(swap, ev, eu)
    bv = np.where(swap, eu, ev)

    key = s_arr * np.int64(graph.n_vertices) + t_arr
    order = np.lexsort((bv, bu, d_arr, key))
    key, s_arr, t_arr = key[order], s_arr[order], t_arr[order]
    bu, bv, d_arr = bu[order], bv[order], d_arr[order]
    first = np.ones(key.size, dtype=bool)
    first[1:] = key[1:] != key[:-1]
    return DistanceGraph(
        seeds=seeds,
        cell_s=s_arr[first],
        cell_t=t_arr[first],
        u=bu[first],
        v=bv[first],
        dprime=d_arr[first],
    )


def local_min_edge_costs(
    partition: PartitionedGraph,
    machine: MachineModel,
) -> tuple[float, int, int]:
    """Simulated cost of the local min-distance-edge phase.

    Returns ``(sim_time, n_remote_messages, bytes_sent)``.

    Model: each rank scans its local arcs (``t_edge_scan`` each).  For
    every arc whose remote endpoint's state lives elsewhere, the owner
    must ship that endpoint's ``(src, dist)`` once per (vertex, holding
    rank) pair — the halo exchange.  Phase time is the slowest rank's
    scan-plus-send plus one network latency for the exchange wave.
    """
    u, v, _, arc_rank = partition.arc_arrays()
    owner = partition.owner
    # halo records: state of x shipped to holding rank h, for x in {u, v}
    remote_v = arc_rank != owner[v]
    remote_u = arc_rank != owner[u]
    halo_keys = np.concatenate(
        [
            v[remote_v] * np.int64(partition.n_ranks) + arc_rank[remote_v],
            u[remote_u] * np.int64(partition.n_ranks) + arc_rank[remote_u],
        ]
    )
    n_halo = int(np.unique(halo_keys).size) if halo_keys.size else 0

    arcs_per_rank = partition.local_arc_count()
    recv_per_rank = np.zeros(partition.n_ranks, dtype=np.int64)
    if halo_keys.size:
        dest = np.unique(halo_keys) % partition.n_ranks
        recv_per_rank = np.bincount(dest, minlength=partition.n_ranks)
    per_rank = (
        arcs_per_rank * machine.t_edge_scan
        + recv_per_rank * machine.t_visit
    )
    sim_time = float(per_rank.max()) if per_rank.size else 0.0
    if partition.n_ranks > 1 and n_halo:
        sim_time += machine.t_remote_latency
    return sim_time, n_halo, n_halo * _STATE_MSG_BYTES
