"""Distributed Voronoi-cell computation — the paper's Algorithm 4.

A :class:`~repro.runtime.engine.VertexProgram` implementing the
asynchronous Bellman–Ford-style relaxation:

* every seed starts with ``(src, pred, dist) = (s, s, 0)`` and visits its
  neighbours (``do_traversal(init_all)`` injects one bootstrap message per
  seed);
* a visitor carries ``(vp, t, r)`` — the sending vertex, its owning seed
  and the tentative distance ``r = dist(vp) + d(vp, vj)``;
* the visited vertex adopts the new state when it is a **lexicographic
  improvement** ``(r, t) < (dist, src)`` — strictly closer, or equally
  close to a smaller seed id.  The tie rule makes the converged ``(dist,
  src)`` fixpoint unique and equal to the sequential
  :func:`~repro.shortest_paths.voronoi.compute_voronoi_cells` result (the
  integration tests assert bit-equality);
* on adoption the vertex notifies its neighbours; with **delegate**
  partitioning, a high-degree vertex instead fans out one ``expand``
  message per rank holding a slice of its adjacency, and each slice rank
  relays to its local neighbours — HavoqGT's vertex-cut broadcast.

Message priority is the carried distance ``r``, so under the priority
discipline the queue serves closest-first — the paper's Dijkstra-like
acceleration (§IV).
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.runtime.partition import PartitionedGraph
from repro.shortest_paths.voronoi import INF, NO_VERTEX

__all__ = ["VoronoiProgram"]


class VoronoiProgram:
    """Alg. 4 as an engine program.  Holds the per-vertex state arrays.

    Payload formats
    ---------------
    vertex message  ``(vp, t, r)``:
        relax the visited vertex with candidate ``(dist=r, src=t,
        pred=vp)``.
    rank message ``("expand", u, t, r)``:
        scan the local adjacency slice of delegate ``u`` (whose state is
        ``(t, r)``) and emit relax messages to its neighbours.
    """

    __slots__ = ("part", "src", "pred", "dist", "_indptr", "_indices", "_weights")

    def __init__(self, partition: PartitionedGraph) -> None:
        self.part = partition
        n = partition.graph.n_vertices
        self.src = np.full(n, NO_VERTEX, dtype=np.int64)
        self.pred = np.full(n, NO_VERTEX, dtype=np.int64)
        self.dist = np.full(n, INF, dtype=np.int64)
        g = partition.graph
        self._indptr = g.indptr
        self._indices = g.indices
        self._weights = g.weights

    # ------------------------------------------------------------------ #
    def initial_messages(self, seeds: np.ndarray):
        """Bootstrap: initialise every seed and trigger its first visit.

        Paper Alg. 3 INITIALIZATION sets seed state; the subsequent
        ``do_traversal`` lets seeds push to neighbours (Alg. 4 line 5).
        """
        for s in seeds:
            s = int(s)
            self.src[s] = s
            self.pred[s] = s
            self.dist[s] = 0
            yield (s, (s, s, 0))

    # ------------------------------------------------------------------ #
    def priority(self, payload: Tuple) -> float:
        """Serve smaller tentative distances first (paper's priority
        queue); the FIFO discipline ignores this."""
        if payload[0] == "expand":
            return float(payload[3])
        return float(payload[2])

    # ------------------------------------------------------------------ #
    def visit(
        self, vertex: int, payload: Tuple, emit: Callable[[int, Tuple], None]
    ) -> None:
        """Relax ``vertex`` with the carried candidate state (Alg. 4
        lines 4-13)."""
        vp, t, r = payload
        # bootstrap self-visit of a seed: propagate unconditionally
        if vp == vertex and t == vertex and r == 0:
            self._expand(vertex, t, 0, emit)
            return
        # lexicographic improvement test:  (r, t) < (dist, src)
        dv, sv = self.dist[vertex], self.src[vertex]
        if r < dv or (r == dv and t < sv):
            self.dist[vertex] = r
            self.src[vertex] = t
            self.pred[vertex] = vp
            self._expand(vertex, t, r, emit)

    def visit_rank(
        self, rank: int, payload: Tuple, emit: Callable[[int, Tuple], None]
    ) -> None:
        """Delegate slice expansion on ``rank``."""
        _, u, t, r = payload
        indptr, indices, weights = self._indptr, self._indices, self._weights
        arc_rank = self.part.arc_rank
        for i in range(indptr[u], indptr[u + 1]):
            if arc_rank[i] != rank:
                continue
            emit(int(indices[i]), (u, t, int(r + weights[i])))

    # ------------------------------------------------------------------ #
    def _expand(
        self, u: int, t: int, r: int, emit: Callable[[int, Tuple], None]
    ) -> None:
        """Notify neighbours of ``u``'s new state (Alg. 4 lines 10-13)."""
        if self.part.is_delegate(u):
            for rank in self.part.slice_ranks(u):
                emit(-int(rank) - 1, ("expand", u, t, r))
            return
        indptr, indices, weights = self._indptr, self._indices, self._weights
        for i in range(indptr[u], indptr[u + 1]):
            emit(int(indices[i]), (u, t, int(r + weights[i])))
