"""Distributed Voronoi-cell computation — the paper's Algorithm 4.

A :class:`~repro.runtime.engine.VertexProgram` implementing the
asynchronous Bellman–Ford-style relaxation:

* every seed starts with ``(src, pred, dist) = (s, s, 0)`` and visits its
  neighbours (``do_traversal(init_all)`` injects one bootstrap message per
  seed);
* a visitor carries ``(vp, t, r)`` — the sending vertex, its owning seed
  and the tentative distance ``r = dist(vp) + d(vp, vj)``;
* the visited vertex adopts the new state when it is a **lexicographic
  improvement** ``(r, t) < (dist, src)`` — strictly closer, or equally
  close to a smaller seed id.  The tie rule makes the converged ``(dist,
  src)`` fixpoint unique and equal to the sequential
  :func:`~repro.shortest_paths.voronoi.compute_voronoi_cells` result (the
  integration tests assert bit-equality);
* on adoption the vertex notifies its neighbours; with **delegate**
  partitioning, a high-degree vertex instead fans out one ``expand``
  message per rank holding a slice of its adjacency, and each slice rank
  relays to its local neighbours — HavoqGT's vertex-cut broadcast.

Message priority is the carried distance ``r``, so under the priority
discipline the queue serves closest-first — the paper's Dijkstra-like
acceleration (§IV).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator, Tuple

import numpy as np

from repro.runtime.partition import PartitionedGraph
from repro.shortest_paths.voronoi import INF, NO_VERTEX

__all__ = ["VoronoiProgram"]


class VoronoiProgram:
    """Alg. 4 as an engine program.  Holds the per-vertex state arrays.

    Payload formats
    ---------------
    vertex message  ``(vp, t, r)``:
        relax the visited vertex with candidate ``(dist=r, src=t,
        pred=vp)``.
    rank message ``("expand", u, t, r)``:
        scan the local adjacency slice of delegate ``u`` (whose state is
        ``(t, r)``) and emit relax messages to its neighbours.
    """

    __slots__ = ("part", "src", "pred", "dist", "_indptr", "_indices", "_weights")

    def __init__(self, partition: PartitionedGraph) -> None:
        self.part = partition
        n = partition.graph.n_vertices
        self.src = np.full(n, NO_VERTEX, dtype=np.int64)
        self.pred = np.full(n, NO_VERTEX, dtype=np.int64)
        self.dist = np.full(n, INF, dtype=np.int64)
        g = partition.graph
        self._indptr = g.indptr
        self._indices = g.indices
        self._weights = g.weights

    # ------------------------------------------------------------------ #
    def initial_messages(
        self, seeds: np.ndarray
    ) -> Iterator[tuple[int, Tuple]]:
        """Bootstrap: initialise every seed and trigger its first visit.

        Paper Alg. 3 INITIALIZATION sets seed state; the subsequent
        ``do_traversal`` lets seeds push to neighbours (Alg. 4 line 5).
        """
        for s in seeds:
            s = int(s)
            self.src[s] = s
            self.pred[s] = s
            self.dist[s] = 0
            yield (s, (s, s, 0))

    # ------------------------------------------------------------------ #
    def priority(self, payload: Tuple) -> float:
        """Serve smaller tentative distances first (paper's priority
        queue); the FIFO discipline ignores this."""
        if payload[0] == "expand":
            return float(payload[3])
        return float(payload[2])

    def sort_key(self, payload: Tuple) -> Tuple[int, int, int]:
        """Total in-superstep order for the BSP engines: the candidate's
        full lexicographic rank ``(r, t, vp)``.

        With a *total* order, a superstep accepts exactly one candidate
        per vertex — the lexicographic-minimum improving one — which is
        the per-vertex reduction the batched engine computes with array
        operations; the scalar priority alone would leave ``r``-ties in
        arrival order and admit order-dependent extra acceptances.
        """
        if payload[0] == "expand":
            _, u, t, r = payload
            return (r, t, u)
        vp, t, r = payload
        return (r, t, vp)

    # ------------------------------------------------------------------ #
    def visit(
        self, vertex: int, payload: Tuple, emit: Callable[[int, Tuple], None]
    ) -> None:
        """Relax ``vertex`` with the carried candidate state (Alg. 4
        lines 4-13)."""
        vp, t, r = payload
        # bootstrap self-visit of a seed: propagate unconditionally
        if vp == vertex and t == vertex and r == 0:
            self._expand(vertex, t, 0, emit)
            return
        # lexicographic improvement test:  (r, t) < (dist, src)
        dv, sv = self.dist[vertex], self.src[vertex]
        if r < dv or (r == dv and t < sv):
            self.dist[vertex] = r
            self.src[vertex] = t
            self.pred[vertex] = vp
            self._expand(vertex, t, r, emit)

    def visit_rank(
        self, rank: int, payload: Tuple, emit: Callable[[int, Tuple], None]
    ) -> None:
        """Delegate slice expansion on ``rank``."""
        _, u, t, r = payload
        indptr, indices, weights = self._indptr, self._indices, self._weights
        arc_rank = self.part.arc_rank
        for i in range(indptr[u], indptr[u + 1]):
            if arc_rank[i] != rank:
                continue
            emit(int(indices[i]), (u, t, int(r + weights[i])))

    # ------------------------------------------------------------------ #
    def _expand(
        self, u: int, t: int, r: int, emit: Callable[[int, Tuple], None]
    ) -> None:
        """Notify neighbours of ``u``'s new state (Alg. 4 lines 10-13)."""
        if self.part.is_delegate(u):
            for rank in self.part.slice_ranks(u):
                emit(-int(rank) - 1, ("expand", u, t, r))
            return
        indptr, indices, weights = self._indptr, self._indices, self._weights
        for i in range(indptr[u], indptr[u + 1]):
            emit(int(indices[i]), (u, t, int(r + weights[i])))

    # ------------------------------------------------------------------ #
    # batch protocol (bsp-batched engine): one superstep = array ops
    # ------------------------------------------------------------------ #
    batch_payload_width = 3

    def batch_encode(self, target: int, payload: Tuple) -> Tuple[int, int, int]:
        """Payload as an int row: ``(vp, t, r)`` / expand ``(u, t, r)``
        (the target's sign already distinguishes the two forms)."""
        if payload[0] == "expand":
            return (payload[1], payload[2], payload[3])
        return payload

    def batch_visit(
        self, targets: np.ndarray, payload: np.ndarray, emitter: Any
    ) -> None:
        """One superstep of relaxations over message arrays.

        Per vertex, a superstep under the total :meth:`sort_key` order
        accepts exactly the lexicographic-minimum improving candidate
        (every later candidate compares ``>=`` the adopted state, so the
        improvement test fails) — computed here as a sorted per-vertex
        reduction instead of one Python callback per message.
        """
        vp, t, r = payload[:, 0], payload[:, 1], payload[:, 2]
        # seed bootstrap messages expand unconditionally (Alg. 3 init)
        boot = (vp == targets) & (t == targets) & (r == 0)
        cand = ~boot
        acc_v = acc_t = acc_r = np.zeros(0, dtype=np.int64)
        if cand.any():
            tgt_c, vp_c, t_c, r_c = targets[cand], vp[cand], t[cand], r[cand]
            # per-vertex lexicographic minimum of (r, t, vp): sort by
            # (tgt, r, t, vp) and keep each vertex's first row.  (A
            # packed np.minimum.at reduction would need (r, t, vp) to
            # fit one int64, which astronomical weights rule out.)
            order = np.lexsort((vp_c, t_c, r_c, tgt_c))
            tgt_s = tgt_c[order]
            first = np.ones(tgt_s.size, dtype=bool)
            first[1:] = tgt_s[1:] != tgt_s[:-1]
            sel = order[first]
            v, rv, tv, pv = tgt_c[sel], r_c[sel], t_c[sel], vp_c[sel]
            improve = (rv < self.dist[v]) | (
                (rv == self.dist[v]) & (tv < self.src[v])
            )
            acc_v, acc_r, acc_t, acc_p = (
                v[improve], rv[improve], tv[improve], pv[improve],
            )
            self.dist[acc_v] = acc_r
            self.src[acc_v] = acc_t
            self.pred[acc_v] = acc_p
        self._batch_expand(
            np.concatenate([targets[boot], acc_v]),
            np.concatenate([t[boot], acc_t]),
            np.concatenate([r[boot], acc_r]),
            emitter,
        )

    def batch_visit_rank(
        self, ranks: np.ndarray, payload: np.ndarray, emitter: Any
    ) -> None:
        """Delegate slice expansions (hub vertices are few, so the outer
        loop is per message; the arc scan itself is vectorised)."""
        indptr, indices, weights = self._indptr, self._indices, self._weights
        arc_rank = self.part.arc_rank
        for rank, (u, t, r) in zip(ranks, payload):
            arcs = np.arange(indptr[u], indptr[u + 1], dtype=np.int64)
            arcs = arcs[arc_rank[arcs] == rank]
            if arcs.size:
                out = np.empty((arcs.size, 3), dtype=np.int64)
                out[:, 0] = u
                out[:, 1] = t
                out[:, 2] = r + weights[arcs]
                emitter.emit(
                    np.full(arcs.size, rank, dtype=np.int64),
                    indices[arcs].astype(np.int64),
                    out,
                )

    # ------------------------------------------------------------------ #
    # native protocol (bsp-native engine): compiled superstep kernel
    # ------------------------------------------------------------------ #
    def native_state(self) -> tuple:
        """The ``(src, pred, dist)`` arrays the bsp-native engine's
        compiled superstep relaxes in place — the same lexicographic
        ``(r, t, vp)`` reduction and improvement test as
        :meth:`batch_visit`, fused with the neighbour expansion into
        one kernel (see :mod:`repro.runtime.engine_native`)."""
        return self.src, self.pred, self.dist

    # ------------------------------------------------------------------ #
    # mp protocol (bsp-mp engine): replicate, shard, gather
    # ------------------------------------------------------------------ #
    def mp_clone_payload(self) -> dict:
        """Mutable state for worker replicas: the already-initialised
        (seed) entries as compact ``(idx, src, pred, dist)`` columns —
        the partition itself is inherited through fork, never pickled."""
        idx = np.nonzero(self.dist != INF)[0]
        return {
            "idx": idx,
            "src": self.src[idx],
            "pred": self.pred[idx],
            "dist": self.dist[idx],
        }

    @classmethod
    def mp_materialize(
        cls, partition: PartitionedGraph, payload: dict
    ) -> "VoronoiProgram":
        """Worker-side rebuild from the inherited partition plus the
        compact state snapshot."""
        prog = cls(partition)
        idx = payload["idx"]
        prog.src[idx] = payload["src"]
        prog.pred[idx] = payload["pred"]
        prog.dist[idx] = payload["dist"]
        return prog

    def mp_collect(self, owned: np.ndarray) -> dict:
        """Converged state of the vertices this worker owns (the only
        entries a worker can have written: ``batch_visit`` targets are
        routed by owner rank), reached entries only."""
        idx = owned[self.dist[owned] != INF]
        return {
            "idx": idx,
            "src": self.src[idx],
            "pred": self.pred[idx],
            "dist": self.dist[idx],
        }

    def mp_merge(self, collected: dict) -> None:
        """Fold one worker's owned-state snapshot into this program."""
        idx = collected["idx"]
        self.src[idx] = collected["src"]
        self.pred[idx] = collected["pred"]
        self.dist[idx] = collected["dist"]

    # ------------------------------------------------------------------ #
    def _batch_expand(
        self,
        vs: np.ndarray,
        ts: np.ndarray,
        rs: np.ndarray,
        emitter: Any,
    ) -> None:
        """Vectorised :meth:`_expand` for every adopting vertex at once:
        neighbour targets gathered with ``np.repeat`` over CSR rows."""
        if vs.size == 0:
            return
        part = self.part
        owner = part.owner
        if part.delegates.size:
            deleg = part.delegate_mask(vs)
            for v, t, r in zip(vs[deleg], ts[deleg], rs[deleg]):
                slices = part.slice_ranks(int(v))
                out = np.empty((slices.size, 3), dtype=np.int64)
                out[:, 0] = v
                out[:, 1] = t
                out[:, 2] = r
                emitter.emit(
                    np.full(slices.size, owner[v], dtype=np.int64),
                    -slices.astype(np.int64) - 1,
                    out,
                )
            vs, ts, rs = vs[~deleg], ts[~deleg], rs[~deleg]
            if vs.size == 0:
                return
        indptr = self._indptr
        starts = indptr[vs].astype(np.int64)
        counts = (indptr[vs + 1] - indptr[vs]).astype(np.int64)
        total = int(counts.sum())
        if total == 0:
            return
        offsets = np.cumsum(counts) - counts
        arc_idx = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets, counts)
            + np.repeat(starts, counts)
        )
        out = np.empty((total, 3), dtype=np.int64)
        out[:, 0] = np.repeat(vs, counts)
        out[:, 1] = np.repeat(ts, counts)
        out[:, 2] = np.repeat(rs, counts) + self._weights[arc_idx]
        emitter.emit(
            np.repeat(owner[vs], counts).astype(np.int64),
            self._indices[arc_idx].astype(np.int64),
            out,
        )


if TYPE_CHECKING:
    from repro.contracts import MPCloneable

    # mypy verifies the all-or-none mp-clone protocol statically; the
    # REP401 checker rule is the review-time twin of this assignment.
    _MP_CONFORMANCE: type[MPCloneable] = VoronoiProgram
