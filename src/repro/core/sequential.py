"""Shared-memory reference implementation of the parallel algorithm
(paper Algorithm 2).

This is the fast path for library users who just want a tree: one
multi-source Dijkstra (the exact fixpoint the asynchronous distributed
kernel converges to), a vectorised cross-cell-edge scan, a sequential
Prim MST, and predecessor walks.  The distributed solver produces the
**identical** tree (same edges, same total distance) because both paths
share the canonical-predecessor rule, the distance-graph construction and
the tree assembly — this equality is asserted by the integration tests
and is the library's primary correctness anchor.

:func:`steiner_tree_from_diagram` is the downstream half (steps 2-6) on
its own: given a converged Voronoi diagram it deterministically produces
the tree.  The serve layer's request batcher relies on this split — a
fused multi-source sweep yields per-request diagrams, and each request's
tree is assembled by exactly this code, so batched results are
bit-identical to independent solves by construction.
"""

from __future__ import annotations

import time
import warnings
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.graph.csr import CSRGraph

import numpy as np

from repro.core.distance_graph import build_distance_graph
from repro.core.result import SteinerTreeResult
from repro.core.tree_edge import walk_tree_edges
from repro.errors import DisconnectedSeedsError
from repro.mst.prim import prim_mst
from repro.mst.union_find import UnionFind
from repro.seeds.selection import validate_seed_set
from repro.shortest_paths.backends import get_backend

__all__ = ["sequential_steiner_tree", "steiner_tree_from_diagram"]

#: historical names predating the backend registry
_BACKEND_ALIASES = {"heap": "dijkstra"}


def steiner_tree_from_diagram(
    graph: "CSRGraph",
    seeds_arr: np.ndarray,
    src: np.ndarray,
    pred: np.ndarray,
    dist: np.ndarray,
) -> tuple[np.ndarray, int]:
    """Assemble the Steiner tree from a converged Voronoi diagram.

    Steps 2-6 of Algorithm 2: distance graph ``G'1``, sequential Prim
    MST, pruning, predecessor walks and edge assembly.  Deterministic
    given the diagram — every solve path (sequential, distributed,
    batched serve) funnels through the same construction, which is what
    makes their trees comparable bit-for-bit.

    Returns ``(edges, total_distance)`` where ``edges`` is the
    ``int64[k, 3]`` row array of :class:`SteinerTreeResult`.

    Raises
    ------
    DisconnectedSeedsError
        If the seeds do not share a connected component.
    """
    k = seeds_arr.size

    # Step 2: distance graph G'1 with bridging edges
    dg = build_distance_graph(graph, seeds_arr, src, dist)

    # Step 3: sequential MST G'2 of G'1
    si, ti = dg.seed_indices()
    mst_idx = prim_mst(k, si, ti, dg.dprime)
    if mst_idx.size != k - 1:
        uf = UnionFind(k)
        for e in mst_idx:
            uf.union(int(si[e]), int(ti[e]))
        root = uf.find(0)
        unreached = [int(seeds_arr[i]) for i in range(k) if uf.find(i) != root]
        raise DisconnectedSeedsError(unreached)

    # Steps 4-5: prune non-MST cross edges, walk predecessors
    active = np.zeros(dg.n_edges, dtype=bool)
    active[mst_idx] = True
    endpoints = np.concatenate([dg.u[active], dg.v[active]])
    path_edges = walk_tree_edges(src, pred, dist, endpoints)

    # Step 6: assemble GS
    cross_w = dg.dprime[active] - dist[dg.u[active]] - dist[dg.v[active]]
    edge_rows = {
        (int(min(u, v)), int(max(u, v))): int(w)
        for u, v, w in zip(dg.u[active], dg.v[active], cross_w)
    }
    for u, v, w in path_edges:
        edge_rows[(u, v)] = w
    edges = np.asarray(
        [(u, v, w) for (u, v), w in sorted(edge_rows.items())],
        dtype=np.int64,
    ).reshape(-1, 3)
    total = int(edges[:, 2].sum()) if edges.size else 0
    return edges, total


def sequential_steiner_tree(
    graph: "CSRGraph",
    seeds: Sequence[int],
    *,
    voronoi_backend: str | None = None,
    backend: str | None = None,
) -> SteinerTreeResult:
    """2-approximate Steiner minimal tree, shared-memory reference.

    Guarantees ``D(GS)/Dmin <= 2 (1 - 1/l)`` (Mehlhorn's bound via KMB).

    Parameters
    ----------
    voronoi_backend:
        Voronoi-cell kernel — any name registered in
        :mod:`repro.shortest_paths.backends` (``"dijkstra"``,
        ``"delta-numpy"``, ``"scipy"``, ...), matching the
        :class:`~repro.core.config.SolverConfig` field of the same
        name.  ``"heap"`` is kept as an alias for the ``"dijkstra"``
        reference.  Every backend yields the identical diagram, hence
        the identical tree; the choice is purely a performance
        decision — the default is the vectorised ``"delta-numpy"``
        kernel (~5-6x the heap reference on 100K-edge graphs,
        bit-identical output).
    backend:
        Deprecated spelling of ``voronoi_backend`` (kept with a
        :class:`DeprecationWarning` so pre-facade call sites keep
        working).

    Raises
    ------
    DisconnectedSeedsError
        If the seeds are not mutually reachable.
    """
    if backend is not None:
        if voronoi_backend is not None:
            raise TypeError(
                "pass voronoi_backend only (backend is its deprecated alias)"
            )
        warnings.warn(
            "sequential_steiner_tree(backend=...) is deprecated; "
            "use voronoi_backend=... (the SolverConfig field name)",
            DeprecationWarning,
            stacklevel=2,
        )
        voronoi_backend = backend
    if voronoi_backend is None:
        voronoi_backend = "delta-numpy"

    t0 = time.perf_counter()
    seeds_arr = validate_seed_set(graph, seeds)
    resolved = _BACKEND_ALIASES.get(voronoi_backend, voronoi_backend)

    # Step 1: Voronoi cells (src, pred, dist per vertex)
    vd = get_backend(resolved)(graph, seeds_arr)

    # Steps 2-6: shared deterministic assembly
    edges, total = steiner_tree_from_diagram(
        graph, seeds_arr, vd.src, vd.pred, vd.dist
    )

    return SteinerTreeResult(
        seeds=seeds_arr,
        edges=edges,
        total_distance=total,
        phases=[],
        wall_time_s=time.perf_counter() - t0,
        diagram=vd,
        provenance={"backend": resolved, "cache_hit": False},
    )
