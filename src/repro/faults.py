"""Deterministic fault injection for chaos testing.

A :class:`FaultPlan` is a *replayable* failure schedule: a list of
:class:`FaultAction` records saying exactly which fault to inject where
— kill ``bsp-mp`` worker ``w`` at superstep ``s``, delay a worker long
enough to trip the heartbeat, scribble over the next disk-cache entry,
drop a TCP connection mid-response.  Because the schedule is data (and
:meth:`FaultPlan.seeded` derives it from a PRNG seed), a chaos test
that fails replays *identically*: same kill, same superstep, same
recovery path.

Consumers pull matching actions with :meth:`FaultPlan.take`; an action
fires **once** (consumption is tracked per plan instance, thread-safe),
so a respawned worker is not re-killed at the same superstep and a
retry loop converges.  :meth:`FaultPlan.reset` re-arms a plan for the
next run.

Injection points (each consumer documents its own semantics):

``kill_worker``
    :class:`~repro.runtime.engine_mp.BSPMultiprocessEngine` hard-kills
    worker ``worker`` just before superstep ``superstep`` executes
    (``os._exit`` in the child — indistinguishable from an OOM kill).
``delay_worker``
    The same engine delays that worker's superstep by ``delay_s``
    seconds — with ``SolverConfig(worker_timeout_s=...)`` set below the
    delay, the driver declares the worker hung and recovers.
``corrupt_cache``
    :class:`~repro.serve.cache.SolveCache` truncates/garbles the next
    disk-tier pickle it writes (a torn write); the subsequent load must
    quarantine it and continue as a miss.
``drop_connection``
    The TCP transport closes the client connection just before writing
    the next solve response; the service and batching worker must
    survive.

Plans reach the runtime two ways: ``SolverConfig(fault_plan=...)`` for
in-process callers, or the ``REPRO_FAULT_PLAN`` environment variable
(a JSON action list, or ``@/path/to/plan.json``) for subprocesses and
servers — :func:`env_plan` parses it once and hands every consumer in
the process the *same* instance, so consumption is global.
"""

from __future__ import annotations

import json
import os
import random
import threading
from dataclasses import asdict, dataclass, field
from typing import Iterable, Optional, Sequence

__all__ = [
    "ENV_VAR",
    "FaultAction",
    "FaultPlan",
    "env_plan",
]

#: environment hook: JSON action list, or ``@path`` to a JSON file
ENV_VAR = "REPRO_FAULT_PLAN"

#: action kinds the shipped consumers understand
KNOWN_KINDS = ("kill_worker", "delay_worker", "corrupt_cache", "drop_connection")


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault (see the module docstring for kind semantics).

    ``worker``/``superstep``/``phase`` narrow where the action fires;
    a ``None`` field matches anything, and ``superstep`` is the 1-based
    index within a phase.  ``delay_s`` only means something for
    ``delay_worker``.
    """

    kind: str
    worker: Optional[int] = None
    superstep: Optional[int] = None
    phase: Optional[str] = None
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {list(KNOWN_KINDS)}"
            )
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")

    def matches(
        self,
        kind: str,
        *,
        phase: Optional[str] = None,
        superstep: Optional[int] = None,
        worker: Optional[int] = None,
    ) -> bool:
        """Does this action fire at the given injection point?  A
        ``None`` field on the *action* is a wildcard; a ``None`` query
        argument means the caller does not filter on that axis."""
        if self.kind != kind:
            return False
        if self.phase is not None and phase is not None and self.phase != phase:
            return False
        if (
            self.superstep is not None
            and superstep is not None
            and self.superstep != superstep
        ):
            return False
        if self.worker is not None and worker is not None and self.worker != worker:
            return False
        return True


class FaultPlan:
    """An ordered, consumable schedule of :class:`FaultAction` records.

    >>> plan = FaultPlan.kill(worker=1, superstep=3)
    >>> [a.kind for a in plan.take("kill_worker", superstep=3)]
    ['kill_worker']
    >>> plan.take("kill_worker", superstep=3)  # fired once, now spent
    []
    >>> plan.reset()
    >>> len(plan.take("kill_worker", superstep=3))
    1
    """

    def __init__(self, actions: Iterable[FaultAction] = ()) -> None:
        self.actions: tuple[FaultAction, ...] = tuple(actions)
        self._fired = [False] * len(self.actions)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def kill(
        cls, worker: int, superstep: int, phase: str | None = None
    ) -> "FaultPlan":
        """One-action plan: kill ``worker`` at ``superstep``."""
        return cls(
            [FaultAction("kill_worker", worker=worker, superstep=superstep, phase=phase)]
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        n_faults: int = 1,
        kinds: Sequence[str] = ("kill_worker",),
        max_worker: int = 2,
        max_superstep: int = 8,
        max_delay_s: float = 0.2,
    ) -> "FaultPlan":
        """A reproducible random schedule: the same ``seed`` always
        yields the same actions, so a failing chaos run replays exactly.

        >>> FaultPlan.seeded(7).actions == FaultPlan.seeded(7).actions
        True
        """
        rng = random.Random(seed)
        actions = []
        for _ in range(n_faults):
            kind = rng.choice(list(kinds))
            actions.append(
                FaultAction(
                    kind,
                    worker=rng.randrange(max_worker)
                    if kind in ("kill_worker", "delay_worker")
                    else None,
                    superstep=rng.randint(1, max_superstep)
                    if kind in ("kill_worker", "delay_worker")
                    else None,
                    delay_s=round(rng.uniform(0.0, max_delay_s), 3)
                    if kind == "delay_worker"
                    else 0.0,
                )
            )
        return cls(actions)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a JSON action list (the :data:`ENV_VAR` wire format)."""
        data = json.loads(text)
        if not isinstance(data, list):
            raise ValueError("fault plan JSON must be a list of action objects")
        return cls(FaultAction(**item) for item in data)

    def to_json(self) -> str:
        """Serialise the schedule (consumption state is *not* included)."""
        return json.dumps([asdict(a) for a in self.actions])

    # ------------------------------------------------------------------ #
    # consumption
    # ------------------------------------------------------------------ #
    def take(
        self,
        kind: str,
        *,
        phase: Optional[str] = None,
        superstep: Optional[int] = None,
        worker: Optional[int] = None,
    ) -> list[FaultAction]:
        """Consume and return every not-yet-fired action matching the
        injection point.  Thread-safe; each action fires at most once."""
        out: list[FaultAction] = []
        with self._lock:
            for i, action in enumerate(self.actions):
                if self._fired[i]:
                    continue
                if action.matches(
                    kind, phase=phase, superstep=superstep, worker=worker
                ):
                    self._fired[i] = True
                    out.append(action)
        return out

    def peek(
        self,
        kind: str,
        *,
        phase: Optional[str] = None,
        superstep: Optional[int] = None,
        worker: Optional[int] = None,
    ) -> list[FaultAction]:
        """Like :meth:`take`, but *without* consuming: every
        not-yet-fired action matching the injection point, left armed.
        Consumers that batch several injection points behind one
        decision (e.g. the ``bsp-mp`` engine planning a coalesced
        superstep group) peek ahead to find the earliest fault, then
        :meth:`take` only at the point where it actually fires."""
        with self._lock:
            return [
                a
                for a, f in zip(self.actions, self._fired)
                if not f
                and a.matches(
                    kind, phase=phase, superstep=superstep, worker=worker
                )
            ]

    def pending(self) -> int:
        """Number of actions that have not fired yet."""
        with self._lock:
            return self._fired.count(False)

    def fired(self) -> list[FaultAction]:
        """The actions that have fired, in schedule order."""
        with self._lock:
            return [a for a, f in zip(self.actions, self._fired) if f]

    def reset(self) -> None:
        """Re-arm every action (for the next run of a reused plan)."""
        with self._lock:
            self._fired = [False] * len(self.actions)

    def __len__(self) -> int:
        return len(self.actions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({len(self.actions)} actions, {self.pending()} pending)"


# --------------------------------------------------------------------- #
# environment hook
# --------------------------------------------------------------------- #
_env_lock = threading.Lock()
_env_cache: tuple[str, FaultPlan] | None = None


def env_plan() -> FaultPlan | None:
    """The process-wide plan from :data:`ENV_VAR`, or ``None`` if unset.

    Parsed once per distinct variable value and *shared*: every consumer
    in the process draws from the same consumption state, so an action
    fires exactly once no matter which subsystem sees it first.  An
    unparsable value raises ``ValueError`` (a chaos harness misconfig
    should be loud, not silently fault-free).
    """
    global _env_cache
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    with _env_lock:
        if _env_cache is not None and _env_cache[0] == raw:
            return _env_cache[1]
        text = raw
        if raw.startswith("@"):
            with open(raw[1:], "r", encoding="utf-8") as fh:
                text = fh.read()
        plan = FaultPlan.from_json(text)
        _env_cache = (raw, plan)
        return plan
