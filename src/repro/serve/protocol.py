"""Line-delimited JSON protocol over any byte-stream transport.

One request per line in, one response per line out — the shapes are
defined once in :mod:`repro.api.schema` (``schema_version`` 1).  The
handler is transport-agnostic: :mod:`repro.serve.server` wires it to
stdio and TCP, tests drive it with plain strings.

Robustness contract: a malformed line (bad JSON, unknown op, missing
fields) produces an ``ok: false`` error envelope on the output stream
and the connection stays up; only EOF or an explicit ``shutdown`` op
ends the conversation.  Line length is bounded
(:data:`MAX_LINE_BYTES`, overridable per handler): an oversized frame
is answered with a structured ``oversized`` error and the rest of the
line is discarded without ever being buffered — a misbehaving client
cannot balloon server memory.  A transport that dies mid-read
(``ConnectionResetError`` on a socket) must still let in-flight solves
resolve; the stream transports guarantee it by draining before
returning.  Solve responses are written as they complete — batched
requests resolve together, so responses may arrive out of request
order; clients correlate by ``id``.
"""

from __future__ import annotations

import json
import threading
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.serve.service import _Pending

from repro.api.schema import (
    SchemaError,
    SolveRequest,
    dumps,
    error_payload,
    parse_request,
    response_payload,
)
from repro.serve.service import SolverService

__all__ = ["MAX_LINE_BYTES", "OversizedLineError", "ProtocolHandler"]

#: default request-line bound (bytes).  Generous — a 1 MiB line holds a
#: seed list ~100k entries long — while keeping a single bad client
#: from buffering unbounded garbage in server memory.
MAX_LINE_BYTES = 1 << 20


class OversizedLineError(ValueError):
    """A request line exceeded the protocol's byte bound
    (``error.code == "oversized"``)."""

    code = "oversized"

    def __init__(self, limit: int) -> None:
        self.limit = limit
        super().__init__(
            f"request line exceeds the protocol bound of {limit} bytes"
        )


class ProtocolHandler:
    """One protocol conversation: parses lines, dispatches ops, writes
    envelopes.

    Parameters
    ----------
    service:
        The shared :class:`~repro.serve.service.SolverService`; several
        handlers (TCP connections) may point at one service.
    write:
        ``write(line)`` sink for response lines (no trailing newline).
        Called from the caller's thread for control ops and from the
        service's batching worker for solve completions — an internal
        lock serialises the two.
    on_shutdown:
        Invoked once when this conversation sees a ``shutdown`` op
        (after the acknowledgement is written); the transport uses it
        to stop its accept loop.
    max_line_bytes:
        Request-line bound for :meth:`handle_line` (and advertised to
        transports that enforce it during the read itself).
    """

    def __init__(
        self,
        service: SolverService,
        write: Callable[[str], None],
        *,
        on_shutdown: Callable[[], None] | None = None,
        max_line_bytes: int = MAX_LINE_BYTES,
    ) -> None:
        if max_line_bytes < 1:
            raise ValueError("max_line_bytes must be >= 1")
        self.service = service
        self.max_line_bytes = max_line_bytes
        self._write = write
        self._on_shutdown = on_shutdown
        self._write_lock = threading.Lock()
        self._inflight: list = []  # pending slots awaiting resolution

    # ------------------------------------------------------------------ #
    def send(self, payload: dict) -> None:
        """Serialise and write one response line (thread-safe)."""
        line = dumps(payload)
        with self._write_lock:
            self._write(line)

    def reject_oversized(self) -> None:
        """Answer an oversized frame a transport refused to buffer (the
        structured ``oversized`` error; the conversation stays up)."""
        self.send(
            error_payload(None, OversizedLineError(self.max_line_bytes))
        )

    def handle_line(self, line: str) -> bool:
        """Process one request line; returns ``False`` when the
        conversation should end (``shutdown``), ``True`` otherwise."""
        if len(line) > self.max_line_bytes:
            # byte-counting transports never get here (they bound the
            # read itself); string callers get the same structured error
            self.reject_oversized()
            return True
        line = line.strip()
        if not line:
            return True
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            self.send(error_payload(None, SchemaError(f"invalid JSON: {exc}")))
            return True
        try:
            request = parse_request(payload)
        except SchemaError as exc:
            rid = payload.get("id") if isinstance(payload, dict) else None
            self.send(error_payload(rid, exc))
            return True
        return self.handle_request(request)

    def handle_request(self, request: SolveRequest) -> bool:
        """Dispatch one parsed request; same return contract as
        :meth:`handle_line`."""
        op = request.op
        if op == "ping":
            self.send(response_payload(request.id, pong=True))
            return True
        if op == "stats":
            self.send(response_payload(request.id, stats=self.service.stats()))
            return True
        if op == "graphs":
            self.send(response_payload(request.id, graphs=self.service.graphs()))
            return True
        if op == "health":
            self.send(response_payload(request.id, health=self.service.health()))
            return True
        if op == "drain":
            # blocks this conversation (not the service) until admitted
            # work is answered; the payload reports the outcome
            drained = self.service.drain()
            self.send(response_payload(request.id, drained=drained))
            return True
        if op == "shutdown":
            self.drain()
            self.send(response_payload(request.id, shutting_down=True))
            if self._on_shutdown is not None:
                self._on_shutdown()
            return False

        # solve: submit without blocking the read loop; the batching
        # worker resolves the slot and _completed writes the envelope
        try:
            pending = self.service.submit(request, on_done=self._completed)
        except Exception as exc:
            self.send(error_payload(request.id, exc))
            return True
        self._inflight.append(pending)
        return True

    # ------------------------------------------------------------------ #
    def _completed(self, pending: "_Pending") -> None:
        self._inflight = [p for p in self._inflight if p is not pending]
        if pending.error is not None:
            self.send(error_payload(pending.request.id, pending.error))
        else:
            self.send(response_payload(pending.request.id, result=pending.result))

    def drain(self, timeout: float | None = None) -> None:
        """Block until every in-flight solve of this conversation has
        been answered (EOF and ``shutdown`` call this so no accepted
        request is silently dropped)."""
        for pending in list(self._inflight):
            pending.event.wait(timeout)
