"""Result and diagram caching for the solver service.

Two LRU maps behind one lock:

* **solutions** — full :class:`~repro.core.result.SteinerTreeResult`
  objects keyed by ``(graph_hash, frozenset(seeds),
  config_fingerprint)``; a hit skips the solve entirely;
* **diagrams** — converged
  :class:`~repro.shortest_paths.voronoi.VoronoiDiagram` arrays keyed by
  ``(graph_hash, frozenset(seeds), "diagram:<backend>")``; a hit skips
  the multi-source sweep (the dominant cost) while phases 2-6 still
  run, so configurations differing only outside the sweep share work.

The key contract (documented in ``docs/serve.md``): ``graph_hash`` is
:meth:`CSRGraph.content_hash` (bytes of the CSR arrays), the seed set
is order-insensitive (``frozenset``), and ``config_fingerprint`` is
:meth:`SolverConfig.fingerprint` — a digest over every
behaviour-affecting configuration field, independent of field ordering.

With ``disk_dir`` set, solutions are additionally pickled to disk and
survive process restarts: an in-memory miss falls through to disk
before being counted as a miss.  Entries are content-addressed by a
digest of the key, so the directory can be shared by several servers
on one machine.

The disk tier is hardened against torn/corrupt pickles (a crash mid
``rename``, bit rot, a concurrent writer on a non-atomic filesystem):
any failure to load an entry quarantines the bad file under a
``.corrupt`` suffix — so it is inspectable but never re-read — counts
it in ``stats.corrupt``, and the lookup continues as a plain miss.
Corruption is injectable for chaos tests via a
:class:`~repro.faults.FaultPlan` carrying ``corrupt_cache`` actions
(each consumed action garbles the next entry written).

The cache is duck-typed from the solver's side (``get_solution`` /
``put_solution`` / ``get_diagram`` / ``put_diagram``) — tests can
substitute an instrumented implementation.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Hashable, Iterable, Optional

if TYPE_CHECKING:
    from repro.core.config import SolverConfig
    from repro.faults import FaultPlan
    from repro.graph.csr import CSRGraph

from repro.core.result import SteinerTreeResult
from repro.shortest_paths.voronoi import VoronoiDiagram

__all__ = ["CacheStats", "SolveCache", "solution_key"]


def solution_key(
    graph: "CSRGraph", seeds: Iterable[int], config: "SolverConfig"
) -> tuple[str, frozenset[int], str]:
    """Build the canonical cache key ``(graph_hash, frozenset(seeds),
    config_fingerprint)`` from live objects."""
    return (
        graph.content_hash(),
        frozenset(int(s) for s in seeds),
        config.fingerprint(),
    )


def _key_digest(key: Hashable) -> str:
    """Stable filename-safe digest of a cache key (sorted seed set, so
    the digest is order-insensitive like the key itself)."""
    graph_hash, seeds, fingerprint = key
    blob = f"{graph_hash}|{sorted(seeds)}|{fingerprint}"
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters, surfaced through serve's ``stats`` op and the
    benchmark records."""

    solution_hits: int = 0
    solution_misses: int = 0
    diagram_hits: int = 0
    diagram_misses: int = 0
    disk_hits: int = 0
    evictions: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "solution_hits": self.solution_hits,
            "solution_misses": self.solution_misses,
            "diagram_hits": self.diagram_hits,
            "diagram_misses": self.diagram_misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }


@dataclass
class _LRU:
    """Minimal LRU dict (move-to-end on hit, popitem(last=False) on
    overflow)."""

    capacity: int
    data: OrderedDict = field(default_factory=OrderedDict)

    def get(self, key: Hashable) -> Any | None:
        if key not in self.data:
            return None
        self.data.move_to_end(key)
        return self.data[key]

    def put(self, key: Hashable, value: Any) -> int:
        """Insert; returns the number of evictions (0 or 1)."""
        self.data[key] = value
        self.data.move_to_end(key)
        if len(self.data) > self.capacity:
            self.data.popitem(last=False)
            return 1
        return 0


class SolveCache:
    """Thread-safe LRU (+ optional disk) cache for solves.

    Parameters
    ----------
    max_solutions / max_diagrams:
        LRU capacities (entries, not bytes).  Diagrams are O(|V|)
        arrays, solutions are O(|tree|) — cap diagrams lower on large
        graphs.
    disk_dir:
        When set, solutions are pickled under this directory
        (created if missing) and reloaded on in-memory misses — warm
        state across server restarts.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`; its ``corrupt_cache``
        actions garble disk entries as they are written (deterministic
        torn-write injection for the chaos suite).
    """

    def __init__(
        self,
        max_solutions: int = 128,
        max_diagrams: int = 32,
        disk_dir: str | Path | None = None,
        *,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        if max_solutions < 1 or max_diagrams < 1:
            raise ValueError("cache capacities must be >= 1")
        self._solutions = _LRU(max_solutions)
        self._diagrams = _LRU(max_diagrams)
        self._lock = threading.Lock()
        self.stats = CacheStats()
        self.fault_plan = fault_plan
        self.disk_dir: Path | None = None
        if disk_dir is not None:
            self.disk_dir = Path(disk_dir)
            self.disk_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # solutions
    # ------------------------------------------------------------------ #
    def get_solution(self, key: Hashable) -> Optional[SteinerTreeResult]:
        """Cached result for ``key``, or ``None`` (counted as a miss)."""
        with self._lock:
            hit = self._solutions.get(key)
            if hit is None and self.disk_dir is not None:
                hit = self._disk_load(key)
                if hit is not None:
                    self.stats.disk_hits += 1
                    self.stats.evictions += self._solutions.put(key, hit)
            if hit is None:
                self.stats.solution_misses += 1
            else:
                self.stats.solution_hits += 1
            return hit

    def peek_solution(self, key: Hashable) -> Optional[SteinerTreeResult]:
        """Like :meth:`get_solution` but without touching the counters
        or LRU order — the batcher uses this to plan fusion without
        double-counting the solver's own lookup."""
        with self._lock:
            hit = self._solutions.data.get(key)
            if hit is None and self.disk_dir is not None:
                hit = self._disk_load(key)
            return hit

    def put_solution(self, key: Hashable, result: SteinerTreeResult) -> None:
        with self._lock:
            self.stats.evictions += self._solutions.put(key, result)
            if self.disk_dir is not None:
                self._disk_store(key, result)

    # ------------------------------------------------------------------ #
    # diagrams
    # ------------------------------------------------------------------ #
    def get_diagram(self, key: Hashable) -> Optional[VoronoiDiagram]:
        with self._lock:
            hit = self._diagrams.get(key)
            if hit is None:
                self.stats.diagram_misses += 1
            else:
                self.stats.diagram_hits += 1
            return hit

    def put_diagram(self, key: Hashable, diagram: VoronoiDiagram) -> None:
        with self._lock:
            self.stats.evictions += self._diagrams.put(key, diagram)

    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Drop every in-memory entry (disk entries are kept) and reset
        the counters."""
        with self._lock:
            self._solutions.data.clear()
            self._diagrams.data.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._solutions.data)

    # ------------------------------------------------------------------ #
    # disk tier
    # ------------------------------------------------------------------ #
    def _disk_path(self, key: Hashable) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{_key_digest(key)}.pkl"

    def _disk_store(self, key: Hashable, result: SteinerTreeResult) -> None:
        path = self._disk_path(key)
        tmp = path.with_suffix(".tmp")
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)  # atomic within one filesystem
        except OSError:  # disk tier is best-effort, never fatal
            tmp.unlink(missing_ok=True)
            return
        if self.fault_plan is not None and self.fault_plan.take("corrupt_cache"):
            # injected torn write: truncate mid-entry, as a crash between
            # write and rename would leave it on a non-atomic filesystem
            try:
                data = path.read_bytes()
                path.write_bytes(data[: max(1, len(data) // 2)])
            except OSError:  # pragma: no cover - injection best-effort
                pass

    def _disk_load(self, key: Hashable) -> Optional[SteinerTreeResult]:
        """Load one disk entry; any failure quarantines the file and
        reads as a miss.

        The catch is deliberately broad: unpickling executes arbitrary
        reconstruction code, so torn writes surface not just as
        :class:`pickle.UnpicklingError` but as ``AttributeError``,
        ``ImportError``, ``MemoryError``... — none of which may take
        down the service over one bad cache file.
        """
        path = self._disk_path(key)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except OSError:
            return None  # absent or unreadable: a plain miss
        except Exception:
            self._quarantine(path)
            return None

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (``<name>.corrupt``) so it is
        never re-read but stays inspectable; count it."""
        self.stats.corrupt += 1
        try:
            path.replace(path.with_suffix(path.suffix + ".corrupt"))
        except OSError:  # pragma: no cover - the rename is best-effort
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
