"""Request coalescing: N compatible solves as ONE multi-source sweep.

The Voronoi-cell sweep — the paper's dominant cost — is already
multi-source, and its converged ``(src, pred, dist)`` fixpoint is a
pure function of ``(graph, seeds)`` (the registry's deterministic
``(dist, owner)`` tie-break plus canonical predecessors).  That makes
independent requests fusable: place each request in its own disjoint
copy of the graph, run a *single* backend call over the stacked CSR,
and slice the converged arrays back per request.  Each slice is exactly
the fixpoint an independent sweep would have produced — the components
never interact, and the fixpoint is unique — so batched results are
**bit-identical** to sequential ones (property-tested in
``tests/test_serve.py``).

Why fuse at all?  The vectorised kernels (``delta-numpy``, ``scipy``)
pay a fixed NumPy/SciPy dispatch overhead per relaxation wave; stacking
R requests amortises that overhead over R components that settle in the
same waves.  The stacked graph costs R× the CSR memory for the duration
of the sweep — the service bounds R with its ``max_batch`` knob.

This is the ROADMAP's "multi-tenant" shape: the fused instance is a
Steiner *Forest*-like problem (independent terminal groups in disjoint
components) executed as one array program.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.shortest_paths.backends import compute_multisource
from repro.shortest_paths.voronoi import NO_VERTEX, VoronoiDiagram

__all__ = ["stack_graphs", "fused_multisource", "FusedSweep"]


def stack_graphs(graph: CSRGraph, n_copies: int) -> CSRGraph:
    """The disjoint union of ``n_copies`` of ``graph`` as one CSR.

    Copy ``r`` owns the vertex range ``[r*n, (r+1)*n)``; no edges cross
    copies, so any per-component algorithm behaves on each copy exactly
    as it would on ``graph`` alone.
    """
    if n_copies < 1:
        raise ValueError("n_copies must be >= 1")
    if n_copies == 1:
        return graph
    n, m = graph.n_vertices, graph.n_arcs
    reps = np.arange(n_copies, dtype=np.int64)
    # per-copy offsets applied to adjacency offsets and neighbour ids
    indptr = np.concatenate(
        [graph.indptr[:-1] + r * m for r in reps] + [np.asarray([n_copies * m])]
    )
    indices = np.concatenate([graph.indices + r * n for r in reps])
    weights = np.tile(graph.weights, n_copies)
    return CSRGraph(indptr, indices, weights)


class FusedSweep:
    """Outcome of one fused sweep: per-request diagrams + provenance."""

    __slots__ = ("diagrams", "backend", "elapsed_s", "batch_size")

    def __init__(
        self,
        diagrams: list[VoronoiDiagram],
        backend: str,
        elapsed_s: float,
    ) -> None:
        self.diagrams = diagrams
        self.backend = backend
        self.elapsed_s = elapsed_s
        self.batch_size = len(diagrams)


def fused_multisource(
    graph: CSRGraph,
    seed_sets: Sequence[Sequence[int]],
    *,
    backend: str = "delta-numpy",
) -> FusedSweep:
    """Run one multi-source sweep answering every seed set at once.

    Returns per-request :class:`VoronoiDiagram` slices, each
    bit-identical to ``compute_multisource(graph, seeds,
    backend=...)``'s diagram for that request alone.
    """
    if not seed_sets:
        raise ValueError("seed_sets must be non-empty")
    n = graph.n_vertices
    n_req = len(seed_sets)

    if n_req == 1:
        ms = compute_multisource(graph, seed_sets[0], backend=backend)
        return FusedSweep([ms.diagram], backend, ms.elapsed_s)

    stacked = stack_graphs(graph, n_req)
    all_seeds = np.concatenate(
        [
            np.asarray(sorted(int(s) for s in seeds), dtype=np.int64) + r * n
            for r, seeds in enumerate(seed_sets)
        ]
    )
    t0 = time.perf_counter()
    ms = compute_multisource(stacked, all_seeds, backend=backend)
    elapsed = time.perf_counter() - t0

    diagrams: list[VoronoiDiagram] = []
    for r, seeds in enumerate(seed_sets):
        lo, hi = r * n, (r + 1) * n
        src = ms.src[lo:hi].copy()
        pred = ms.pred[lo:hi].copy()
        dist = ms.dist[lo:hi].copy()
        # map stacked vertex ids back into the original graph's id space
        src[src != NO_VERTEX] -= lo
        pred[pred != NO_VERTEX] -= lo
        diagrams.append(
            VoronoiDiagram(
                seeds=np.asarray(sorted(int(s) for s in seeds), dtype=np.int64),
                src=src,
                pred=pred,
                dist=dist,
            )
        )
    return FusedSweep(diagrams, backend, elapsed)
