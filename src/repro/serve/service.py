"""The persistent solver service: warm graphs, batching, caching.

:class:`SolverService` is the transport-independent core behind
``repro-steiner serve``.  It owns

* a **graph store** — datasets loaded once per process and shared by
  every request (and, through the ``bsp-mp`` engine's forked worker
  pool, by every worker as copy-on-write pages — graphs are never
  pickled across processes);
* per-graph :class:`repro.api.Session` objects keeping partition and
  solver state warm across requests;
* a **batching worker**: concurrent requests arriving within
  ``batch_window_s`` of each other that share a graph and a
  configuration fingerprint are *coalesced* — duplicate seed sets are
  answered by one solve, distinct seed sets are fused into a single
  multi-source sweep (:mod:`repro.serve.batch`) with per-request
  extraction — with results bit-identical to independent solves;
* a shared :class:`repro.serve.cache.SolveCache` so repeated requests
  skip the sweep entirely (``provenance["cache_hit"] = true``).

Every response's ``provenance`` records how it was produced
(``cache_hit``, ``batch_size``, ``coalesced``, ``fused_sweep``,
``request_id``); service-wide counters are exposed through the
``stats`` op and drive ``benchmarks/bench_serve.py``.

Robustness (``docs/robustness.md``): requests may carry a
``deadline_ms`` budget — expiry in-queue or mid-batch answers with a
structured ``timeout`` error instead of hanging; ``max_queue_depth``
bounds admission, shedding excess load with a ``retry_after_ms`` hint;
transient solve failures (the ``bsp-mp`` worker-crash class,
:class:`~repro.errors.WorkerCrashError` — *never* deterministic
errors, which would recur identically) are retried with exponential
backoff; :meth:`SolverService.drain` stops admissions and waits out
in-flight work for graceful shutdown, and :meth:`SolverService.health`
reports liveness for load balancers.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.api import Session, _apply_overrides
from repro.api.schema import SolveRequest, parse_request
from repro.core.config import SolverConfig
from repro.core.result import SteinerTreeResult
from repro.errors import WorkerCrashError
from repro.faults import env_plan
from repro.serve.batch import fused_multisource
from repro.serve.cache import SolveCache

if TYPE_CHECKING:
    from repro.core.solver import DistributedSteinerSolver
    from repro.graph.csr import CSRGraph
    from repro.shortest_paths.voronoi import VoronoiDiagram

__all__ = [
    "QueueFull",
    "RequestTimeout",
    "ServeCounters",
    "ServiceClosed",
    "ServiceDraining",
    "SolverService",
]


class ServiceClosed(RuntimeError):
    """The service is shutting down and cannot accept requests."""


class ServiceDraining(RuntimeError):
    """The service is draining: in-flight work finishes, new solve
    requests are refused (``error.code == "draining"``)."""

    code = "draining"


class RequestTimeout(RuntimeError):
    """The request's ``deadline_ms`` budget expired before a result was
    delivered (``error.code == "timeout"``) — whether still queued or
    mid-batch, the client gets this instead of an indefinite wait."""

    code = "timeout"


class QueueFull(RuntimeError):
    """Admission refused: the queue is at ``max_queue_depth``
    (``error.code == "shed"``).  ``retry_after_ms`` is a backoff hint
    sized from the current backlog."""

    code = "shed"

    def __init__(self, message: str, *, retry_after_ms: int) -> None:
        self.retry_after_ms = int(retry_after_ms)
        super().__init__(message)


@dataclass
class ServeCounters:
    """Service-wide counters (the ``stats`` op payload)."""

    requests: int = 0
    responses: int = 0
    errors: int = 0
    batches: int = 0
    fused_sweeps: int = 0
    coalesced: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    shed: int = 0
    timeouts: int = 0
    retries: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "responses": self.responses,
            "errors": self.errors,
            "batches": self.batches,
            "fused_sweeps": self.fused_sweeps,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "retries": self.retries,
        }


def _timeout_error(pending: "_Pending") -> RequestTimeout:
    return RequestTimeout(
        f"request {pending.request.id!r} exceeded its deadline of "
        f"{pending.request.deadline_ms} ms"
    )


class _Pending:
    """One in-flight request: a waitable slot the batching worker
    resolves with a result or an error."""

    __slots__ = ("request", "config", "graph_name", "on_done", "event",
                 "result", "error", "deadline")

    def __init__(
        self,
        request: SolveRequest,
        config: SolverConfig,
        graph_name: str,
        on_done: Callable[["_Pending"], None] | None,
    ) -> None:
        self.request = request
        self.config = config
        self.graph_name = graph_name
        self.on_done = on_done
        self.event = threading.Event()
        self.result: SteinerTreeResult | None = None
        self.error: BaseException | None = None
        # absolute monotonic expiry, stamped at admission; None = no
        # deadline (the pre-deadline_ms behaviour)
        self.deadline: float | None = (
            time.monotonic() + request.deadline_ms / 1000.0
            if request.deadline_ms is not None
            else None
        )

    def expired(self) -> bool:
        """Has the request's ``deadline_ms`` budget run out?"""
        return self.deadline is not None and time.monotonic() > self.deadline

    def resolve(
        self,
        result: SteinerTreeResult | None = None,
        error: BaseException | None = None,
    ) -> None:
        self.result = result
        self.error = error
        # on_done (the transport write) runs BEFORE the event flips, so
        # drain()/wait() returning guarantees the response left the
        # process; a dead transport must not kill the batching worker.
        try:
            if self.on_done is not None:
                self.on_done(self)
        except Exception:
            pass
        finally:
            self.event.set()

    def wait(self, timeout: float | None = None) -> SteinerTreeResult:
        """Block until resolved; re-raises solve errors in the caller."""
        if not self.event.wait(timeout):
            raise TimeoutError(
                f"request {self.request.id!r} not resolved within {timeout}s"
            )
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class SolverService:
    """Transport-independent persistent solver (see module docstring).

    Parameters
    ----------
    config / config_kwargs:
        Default :class:`SolverConfig` for requests that do not override
        fields; the service default switches the sweep to the
        vectorised ``delta-numpy`` backend (the fast, fusable path) —
        pass an explicit config to serve the simulated message-driven
        runtime instead.
    cache:
        ``None`` (default) builds a process-local
        :class:`~repro.serve.cache.SolveCache`; pass an instance to
        share/configure it (disk tier, capacities), or ``False`` to
        disable caching.
    batch_window_s / max_batch:
        How long the worker waits to collect a batch after the first
        pending request, and the cap on requests fused into one sweep
        (each fused request costs one graph copy of memory during the
        sweep).
    graph_loader:
        ``name -> CSRGraph`` used by :meth:`open_graph`; defaults to
        :func:`repro.harness.datasets.load_dataset` (memoised).
    max_queue_depth:
        Admission bound: with more than this many requests already
        queued, :meth:`submit` sheds the newcomer with :class:`QueueFull`
        (``retry_after_ms`` sized from the backlog) instead of buffering
        unbounded work.  ``None`` (default) = unbounded, the pre-PR-8
        behaviour.
    transient_retries / retry_backoff_s:
        Exponential-backoff retry of *transient* solve failures — the
        ``bsp-mp`` worker-crash class
        (:class:`~repro.errors.WorkerCrashError`) only; deterministic
        errors (bad seeds, disconnected components, program bugs) recur
        identically and are never retried.  ``transient_retries`` extra
        attempts (0 disables), first backoff ``retry_backoff_s``
        seconds, doubling per attempt.
    """

    def __init__(
        self,
        *,
        config: SolverConfig | None = None,
        cache: SolveCache | bool | None = None,
        batch_window_s: float = 0.005,
        max_batch: int = 8,
        graph_loader: Callable[[str], Any] | None = None,
        max_queue_depth: int | None = None,
        transient_retries: int = 2,
        retry_backoff_s: float = 0.05,
        **config_kwargs: Any,
    ) -> None:
        if config is not None and config_kwargs:
            raise TypeError(
                "pass either a SolverConfig or its fields as keyword "
                f"arguments, not both: {sorted(config_kwargs)}"
            )
        if config is None:
            config_kwargs.setdefault("voronoi_backend", "delta-numpy")
            config = SolverConfig.from_kwargs(**config_kwargs)
        self.config = config
        #: the deterministic chaos schedule every serve-tier consumer
        #: (cache corruption, TCP connection drops) draws from
        self.fault_plan = (
            config.fault_plan if config.fault_plan is not None else env_plan()
        )
        if cache is None or cache is True:
            cache = SolveCache(fault_plan=self.fault_plan)
        self.cache: SolveCache | None = cache if cache is not False else None
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None)")
        self.max_queue_depth = max_queue_depth
        if transient_retries < 0:
            raise ValueError("transient_retries must be >= 0")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        self.transient_retries = transient_retries
        self.retry_backoff_s = retry_backoff_s
        if graph_loader is None:
            from repro.harness.datasets import load_dataset

            graph_loader = load_dataset
        self._graph_loader = graph_loader

        self.counters = ServeCounters()
        self._sessions: dict[str, Session] = {}
        self._queue: deque[_Pending] = deque()
        self._cv = threading.Condition()
        self._worker: threading.Thread | None = None
        self._closed = False
        self._draining = False
        self._outstanding = 0  # admitted but not yet resolved
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------ #
    # graph store
    # ------------------------------------------------------------------ #
    def add_graph(self, name: str, graph: "CSRGraph") -> None:
        """Register an in-memory graph under ``name`` (tests, benches,
        embedding applications)."""
        with self._cv:
            self._sessions[name] = Session(
                graph, config=self.config, cache=self.cache
            )

    def open_graph(self, name: str) -> "CSRGraph":
        """Load (once) and return the graph behind ``name``."""
        session = self._session_for(name)
        return session.graph

    def graphs(self) -> list[str]:
        """Names of the graphs currently warm in this process."""
        with self._cv:
            return sorted(self._sessions)

    def _session_for(self, name: str) -> Session:
        with self._cv:
            session = self._sessions.get(name)
        if session is not None:
            return session
        graph = self._graph_loader(name)  # raises KeyError on unknown names
        with self._cv:
            # double-checked: another thread may have won the load race
            session = self._sessions.get(name)
            if session is None:
                session = Session(graph, config=self.config, cache=self.cache)
                self._sessions[name] = session
            return session

    # ------------------------------------------------------------------ #
    # request intake
    # ------------------------------------------------------------------ #
    def submit(
        self,
        request: SolveRequest | Mapping[str, Any],
        on_done: Callable[[_Pending], None] | None = None,
    ) -> _Pending:
        """Enqueue a solve request; returns the pending slot.

        Config resolution and graph loading happen here (in the calling
        thread) so malformed requests fail fast; the batching worker
        only ever sees executable work.
        """
        if not isinstance(request, SolveRequest):
            request = parse_request(request)
        if request.op != "solve":
            raise ValueError(f"submit() only accepts solve requests, got {request.op!r}")
        self.counters.requests += 1
        assert request.graph is not None  # parse_request enforces this
        self._session_for(request.graph)  # load/validate before queueing
        config = _apply_overrides(self.config, dict(request.config))
        pending = _Pending(request, config, request.graph, on_done)
        with self._cv:
            if self._closed:
                raise ServiceClosed("service is closed")
            if self._draining:
                raise ServiceDraining(
                    "service is draining and accepts no new solve requests"
                )
            if (
                self.max_queue_depth is not None
                and len(self._queue) >= self.max_queue_depth
            ):
                self.counters.shed += 1
                raise QueueFull(
                    f"admission queue is full "
                    f"({len(self._queue)}/{self.max_queue_depth}); retry later",
                    retry_after_ms=self._retry_after_ms(),
                )
            self._queue.append(pending)
            self._outstanding += 1
            self._ensure_worker()
            self._cv.notify_all()
        return pending

    def _retry_after_ms(self) -> int:
        """Backoff hint for shed requests: the time the current backlog
        needs to clear, estimated at one batch per batch window (>= 1 ms
        so clients always wait a nonzero interval)."""
        # caller holds self._cv
        backlog_batches = max(1, -(-len(self._queue) // self.max_batch))
        return max(1, int(1000 * self.batch_window_s * backlog_batches))

    def solve(
        self,
        graph: str,
        seeds: Sequence[int],
        *,
        request_id: str = "-",
        timeout: float | None = None,
        **config_overrides: Any,
    ) -> SteinerTreeResult:
        """Blocking convenience wrapper: submit one request and wait."""
        req = SolveRequest(
            id=request_id,
            graph=graph,
            seeds=tuple(int(s) for s in seeds),
            config=dict(config_overrides),
        )
        return self.submit(req).wait(timeout)

    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """The ``stats`` op payload: counters, cache stats, graphs."""
        payload: dict[str, Any] = {
            "counters": self.counters.as_dict(),
            "graphs": self.graphs(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "batch_window_s": self.batch_window_s,
            "max_batch": self.max_batch,
            "max_queue_depth": self.max_queue_depth,
            "queue_depth": len(self._queue),
            "default_config_fingerprint": self.config.fingerprint(),
        }
        if self.cache is not None:
            payload["cache"] = self.cache.stats.as_dict()
        return payload

    def health(self) -> dict[str, Any]:
        """The ``health`` op payload: liveness for load balancers —
        cheap (no cache/session scans) and always answered, even while
        draining."""
        with self._cv:
            status = (
                "closed"
                if self._closed
                else "draining"
                if self._draining
                else "ok"
            )
            return {
                "status": status,
                "queue_depth": len(self._queue),
                "outstanding": self._outstanding,
                "max_queue_depth": self.max_queue_depth,
                "uptime_s": round(time.monotonic() - self._started_at, 3),
            }

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown, phase one: stop admitting solve requests
        (submits raise :class:`ServiceDraining`) and wait until every
        already-admitted request has been answered.  Control ops
        (``ping``/``stats``/``health``) keep working; call
        :meth:`close` afterwards to release sessions.  Returns ``True``
        when fully drained, ``False`` on timeout (work still in
        flight).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            self._draining = True
            self._cv.notify_all()
            while self._outstanding > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cv.wait(remaining)
            return True

    def close(self) -> None:
        """Stop accepting work, fail pending requests, join the worker."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            pending = list(self._queue)
            self._queue.clear()
            self._outstanding -= len(pending)
            self._cv.notify_all()
            worker = self._worker
        for p in pending:
            p.resolve(error=ServiceClosed("service closed before execution"))
        if worker is not None and worker is not threading.current_thread():
            worker.join(timeout=30)
        for session in self._sessions.values():
            session.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def draining(self) -> bool:
        return self._draining

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # batching worker
    # ------------------------------------------------------------------ #
    def _ensure_worker(self) -> None:
        # caller holds self._cv
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._worker_loop, name="repro-serve-batcher", daemon=True
            )
            self._worker.start()

    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if self._closed and not self._queue:
                    return
                batch = [self._queue.popleft()]
                deadline = time.monotonic() + self.batch_window_s
                while len(batch) < self.max_batch:
                    if self._queue:
                        batch.append(self._queue.popleft())
                        continue
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or self._closed:
                        break
                    self._cv.wait(remaining)
            # in-queue deadline expiry: a request that aged out while
            # waiting is answered (with a structured timeout) rather
            # than executed — late work would be wasted work
            live: list[_Pending] = []
            for p in batch:
                if p.expired():
                    self._finish(p, error=_timeout_error(p))
                else:
                    live.append(p)
            if not live:
                continue
            batch = live
            self.counters.batches += 1
            for group in self._group(batch):
                try:
                    self._execute_group(group)
                except Exception as exc:  # backstop: the worker never dies
                    for p in group:
                        if not p.event.is_set():
                            self._finish(p, error=exc)

    @staticmethod
    def _group(batch: list[_Pending]) -> list[list[_Pending]]:
        """Split a batch into coalescable groups: same graph, same
        configuration fingerprint."""
        groups: OrderedDict[tuple, list[_Pending]] = OrderedDict()
        for p in batch:
            key = (p.graph_name, p.config.fingerprint())
            groups.setdefault(key, []).append(p)
        return list(groups.values())

    def _execute_group(self, group: list[_Pending]) -> None:
        """Answer one coalescable group, fusing where profitable."""
        config = group[0].config
        try:
            session = self._session_for(group[0].graph_name)
            solver = session.solver_for(config)
        except Exception as exc:  # unknown graph raced away, bad config
            for p in group:
                self._finish(p, error=exc)
            return

        # dedupe identical seed sets: one solve answers all duplicates
        unique: OrderedDict[frozenset, list[_Pending]] = OrderedDict()
        for p in group:
            unique.setdefault(frozenset(p.request.seeds), []).append(p)

        # split cache-warm keys from the ones that need a sweep, so the
        # fusion plan only covers real work (peek leaves counters alone;
        # the solver's own get_solution does the counted lookup)
        to_compute: list[frozenset] = []
        for seeds_key in unique:
            if self.cache is not None and (
                self.cache.peek_solution(solver.solution_key(seeds_key))
                is not None
            ):
                continue
            to_compute.append(seeds_key)

        fused_diagrams: dict[frozenset, Any] = {}
        fused = (
            len(to_compute) >= 2 and config.voronoi_backend is not None
        )
        if fused:
            try:
                sweep = fused_multisource(
                    session.graph,
                    [sorted(k) for k in to_compute],
                    backend=config.voronoi_backend,
                )
            except Exception:
                # fall back to independent solves; per-request errors
                # then surface with their own request ids
                fused = False
            else:
                self.counters.fused_sweeps += 1
                # N seed sets answered by one sweep: N-1 avoided sweeps
                self.counters.coalesced += len(to_compute) - 1
                fused_diagrams = dict(zip(to_compute, sweep.diagrams))

        batch_size = len(group)
        for seeds_key, pendings in unique.items():
            seeds = sorted(seeds_key)
            shared_sweep = fused and seeds_key in fused_diagrams
            try:
                result = self._solve_with_retry(
                    solver, seeds, fused_diagrams.get(seeds_key)
                )
            except Exception as exc:
                for p in pendings:
                    self._finish(p, error=exc)
                continue
            # every request beyond the first answered by a shared sweep
            # (or by a duplicate's solve) counts as coalesced
            n_coalesced = len(pendings) - 1
            if shared_sweep:
                n_coalesced += len(fused_diagrams) - 1
            self.counters.coalesced += len(pendings) - 1
            for p in pendings:
                provenance = {
                    **result.provenance,
                    "request_id": p.request.id,
                    "batch_size": batch_size,
                    "fused_sweep": bool(shared_sweep),
                    "coalesced": int(n_coalesced),
                }
                self._finish(
                    p, result=replace(result, provenance=provenance)
                )

    def _solve_with_retry(
        self,
        solver: "DistributedSteinerSolver",
        seeds: Sequence[int],
        diagram: "VoronoiDiagram | None",
    ) -> SteinerTreeResult:
        """One solve, retrying *transient* failures only.

        :class:`~repro.errors.WorkerCrashError` means the ``bsp-mp``
        restart budget was spent — a re-run from scratch may well
        succeed (fresh processes, fresh budget), so it is retried with
        exponential backoff up to ``transient_retries`` times.  Every
        other exception is deterministic (it would recur identically)
        and propagates immediately.
        """
        attempt = 0
        while True:
            try:
                return solver.solve(seeds, diagram=diagram)
            except WorkerCrashError:
                if attempt >= self.transient_retries:
                    raise
                backoff = self.retry_backoff_s * (2.0**attempt)
                attempt += 1
                self.counters.retries += 1
                if backoff > 0:
                    time.sleep(backoff)

    def _finish(
        self,
        pending: _Pending,
        result: SteinerTreeResult | None = None,
        error: BaseException | None = None,
    ) -> None:
        # mid-batch deadline expiry: the budget ran out while the batch
        # executed — a late result is still a deadline miss, so the
        # client gets the structured timeout it was promised
        if error is None and pending.expired():
            result, error = None, _timeout_error(pending)
        if isinstance(error, RequestTimeout):
            self.counters.timeouts += 1
            self.counters.errors += 1
        elif error is not None:
            self.counters.errors += 1
        else:
            self.counters.responses += 1
            if result is not None and result.provenance.get("cache_hit"):
                self.counters.cache_hits += 1
            else:
                self.counters.cache_misses += 1
        pending.resolve(result=result, error=error)
        with self._cv:
            self._outstanding -= 1
            self._cv.notify_all()
