"""``repro.serve`` — the persistent solver service.

The pieces behind ``repro-steiner serve``, layered so each is usable
on its own:

* :mod:`repro.serve.cache` — LRU (+ optional disk) caching of
  solutions and Voronoi diagrams, keyed by ``(graph_hash,
  frozenset(seeds), config_fingerprint)``;
* :mod:`repro.serve.batch` — request coalescing: N compatible solves
  fused into ONE multi-source sweep over a disjoint-union stacked
  graph, with bit-identical per-request slices;
* :mod:`repro.serve.service` — the transport-independent service:
  warm graphs/sessions, the batching worker, counters;
* :mod:`repro.serve.protocol` / :mod:`repro.serve.server` — the
  line-delimited JSON protocol (:mod:`repro.api.schema`) over stdio
  and TCP.

See ``docs/serve.md`` for the protocol and the cache-key contract.
"""

from repro.serve.batch import FusedSweep, fused_multisource, stack_graphs
from repro.serve.cache import CacheStats, SolveCache, solution_key
from repro.serve.protocol import MAX_LINE_BYTES, OversizedLineError, ProtocolHandler
from repro.serve.server import make_tcp_server, serve_stdio, serve_tcp
from repro.serve.service import (
    QueueFull,
    RequestTimeout,
    ServeCounters,
    ServiceClosed,
    ServiceDraining,
    SolverService,
)

__all__ = [
    "MAX_LINE_BYTES",
    "CacheStats",
    "FusedSweep",
    "OversizedLineError",
    "ProtocolHandler",
    "QueueFull",
    "RequestTimeout",
    "ServeCounters",
    "ServiceClosed",
    "ServiceDraining",
    "SolveCache",
    "SolverService",
    "fused_multisource",
    "make_tcp_server",
    "serve_stdio",
    "serve_tcp",
    "solution_key",
    "stack_graphs",
]
