"""Transports for the solver service: stdio pipes and a TCP socket.

Both transports speak the same line-delimited protocol
(:mod:`repro.serve.protocol`) against one shared
:class:`~repro.serve.service.SolverService` — the TCP server handles
each connection on its own thread, so concurrent clients feed the
service's batching window exactly like concurrent stdio pipelines
would.

Robustness: the TCP transport bounds every read at the protocol's
line limit — an oversized frame is answered with the structured
``oversized`` error and the remainder of the line is discarded in
fixed-size chunks, never buffered whole — and a client that dies
mid-read or mid-write (reset, broken pipe) ends only its own
conversation, after the handler's in-flight solves have resolved (the
batching worker must never inherit a write into a dead socket as a
crash).  With a ``drop_connection`` fault armed on the service's
:class:`~repro.faults.FaultPlan`, the transport severs the connection
just before writing the next response — the chaos probe for exactly
that client-death path.

Neither entry point closes the service it is given: the caller (the
``repro-steiner serve`` CLI, a test fixture, a benchmark) owns the
service lifecycle and may run several transports against it.
"""

from __future__ import annotations

import socket
import socketserver
import sys
import threading
from typing import IO

from repro.serve.protocol import ProtocolHandler
from repro.serve.service import SolverService

__all__ = ["make_tcp_server", "serve_stdio", "serve_tcp"]


def serve_stdio(
    service: SolverService,
    instream: IO[str] | None = None,
    outstream: IO[str] | None = None,
) -> int:
    """Serve one conversation over text streams (default stdin/stdout).

    Reads until EOF or a ``shutdown`` op, answering every accepted
    request before returning.  Returns the number of request lines
    consumed.  Responses are flushed per line so pipeline clients can
    interleave requests with responses.  Oversized lines are bounded by
    the handler itself (stdio is a trusted local pipe; the hard
    read-side bound lives in the TCP transport, where the peer is not).
    """
    instream = sys.stdin if instream is None else instream
    outstream = sys.stdout if outstream is None else outstream

    def write(line: str) -> None:
        outstream.write(line + "\n")
        outstream.flush()

    handler = ProtocolHandler(service, write)
    n_lines = 0
    for line in instream:
        n_lines += 1
        if not handler.handle_line(line):
            return n_lines
    handler.drain()
    return n_lines


class _Handler(socketserver.StreamRequestHandler):
    """One TCP connection: a stdio-shaped conversation over a socket."""

    def handle(self) -> None:  # pragma: no cover - exercised via serve_tcp
        server: "_Server" = self.server  # type: ignore[assignment]

        def write(line: str) -> None:
            plan = server.service.fault_plan
            if plan is not None and plan.take("drop_connection"):
                # injected fault: the client vanishes just before its
                # response hits the wire (mid-response from its view).
                # shutdown(), not close(): rfile/wfile hold io-refs on
                # the socket, so close() alone would never send the FIN
                try:
                    self.connection.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                return
            try:
                self.wfile.write(line.encode() + b"\n")
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError, OSError, ValueError):
                pass  # client went away mid-response; nothing to salvage

        handler = ProtocolHandler(
            server.service, write, on_shutdown=server.request_shutdown
        )
        limit = handler.max_line_bytes
        try:
            while True:
                # bounded read: at most limit+1 bytes are ever buffered
                # for one line, no matter what the client sends
                raw = self.rfile.readline(limit + 1)
                if not raw:
                    break  # EOF
                if len(raw) > limit and not raw.endswith(b"\n"):
                    self._discard_to_newline()
                    handler.reject_oversized()
                    continue
                line = raw.decode("utf-8", errors="replace")
                if not handler.handle_line(line):
                    return
        except (ConnectionResetError, BrokenPipeError, OSError, ValueError):
            # the socket died mid-read; treat like EOF — in-flight
            # solves still resolve below (their writes no-op harmlessly)
            pass
        handler.drain()

    def _discard_to_newline(self) -> None:
        """Skip the rest of an oversized line in fixed-size chunks —
        O(chunk) memory however long the line is."""
        while True:
            chunk = self.rfile.readline(65536)
            if not chunk or chunk.endswith(b"\n"):
                return


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: SolverService) -> None:
        super().__init__(address, _Handler)
        self.service = service

    def request_shutdown(self) -> None:
        """Stop the accept loop; safe to call from a handler thread
        (``shutdown`` blocks the calling thread until the loop exits,
        so hand it to a helper thread)."""
        threading.Thread(target=self.shutdown, daemon=True).start()


def make_tcp_server(
    service: SolverService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> _Server:
    """Build (but do not run) the TCP server — ``port=0`` binds an
    ephemeral port, readable from ``server.server_address`` before
    calling ``serve_forever()``.  Tests and embedders run the returned
    server on their own thread."""
    return _Server((host, port), service)


def serve_tcp(
    service: SolverService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    ready: threading.Event | None = None,
) -> None:
    """Serve forever on ``host:port`` until a client sends ``shutdown``
    (or the caller interrupts).  Sets ``ready`` once listening — by
    then ``port=0`` has been resolved to a real port."""
    with make_tcp_server(service, host, port) as server:
        if ready is not None:
            ready.set()
        server.serve_forever(poll_interval=0.1)
