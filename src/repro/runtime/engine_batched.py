"""Vectorised bulk-synchronous engine: one superstep = NumPy array ops.

:class:`BSPBatchedEngine` executes the exact superstep semantics of
:class:`~repro.runtime.engine.BSPEngine` — same acceptances, same
emissions, same local/remote message counts, same superstep count — but
replaces the one-Python-callback-per-message inner loop with whole-array
operations supplied by the *program* through the batch protocol:

``batch_payload_width``
    Number of int64 columns a payload row occupies.
``batch_encode(target, payload) -> tuple[int, ...]``
    Scalar encoding of a phase-start message into a payload row (the
    target's sign keeps distinguishing vertex- from rank-addressed).
``batch_visit(targets, payload, emitter)``
    Process all vertex-addressed messages of one superstep: update the
    program state and push emissions through the
    :class:`BatchEmitter` (bulk neighbour gather via ``np.repeat`` on
    the CSR, per-vertex candidate reduction, see
    :meth:`repro.core.voronoi_visitor.VoronoiProgram.batch_visit`).
``batch_visit_rank(ranks, payload, emitter)``
    Same for rank-addressed messages (delegate slice expansion).

Why this is exact, not approximate: under the PRIORITY discipline the
scalar BSP engine sorts each rank's inbox by the program's *total*
``sort_key`` order, so within a superstep each vertex accepts exactly
its lexicographic-minimum improving candidate and every other candidate
is rejected against the adopted state — a pure per-vertex reduction,
which is what ``batch_visit`` computes.  Rank-addressed messages never
read mutable state, so their relative order is immaterial.  The engine
layer then does routing, local/remote counting and cost-model
accounting in bulk (``np.bincount`` over emitting ranks instead of
per-message float adds — simulated times agree to float round-off,
counts agree exactly).

Programs without the batch protocol, and all FIFO runs (arrival order
is inherently sequential), transparently fall back to the per-message
superstep loop, so the engine is total over every
:class:`~repro.runtime.engine.VertexProgram`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.runtime.engine import BSPEngine, PhaseStats, VertexProgram
from repro.runtime.queues import QueueDiscipline

__all__ = [
    "BSPBatchedEngine",
    "BatchEmitter",
    "run_batch_superstep",
    "supports_batch",
]


def supports_batch(program: VertexProgram) -> bool:
    """True iff the program implements the vectorised superstep hooks.

    >>> class Plain:
    ...     def priority(self, payload):
    ...         return 0.0
    >>> supports_batch(Plain())
    False
    """
    return all(
        hasattr(program, attr)
        for attr in ("batch_payload_width", "batch_encode", "batch_visit")
    )


class BatchEmitter:
    """Collects one superstep's emissions as arrays.

    Programs call :meth:`emit` with equally-long arrays: the emitting
    rank of each message (for busy-time accounting), the targets (vertex
    ids, or ``-rank - 1``), and the payload rows.
    """

    __slots__ = ("_src", "_targets", "_payload", "_width")

    def __init__(self, payload_width: int) -> None:
        self._src: list[np.ndarray] = []
        self._targets: list[np.ndarray] = []
        self._payload: list[np.ndarray] = []
        self._width = payload_width

    def emit(
        self, src_ranks: np.ndarray, targets: np.ndarray, payload: np.ndarray
    ) -> None:
        """Queue ``targets.size`` messages for next-superstep delivery."""
        self._src.append(src_ranks)
        self._targets.append(targets)
        self._payload.append(payload)

    def drain(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All emissions as ``(src_ranks, targets, payload)`` arrays."""
        if not self._targets:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, np.zeros((0, self._width), dtype=np.int64)
        return (
            np.concatenate(self._src),
            np.concatenate(self._targets),
            np.vstack(self._payload),
        )


def run_batch_superstep(
    program: VertexProgram,
    targets: np.ndarray,
    payload: np.ndarray,
    width: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Execute one superstep's message arrays through ``program``.

    Splits the inbox into rank-addressed (``target < 0``) and
    vertex-addressed messages, runs the program's batch hooks, and
    returns the drained emissions ``(src_ranks, out_targets,
    out_payload)``.  This is the *pure* computation of a superstep —
    no engine accounting — shared verbatim by the in-process batched
    engine and the ``bsp-mp`` worker processes, which is what makes
    their emissions (and hence every counter) identical by
    construction.
    """
    emitter = BatchEmitter(width)
    is_rank = targets < 0
    if is_rank.any():
        program.batch_visit_rank(
            -targets[is_rank] - 1, payload[is_rank], emitter
        )
    vmask = ~is_rank
    if vmask.any():
        program.batch_visit(targets[vmask], payload[vmask], emitter)
    return emitter.drain()


class BSPBatchedEngine(BSPEngine):
    """Bulk-synchronous engine with vectorised supersteps.

    Parity contract (pinned by ``tests/test_engines.py``): for every
    batch-capable program under the PRIORITY discipline, this engine's
    ``n_visits``, ``n_messages_local``, ``n_messages_remote``,
    ``bytes_sent``, ``peak_queue_total`` and superstep count are
    **bit-identical** to :class:`~repro.runtime.engine.BSPEngine`'s, and
    ``sim_time``/``busy_time`` agree to float round-off.  What may
    differ across *execution models* (async vs BSP) is the message
    count itself — scheduling order changes how many wasted relaxations
    occur, the effect the paper's Figs. 5-6 measure.
    """

    def run_phase(
        self,
        name: str,
        program: VertexProgram,
        initial_messages: Iterable[Tuple[int, Tuple]],
        *,
        max_events: Optional[int] = None,
        max_supersteps: int = 1_000_000,
    ) -> PhaseStats:
        """Run ``program`` to quiescence in vectorised supersteps (falls
        back to the per-message loop for non-batchable programs or FIFO
        runs — identical semantics either way)."""
        if (
            not supports_batch(program)
            or self.discipline is not QueueDiscipline.PRIORITY
        ):
            return super().run_phase(
                name,
                program,
                initial_messages,
                max_events=max_events,
                max_supersteps=max_supersteps,
            )

        machine = self.machine
        n_ranks = self.partition.n_ranks
        owner = self.partition.owner
        width = program.batch_payload_width
        stats = PhaseStats(name=name, busy_time=np.zeros(n_ranks))

        rows = [
            (target, program.batch_encode(target, payload))
            for target, payload in initial_messages
        ]
        targets = np.asarray([t for t, _ in rows], dtype=np.int64)
        payload = np.asarray(
            [r for _, r in rows], dtype=np.int64
        ).reshape(-1, width)

        # the iterable above may be a generator that initialises program
        # state (seed bootstrap), so subclasses replicate state only now
        self._phase_begin(program)

        barrier = machine.allreduce_time(n_ranks, 8) + machine.message_delay(
            n_ranks > 1
        )
        supersteps = 0
        events = 0
        total_time = 0.0
        while targets.size:
            # one driver call may execute several *logical* supersteps
            # (a coalescing subclass groups them behind one barrier);
            # every yielded step runs the identical accounting below,
            # so the logical counters never depend on the grouping
            for step in self._drive_supersteps(program, targets, payload, width):
                (
                    in_targets,
                    _in_payload,
                    proc_rank,
                    src_ranks,
                    out_targets,
                    out_payload,
                ) = step
                supersteps += 1
                if supersteps > max_supersteps:
                    raise SimulationError(
                        f"BSP phase {name!r} did not converge"
                    )
                events += in_targets.size
                if max_events is not None and events > max_events:
                    raise SimulationError(
                        f"phase {name!r} exceeded {max_events} events "
                        "(runaway?)"
                    )
                if in_targets.size > stats.peak_queue_total:
                    stats.peak_queue_total = int(in_targets.size)
                stats.n_visits += int(in_targets.size)

                # vectorised cost-model accounting: t_visit per processed
                # message, t_emit per emission, attributed to the acting
                # rank
                step_rank_time = machine.t_visit * np.bincount(
                    proc_rank, minlength=n_ranks
                ) + machine.t_emit * np.bincount(
                    src_ranks, minlength=n_ranks
                )
                stats.busy_time += step_rank_time
                total_time += float(step_rank_time.max()) + barrier

                dest = np.where(
                    out_targets < 0,
                    -out_targets - 1,
                    owner[np.maximum(out_targets, 0)],
                )
                n_local = int((dest == src_ranks).sum())
                stats.n_messages_local += n_local
                stats.n_messages_remote += int(out_targets.size) - n_local
                stats.bytes_sent += (
                    int(out_targets.size) * machine.bytes_per_message
                )

                targets, payload = out_targets, out_payload

        self._phase_end(program)
        stats.sim_time = total_time
        self.n_supersteps = supersteps
        self.clock += total_time
        self.phases.append(stats)
        return stats

    # ------------------------------------------------------------------ #
    # subclass hooks (the ``bsp-mp`` engine overrides all of these)
    # ------------------------------------------------------------------ #
    def _drive_supersteps(
        self,
        program: VertexProgram,
        targets: np.ndarray,
        payload: np.ndarray,
        width: int,
    ):
        """Execute one *or more* logical supersteps starting from the
        given inbox, yielding per superstep the accounting tuple
        ``(in_targets, in_payload, proc_rank, src_ranks, out_targets,
        out_payload)``.  The base engine always yields exactly one step
        per call; the ``bsp-mp`` engine's adaptive coalescing yields a
        whole group executed behind a single barrier — the ``run_phase``
        loop above applies the identical per-step accounting either
        way, which is what keeps logical counters independent of the
        physical grouping."""
        owner = self.partition.owner
        is_rank = targets < 0
        proc_rank = np.where(
            is_rank, -targets - 1, owner[np.maximum(targets, 0)]
        )
        src_ranks, out_targets, out_payload = self._superstep_batch(
            program, targets, payload, proc_rank, width
        )
        yield targets, payload, proc_rank, src_ranks, out_targets, out_payload

    def _superstep_batch(
        self,
        program: VertexProgram,
        targets: np.ndarray,
        payload: np.ndarray,
        proc_rank: np.ndarray,
        width: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Compute one superstep's emissions.  ``proc_rank`` is the rank
        processing each inbox message (its owner, or the addressed rank)
        — unused here, but it is the routing key a distributed subclass
        shards the inbox by."""
        return run_batch_superstep(program, targets, payload, width)

    def _phase_begin(self, program: VertexProgram) -> None:
        """Called once per phase after the initial messages are encoded
        (and any state-initialising generator has run)."""

    def _phase_end(self, program: VertexProgram) -> None:
        """Called once per phase at quiescence, before stats are
        finalised — where a distributed subclass gathers worker state."""
