"""Native (numba-JIT) bulk-synchronous engine: one superstep = one kernel.

:class:`BSPNativeEngine` executes the exact superstep semantics of
:class:`~repro.runtime.engine_batched.BSPBatchedEngine` — same
acceptances, same emissions, same local/remote message counts, same
superstep count — but runs the whole inner superstep (neighbour gather,
per-vertex lexicographic-min reduction, per-rank visit/emit cost
accounting) as **one compiled kernel** instead of a chain of NumPy
dispatches (``np.lexsort`` + first-occurrence mask + ``np.repeat``
gather + three ``np.bincount`` calls).  On 1M-edge graphs the NumPy
chain is dispatch-bound; the fused kernel is not (see
``benchmarks/bench_engines.py``, scale suite).

Native-path requirements (all checked per phase, with a transparent
fall-back to the batched NumPy supersteps when any is missing — the
semantics are identical either way):

* numba importable (else the engine *is* ``bsp-batched``; the
  ``repro-steiner engines`` listing reports the fallback and why);
* the program exposes :meth:`native_state` — the
  ``(dist, src, pred)`` arrays the kernel relaxes in place
  (:class:`~repro.core.voronoi_visitor.VoronoiProgram` does);
* the PRIORITY discipline (FIFO arrival order is inherently
  sequential, exactly as in the batched engine);
* no delegate partitioning (delegate fan-out sends rank-addressed
  messages, which stay on the NumPy path).

Parity contract (pinned by ``tests/test_native.py``): identical
``n_visits``, ``n_messages_local``, ``n_messages_remote``,
``bytes_sent``, ``peak_queue_total`` and superstep counts to ``bsp`` /
``bsp-batched``, and the identical converged ``(src, dist)`` fixpoint —
the kernel computes the same per-vertex lexicographic minimum over the
same inbox, so the per-superstep emission multiset is equal by
construction.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.native import NUMBA_AVAILABLE, njit, register_warmup
from repro.runtime.engine import PhaseStats, VertexProgram
from repro.runtime.engine_batched import BSPBatchedEngine, supports_batch
from repro.runtime.queues import QueueDiscipline

__all__ = ["BSPNativeEngine", "supports_native"]


def supports_native(program: VertexProgram) -> bool:
    """True iff the program exposes the native-superstep state hook
    (on top of the batch protocol the encoded inbox comes from).

    >>> class Plain:
    ...     pass
    >>> supports_native(Plain())
    False
    """
    return hasattr(program, "native_state") and supports_batch(program)


@njit
def _superstep(
    targets, vp, t, r,
    dist, src, pred,
    indptr, indices, weights, owner,
    stamp, best_r, best_t, best_vp, touched,
    step, n_ranks,
):
    """One fused superstep over the inbox arrays.

    Reduces the inbox to each vertex's lexicographic-minimum candidate
    ``(r, t, vp)`` (stamp-array reduction — O(messages), no sort),
    applies the improvement test against ``(dist, src)``, adopts and
    expands winners over the CSR, and accumulates the per-rank visit /
    emit counts the engine's cost model charges.  Returns the next
    superstep's inbox columns plus the accounting vectors.

    Seed bootstrap messages (``vp == t == target`` and ``r == 0``)
    expand unconditionally, exactly as in
    :meth:`~repro.core.voronoi_visitor.VoronoiProgram.batch_visit`.
    """
    m = targets.shape[0]
    visit_cnt = np.zeros(n_ranks, dtype=np.int64)
    boot_u = np.empty(m, dtype=np.int64)
    n_boot = 0
    n_touched = 0
    for j in range(m):
        v = targets[j]
        visit_cnt[owner[v]] += 1
        if vp[j] == v and t[j] == v and r[j] == 0:
            boot_u[n_boot] = v
            n_boot += 1
            continue
        if stamp[v] != step:
            stamp[v] = step
            touched[n_touched] = v
            n_touched += 1
            best_r[v] = r[j]
            best_t[v] = t[j]
            best_vp[v] = vp[j]
        else:
            rj = r[j]
            br = best_r[v]
            if rj < br or (
                rj == br
                and (
                    t[j] < best_t[v]
                    or (t[j] == best_t[v] and vp[j] < best_vp[v])
                )
            ):
                best_r[v] = rj
                best_t[v] = t[j]
                best_vp[v] = vp[j]

    # adoption: bootstraps expand unconditionally, winners must improve
    adopt_u = np.empty(n_boot + n_touched, dtype=np.int64)
    adopt_t = np.empty(n_boot + n_touched, dtype=np.int64)
    adopt_r = np.empty(n_boot + n_touched, dtype=np.int64)
    na = 0
    for i in range(n_boot):
        u = boot_u[i]
        adopt_u[na] = u
        adopt_t[na] = u
        adopt_r[na] = 0
        na += 1
    for i in range(n_touched):
        v = touched[i]
        br = best_r[v]
        if br < dist[v] or (br == dist[v] and best_t[v] < src[v]):
            dist[v] = br
            src[v] = best_t[v]
            pred[v] = best_vp[v]
            adopt_u[na] = v
            adopt_t[na] = best_t[v]
            adopt_r[na] = br
            na += 1

    # expansion: every out-arc of every adopting vertex, one pass
    total = 0
    for i in range(na):
        u = adopt_u[i]
        total += indptr[u + 1] - indptr[u]
    out_targets = np.empty(total, dtype=np.int64)
    out_vp = np.empty(total, dtype=np.int64)
    out_t = np.empty(total, dtype=np.int64)
    out_r = np.empty(total, dtype=np.int64)
    emit_cnt = np.zeros(n_ranks, dtype=np.int64)
    n_local = 0
    j = 0
    for i in range(na):
        u = adopt_u[i]
        tu = adopt_t[i]
        ru = adopt_r[i]
        ou = owner[u]
        for a in range(indptr[u], indptr[u + 1]):
            h = indices[a]
            out_targets[j] = h
            out_vp[j] = u
            out_t[j] = tu
            out_r[j] = ru + weights[a]
            if owner[h] == ou:
                n_local += 1
            j += 1
        emit_cnt[ou] += indptr[u + 1] - indptr[u]
    return out_targets, out_vp, out_t, out_r, visit_cnt, emit_cnt, n_local


class BSPNativeEngine(BSPBatchedEngine):
    """Batched BSP engine whose supersteps run as one compiled kernel.

    ``force_native=True`` runs the native path even without numba — the
    kernels are then executed as plain Python (slow), which is how the
    parity tests exercise the kernel logic in no-numba environments.
    Production callers never set it: without numba the engine simply
    behaves as :class:`~repro.runtime.engine_batched.BSPBatchedEngine`.
    """

    def __init__(
        self,
        partition,
        machine=None,
        discipline: QueueDiscipline | str = QueueDiscipline.PRIORITY,
        *,
        force_native: bool = False,
    ) -> None:
        super().__init__(partition, machine, discipline)
        self._force_native = force_native

    # ------------------------------------------------------------------ #
    def _native_capable(self, program: VertexProgram) -> bool:
        """The native kernel handles this phase (else: batched NumPy)."""
        return (
            (NUMBA_AVAILABLE or self._force_native)
            and supports_native(program)
            and self.discipline is QueueDiscipline.PRIORITY
            and self.partition.delegates.size == 0
        )

    def run_phase(
        self,
        name: str,
        program: VertexProgram,
        initial_messages: Iterable[Tuple[int, Tuple]],
        *,
        max_events: Optional[int] = None,
        max_supersteps: int = 1_000_000,
    ) -> PhaseStats:
        """Run ``program`` to quiescence, one compiled kernel call per
        superstep (transparent fallback to the vectorised-NumPy
        supersteps whenever the native path cannot apply — identical
        semantics and counters either way)."""
        if not self._native_capable(program):
            return super().run_phase(
                name,
                program,
                initial_messages,
                max_events=max_events,
                max_supersteps=max_supersteps,
            )

        machine = self.machine
        n_ranks = self.partition.n_ranks
        owner = self.partition.owner
        graph = self.partition.graph
        n = graph.n_vertices
        width = program.batch_payload_width
        stats = PhaseStats(name=name, busy_time=np.zeros(n_ranks))

        rows = [
            (target, program.batch_encode(target, payload))
            for target, payload in initial_messages
        ]
        targets = np.asarray([tgt for tgt, _ in rows], dtype=np.int64)
        payload = np.asarray(
            [row for _, row in rows], dtype=np.int64
        ).reshape(-1, width)
        vp = np.ascontiguousarray(payload[:, 0])
        t = np.ascontiguousarray(payload[:, 1])
        r = np.ascontiguousarray(payload[:, 2])

        # the iterable above may be a generator that initialises program
        # state (seed bootstrap), so read the state arrays only now
        src_arr, pred_arr, dist_arr = program.native_state()
        self._phase_begin(program)

        # per-phase kernel scratch: stamp-keyed per-vertex reduction slots
        stamp = np.zeros(n, dtype=np.int64)
        best_r = np.empty(n, dtype=np.int64)
        best_t = np.empty(n, dtype=np.int64)
        best_vp = np.empty(n, dtype=np.int64)
        touched = np.empty(n, dtype=np.int64)

        barrier = machine.allreduce_time(n_ranks, 8) + machine.message_delay(
            n_ranks > 1
        )
        supersteps = 0
        events = 0
        total_time = 0.0
        while targets.size:
            supersteps += 1
            if supersteps > max_supersteps:
                raise SimulationError(f"BSP phase {name!r} did not converge")
            events += targets.size
            if max_events is not None and events > max_events:
                raise SimulationError(
                    f"phase {name!r} exceeded {max_events} events (runaway?)"
                )
            if targets.size > stats.peak_queue_total:
                stats.peak_queue_total = int(targets.size)
            stats.n_visits += int(targets.size)

            (
                targets, vp, t, r, visit_cnt, emit_cnt, n_local
            ) = _superstep(
                targets, vp, t, r,
                dist_arr, src_arr, pred_arr,
                graph.indptr, graph.indices, graph.weights, owner,
                stamp, best_r, best_t, best_vp, touched,
                np.int64(supersteps), np.int64(n_ranks),
            )

            step_rank_time = (
                machine.t_visit * visit_cnt + machine.t_emit * emit_cnt
            )
            stats.busy_time += step_rank_time
            total_time += float(step_rank_time.max()) + barrier

            stats.n_messages_local += int(n_local)
            stats.n_messages_remote += int(targets.size) - int(n_local)
            stats.bytes_sent += int(targets.size) * machine.bytes_per_message

        self._phase_end(program)
        stats.sim_time = total_time
        self.n_supersteps = supersteps
        self.clock += total_time
        self.phases.append(stats)
        return stats


@register_warmup
def _warmup() -> None:
    """Compile the superstep kernel on a 2-vertex instance, outside any
    benchmark timing column."""
    indptr = np.array([0, 1, 2], dtype=np.int64)
    indices = np.array([1, 0], dtype=np.int64)
    weights = np.array([1, 1], dtype=np.int64)
    owner = np.zeros(2, dtype=np.int64)
    n = 2
    _superstep(
        np.array([0], dtype=np.int64),
        np.array([0], dtype=np.int64),
        np.array([0], dtype=np.int64),
        np.array([0], dtype=np.int64),
        np.full(n, np.iinfo(np.int64).max, dtype=np.int64),
        np.full(n, -1, dtype=np.int64),
        np.full(n, -1, dtype=np.int64),
        indptr, indices, weights, owner,
        np.zeros(n, dtype=np.int64),
        np.empty(n, dtype=np.int64),
        np.empty(n, dtype=np.int64),
        np.empty(n, dtype=np.int64),
        np.empty(n, dtype=np.int64),
        np.int64(1), np.int64(1),
    )
