"""Cluster-wide memory accounting (reproduces Fig. 8's breakdown).

The paper splits peak memory into "In-memory Graph" (HavoqGT binary CSR)
and "Application Runtime" (algorithm state: per-vertex ``src/pred/dist``,
the replicated distance graph ``G'1``, the ``EN`` buffers, and message
queues).  :func:`estimate_memory` reconstructs the same breakdown from
the partition, seed count and the observed peak queue occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.cost_model import MachineModel
from repro.runtime.partition import PartitionedGraph

__all__ = ["MemoryReport", "estimate_memory"]

_VERTEX_STATE_BYTES = 3 * 8       # src, pred, dist (int64 each)
_EN_ENTRY_BYTES = 5 * 8           # (s, t) key + (u, v, dist) value
_DISTANCE_GRAPH_EDGE_BYTES = 3 * 8  # (s, t, d'1)


@dataclass(frozen=True)
class MemoryReport:
    """Byte breakdown of cluster-wide peak memory.

    Attributes mirror Fig. 8's stacked bars: ``graph_bytes`` is the
    in-memory graph; everything else sums into the "Application Runtime"
    bar via :attr:`runtime_bytes`.
    """

    graph_bytes: int
    vertex_state_bytes: int
    distance_graph_bytes: int
    en_buffer_bytes: int
    queue_bytes: int

    @property
    def runtime_bytes(self) -> int:
        """Algorithm-state + communication memory (Fig. 8 "Application
        Runtime")."""
        return (
            self.vertex_state_bytes
            + self.distance_graph_bytes
            + self.en_buffer_bytes
            + self.queue_bytes
        )

    @property
    def total_bytes(self) -> int:
        """Graph + application-runtime bytes (Fig. 8 bar height)."""
        return self.graph_bytes + self.runtime_bytes


def estimate_memory(
    partition: PartitionedGraph,
    n_seeds: int,
    *,
    peak_queue_total: int,
    n_distance_edges: int | None = None,
    machine: MachineModel | None = None,
) -> MemoryReport:
    """Estimate cluster-wide peak memory for one solver run.

    Parameters
    ----------
    partition:
        The partitioned graph (graph bytes come from its CSR arrays).
    n_seeds:
        ``|S|``; the replicated ``G'1`` and ``EN`` buffers scale with
        ``C(|S|, 2)`` in the worst case — the driver of the paper's
        ``|S| = 10K`` memory blow-up.
    peak_queue_total:
        Peak simultaneous buffered messages observed by the engine.
    n_distance_edges:
        Actual ``|E'1|`` if known; defaults to the ``C(|S|, 2)`` upper
        bound used at INITIALIZATION time (paper Alg. 3 line 2 allocates
        the full pairwise structure up front).
    """
    machine = machine or MachineModel()
    if n_distance_edges is None:
        n_distance_edges = n_seeds * (n_seeds - 1) // 2
    graph_bytes = partition.graph.nbytes()
    vertex_state = partition.graph.n_vertices * _VERTEX_STATE_BYTES
    # G'1 and EN are replicated on every rank (paper: "it is replicated on
    # all partitions"), hence the multiplication by n_ranks.
    dg_bytes = n_distance_edges * _DISTANCE_GRAPH_EDGE_BYTES * partition.n_ranks
    en_bytes = n_distance_edges * _EN_ENTRY_BYTES * partition.n_ranks
    queue_bytes = peak_queue_total * machine.bytes_per_message
    return MemoryReport(
        graph_bytes=int(graph_bytes),
        vertex_state_bytes=int(vertex_state),
        distance_graph_bytes=int(dg_bytes),
        en_buffer_bytes=int(en_bytes),
        queue_bytes=int(queue_bytes),
    )
