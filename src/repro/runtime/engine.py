"""Asynchronous discrete-event engine (and a BSP variant for ablation).

This is the simulation core standing in for HavoqGT's asynchronous
visitor runtime.  Semantics:

* every simulated MPI **rank** is a single non-preemptive server with a
  pending-message buffer (FIFO or priority — see
  :mod:`repro.runtime.queues`) and a local clock;
* a **message** is addressed to a vertex (delivered to its owner rank) or
  directly to a rank (used for delegate fan-out);
* processing one message runs the program's ``visit`` callback, which may
  emit further messages; emitted messages *depart* when the service
  completes and *arrive* after the local/remote delay from the
  :class:`~repro.runtime.cost_model.MachineModel`;
* a phase ends at quiescence (no in-flight messages anywhere) — the same
  termination condition as HavoqGT's ``do_traversal``.

The engine is fully deterministic: event ties break on a monotone
sequence number, so identical inputs give identical timelines, message
counts and output state — the property the reproducibility tests pin
down.

Engines implementing this contract are registered in
:mod:`repro.runtime.engines` (``async-heap``, ``bsp``, ``bsp-batched``)
and selected via ``SolverConfig(engine=...)``; the shared pieces of the
contract — destination routing, visit dispatch, in-superstep ordering —
live in this module so every engine counts and routes identically.

Simulated time vs wall time: the event loop itself runs serially in
Python; all reported times are derived from the event timeline (per-rank
clocks), not from the host's clock.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Protocol, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.runtime.cost_model import MachineModel
from repro.runtime.partition import PartitionedGraph
from repro.runtime.queues import QueueDiscipline, make_queue

__all__ = [
    "AsyncEngine",
    "BSPEngine",
    "EngineBase",
    "PhaseStats",
    "VertexProgram",
    "dest_rank",
    "dispatch_visit",
    "superstep_sort_key",
]

# message target encoding: >= 0 -> vertex id; < 0 -> rank (-target - 1)
_ARRIVAL = 0
_COMPLETE = 1


class VertexProgram(Protocol):
    """Contract for algorithms run on the engine (Alg. 4/6 implement it).

    ``priority`` maps a payload to its queue priority (lower = sooner);
    ``visit`` handles a vertex-addressed message; ``visit_rank`` handles a
    rank-addressed message (delegate slice expansion).  Both receive an
    ``emit(target, payload)`` callable.

    Programs may additionally implement the optional hooks used by the
    bulk-synchronous engines:

    * ``sort_key(payload)`` — a *total* deterministic in-superstep
      ordering (priority refined with tie-breaks); see
      :func:`superstep_sort_key`;
    * the batch protocol (``batch_encode`` / ``batch_visit`` /
      ``batch_visit_rank``) consumed by
      :class:`~repro.runtime.engine_batched.BSPBatchedEngine`.
    """

    def priority(self, payload: Tuple) -> float:  # pragma: no cover
        ...

    def visit(
        self, vertex: int, payload: Tuple, emit: Callable[[int, Tuple], None]
    ) -> None:  # pragma: no cover
        ...

    def visit_rank(
        self, rank: int, payload: Tuple, emit: Callable[[int, Tuple], None]
    ) -> None:  # pragma: no cover
        ...


# --------------------------------------------------------------------- #
# shared helpers (one copy of the routing/dispatch logic for all engines)
# --------------------------------------------------------------------- #
def dest_rank(owner: np.ndarray, target: int) -> int:
    """Rank a message is delivered to: the owner of a vertex target, or
    the encoded rank itself (``target < 0`` means rank ``-target - 1``)."""
    return int(owner[target]) if target >= 0 else -target - 1


def dispatch_visit(
    program: VertexProgram,
    target: int,
    payload: Tuple,
    emit: Callable[[int, Tuple], None],
) -> None:
    """Run one message through the program's visit callback (vertex- or
    rank-addressed, per the target encoding)."""
    if target >= 0:
        program.visit(target, payload, emit)
    else:
        program.visit_rank(-target - 1, payload, emit)


def superstep_sort_key(program: VertexProgram) -> Callable[[Tuple], Any]:
    """In-superstep processing order for the bulk-synchronous engines.

    Programs exposing ``sort_key`` get a total lexicographic order (so a
    superstep accepts exactly the per-vertex lexicographic-minimum
    improving candidate — the invariant the batched engine vectorises);
    everything else falls back to the scalar ``priority``, with Python's
    stable sort preserving arrival order among ties.
    """
    return getattr(program, "sort_key", None) or program.priority


@dataclass
class PhaseStats:
    """Everything measured about one computation phase.

    ``sim_time`` is the phase makespan in simulated seconds (what the
    paper's stacked bar charts plot); message counts split local/remote
    (Fig. 6 plots their sum); ``busy_time`` per rank supports the
    load-imbalance analyses.
    """

    name: str
    sim_time: float = 0.0
    n_visits: int = 0
    n_messages_local: int = 0
    n_messages_remote: int = 0
    bytes_sent: int = 0
    peak_queue_total: int = 0
    busy_time: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def n_messages(self) -> int:
        """Total message count (the Fig. 6 metric)."""
        return self.n_messages_local + self.n_messages_remote

    def parallel_efficiency(self) -> float:
        """Mean busy fraction across ranks during the phase."""
        if self.sim_time <= 0 or self.busy_time.size == 0:
            return 1.0
        return float(self.busy_time.mean() / self.sim_time)


class EngineBase:
    """State and helpers shared by every registered runtime engine.

    Subclasses implement ``run_phase(name, program, initial_messages,
    *, max_events=None, ...) -> PhaseStats``; this base provides the
    configuration, the phase record, the global simulated clock and the
    routing helpers, so all engines count messages identically.
    """

    def __init__(
        self,
        partition: PartitionedGraph,
        machine: MachineModel | None = None,
        discipline: QueueDiscipline | str = QueueDiscipline.PRIORITY,
    ) -> None:
        self.partition = partition
        self.machine = machine or MachineModel()
        self.discipline = QueueDiscipline(discipline)
        self.clock = 0.0  # global simulated clock across phases
        self.phases: List[PhaseStats] = []

    # ------------------------------------------------------------------ #
    def route_initial(
        self, initial_messages: Iterable[Tuple[int, Tuple]]
    ) -> Iterable[Tuple[int, Tuple[int, Tuple]]]:
        """Resolve phase-start messages to ``(rank, (target, payload))``.

        Initial messages carry no transfer cost: they are local state
        initialisation, like HavoqGT's ``init_all`` traversal.
        """
        owner = self.partition.owner
        for target, payload in initial_messages:
            yield dest_rank(owner, target), (target, payload)

    def add_analytic_phase(
        self,
        name: str,
        sim_time: float,
        *,
        n_messages_remote: int = 0,
        bytes_sent: int = 0,
    ) -> PhaseStats:
        """Record a phase whose cost is computed analytically rather than
        event-by-event (collectives, halo exchanges, sequential MST)."""
        stats = PhaseStats(
            name=name,
            sim_time=sim_time,
            n_messages_remote=n_messages_remote,
            bytes_sent=bytes_sent,
            busy_time=np.zeros(self.partition.n_ranks),
        )
        self.clock += sim_time
        self.phases.append(stats)
        return stats

    def total_time(self) -> float:
        """Sum of recorded phase makespans (the end-to-end metric)."""
        return float(sum(p.sim_time for p in self.phases))

    def close(self) -> None:
        """Release external resources (worker pools).  A no-op for the
        in-process engines; the solver and ``run_phase_with`` call it in
        a ``finally`` so engines holding OS resources — ``bsp-mp``'s
        forked workers — are always reclaimed, even on exceptions."""


class AsyncEngine(EngineBase):
    """Asynchronous message-driven executor over a partitioned graph."""

    def __init__(
        self,
        partition: PartitionedGraph,
        machine: MachineModel | None = None,
        discipline: QueueDiscipline | str = QueueDiscipline.PRIORITY,
        *,
        aggregate_remote: bool = False,
    ) -> None:
        super().__init__(partition, machine, discipline)
        #: HavoqGT-style message aggregation: messages a single visit
        #: emits toward the same remote rank share one wire transfer —
        #: the first pays the full network latency, the rest only the
        #: per-message bandwidth term.  Message *counts* are unchanged
        #: (the paper's Fig. 6 counts visitors, not wire packets).
        self.aggregate_remote = aggregate_remote
        self._max_events_guard = 500_000_000  # hard runaway stop

    # ------------------------------------------------------------------ #
    def run_phase(
        self,
        name: str,
        program: VertexProgram,
        initial_messages: Iterable[Tuple[int, Tuple]],
        *,
        max_events: Optional[int] = None,
    ) -> PhaseStats:
        """Run ``program`` to quiescence; returns and records the stats.

        ``initial_messages`` are ``(target, payload)`` pairs injected at
        phase start (HavoqGT's ``do_traversal(init_all)`` analogue).
        The phase begins at the current global clock (phases are barrier
        separated, per the paper's Alg. 3) and advances it.
        """
        machine = self.machine
        n_ranks = self.partition.n_ranks
        owner = self.partition.owner
        t_visit = machine.t_visit
        t_emit = machine.t_emit
        local_delay = machine.message_delay(True)
        remote_delay = machine.message_delay(False)
        msg_bytes = machine.bytes_per_message
        prio_fn = program.priority
        limit = max_events if max_events is not None else self._max_events_guard

        stats = PhaseStats(name=name, busy_time=np.zeros(n_ranks))
        start = self.clock
        buffers = [make_queue(self.discipline) for _ in range(n_ranks)]
        busy = [False] * n_ranks
        evq: list[tuple[float, int, int, int, Any]] = []  # (t, seq, kind, rank, data)
        seq = 0
        buffered_total = 0
        end_time = start

        def push_event(t: float, kind: int, rank: int, data: Any) -> None:
            nonlocal seq
            seq += 1
            heapq.heappush(evq, (t, seq, kind, rank, data))

        for rank, msg in self.route_initial(initial_messages):
            push_event(start, _ARRIVAL, rank, msg)

        emitted: list[tuple[int, Tuple]] = []

        def emit(target: int, payload: Tuple) -> None:
            emitted.append((target, payload))

        aggregate = self.aggregate_remote
        bandwidth_delay = msg_bytes / machine.bandwidth

        def start_service(rank: int, t: float) -> None:
            """Pop the best buffered message and execute its visit."""
            nonlocal buffered_total, end_time
            msg = buffers[rank].pop()
            buffered_total -= 1
            target, payload = msg
            emitted.clear()
            dispatch_visit(program, target, payload, emit)
            stats.n_visits += 1

            # resolve destinations once; with aggregation, remote sends
            # to the same rank share one wire transfer, so the per-send
            # CPU overhead applies per *group* (plus a small marshalling
            # cost per item), not per message
            dests = [dest_rank(owner, out_target) for out_target, _ in emitted]
            if aggregate and emitted:
                remote_groups = {d for d in dests if d != rank}
                n_local = sum(1 for d in dests if d == rank)
                n_remote = len(dests) - n_local
                emit_cost = t_emit * (
                    n_local + len(remote_groups) + 0.25 * n_remote
                )
            else:
                emit_cost = t_emit * len(emitted)
            service = t_visit + emit_cost
            done = t + service
            stats.busy_time[rank] += service
            if done > end_time:
                end_time = done

            group_position: dict[int, int] = {}
            for (out_target, out_payload), dest in zip(emitted, dests):
                if dest == rank:
                    stats.n_messages_local += 1
                    arrive = done + local_delay
                else:
                    stats.n_messages_remote += 1
                    if aggregate:
                        # one packet per destination rank: latency once,
                        # items serialised by bandwidth within the packet
                        pos = group_position.get(dest, 0)
                        group_position[dest] = pos + 1
                        arrive = done + remote_delay + pos * bandwidth_delay
                    else:
                        arrive = done + remote_delay
                stats.bytes_sent += msg_bytes
                push_event(arrive, _ARRIVAL, dest, (out_target, out_payload))
            emitted.clear()
            busy[rank] = True
            push_event(done, _COMPLETE, rank, None)

        events = 0
        while evq:
            events += 1
            if events > limit:
                raise SimulationError(
                    f"phase {name!r} exceeded {limit} events (runaway?)"
                )
            t, _s, kind, rank, data = heapq.heappop(evq)
            if kind == _ARRIVAL:
                target, payload = data
                buffers[rank].push(prio_fn(payload), data)
                buffered_total += 1
                if buffered_total > stats.peak_queue_total:
                    stats.peak_queue_total = buffered_total
                if not busy[rank]:
                    start_service(rank, t)
            else:  # _COMPLETE
                if len(buffers[rank]):
                    start_service(rank, t)
                else:
                    busy[rank] = False

        if buffered_total != 0:  # pragma: no cover - invariant
            raise SimulationError("messages left buffered at quiescence")
        stats.sim_time = end_time - start
        self.clock = end_time
        self.phases.append(stats)
        return stats


class BSPEngine(EngineBase):
    """Bulk-synchronous variant for the async-vs-BSP ablation.

    Same programs, but messages generated in superstep ``k`` are all
    delivered in superstep ``k+1``, with a barrier (modelled as an
    allreduce over one word) between supersteps — the Pregel/Giraph
    execution the paper contrasts against.  Within a superstep each rank
    drains its inbox in :func:`superstep_sort_key` order (a no-op under
    FIFO); superstep time is the *maximum* per-rank processing time plus
    the barrier.
    """

    def __init__(
        self,
        partition: PartitionedGraph,
        machine: MachineModel | None = None,
        discipline: QueueDiscipline | str = QueueDiscipline.PRIORITY,
    ) -> None:
        super().__init__(partition, machine, discipline)
        self.n_supersteps = 0

    def run_phase(
        self,
        name: str,
        program: VertexProgram,
        initial_messages: Iterable[Tuple[int, Tuple]],
        *,
        max_events: Optional[int] = None,
        max_supersteps: int = 1_000_000,
    ) -> PhaseStats:
        """Run ``program`` to quiescence in synchronous supersteps."""
        n_ranks = self.partition.n_ranks
        stats = PhaseStats(name=name, busy_time=np.zeros(n_ranks))

        inbox: list[list[tuple[int, Tuple]]] = [[] for _ in range(n_ranks)]
        for rank, msg in self.route_initial(initial_messages):
            inbox[rank].append(msg)

        supersteps = 0
        events = 0
        total_time = 0.0
        while any(inbox):
            supersteps += 1
            if supersteps > max_supersteps:
                raise SimulationError(f"BSP phase {name!r} did not converge")
            inbox, step_time, events = self._superstep_scalar(
                name, program, inbox, stats, events, max_events
            )
            total_time += step_time

        stats.sim_time = total_time
        self.n_supersteps = supersteps
        self.clock += total_time
        self.phases.append(stats)
        return stats

    # ------------------------------------------------------------------ #
    def _superstep_scalar(
        self,
        name: str,
        program: VertexProgram,
        inbox: list[list[tuple[int, Tuple]]],
        stats: PhaseStats,
        events: int,
        max_events: Optional[int],
    ) -> tuple[list[list[tuple[int, Tuple]]], float, int]:
        """One per-message superstep; returns (outbox, step time, events).

        This is the reference execution the batched engine must match
        message-for-message; it is also the fallback path for programs
        without batch support.
        """
        machine = self.machine
        owner = self.partition.owner
        n_ranks = self.partition.n_ranks
        key_fn = superstep_sort_key(program)

        outbox: list[list[tuple[int, Tuple]]] = [[] for _ in range(n_ranks)]
        step_rank_time = np.zeros(n_ranks)
        peak = sum(len(b) for b in inbox)
        if peak > stats.peak_queue_total:
            stats.peak_queue_total = peak

        emitted: list[tuple[int, Tuple]] = []

        def emit(target: int, payload: Tuple) -> None:
            emitted.append((target, payload))

        for rank in range(n_ranks):
            msgs = inbox[rank]
            if not msgs:
                continue
            if self.discipline is QueueDiscipline.PRIORITY:
                msgs.sort(key=lambda m: key_fn(m[1]))
            for target, payload in msgs:
                events += 1
                if max_events is not None and events > max_events:
                    raise SimulationError(
                        f"phase {name!r} exceeded {max_events} events (runaway?)"
                    )
                emitted.clear()
                dispatch_visit(program, target, payload, emit)
                stats.n_visits += 1
                step_rank_time[rank] += (
                    machine.t_visit + machine.t_emit * len(emitted)
                )
                for out_target, out_payload in emitted:
                    dest = dest_rank(owner, out_target)
                    if dest == rank:
                        stats.n_messages_local += 1
                    else:
                        stats.n_messages_remote += 1
                    stats.bytes_sent += machine.bytes_per_message
                    outbox[dest].append((out_target, out_payload))
                emitted.clear()

        stats.busy_time += step_rank_time
        step_time = float(step_rank_time.max()) if n_ranks else 0.0
        step_time += machine.allreduce_time(n_ranks, 8)  # barrier
        step_time += machine.message_delay(n_ranks > 1)  # delivery wave
        return outbox, step_time, events
