"""Graph partitioning for the simulated cluster.

The paper: "the data graph is partitioned; partitions have approximately
equal share of vertices; each partition is assigned to an MPI process",
with HavoqGT's **vertex-cut delegate** mechanism distributing the edges of
high-degree vertices across ranks to tame the load imbalance of scale-free
graphs.

:class:`PartitionedGraph` captures all of that:

* an ``owner[v]`` map (block or hash assignment),
* per-rank local arc slices for edge-centric scans,
* an optional delegate set (``degree > delegate_threshold``) whose arcs
  are striped round-robin over all ranks,
* cut statistics used by the cost model and the memory model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph

__all__ = ["PartitionedGraph", "block_partition", "hash_partition"]


@dataclass
class PartitionedGraph:
    """A :class:`CSRGraph` split across ``n_ranks`` simulated processes.

    Attributes
    ----------
    graph:
        The underlying shared topology (the simulation keeps one copy in
        process memory; *logical* ownership is what matters).
    n_ranks:
        Simulated MPI world size.
    owner:
        ``int64[n_vertices]`` rank owning each vertex's state.
    arc_rank:
        ``int64[2|E|]`` rank holding each *arc* ``(u -> v)`` for
        edge-centric work.  For ordinary vertices this is ``owner[u]``;
        for delegates the arcs are striped round-robin.
    delegates:
        Sorted vertex ids whose adjacency is striped (empty when delegate
        partitioning is off).
    """

    graph: CSRGraph
    n_ranks: int
    owner: np.ndarray
    arc_rank: np.ndarray
    delegates: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))

    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise PartitionError("need at least one rank")
        if self.owner.shape != (self.graph.n_vertices,):
            raise PartitionError("owner array shape mismatch")
        if self.arc_rank.shape != (self.graph.n_arcs,):
            raise PartitionError("arc_rank array shape mismatch")
        if self.owner.size and (self.owner.min() < 0 or self.owner.max() >= self.n_ranks):
            raise PartitionError("owner rank out of range")
        self._is_delegate = np.zeros(self.graph.n_vertices, dtype=bool)
        self._is_delegate[self.delegates] = True

    # ------------------------------------------------------------------ #
    def rank_of(self, v: int) -> int:
        """Rank owning vertex ``v``'s state."""
        return int(self.owner[v])

    def is_delegate(self, v: int) -> bool:
        """True iff ``v``'s adjacency is striped across ranks."""
        return bool(self._is_delegate[v])

    def delegate_mask(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`is_delegate` (used by the batched engine)."""
        return self._is_delegate[vertices]

    def local_vertex_count(self) -> np.ndarray:
        """``int64[n_ranks]`` vertices owned per rank."""
        return np.bincount(self.owner, minlength=self.n_ranks).astype(np.int64)

    def local_arc_count(self) -> np.ndarray:
        """``int64[n_ranks]`` arcs held per rank (edge-centric load)."""
        return np.bincount(self.arc_rank, minlength=self.n_ranks).astype(np.int64)

    def arc_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """All arcs as ``(u, v, w, holding_rank)`` — the substrate for
        vectorised edge-centric phases (Alg. 5)."""
        g = self.graph
        u = np.repeat(np.arange(g.n_vertices, dtype=np.int64), np.diff(g.indptr))
        return u, g.indices, g.weights, self.arc_rank

    def cut_arc_count(self) -> int:
        """Arcs whose endpoint states live on different ranks — the
        communication volume proxy for halo exchanges."""
        u, v, _, _ = self.arc_arrays()
        return int((self.owner[u] != self.owner[v]).sum())

    def slice_ranks(self, v: int) -> np.ndarray:
        """Ranks holding at least one arc of ``v`` (for delegates this is
        the broadcast fan-out of a state update)."""
        g = self.graph
        return np.unique(self.arc_rank[g.indptr[v]: g.indptr[v + 1]])

    def load_imbalance(self) -> float:
        """Max/mean arc load across ranks (1.0 = perfectly balanced)."""
        arcs = self.local_arc_count()
        mean = arcs.mean() if arcs.size else 0.0
        if mean == 0:
            return 1.0
        return float(arcs.max() / mean)


def _stripe_delegate_arcs(
    graph: CSRGraph,
    arc_rank: np.ndarray,
    delegates: np.ndarray,
    n_ranks: int,
) -> None:
    """Round-robin the arcs of each delegate vertex over all ranks,
    in place — HavoqGT's vertex-cut distribution of hub adjacency."""
    for v in delegates:
        s, e = int(graph.indptr[v]), int(graph.indptr[v + 1])
        arc_rank[s:e] = np.arange(e - s, dtype=np.int64) % n_ranks


def block_partition(
    graph: CSRGraph,
    n_ranks: int,
    *,
    delegate_threshold: Optional[int] = None,
) -> PartitionedGraph:
    """Contiguous equal-vertex-count blocks (``owner[v] = v * P // n``).

    Block partitioning keeps vertex counts balanced (the paper's stated
    property) but arc counts can skew badly on power-law graphs — which is
    exactly what ``delegate_threshold`` mitigates.
    """
    if n_ranks < 1:
        raise PartitionError("need at least one rank")
    n = graph.n_vertices
    owner = (np.arange(n, dtype=np.int64) * n_ranks) // max(n, 1)
    arc_rank = np.repeat(owner, np.diff(graph.indptr))
    delegates = _pick_delegates(graph, delegate_threshold)
    _stripe_delegate_arcs(graph, arc_rank, delegates, n_ranks)
    return PartitionedGraph(graph, n_ranks, owner, arc_rank, delegates)


def hash_partition(
    graph: CSRGraph,
    n_ranks: int,
    *,
    delegate_threshold: Optional[int] = None,
) -> PartitionedGraph:
    """Pseudo-random ownership (multiplicative hash of the vertex id).

    Destroys id-locality, trading a larger edge cut for better expected
    balance — the usual alternative baseline to block partitioning.
    """
    if n_ranks < 1:
        raise PartitionError("need at least one rank")
    n = graph.n_vertices
    ids = np.arange(n, dtype=np.uint64)
    mixed = (ids * np.uint64(0x9E3779B97F4A7C15)) >> np.uint64(33)
    owner = (mixed % np.uint64(n_ranks)).astype(np.int64)
    arc_rank = np.repeat(owner, np.diff(graph.indptr))
    delegates = _pick_delegates(graph, delegate_threshold)
    _stripe_delegate_arcs(graph, arc_rank, delegates, n_ranks)
    return PartitionedGraph(graph, n_ranks, owner, arc_rank, delegates)


def _pick_delegates(graph: CSRGraph, threshold: Optional[int]) -> np.ndarray:
    if threshold is None:
        return np.zeros(0, dtype=np.int64)
    if threshold < 1:
        raise PartitionError("delegate threshold must be >= 1")
    deg = graph.degree()
    return np.nonzero(deg > threshold)[0].astype(np.int64)
