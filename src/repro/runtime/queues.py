"""Per-rank message queues: FIFO (HavoqGT's default) and priority.

The paper's key runtime optimisation (§IV, evaluated in §V-C) is replacing
the FIFO visitor queue with a **priority queue ordered by the distance a
message carries**, which makes the asynchronous Bellman–Ford relaxation
approximate Dijkstra's settle order and slashes wasted re-relaxations —
3.5–13.1× faster, 4.9–22.1× fewer messages in the paper's runs.

Both disciplines expose the same ``push/pop/``len()`` interface so the
engine is discipline-agnostic.  Ties in the priority queue fall back to
arrival order (a monotone sequence number), keeping the simulation fully
deterministic.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from typing import Any

__all__ = ["QueueDiscipline", "FIFOQueue", "PriorityQueue", "make_queue"]


class QueueDiscipline(str, enum.Enum):
    """Message scheduling discipline for a rank's pending-visitor buffer."""

    FIFO = "fifo"
    PRIORITY = "priority"


class FIFOQueue:
    """Plain arrival-order buffer (HavoqGT default)."""

    __slots__ = ("_dq", "peak")

    def __init__(self) -> None:
        self._dq: deque[Any] = deque()
        self.peak = 0

    def push(self, priority: float, item: Any) -> None:
        """Priority is accepted (and ignored) for interface parity."""
        self._dq.append(item)
        if len(self._dq) > self.peak:
            self.peak = len(self._dq)

    def pop(self) -> Any:
        """Dequeue the oldest message."""
        return self._dq.popleft()

    def __len__(self) -> int:
        return len(self._dq)


class PriorityQueue:
    """Min-heap on ``(priority, seq)`` — the paper's optimisation.

    Lower priority value = served sooner; for the Voronoi kernel the
    priority is the carried tentative distance, which "can produce [a]
    similar effect [to] the min-priority queue in Dijkstra's algorithm".
    """

    __slots__ = ("_heap", "_seq", "peak")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._seq = 0
        self.peak = 0

    def push(self, priority: float, item: Any) -> None:
        """Enqueue with the given priority (ties: arrival order)."""
        self._seq += 1
        heapq.heappush(self._heap, (priority, self._seq, item))
        if len(self._heap) > self.peak:
            self.peak = len(self._heap)

    def pop(self) -> Any:
        """Dequeue the lowest-priority-value (closest) message."""
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


def make_queue(discipline: QueueDiscipline | str):
    """Instantiate the buffer for one rank."""
    discipline = QueueDiscipline(discipline)
    if discipline is QueueDiscipline.FIFO:
        return FIFOQueue()
    return PriorityQueue()
