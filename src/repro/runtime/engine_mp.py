"""Multiprocess rank-parallel BSP engine: true parallelism across ranks.

:class:`BSPMultiprocessEngine` (registry name ``bsp-mp``) executes the
exact superstep semantics of
:class:`~repro.runtime.engine_batched.BSPBatchedEngine` — the engine it
subclasses — but shards each superstep's inbox across a persistent pool
of ``fork``-ed worker processes, one worker per contiguous group of
simulated ranks.  This is the step from *simulated* distributed
execution to *actually parallel* execution: the batched superstep is
embarrassingly rank-parallel because a vertex's state is only ever
written by its owner rank, so rank-disjoint inbox shards touch disjoint
state.

Data movement
-------------
The partitioned CSR (graph topology, weights, ``owner``/``arc_rank``
maps) is **never pickled**: workers are forked after the engine holds
the partition, so they inherit it through copy-on-write pages — the
read-only-shared-graph arrangement HavoqGT gets from mmap'd graph
storage.  Message *arrays* cross process boundaries through per-worker
:class:`~repro.runtime.shm_transport.ShmRing` shared-memory rings (two
per worker: a parent-written inbox ring and a worker-written emission
ring, both allocated before the fork so both sides inherit the same
segments): the writer packs the flat ``int64`` arrays into its ring and
sends only a small ``(offset, rows, cols)`` descriptor over the pipe;
the reader reconstructs zero-copy ``np.ndarray`` views.  Three message
kinds remain pickled, all compact and once-per-phase-scale:

* once per phase: the program's *mutable* state payload
  (:meth:`mp_clone_payload` → :meth:`mp_materialize`), e.g. the
  initialised seed entries of the Voronoi program;
* at state-sync points: per-worker owned-state deltas
  (:meth:`mp_collect` → :meth:`mp_merge`), which are small dicts;
* once per phase at quiescence: each worker's owned-vertex state,
  folded back into the driver's program.

When ``multiprocessing.shared_memory`` is unavailable (or the
``shm_transport`` knob disables it) every descriptor degrades to the
pickled ``("raw", ...)`` form — the fallback *is* the parity reference,
and ``tests/test_engine_conformance.py`` pins that both transports
produce bit-identical trees and counters.

Adaptive superstep coalescing
-----------------------------
Many-tiny-superstep phases (long-diameter grids) are barrier-bound:
each superstep moves a handful of messages but pays a full
send/receive/merge round trip.  When the inbox volume falls below
``coalesce_threshold`` messages, the driver switches to *coalesced
groups*: every worker receives the **full** inbox and runs up to
``coalesce_max`` supersteps locally behind a single barrier (stopping
early at quiescence or when the volume grows back over the threshold),
with one designated worker streaming each superstep's emissions back so
the driver can run the identical per-superstep accounting.  This is the
HavoqGT message/packet-aggregation idea in array form.  Logical
counters — visits, messages, bytes, peak queue, superstep count — are
**bit-identical** to uncoalesced execution because the accounting loop
consumes the same per-superstep arrays either way; only the number of
physical barriers changes.  The cumulative number of logical supersteps
executed inside groups is exposed as ``coalesced_supersteps``
(EngineResult and solver provenance).

Replicated group execution is exact because (a) before each group the
driver synchronises every worker's replica with the owned-state deltas
of all vertices written since the previous sync ("dirty set"), so all
replicas compute the group identically, and (b) phase-end/checkpoint
collects are ownership-filtered (each program's :meth:`mp_collect`
restricts to the queried vertices), so state written redundantly by a
replica for vertices it does not own is never double-collected.

Parity contract
---------------
``bsp-mp`` produces **bit-identical** message counts, visit counts,
byte counts, peak-queue and superstep counts to ``bsp-batched`` (and
hence to ``bsp``) for any ``workers`` value, either transport, and any
coalescing setting: the driver runs the identical accounting loop on
the per-superstep emission arrays, and the per-vertex
lexicographic-minimum reduction inside a superstep is
order-independent, so neither sharding the inbox by owner rank nor
replicating it across workers changes anything observable.
``tests/test_engine_conformance.py`` pins this for ``workers`` in
{1, 2, 4} across transports.  Simulated time is a *model* output —
identical too — while wall-clock time is where the workers actually
help.

Fault tolerance
---------------
Rank failure is the norm at the paper's target scale, so the driver
*supervises* its workers instead of dying with them:

* **Detection** — a worker that exits (pipe EOF, exit code recorded) or
  that misses the per-superstep heartbeat (``worker_timeout_s``; hung
  workers are hard-killed) raises an internal death record, never a
  bare ``EOFError``.
* **Checkpoint** — every ``checkpoint_interval`` *logical* supersteps
  the driver gathers each worker's owned-vertex state
  (:meth:`mp_collect`, the same snapshot the phase-end merge uses) and
  clears its *replay log* (the sharded steps, coalesced groups and
  state syncs since the last checkpoint).  Coalesced groups never
  straddle a checkpoint boundary, so replay stays bounded by
  ``checkpoint_interval`` logical supersteps.
* **Recovery** — a dead worker is forked afresh (inheriting the same
  ring segments, so no transport state needs rebuilding — descriptors
  are self-describing and its ring head simply restarts), re-
  materialised from the phase-start program snapshot, restored from
  the **union** of all workers' last checkpoints (a replica that will
  replay coalesced groups needs the full synced state, not just its
  own shard), re-driven through the logged entries (emissions
  discarded — the cluster already consumed them; replayed commands
  ship raw arrays since old ring offsets are stale) and finally
  through the *current* step or group, whose emissions are returned.
  Because every entry is a deterministic function of restored state,
  the recovered emissions, the resulting tree, and **every BSP
  counter** are bit-identical to a fault-free run
  (``tests/test_faults.py`` pins this by killing a worker at every
  superstep index in turn, on both transports).
* **Escalation** — after ``max_restarts`` restarts within one phase
  the engine raises :class:`~repro.errors.WorkerCrashError` (the
  transient class the serve layer retries), carrying restart
  provenance; ``restarts`` / ``replayed_supersteps`` /
  ``recovery_wall_s`` are exposed for
  :class:`~repro.runtime.engines.EngineResult` and solver provenance.

Deterministic chaos comes from :class:`repro.faults.FaultPlan`
(``SolverConfig(fault_plan=...)`` or the ``REPRO_FAULT_PLAN`` env
hook): ``kill_worker`` actions hard-kill a worker just before a chosen
logical superstep, ``delay_worker`` actions stall one long enough to
trip the heartbeat.  The driver *peeks* the plan when sizing a
coalesced group so a mid-group fault lands on its exact logical
superstep (the group is truncated there and the survivors run
deterministically to the same point).

Fallback rules (the engine is total over every program):

* ``workers <= 1``, or the platform lacks the ``fork`` start method
  (``spawn`` would pickle the graph per worker, defeating the design)
  → in-process vectorised supersteps;
* the program lacks the mp protocol (:func:`supports_mp`)
  → in-process vectorised supersteps;
* FIFO discipline or no batch protocol
  → the scalar per-message superstep loop, as in the batched engine;
* ``shared_memory`` unavailable or ``shm_transport=False``
  → pickled array descriptors over the same protocol;
* a batch that does not fit its ring → that one descriptor degrades
  to pickled, transparently.

The mp protocol
---------------
A program opts in by implementing, on top of the batch protocol:

``mp_clone_payload() -> dict``
    Picklable snapshot of the program's *mutable* state (never the
    partition — workers inherit that).
``mp_materialize(partition, payload) -> program``  (classmethod)
    Rebuild a worker-side replica from the inherited partition plus the
    snapshot.
``mp_collect(vertices) -> dict``
    Picklable state restricted to ``vertices`` (an arbitrary vertex-id
    array: the worker's owned set for phase-end/checkpoint collects, a
    dirty subset for pre-group state syncs).
``mp_merge(collected) -> None``
    Fold one collected delta into this replica's state (idempotent
    for any state a replica may already hold).

``mp_collect``/``mp_merge`` double as the checkpoint format: restoring
a fresh replica is ``mp_materialize`` (phase snapshot) followed by
``mp_merge`` of checkpoint deltas, which reconstructs the exact state
held at the checkpointed superstep.

Pool lifecycle: workers start lazily on the first multiprocess phase
and persist across phases (the solver runs phases 1 and 6 on one
engine).  :meth:`BSPMultiprocessEngine.close` — called by the solver in
a ``finally`` and by ``run_phase_with`` — always shuts the pool down
(terminating workers, then closing and unlinking the shared-memory
rings), escalating ``terminate`` → ``kill`` on a wedged child so solver
exit can never hang; workers are daemonic as a second line of defence.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import SimulationError, WorkerCrashError
from repro.faults import FaultPlan, env_plan
from repro.runtime.cost_model import MachineModel
from repro.runtime.engine import PhaseStats, VertexProgram
from repro.runtime.engine_batched import (
    BSPBatchedEngine,
    run_batch_superstep,
    supports_batch,
)
from repro.runtime.partition import PartitionedGraph
from repro.runtime.queues import QueueDiscipline
from repro.runtime.shm_transport import (
    SHM_AVAILABLE,
    ShmRing,
    pack_message_block,
    unpack_message_block,
)

__all__ = [
    "DEFAULT_CHECKPOINT_INTERVAL",
    "DEFAULT_COALESCE_MAX",
    "DEFAULT_COALESCE_THRESHOLD",
    "DEFAULT_MAX_RESTARTS",
    "DEFAULT_WORKERS",
    "BSPMultiprocessEngine",
    "fork_available",
    "supports_mp",
]

#: worker count when ``workers=None``: a fixed small default (rather
#: than ``os.cpu_count()``) so runs are reproducible across machines —
#: the determinism contract of ``repro-steiner engines --bench``
DEFAULT_WORKERS = 2

#: take an owned-state checkpoint every K supersteps (the replay log —
#: the entries a recovery must re-drive — never exceeds K logical
#: supersteps; coalesced groups are capped at the boundary).  8 balances
#: recovery cost against checkpoint IPC: each checkpoint is a full
#: owned-state collect round-trip, which at interval 4 dominated
#: coalesced stretches of small supersteps
DEFAULT_CHECKPOINT_INTERVAL = 8

#: worker restarts tolerated per phase before escalating to
#: :class:`~repro.errors.WorkerCrashError`
DEFAULT_MAX_RESTARTS = 2

#: inbox volume (messages) below which supersteps are coalesced into
#: one barrier; ``coalesce_threshold=0`` disables coalescing.  Below
#: ~16K messages a vectorised superstep is cheaper than one IPC round
#: trip, so replicated in-worker execution wins even though every
#: worker runs the full inbox chain
DEFAULT_COALESCE_THRESHOLD = 16384

#: most logical supersteps one coalesced group may run behind a single
#: barrier (further capped so groups never straddle a checkpoint)
DEFAULT_COALESCE_MAX = 32

#: exit code of a fault-injected crash (``kill_worker`` actions), so a
#: chaos log can tell injected deaths from real ones
_INJECTED_EXIT = 17

_MP_HOOKS = ("mp_clone_payload", "mp_materialize", "mp_collect", "mp_merge")


def fork_available() -> bool:
    """True iff the platform offers the ``fork`` start method (Linux,
    macOS with caveats); without it the engine stays in-process."""
    return "fork" in multiprocessing.get_all_start_methods()


def supports_mp(program: VertexProgram) -> bool:
    """True iff the program implements the batch *and* mp protocols.

    >>> from repro.runtime.partition import block_partition
    >>> from repro.graph.generators import grid_graph
    >>> from repro.core.voronoi_visitor import VoronoiProgram
    >>> part = block_partition(grid_graph(3, 3), 2)
    >>> supports_mp(VoronoiProgram(part))
    True
    >>> class BatchOnly:
    ...     batch_payload_width = 1
    ...     def batch_encode(self, t, p):
    ...         return p
    ...     def batch_visit(self, t, p, e):
    ...         pass
    >>> supports_mp(BatchOnly())
    False
    """
    return supports_batch(program) and all(
        hasattr(program, attr) for attr in _MP_HOOKS
    )


class _WorkerDeath(Exception):
    """Internal: worker ``worker`` stopped responding (crash or hang).

    Never escapes the engine — recovery either replaces the worker or
    escalates to :class:`~repro.errors.WorkerCrashError`.
    """

    def __init__(self, worker: int, reason: str, exitcode: int | None) -> None:
        self.worker = worker
        self.reason = reason
        self.exitcode = exitcode
        super().__init__(f"worker {worker}: {reason} (exitcode={exitcode})")


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
def _worker_main(
    conn,
    partition: PartitionedGraph,
    owned: np.ndarray,
    ring_in: ShmRing | None,
    ring_out: ShmRing | None,
) -> None:
    """Serve phase/step/steps/restore/collect commands over ``conn``.

    Runs in a forked child: ``partition``, ``owned`` and both rings
    arrive through inherited memory, not pickling.  ``ring_in`` holds
    parent-packed inbox blocks; emissions are packed into ``ring_out``
    (falling back to pickled arrays when a block does not fit).  Any
    exception is reported back as an ``("error", traceback)`` reply
    instead of killing the child silently, so the driver can surface
    it.  The ``crash`` command (fault injection) exits hard —
    indistinguishable from an OOM kill from the driver's side, which is
    the point.
    """
    program = None
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        cmd = msg[0]
        if cmd == "stop":
            break
        if cmd == "crash":  # injected fault: die without a reply
            os._exit(_INJECTED_EXIT)
        try:
            if cmd == "phase":
                _, cls, payload = msg
                program = cls.mp_materialize(partition, payload)
                conn.send(("ok", None))
            elif cmd == "restore":
                for delta in msg[1]:
                    program.mp_merge(delta)
                conn.send(("ok", None))
            elif cmd == "step":
                _, blob, delay_s = msg
                if delay_s > 0:  # injected straggler
                    time.sleep(delay_s)
                width = program.batch_payload_width
                targets, payload = unpack_message_block(
                    ring_in, blob, (1, width)
                )
                out = run_batch_superstep(program, targets, payload, width)
                conn.send(("ok", pack_message_block(ring_out, out)))
            elif cmd == "steps":
                # one coalesced group: run up to k_max supersteps on the
                # full inbox, streaming per-superstep emissions (the
                # designated worker only) so the driver can account each
                # logical superstep exactly
                (_, blob, k_max, threshold, want_stream,
                 crash_at, delay_at, delay_s) = msg
                width = program.batch_payload_width
                targets, payload = unpack_message_block(
                    ring_in, blob, (1, width)
                )
                stream: list[tuple] | None = [] if want_stream else None
                if want_stream and ring_out is not None:
                    # stream blocks must all stay live at once
                    ring_out.rewind()
                n = 0
                while True:
                    if crash_at is not None and n == crash_at:
                        os._exit(_INJECTED_EXIT)
                    if delay_at is not None and n == delay_at:
                        time.sleep(delay_s)
                    out = run_batch_superstep(program, targets, payload, width)
                    n += 1
                    if stream is not None:
                        stream.append(
                            pack_message_block(ring_out, out, wrap=False)
                        )
                    targets, payload = out[1], out[2]
                    if n >= k_max or targets.size == 0:
                        break
                    if threshold and targets.size >= threshold:
                        break
                conn.send(("ok", (n, stream)))
            elif cmd == "collect":
                conn.send(("ok", program.mp_collect(owned)))
            elif cmd == "collect_subset":
                conn.send(("ok", program.mp_collect(msg[1])))
            else:  # pragma: no cover - protocol guard
                conn.send(("error", f"unknown command {cmd!r}"))
        except BaseException:
            try:
                conn.send(("error", traceback.format_exc()))
            except (BrokenPipeError, OSError):  # pragma: no cover
                break
    conn.close()


# --------------------------------------------------------------------- #
# driver side
# --------------------------------------------------------------------- #
class _RankWorkerPool:
    """A supervised pool of forked workers, one per group of ranks.

    ``rank_worker[r]`` maps simulated rank ``r`` to its worker — the
    same contiguous-block assignment the partitioner uses for vertices,
    so rank locality survives the extra layer.  When ``use_shm`` the
    pool allocates two rings per worker *before* forking (inbox:
    parent-written, emissions: worker-written); respawned workers fork
    from the driver again, so they inherit the very same segments.
    Individual workers can be respawned in place (:meth:`respawn`);
    failure shows up as :class:`_WorkerDeath` from :meth:`recv`, never
    as a raw pipe error.
    """

    def __init__(
        self,
        partition: PartitionedGraph,
        n_workers: int,
        *,
        timeout_s: float | None = None,
        use_shm: bool = False,
        ring_capacity: int | None = None,
    ) -> None:
        self._ctx = multiprocessing.get_context("fork")
        self.partition = partition
        self.timeout_s = timeout_s
        n_ranks = partition.n_ranks
        self.n_workers = n_workers
        self.rank_worker = (
            np.arange(n_ranks, dtype=np.int64) * n_workers
        ) // n_ranks
        worker_of_vertex = self.rank_worker[partition.owner]
        self._owned = [
            np.nonzero(worker_of_vertex == w)[0].astype(np.int64)
            for w in range(n_workers)
        ]
        self.use_shm = bool(use_shm) and SHM_AVAILABLE
        if ring_capacity is None:
            # sized for a typical full inbox/emission batch; anything
            # larger transparently falls back to a pickled descriptor
            ring_capacity = min(
                64 << 20, max(1 << 20, 48 * partition.graph.n_arcs)
            )
        self.ring_in: list[ShmRing | None] = [None] * n_workers
        self.ring_out: list[ShmRing | None] = [None] * n_workers
        if self.use_shm:
            self.ring_in = [ShmRing(ring_capacity) for _ in range(n_workers)]
            self.ring_out = [ShmRing(ring_capacity) for _ in range(n_workers)]
        self._conns: list = [None] * n_workers
        self._procs: list = [None] * n_workers
        for w in range(n_workers):
            self._spawn(w)

    # ------------------------------------------------------------------ #
    def _spawn(self, w: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self.partition,
                self._owned[w],
                self.ring_in[w],
                self.ring_out[w],
            ),
            daemon=True,
            name=f"bsp-mp-worker-{w}",
        )
        proc.start()
        child_conn.close()
        self._conns[w] = parent_conn
        self._procs[w] = proc

    def respawn(self, w: int) -> None:
        """Replace worker ``w`` with a fresh fork (reaping the corpse).

        The new child forks from the *driver*, so it inherits the same
        copy-on-write partition pages — and the same ring segments — as
        the original; respawning never re-pickles the graph and never
        reallocates transport state (its emission-ring head restarts at
        zero, which is safe because descriptors are self-describing and
        the protocol is strict request/reply)."""
        self._reap(w)
        self._spawn(w)

    def _reap(self, w: int) -> None:
        """Dispose of worker ``w``: close its pipe, then join with
        ``terminate`` → ``kill`` escalation so a wedged child can never
        stall the driver."""
        conn, proc = self._conns[w], self._procs[w]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            self._conns[w] = None
        if proc is not None:
            _join_escalating(proc)
            self._procs[w] = None

    # ------------------------------------------------------------------ #
    def send(self, w: int, msg: tuple) -> None:
        """Send one command to worker ``w``; a broken pipe is deferred —
        the matching :meth:`recv` reports the death."""
        try:
            self._conns[w].send(msg)
        except (BrokenPipeError, OSError):
            pass

    def recv(self, w: int):
        """One reply from worker ``w``.

        Raises :class:`_WorkerDeath` when the worker exited (pipe EOF;
        exit code attached) or missed the heartbeat (``timeout_s``
        without a reply; the hung child is hard-killed first so its
        eventual reply can never desynchronise the pipe).  A worker
        *error* reply — the program itself raised — stays a
        :class:`SimulationError`: it is deterministic and would recur
        on replay, so it must not be retried.
        """
        conn, proc = self._conns[w], self._procs[w]
        if conn is None or proc is None:  # pragma: no cover - guard
            raise _WorkerDeath(w, "no live worker", None)
        try:
            if self.timeout_s is not None and not conn.poll(self.timeout_s):
                _join_escalating(proc)
                raise _WorkerDeath(
                    w,
                    f"heartbeat timeout ({self.timeout_s}s without a reply)",
                    proc.exitcode,
                )
            status, value = conn.recv()
        except (EOFError, OSError) as exc:
            proc.join(timeout=5)
            raise _WorkerDeath(
                w, "died unexpectedly (no reply on its pipe)", proc.exitcode
            ) from exc
        if status == "error":
            raise SimulationError(f"bsp-mp worker failed:\n{value}")
        return value

    def call(self, w: int, msg: tuple):
        """``send`` + ``recv`` for one worker."""
        self.send(w, msg)
        return self.recv(w)

    def close(self) -> None:
        """Stop and join every worker, escalating ``terminate`` →
        ``kill`` on any child that does not exit, then close and unlink
        the shared-memory rings.  Idempotent."""
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            if proc is not None:
                _join_escalating(proc)
        for conn in self._conns:
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
        self._conns = [None] * self.n_workers
        self._procs = [None] * self.n_workers
        for ring in (*self.ring_in, *self.ring_out):
            if ring is not None:
                ring.close(unlink=True)
        self.ring_in = [None] * self.n_workers
        self.ring_out = [None] * self.n_workers


def _join_escalating(proc, grace_s: float = 5.0) -> None:
    """Join ``proc`` with escalation: wait, ``terminate`` (SIGTERM),
    ``kill`` (SIGKILL) — each with a bounded grace period — so a hung
    or signal-ignoring child can never wedge solver exit."""
    proc.join(timeout=grace_s)
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=grace_s)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=grace_s)


class BSPMultiprocessEngine(BSPBatchedEngine):
    """Batched BSP engine whose supersteps run on a forked worker pool.

    ``workers`` caps at ``partition.n_ranks`` (a worker with no ranks
    would own no vertices); ``None`` means :data:`DEFAULT_WORKERS`.
    ``workers <= 1`` short-circuits to the in-process batched engine —
    same results, no processes.

    Transport/coalescing knobs (results are bit-identical for every
    setting; see the module docstring):
    ``shm_transport`` forces the shared-memory descriptor transport on
    (``True``; still requires platform support) or off (``False``,
    pickled arrays); ``None`` auto-detects.
    ``coalesce_threshold`` inbox volume below which supersteps coalesce
    (0 disables), ``coalesce_max`` logical supersteps per coalesced
    group, ``ring_capacity`` bytes per ring (``None`` sizes from the
    graph).

    Fault-tolerance knobs:
    ``checkpoint_interval`` supersteps between owned-state checkpoints,
    ``max_restarts`` worker restarts tolerated per phase,
    ``worker_timeout_s`` per-barrier heartbeat (``None`` disables
    hang detection), ``fault_plan`` a deterministic
    :class:`~repro.faults.FaultPlan` to inject (defaults to the
    ``REPRO_FAULT_PLAN`` environment hook).
    """

    def __init__(
        self,
        partition: PartitionedGraph,
        machine: MachineModel | None = None,
        discipline: QueueDiscipline | str = QueueDiscipline.PRIORITY,
        *,
        workers: Optional[int] = None,
        checkpoint_interval: Optional[int] = None,
        max_restarts: Optional[int] = None,
        worker_timeout_s: Optional[float] = None,
        fault_plan: FaultPlan | None = None,
        shm_transport: Optional[bool] = None,
        coalesce_threshold: Optional[int] = None,
        coalesce_max: Optional[int] = None,
        ring_capacity: Optional[int] = None,
    ) -> None:
        super().__init__(partition, machine, discipline)
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None for the default)")
        resolved = DEFAULT_WORKERS if workers is None else workers
        self.workers = min(resolved, partition.n_ranks)
        self.checkpoint_interval = (
            DEFAULT_CHECKPOINT_INTERVAL
            if checkpoint_interval is None
            else checkpoint_interval
        )
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        self.max_restarts = (
            DEFAULT_MAX_RESTARTS if max_restarts is None else max_restarts
        )
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if worker_timeout_s is not None and worker_timeout_s <= 0:
            raise ValueError("worker_timeout_s must be > 0 (or None)")
        self.worker_timeout_s = worker_timeout_s
        self.fault_plan = fault_plan if fault_plan is not None else env_plan()
        self._use_shm = (
            SHM_AVAILABLE
            if shm_transport is None
            else bool(shm_transport) and SHM_AVAILABLE
        )
        self._coalesce_threshold = (
            DEFAULT_COALESCE_THRESHOLD
            if coalesce_threshold is None
            else coalesce_threshold
        )
        if self._coalesce_threshold < 0:
            raise ValueError("coalesce_threshold must be >= 0")
        self._coalesce_max = (
            DEFAULT_COALESCE_MAX if coalesce_max is None else coalesce_max
        )
        if self._coalesce_max < 1:
            raise ValueError("coalesce_max must be >= 1")
        if ring_capacity is not None and ring_capacity < 8:
            raise ValueError("ring_capacity must be >= 8 bytes (or None)")
        self._ring_capacity = ring_capacity
        #: provenance for benchmarks: workers actually used by the last
        #: ``run_phase`` (1 when a fallback kept execution in-process)
        self.workers_used = 1
        #: transport of the last pooled phase: "shm" or "pickle"
        #: (``None`` until a phase actually runs on the pool — the
        #: fallback rules keep in-process runs transport-free)
        self.transport_used: Optional[str] = None
        #: logical supersteps executed inside coalesced groups,
        #: cumulative across phases (EngineResult / solver provenance)
        self.coalesced_supersteps = 0
        #: recovery provenance, cumulative across phases (threaded into
        #: ``EngineResult`` and solver ``provenance["fault_recovery"]``)
        self.restarts = 0
        self.replayed_supersteps = 0
        self.recovery_wall_s = 0.0
        self._pool: _RankWorkerPool | None = None
        self._mp_active = False
        # per-phase supervision state
        self._phase_name = ""
        self._phase_restarts = 0
        self._phase_payload: tuple | None = None
        self._superstep_idx = 0
        self._ckpt_step_idx = 0
        self._ckpt_state: dict[int, object] = {}
        self._replay_log: list[tuple] = []
        self._dirty: list[np.ndarray] = []

    # ------------------------------------------------------------------ #
    def run_phase(
        self,
        name: str,
        program: VertexProgram,
        initial_messages: Iterable[Tuple[int, Tuple]],
        *,
        max_events: Optional[int] = None,
        max_supersteps: int = 1_000_000,
    ) -> PhaseStats:
        """Run ``program`` to quiescence with rank-parallel, supervised
        supersteps (in-process fallback per the module's fallback rules
        — counts are identical either way)."""
        use_pool = (
            self.workers > 1
            and fork_available()
            and supports_mp(program)
            and self.discipline is QueueDiscipline.PRIORITY
        )
        self.workers_used = self.workers if use_pool else 1
        if not use_pool:
            return super().run_phase(
                name,
                program,
                initial_messages,
                max_events=max_events,
                max_supersteps=max_supersteps,
            )
        if self._pool is None:
            self._pool = _RankWorkerPool(
                self.partition,
                self.workers,
                timeout_s=self.worker_timeout_s,
                use_shm=self._use_shm,
                ring_capacity=self._ring_capacity,
            )
        self.transport_used = "shm" if self._pool.use_shm else "pickle"
        self._mp_active = True
        self._phase_name = name
        self._phase_restarts = 0
        try:
            return super().run_phase(
                name,
                program,
                initial_messages,
                max_events=max_events,
                max_supersteps=max_supersteps,
            )
        finally:
            self._mp_active = False
            self._phase_payload = None
            self._ckpt_state = {}
            self._replay_log = []
            self._dirty = []

    # ------------------------------------------------------------------ #
    # BSPBatchedEngine hooks: replicate / drive / shard / gather
    # ------------------------------------------------------------------ #
    def _phase_begin(self, program: VertexProgram) -> None:
        if not self._mp_active:
            return
        pool = self._pool
        self._phase_payload = (type(program), program.mp_clone_payload())
        self._superstep_idx = 0
        self._ckpt_step_idx = 0
        self._ckpt_state = {}
        self._replay_log = []
        self._dirty = []
        for w in range(pool.n_workers):
            pool.send(w, ("phase", *self._phase_payload))
        for w in range(pool.n_workers):
            try:
                pool.recv(w)
            except _WorkerDeath as death:
                self._recover_worker(death)

    def _drive_supersteps(self, program, targets, payload, width):
        if not self._mp_active:
            yield from super()._drive_supersteps(
                program, targets, payload, width
            )
            return
        # groups never straddle a checkpoint boundary: replay stays
        # bounded by checkpoint_interval *logical* supersteps
        k_cap = min(
            self._coalesce_max,
            self.checkpoint_interval
            - (self._superstep_idx - self._ckpt_step_idx),
        )
        if (
            self._coalesce_max > 1
            and self._coalesce_threshold > 0
            and targets.size < self._coalesce_threshold
            and k_cap >= 2
        ):
            yield from self._drive_group(program, targets, payload, width, k_cap)
        else:
            yield from super()._drive_supersteps(
                program, targets, payload, width
            )

    def _superstep_batch(self, program, targets, payload, proc_rank, width):
        if not self._mp_active:
            return super()._superstep_batch(
                program, targets, payload, proc_rank, width
            )
        pool = self._pool
        idx = self._superstep_idx + 1
        delays = self._inject_faults(idx)

        worker_of_msg = pool.rank_worker[proc_rank]
        shards: dict[int, tuple] = {}
        for w in range(pool.n_workers):
            mask = worker_of_msg == w
            shards[w] = (targets[mask], payload[mask])
            blob = pack_message_block(pool.ring_in[w], shards[w])
            pool.send(w, ("step", blob, delays.get(w, 0.0)))
        parts: dict[int, tuple] = {}
        dead: list[_WorkerDeath] = []
        for w in range(pool.n_workers):
            try:
                parts[w] = pool.recv(w)
            except _WorkerDeath as death:
                dead.append(death)
        for death in dead:
            parts[death.worker] = self._recover_worker(
                death, redrive_shard=shards[death.worker]
            )

        self._replay_log.append(("step", targets, payload, worker_of_msg))
        self._dirty.append(targets[targets >= 0])
        self._superstep_idx = idx
        if idx - self._ckpt_step_idx >= self.checkpoint_interval:
            self._take_checkpoint()

        # decode each worker's emission descriptor; the concatenation
        # copies the ring views before the next command reuses the ring
        ordered = [
            unpack_message_block(
                pool.ring_out[w], parts[w], (1, 1, width)
            )
            for w in range(pool.n_workers)
        ]
        # width-1 payloads decode 1-D; normalise to (n, width) so
        # workers with empty shards concatenate with non-empty ones
        return (
            np.concatenate([p[0] for p in ordered]),
            np.concatenate([p[1] for p in ordered]),
            np.concatenate(
                [p[2].reshape(-1, width) for p in ordered], axis=0
            ),
        )

    def _phase_end(self, program: VertexProgram) -> None:
        if not self._mp_active:
            return
        pool = self._pool
        for w in range(pool.n_workers):
            pool.send(w, ("collect",))
        for w in range(pool.n_workers):
            program.mp_merge(self._supervised_collect(w))

    # ------------------------------------------------------------------ #
    # coalesced groups
    # ------------------------------------------------------------------ #
    def _drive_group(self, program, targets, payload, width, k_cap):
        """Run up to ``k_cap`` logical supersteps behind one barrier.

        Every worker executes the *full* inbox chain (replicated
        execution on state made consistent by :meth:`_sync_dirty`);
        worker 0 streams each superstep's emission block back so the
        caller can yield the identical per-superstep accounting tuples
        an uncoalesced run would produce."""
        pool = self._pool
        owner = self.partition.owner
        start = self._superstep_idx
        k_eff, threshold, crash_at, delay_at, delay_s = (
            self._plan_group_faults(start, k_cap)
        )
        self._sync_dirty()
        for w in range(pool.n_workers):
            blob = pack_message_block(pool.ring_in[w], (targets, payload))
            pool.send(
                w,
                (
                    "steps",
                    blob,
                    k_eff,
                    threshold,
                    w == 0,
                    crash_at.get(w),
                    delay_at.get(w),
                    delay_s,
                ),
            )
        replies: dict[int, tuple] = {}
        dead: list[_WorkerDeath] = []
        for w in range(pool.n_workers):
            try:
                replies[w] = pool.recv(w)
            except _WorkerDeath as death:
                dead.append(death)
        for death in dead:
            replies[death.worker] = self._recover_worker(
                death,
                redrive_group=(
                    targets,
                    payload,
                    k_eff,
                    threshold,
                    death.worker == 0,
                ),
            )
        self._replay_log.append(("group", targets, payload, k_eff, threshold))

        n, stream = replies[0]
        # copy=True: the streamed blocks all live in worker 0's ring and
        # the yielded arrays outlive this barrier
        steps_out = [
            unpack_message_block(
                pool.ring_out[0], blob, (1, 1, width), copy=True
            )
            for blob in stream
        ]
        assert len(steps_out) == n, (len(steps_out), n)
        self._superstep_idx = start + n
        self.coalesced_supersteps += n
        if self._superstep_idx - self._ckpt_step_idx >= self.checkpoint_interval:
            self._take_checkpoint()

        in_t, in_p = targets, payload
        for src_ranks, out_t, out_p in steps_out:
            is_rank = in_t < 0
            proc_rank = np.where(
                is_rank, -in_t - 1, owner[np.maximum(in_t, 0)]
            )
            yield in_t, in_p, proc_rank, src_ranks, out_t, out_p
            in_t, in_p = out_t, out_p

    def _plan_group_faults(self, start: int, k_cap: int):
        """Size a coalesced group against the fault plan.

        Peeks (without consuming) for the earliest kill/delay scheduled
        inside ``(start, start + k_cap]``; if one exists the group is
        truncated to end exactly at that logical superstep, the volume
        stop is disabled (survivors must deterministically reach the
        fault point) and only that superstep's actions are consumed —
        so a mid-group fault fires at its exact logical superstep, just
        as it would uncoalesced."""
        plan = self.fault_plan
        crash_at: dict[int, int] = {}
        delay_at: dict[int, int] = {}
        delay_s = 0.0
        if plan is None:
            return k_cap, self._coalesce_threshold, crash_at, delay_at, delay_s
        hit = None
        for s in range(start + 1, start + k_cap + 1):
            if plan.peek(
                "kill_worker", phase=self._phase_name, superstep=s
            ) or plan.peek(
                "delay_worker", phase=self._phase_name, superstep=s
            ):
                hit = s
                break
        if hit is None:
            return k_cap, self._coalesce_threshold, crash_at, delay_at, delay_s
        k_eff = hit - start
        for act in plan.take(
            "kill_worker", phase=self._phase_name, superstep=hit
        ):
            crash_at[(act.worker or 0) % self._pool.n_workers] = k_eff - 1
        for act in plan.take(
            "delay_worker", phase=self._phase_name, superstep=hit
        ):
            delay_at[(act.worker or 0) % self._pool.n_workers] = k_eff - 1
            delay_s = act.delay_s
        return k_eff, 0, crash_at, delay_at, delay_s

    def _sync_dirty(self) -> None:
        """Make every replica's state authoritative before a group.

        Gathers from each owner the state deltas of every vertex
        written by sharded supersteps since the last sync, logs the
        deltas (replay must reproduce the restore), and broadcasts to
        each worker the *other* workers' deltas (a worker already holds
        its own writes; re-merging them must not be assumed idempotent
        — e.g. edge lists)."""
        pool = self._pool
        nonempty = [d for d in self._dirty if d.size]
        self._dirty = []
        if not nonempty:
            return
        dirty = np.unique(np.concatenate(nonempty))
        worker_of = pool.rank_worker[self.partition.owner[dirty]]
        subsets = {w: dirty[worker_of == w] for w in range(pool.n_workers)}
        for w in range(pool.n_workers):
            pool.send(w, ("collect_subset", subsets[w]))
        deltas = {
            w: self._supervised_collect(w, command=("collect_subset", subsets[w]))
            for w in range(pool.n_workers)
        }
        # log before broadcasting: a worker that dies mid-restore is
        # recovered by replaying the log, which must include this sync
        self._replay_log.append(("sync", deltas))
        for w in range(pool.n_workers):
            others = [deltas[u] for u in range(pool.n_workers) if u != w]
            pool.send(w, ("restore", others))
        for w in range(pool.n_workers):
            try:
                pool.recv(w)
            except _WorkerDeath as death:
                self._recover_worker(death)

    # ------------------------------------------------------------------ #
    # supervision internals
    # ------------------------------------------------------------------ #
    def _inject_faults(self, superstep: int) -> dict[int, float]:
        """Fire the plan's kill/delay actions scheduled for this
        superstep (sharded path; coalesced groups plan theirs via
        :meth:`_plan_group_faults`); returns per-worker injected
        delays."""
        plan, pool = self.fault_plan, self._pool
        delays: dict[int, float] = {}
        if plan is None:
            return delays
        for act in plan.take(
            "kill_worker", phase=self._phase_name, superstep=superstep
        ):
            w = (act.worker or 0) % pool.n_workers
            pool.send(w, ("crash",))
        for act in plan.take(
            "delay_worker", phase=self._phase_name, superstep=superstep
        ):
            delays[(act.worker or 0) % pool.n_workers] = act.delay_s
        return delays

    def _take_checkpoint(self) -> None:
        """Snapshot every worker's owned-vertex state and clear the
        replay log (recovery then re-drives at most
        ``checkpoint_interval`` logical supersteps)."""
        pool = self._pool
        for w in range(pool.n_workers):
            pool.send(w, ("collect",))
        state = {w: self._supervised_collect(w) for w in range(pool.n_workers)}
        self._ckpt_state = state
        self._ckpt_step_idx = self._superstep_idx
        self._replay_log = []

    def _supervised_collect(self, w: int, command: tuple = ("collect",)):
        """Receive worker ``w``'s pending collect reply, recovering
        (and re-asking) if the worker died — a crash during collect
        loses since-checkpoint state, so it is rebuilt first."""
        pool = self._pool
        while True:
            try:
                return pool.recv(w)
            except _WorkerDeath as death:
                self._recover_worker(death)
                pool.send(w, command)

    def _recover_worker(
        self, death: _WorkerDeath, *, redrive_shard=None, redrive_group=None
    ):
        """Respawn a dead/hung worker and re-drive it to the cluster's
        current logical superstep.

        Restore sequence: fresh fork (same inherited rings) →
        phase-start snapshot (``mp_materialize``) → the **union** of
        all workers' last checkpoints (``mp_merge``; replaying a
        coalesced group needs the full synced state) → replay of every
        logged entry — sharded step shards, state syncs, whole
        coalesced groups — with emissions discarded (the cluster
        consumed the originals) and arrays shipped raw (old ring
        offsets are stale) → optionally the *current* step or group,
        whose reply descriptor is returned for the caller to decode.
        Every entry is a deterministic function of restored state, so
        the returned emissions are bit-identical to what the dead
        worker would have produced.  Raises
        :class:`~repro.errors.WorkerCrashError` once the phase's
        restart budget is spent.
        """
        pool = self._pool
        # recovery_wall_s is fault-recovery *provenance* (surfaced in
        # EngineResult), not hot-path timing; it never feeds a decision
        t0 = time.perf_counter()  # repro: ignore[REP103]
        while True:
            w = death.worker
            if self._phase_restarts >= self.max_restarts:
                raise WorkerCrashError(
                    f"bsp-mp worker {w} failed in phase "
                    f"{self._phase_name!r} ({death.reason}) and the "
                    f"restart budget is spent "
                    f"({self._phase_restarts} restarts, "
                    f"max_restarts={self.max_restarts})",
                    restarts=self.restarts,
                    exitcode=death.exitcode,
                ) from death
            self._phase_restarts += 1
            self.restarts += 1
            try:
                pool.respawn(w)
                pool.call(w, ("phase", *self._phase_payload))
                if self._ckpt_state:
                    pool.call(
                        w,
                        (
                            "restore",
                            [
                                self._ckpt_state[u]
                                for u in range(pool.n_workers)
                            ],
                        ),
                    )
                for entry in self._replay_log:
                    kind = entry[0]
                    if kind == "step":
                        _, targets, payload, worker_of_msg = entry
                        mask = worker_of_msg == w
                        pool.call(
                            w,
                            (
                                "step",
                                ("raw", targets[mask], payload[mask]),
                                0.0,
                            ),
                        )
                        self.replayed_supersteps += 1
                    elif kind == "sync":
                        deltas = entry[1]
                        pool.call(
                            w,
                            (
                                "restore",
                                [
                                    deltas[u]
                                    for u in range(pool.n_workers)
                                    if u != w
                                ],
                            ),
                        )
                    else:  # "group"
                        _, targets, payload, k_eff, thr = entry
                        n_steps, _ = pool.call(
                            w,
                            (
                                "steps",
                                ("raw", targets, payload),
                                k_eff,
                                thr,
                                False,
                                None,
                                None,
                                0.0,
                            ),
                        )
                        self.replayed_supersteps += n_steps
                emissions = None
                if redrive_shard is not None:
                    emissions = pool.call(
                        w, ("step", ("raw", *redrive_shard), 0.0)
                    )
                    self.replayed_supersteps += 1
                elif redrive_group is not None:
                    targets, payload, k_eff, thr, want_stream = redrive_group
                    emissions = pool.call(
                        w,
                        (
                            "steps",
                            ("raw", targets, payload),
                            k_eff,
                            thr,
                            want_stream,
                            None,
                            None,
                            0.0,
                        ),
                    )
                    self.replayed_supersteps += emissions[0]
                self.recovery_wall_s += time.perf_counter() - t0  # repro: ignore[REP103]
                return emissions
            except _WorkerDeath as again:
                # the replacement died too (e.g. a plan that kills the
                # same worker twice, or a persistently failing host
                # slot) — loop, consuming another unit of the budget
                death = again

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the worker pool down (idempotent; the solver calls this
        in a ``finally``, so exceptions never leak processes or shared-
        memory segments — and the pool's ``terminate`` → ``kill``
        escalation means even a wedged child cannot stall exit)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "BSPMultiprocessEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - gc-order dependent
        try:
            self.close()
        except Exception:
            pass
