"""Multiprocess rank-parallel BSP engine: true parallelism across ranks.

:class:`BSPMultiprocessEngine` (registry name ``bsp-mp``) executes the
exact superstep semantics of
:class:`~repro.runtime.engine_batched.BSPBatchedEngine` — the engine it
subclasses — but shards each superstep's inbox across a persistent pool
of ``fork``-ed worker processes, one worker per contiguous group of
simulated ranks.  This is the step from *simulated* distributed
execution to *actually parallel* execution: the batched superstep is
embarrassingly rank-parallel because a vertex's state is only ever
written by its owner rank, so rank-disjoint inbox shards touch disjoint
state.

Data movement
-------------
The partitioned CSR (graph topology, weights, ``owner``/``arc_rank``
maps) is **never pickled**: workers are forked after the engine holds
the partition, so they inherit it through copy-on-write pages — the
read-only-shared-graph arrangement HavoqGT gets from mmap'd graph
storage (the ``SharedMemory`` alternative would buy the same pages at
the cost of explicit segment lifecycle management; fork pages need
none).  Three message kinds cross process boundaries, all compact:

* once per phase: the program's *mutable* state payload
  (:meth:`mp_clone_payload` → :meth:`mp_materialize`), e.g. the
  initialised seed entries of the Voronoi program;
* once per superstep per worker: the worker's inbox shard and its
  drained emissions — flat ``int64`` arrays, exactly the
  per-destination message arrays a real MPI exchange would ship;
* once per phase at quiescence: each worker's owned-vertex state
  (:meth:`mp_collect` → :meth:`mp_merge`), folded back into the
  driver's program so downstream phases see the converged arrays.

Parity contract
---------------
``bsp-mp`` produces **bit-identical** message counts, visit counts,
byte counts, peak-queue and superstep counts to ``bsp-batched`` (and
hence to ``bsp``) for any ``workers`` value: the driver runs the
identical accounting loop on the concatenated emissions, and the
per-vertex lexicographic-minimum reduction inside a superstep is
order-independent, so sharding the inbox by owner rank changes nothing
observable.  ``tests/test_engine_mp.py`` pins this for ``workers`` in
{1, 2, 4}.  Simulated time is a *model* output — identical too — while
wall-clock time is where the workers actually help.

Fallback rules (the engine is total over every program):

* ``workers <= 1``, or the platform lacks the ``fork`` start method
  (``spawn`` would pickle the graph per worker, defeating the design)
  → in-process vectorised supersteps;
* the program lacks the mp protocol (:func:`supports_mp`)
  → in-process vectorised supersteps;
* FIFO discipline or no batch protocol
  → the scalar per-message superstep loop, as in the batched engine.

The mp protocol
---------------
A program opts in by implementing, on top of the batch protocol:

``mp_clone_payload() -> dict``
    Picklable snapshot of the program's *mutable* state (never the
    partition — workers inherit that).
``mp_materialize(partition, payload) -> program``  (classmethod)
    Rebuild a worker-side replica from the inherited partition plus the
    snapshot.
``mp_collect(owned_vertices) -> dict``
    Picklable state restricted to the vertices this worker owns (the
    only state it can have written).
``mp_merge(collected) -> None``
    Fold one worker's collected state into the driver's program.

Pool lifecycle: workers start lazily on the first multiprocess phase
and persist across phases (the solver runs phases 1 and 6 on one
engine).  :meth:`BSPMultiprocessEngine.close` — called by the solver in
a ``finally`` and by ``run_phase_with`` — always shuts the pool down,
so no processes leak even when a phase raises; workers are daemonic as
a second line of defence.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.runtime.cost_model import MachineModel
from repro.runtime.engine import PhaseStats, VertexProgram
from repro.runtime.engine_batched import (
    BSPBatchedEngine,
    run_batch_superstep,
    supports_batch,
)
from repro.runtime.partition import PartitionedGraph
from repro.runtime.queues import QueueDiscipline

__all__ = [
    "DEFAULT_WORKERS",
    "BSPMultiprocessEngine",
    "fork_available",
    "supports_mp",
]

#: worker count when ``workers=None``: a fixed small default (rather
#: than ``os.cpu_count()``) so runs are reproducible across machines —
#: the determinism contract of ``repro-steiner engines --bench``
DEFAULT_WORKERS = 2

_MP_HOOKS = ("mp_clone_payload", "mp_materialize", "mp_collect", "mp_merge")


def fork_available() -> bool:
    """True iff the platform offers the ``fork`` start method (Linux,
    macOS with caveats); without it the engine stays in-process."""
    return "fork" in multiprocessing.get_all_start_methods()


def supports_mp(program: VertexProgram) -> bool:
    """True iff the program implements the batch *and* mp protocols.

    >>> from repro.runtime.partition import block_partition
    >>> from repro.graph.generators import grid_graph
    >>> from repro.core.voronoi_visitor import VoronoiProgram
    >>> part = block_partition(grid_graph(3, 3), 2)
    >>> supports_mp(VoronoiProgram(part))
    True
    >>> class BatchOnly:
    ...     batch_payload_width = 1
    ...     def batch_encode(self, t, p):
    ...         return p
    ...     def batch_visit(self, t, p, e):
    ...         pass
    >>> supports_mp(BatchOnly())
    False
    """
    return supports_batch(program) and all(
        hasattr(program, attr) for attr in _MP_HOOKS
    )


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
def _worker_main(conn, partition: PartitionedGraph, owned: np.ndarray) -> None:
    """Serve phase/step/collect commands over ``conn`` until stopped.

    Runs in a forked child: ``partition`` and ``owned`` arrive through
    inherited memory, not pickling.  Any exception is reported back as
    an ``("error", traceback)`` reply instead of killing the child
    silently, so the driver can surface it.
    """
    program = None
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        cmd = msg[0]
        if cmd == "stop":
            break
        try:
            if cmd == "phase":
                _, cls, payload = msg
                program = cls.mp_materialize(partition, payload)
                conn.send(("ok", None))
            elif cmd == "step":
                _, targets, payload = msg
                conn.send(
                    (
                        "ok",
                        run_batch_superstep(
                            program,
                            targets,
                            payload,
                            program.batch_payload_width,
                        ),
                    )
                )
            elif cmd == "collect":
                conn.send(("ok", program.mp_collect(owned)))
            else:  # pragma: no cover - protocol guard
                conn.send(("error", f"unknown command {cmd!r}"))
        except BaseException:
            try:
                conn.send(("error", traceback.format_exc()))
            except (BrokenPipeError, OSError):  # pragma: no cover
                break
    conn.close()


# --------------------------------------------------------------------- #
# driver side
# --------------------------------------------------------------------- #
class _RankWorkerPool:
    """A persistent pool of forked workers, one per group of ranks.

    ``rank_worker[r]`` maps simulated rank ``r`` to its worker — the
    same contiguous-block assignment the partitioner uses for vertices,
    so rank locality survives the extra layer.
    """

    def __init__(self, partition: PartitionedGraph, n_workers: int) -> None:
        ctx = multiprocessing.get_context("fork")
        n_ranks = partition.n_ranks
        self.n_workers = n_workers
        self.rank_worker = (
            np.arange(n_ranks, dtype=np.int64) * n_workers
        ) // n_ranks
        self._conns = []
        self._procs = []
        worker_of_vertex = self.rank_worker[partition.owner]
        for w in range(n_workers):
            owned = np.nonzero(worker_of_vertex == w)[0].astype(np.int64)
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, partition, owned),
                daemon=True,
                name=f"bsp-mp-worker-{w}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    # ------------------------------------------------------------------ #
    def broadcast(self, msg: tuple) -> list:
        """Send one command to every worker; gather replies in worker
        order (the pool's deterministic-iteration guarantee)."""
        for conn in self._conns:
            conn.send(msg)
        return [self._recv(conn) for conn in self._conns]

    def step(
        self,
        targets: np.ndarray,
        payload: np.ndarray,
        worker_of_msg: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Scatter one superstep's inbox by worker, gather and
        concatenate the emissions (worker order, hence deterministic)."""
        for w, conn in enumerate(self._conns):
            shard = worker_of_msg == w
            conn.send(("step", targets[shard], payload[shard]))
        parts = [self._recv(conn) for conn in self._conns]
        return (
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
            np.vstack([p[2] for p in parts]),
        )

    def _recv(self, conn):
        try:
            status, value = conn.recv()
        except (EOFError, OSError) as exc:
            # the worker died without replying (OOM kill, segfault):
            # name it rather than surfacing a contextless EOFError
            raise SimulationError(
                f"bsp-mp worker {self._conns.index(conn)} died "
                f"unexpectedly (no reply on its pipe)"
            ) from exc
        if status == "error":
            raise SimulationError(f"bsp-mp worker failed:\n{value}")
        return value

    def close(self) -> None:
        """Stop and join every worker; escalate to terminate on a
        wedged child.  Idempotent."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - wedged child
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._conns, self._procs = [], []


class BSPMultiprocessEngine(BSPBatchedEngine):
    """Batched BSP engine whose supersteps run on a forked worker pool.

    ``workers`` caps at ``partition.n_ranks`` (a worker with no ranks
    would own no vertices); ``None`` means :data:`DEFAULT_WORKERS`.
    ``workers <= 1`` short-circuits to the in-process batched engine —
    same results, no processes.
    """

    def __init__(
        self,
        partition: PartitionedGraph,
        machine: MachineModel | None = None,
        discipline: QueueDiscipline | str = QueueDiscipline.PRIORITY,
        *,
        workers: Optional[int] = None,
    ) -> None:
        super().__init__(partition, machine, discipline)
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None for the default)")
        resolved = DEFAULT_WORKERS if workers is None else workers
        self.workers = min(resolved, partition.n_ranks)
        #: provenance for benchmarks: workers actually used by the last
        #: ``run_phase`` (1 when a fallback kept execution in-process)
        self.workers_used = 1
        self._pool: _RankWorkerPool | None = None
        self._mp_active = False

    # ------------------------------------------------------------------ #
    def run_phase(
        self,
        name: str,
        program: VertexProgram,
        initial_messages: Iterable[Tuple[int, Tuple]],
        *,
        max_events: Optional[int] = None,
        max_supersteps: int = 1_000_000,
    ) -> PhaseStats:
        """Run ``program`` to quiescence with rank-parallel supersteps
        (in-process fallback per the module's fallback rules — counts
        are identical either way)."""
        use_pool = (
            self.workers > 1
            and fork_available()
            and supports_mp(program)
            and self.discipline is QueueDiscipline.PRIORITY
        )
        self.workers_used = self.workers if use_pool else 1
        if not use_pool:
            return super().run_phase(
                name,
                program,
                initial_messages,
                max_events=max_events,
                max_supersteps=max_supersteps,
            )
        if self._pool is None:
            self._pool = _RankWorkerPool(self.partition, self.workers)
        self._mp_active = True
        try:
            return super().run_phase(
                name,
                program,
                initial_messages,
                max_events=max_events,
                max_supersteps=max_supersteps,
            )
        finally:
            self._mp_active = False

    # ------------------------------------------------------------------ #
    # BSPBatchedEngine hooks: replicate / shard / gather
    # ------------------------------------------------------------------ #
    def _phase_begin(self, program: VertexProgram) -> None:
        if self._mp_active:
            self._pool.broadcast(
                ("phase", type(program), program.mp_clone_payload())
            )

    def _superstep_batch(self, program, targets, payload, proc_rank, width):
        if not self._mp_active:
            return super()._superstep_batch(
                program, targets, payload, proc_rank, width
            )
        return self._pool.step(
            targets, payload, self._pool.rank_worker[proc_rank]
        )

    def _phase_end(self, program: VertexProgram) -> None:
        if self._mp_active:
            for collected in self._pool.broadcast(("collect",)):
                program.mp_merge(collected)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the worker pool down (idempotent; the solver calls this
        in a ``finally``, so exceptions never leak processes)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "BSPMultiprocessEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - gc-order dependent
        try:
            self.close()
        except Exception:
            pass
