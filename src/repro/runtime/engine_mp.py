"""Multiprocess rank-parallel BSP engine: true parallelism across ranks.

:class:`BSPMultiprocessEngine` (registry name ``bsp-mp``) executes the
exact superstep semantics of
:class:`~repro.runtime.engine_batched.BSPBatchedEngine` — the engine it
subclasses — but shards each superstep's inbox across a persistent pool
of ``fork``-ed worker processes, one worker per contiguous group of
simulated ranks.  This is the step from *simulated* distributed
execution to *actually parallel* execution: the batched superstep is
embarrassingly rank-parallel because a vertex's state is only ever
written by its owner rank, so rank-disjoint inbox shards touch disjoint
state.

Data movement
-------------
The partitioned CSR (graph topology, weights, ``owner``/``arc_rank``
maps) is **never pickled**: workers are forked after the engine holds
the partition, so they inherit it through copy-on-write pages — the
read-only-shared-graph arrangement HavoqGT gets from mmap'd graph
storage (the ``SharedMemory`` alternative would buy the same pages at
the cost of explicit segment lifecycle management; fork pages need
none).  Three message kinds cross process boundaries, all compact:

* once per phase: the program's *mutable* state payload
  (:meth:`mp_clone_payload` → :meth:`mp_materialize`), e.g. the
  initialised seed entries of the Voronoi program;
* once per superstep per worker: the worker's inbox shard and its
  drained emissions — flat ``int64`` arrays, exactly the
  per-destination message arrays a real MPI exchange would ship;
* once per phase at quiescence: each worker's owned-vertex state
  (:meth:`mp_collect` → :meth:`mp_merge`), folded back into the
  driver's program so downstream phases see the converged arrays.

Parity contract
---------------
``bsp-mp`` produces **bit-identical** message counts, visit counts,
byte counts, peak-queue and superstep counts to ``bsp-batched`` (and
hence to ``bsp``) for any ``workers`` value: the driver runs the
identical accounting loop on the concatenated emissions, and the
per-vertex lexicographic-minimum reduction inside a superstep is
order-independent, so sharding the inbox by owner rank changes nothing
observable.  ``tests/test_engine_mp.py`` pins this for ``workers`` in
{1, 2, 4}.  Simulated time is a *model* output — identical too — while
wall-clock time is where the workers actually help.

Fault tolerance
---------------
Rank failure is the norm at the paper's target scale, so the driver
*supervises* its workers instead of dying with them:

* **Detection** — a worker that exits (pipe EOF, exit code recorded) or
  that misses the per-superstep heartbeat (``worker_timeout_s``; hung
  workers are hard-killed) raises an internal death record, never a
  bare ``EOFError``.
* **Checkpoint** — every ``checkpoint_interval`` supersteps the driver
  gathers each worker's owned-vertex state (:meth:`mp_collect`, the
  same snapshot the phase-end merge uses) and clears its *replay log*
  (the per-superstep inbox shards since the last checkpoint).
* **Recovery** — a dead worker is forked afresh, re-materialised from
  the phase-start program snapshot, restored from its last checkpoint,
  and re-driven through the logged supersteps (emissions discarded —
  the cluster already consumed them) before the *current* superstep is
  re-executed for its emissions.  Because a superstep is a
  deterministic function of checkpointed state, the recovered
  emissions, the resulting tree, and **every BSP counter** are
  bit-identical to a fault-free run (``tests/test_faults.py`` pins
  this by killing a worker at every superstep index in turn).
* **Escalation** — after ``max_restarts`` restarts within one phase
  the engine raises :class:`~repro.errors.WorkerCrashError` (the
  transient class the serve layer retries), carrying restart
  provenance; ``restarts`` / ``replayed_supersteps`` /
  ``recovery_wall_s`` are exposed for
  :class:`~repro.runtime.engines.EngineResult` and solver provenance.

Deterministic chaos comes from :class:`repro.faults.FaultPlan`
(``SolverConfig(fault_plan=...)`` or the ``REPRO_FAULT_PLAN`` env
hook): ``kill_worker`` actions hard-kill a worker just before a chosen
superstep, ``delay_worker`` actions stall one long enough to trip the
heartbeat.

Fallback rules (the engine is total over every program):

* ``workers <= 1``, or the platform lacks the ``fork`` start method
  (``spawn`` would pickle the graph per worker, defeating the design)
  → in-process vectorised supersteps;
* the program lacks the mp protocol (:func:`supports_mp`)
  → in-process vectorised supersteps;
* FIFO discipline or no batch protocol
  → the scalar per-message superstep loop, as in the batched engine.

The mp protocol
---------------
A program opts in by implementing, on top of the batch protocol:

``mp_clone_payload() -> dict``
    Picklable snapshot of the program's *mutable* state (never the
    partition — workers inherit that).
``mp_materialize(partition, payload) -> program``  (classmethod)
    Rebuild a worker-side replica from the inherited partition plus the
    snapshot.
``mp_collect(owned_vertices) -> dict``
    Picklable state restricted to the vertices this worker owns (the
    only state it can have written).
``mp_merge(collected) -> None``
    Fold one worker's collected state into the driver's program.

``mp_collect``/``mp_merge`` double as the checkpoint format: restoring
a fresh replica is ``mp_materialize`` (phase snapshot) followed by
``mp_merge`` (its own last collect), which reconstructs the exact state
the worker held at the checkpointed superstep.

Pool lifecycle: workers start lazily on the first multiprocess phase
and persist across phases (the solver runs phases 1 and 6 on one
engine).  :meth:`BSPMultiprocessEngine.close` — called by the solver in
a ``finally`` and by ``run_phase_with`` — always shuts the pool down,
escalating ``terminate`` → ``kill`` on a wedged child so solver exit
can never hang; workers are daemonic as a second line of defence.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import SimulationError, WorkerCrashError
from repro.faults import FaultPlan, env_plan
from repro.runtime.cost_model import MachineModel
from repro.runtime.engine import PhaseStats, VertexProgram
from repro.runtime.engine_batched import (
    BSPBatchedEngine,
    run_batch_superstep,
    supports_batch,
)
from repro.runtime.partition import PartitionedGraph
from repro.runtime.queues import QueueDiscipline

__all__ = [
    "DEFAULT_CHECKPOINT_INTERVAL",
    "DEFAULT_MAX_RESTARTS",
    "DEFAULT_WORKERS",
    "BSPMultiprocessEngine",
    "fork_available",
    "supports_mp",
]

#: worker count when ``workers=None``: a fixed small default (rather
#: than ``os.cpu_count()``) so runs are reproducible across machines —
#: the determinism contract of ``repro-steiner engines --bench``
DEFAULT_WORKERS = 2

#: take an owned-state checkpoint every K supersteps (the replay log —
#: the inboxes a recovery must re-drive — never exceeds K supersteps)
DEFAULT_CHECKPOINT_INTERVAL = 4

#: worker restarts tolerated per phase before escalating to
#: :class:`~repro.errors.WorkerCrashError`
DEFAULT_MAX_RESTARTS = 2

#: exit code of a fault-injected crash (``kill_worker`` actions), so a
#: chaos log can tell injected deaths from real ones
_INJECTED_EXIT = 17

_MP_HOOKS = ("mp_clone_payload", "mp_materialize", "mp_collect", "mp_merge")


def fork_available() -> bool:
    """True iff the platform offers the ``fork`` start method (Linux,
    macOS with caveats); without it the engine stays in-process."""
    return "fork" in multiprocessing.get_all_start_methods()


def supports_mp(program: VertexProgram) -> bool:
    """True iff the program implements the batch *and* mp protocols.

    >>> from repro.runtime.partition import block_partition
    >>> from repro.graph.generators import grid_graph
    >>> from repro.core.voronoi_visitor import VoronoiProgram
    >>> part = block_partition(grid_graph(3, 3), 2)
    >>> supports_mp(VoronoiProgram(part))
    True
    >>> class BatchOnly:
    ...     batch_payload_width = 1
    ...     def batch_encode(self, t, p):
    ...         return p
    ...     def batch_visit(self, t, p, e):
    ...         pass
    >>> supports_mp(BatchOnly())
    False
    """
    return supports_batch(program) and all(
        hasattr(program, attr) for attr in _MP_HOOKS
    )


class _WorkerDeath(Exception):
    """Internal: worker ``worker`` stopped responding (crash or hang).

    Never escapes the engine — recovery either replaces the worker or
    escalates to :class:`~repro.errors.WorkerCrashError`.
    """

    def __init__(self, worker: int, reason: str, exitcode: int | None) -> None:
        self.worker = worker
        self.reason = reason
        self.exitcode = exitcode
        super().__init__(f"worker {worker}: {reason} (exitcode={exitcode})")


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
def _worker_main(conn, partition: PartitionedGraph, owned: np.ndarray) -> None:
    """Serve phase/step/restore/collect commands over ``conn``.

    Runs in a forked child: ``partition`` and ``owned`` arrive through
    inherited memory, not pickling.  Any exception is reported back as
    an ``("error", traceback)`` reply instead of killing the child
    silently, so the driver can surface it.  The ``crash`` command
    (fault injection) exits hard — indistinguishable from an OOM kill
    from the driver's side, which is the point.
    """
    program = None
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        cmd = msg[0]
        if cmd == "stop":
            break
        if cmd == "crash":  # injected fault: die without a reply
            os._exit(_INJECTED_EXIT)
        try:
            if cmd == "phase":
                _, cls, payload = msg
                program = cls.mp_materialize(partition, payload)
                conn.send(("ok", None))
            elif cmd == "restore":
                program.mp_merge(msg[1])
                conn.send(("ok", None))
            elif cmd == "step":
                _, targets, payload, delay_s = msg
                if delay_s > 0:  # injected straggler
                    time.sleep(delay_s)
                conn.send(
                    (
                        "ok",
                        run_batch_superstep(
                            program,
                            targets,
                            payload,
                            program.batch_payload_width,
                        ),
                    )
                )
            elif cmd == "collect":
                conn.send(("ok", program.mp_collect(owned)))
            else:  # pragma: no cover - protocol guard
                conn.send(("error", f"unknown command {cmd!r}"))
        except BaseException:
            try:
                conn.send(("error", traceback.format_exc()))
            except (BrokenPipeError, OSError):  # pragma: no cover
                break
    conn.close()


# --------------------------------------------------------------------- #
# driver side
# --------------------------------------------------------------------- #
class _RankWorkerPool:
    """A supervised pool of forked workers, one per group of ranks.

    ``rank_worker[r]`` maps simulated rank ``r`` to its worker — the
    same contiguous-block assignment the partitioner uses for vertices,
    so rank locality survives the extra layer.  Individual workers can
    be respawned in place (:meth:`respawn`); failure shows up as
    :class:`_WorkerDeath` from :meth:`recv`, never as a raw pipe error.
    """

    def __init__(
        self,
        partition: PartitionedGraph,
        n_workers: int,
        *,
        timeout_s: float | None = None,
    ) -> None:
        self._ctx = multiprocessing.get_context("fork")
        self.partition = partition
        self.timeout_s = timeout_s
        n_ranks = partition.n_ranks
        self.n_workers = n_workers
        self.rank_worker = (
            np.arange(n_ranks, dtype=np.int64) * n_workers
        ) // n_ranks
        worker_of_vertex = self.rank_worker[partition.owner]
        self._owned = [
            np.nonzero(worker_of_vertex == w)[0].astype(np.int64)
            for w in range(n_workers)
        ]
        self._conns: list = [None] * n_workers
        self._procs: list = [None] * n_workers
        for w in range(n_workers):
            self._spawn(w)

    # ------------------------------------------------------------------ #
    def _spawn(self, w: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.partition, self._owned[w]),
            daemon=True,
            name=f"bsp-mp-worker-{w}",
        )
        proc.start()
        child_conn.close()
        self._conns[w] = parent_conn
        self._procs[w] = proc

    def respawn(self, w: int) -> None:
        """Replace worker ``w`` with a fresh fork (reaping the corpse).

        The new child forks from the *driver*, so it inherits the same
        copy-on-write partition pages as the original — respawning
        never re-pickles the graph."""
        self._reap(w)
        self._spawn(w)

    def _reap(self, w: int) -> None:
        """Dispose of worker ``w``: close its pipe, then join with
        ``terminate`` → ``kill`` escalation so a wedged child can never
        stall the driver."""
        conn, proc = self._conns[w], self._procs[w]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            self._conns[w] = None
        if proc is not None:
            _join_escalating(proc)
            self._procs[w] = None

    # ------------------------------------------------------------------ #
    def send(self, w: int, msg: tuple) -> None:
        """Send one command to worker ``w``; a broken pipe is deferred —
        the matching :meth:`recv` reports the death."""
        try:
            self._conns[w].send(msg)
        except (BrokenPipeError, OSError):
            pass

    def recv(self, w: int):
        """One reply from worker ``w``.

        Raises :class:`_WorkerDeath` when the worker exited (pipe EOF;
        exit code attached) or missed the heartbeat (``timeout_s``
        without a reply; the hung child is hard-killed first so its
        eventual reply can never desynchronise the pipe).  A worker
        *error* reply — the program itself raised — stays a
        :class:`SimulationError`: it is deterministic and would recur
        on replay, so it must not be retried.
        """
        conn, proc = self._conns[w], self._procs[w]
        if conn is None or proc is None:  # pragma: no cover - guard
            raise _WorkerDeath(w, "no live worker", None)
        try:
            if self.timeout_s is not None and not conn.poll(self.timeout_s):
                _join_escalating(proc)
                raise _WorkerDeath(
                    w,
                    f"heartbeat timeout ({self.timeout_s}s without a reply)",
                    proc.exitcode,
                )
            status, value = conn.recv()
        except (EOFError, OSError) as exc:
            proc.join(timeout=5)
            raise _WorkerDeath(
                w, "died unexpectedly (no reply on its pipe)", proc.exitcode
            ) from exc
        if status == "error":
            raise SimulationError(f"bsp-mp worker failed:\n{value}")
        return value

    def call(self, w: int, msg: tuple):
        """``send`` + ``recv`` for one worker."""
        self.send(w, msg)
        return self.recv(w)

    def close(self) -> None:
        """Stop and join every worker, escalating ``terminate`` →
        ``kill`` on any child that does not exit.  Idempotent."""
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            if proc is not None:
                _join_escalating(proc)
        for conn in self._conns:
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
        self._conns = [None] * self.n_workers
        self._procs = [None] * self.n_workers


def _join_escalating(proc, grace_s: float = 5.0) -> None:
    """Join ``proc`` with escalation: wait, ``terminate`` (SIGTERM),
    ``kill`` (SIGKILL) — each with a bounded grace period — so a hung
    or signal-ignoring child can never wedge solver exit."""
    proc.join(timeout=grace_s)
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=grace_s)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=grace_s)


class BSPMultiprocessEngine(BSPBatchedEngine):
    """Batched BSP engine whose supersteps run on a forked worker pool.

    ``workers`` caps at ``partition.n_ranks`` (a worker with no ranks
    would own no vertices); ``None`` means :data:`DEFAULT_WORKERS`.
    ``workers <= 1`` short-circuits to the in-process batched engine —
    same results, no processes.

    Fault-tolerance knobs (see the module docstring):
    ``checkpoint_interval`` supersteps between owned-state checkpoints,
    ``max_restarts`` worker restarts tolerated per phase,
    ``worker_timeout_s`` per-superstep heartbeat (``None`` disables
    hang detection), ``fault_plan`` a deterministic
    :class:`~repro.faults.FaultPlan` to inject (defaults to the
    ``REPRO_FAULT_PLAN`` environment hook).
    """

    def __init__(
        self,
        partition: PartitionedGraph,
        machine: MachineModel | None = None,
        discipline: QueueDiscipline | str = QueueDiscipline.PRIORITY,
        *,
        workers: Optional[int] = None,
        checkpoint_interval: Optional[int] = None,
        max_restarts: Optional[int] = None,
        worker_timeout_s: Optional[float] = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        super().__init__(partition, machine, discipline)
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None for the default)")
        resolved = DEFAULT_WORKERS if workers is None else workers
        self.workers = min(resolved, partition.n_ranks)
        self.checkpoint_interval = (
            DEFAULT_CHECKPOINT_INTERVAL
            if checkpoint_interval is None
            else checkpoint_interval
        )
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        self.max_restarts = (
            DEFAULT_MAX_RESTARTS if max_restarts is None else max_restarts
        )
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if worker_timeout_s is not None and worker_timeout_s <= 0:
            raise ValueError("worker_timeout_s must be > 0 (or None)")
        self.worker_timeout_s = worker_timeout_s
        self.fault_plan = fault_plan if fault_plan is not None else env_plan()
        #: provenance for benchmarks: workers actually used by the last
        #: ``run_phase`` (1 when a fallback kept execution in-process)
        self.workers_used = 1
        #: recovery provenance, cumulative across phases (threaded into
        #: ``EngineResult`` and solver ``provenance["fault_recovery"]``)
        self.restarts = 0
        self.replayed_supersteps = 0
        self.recovery_wall_s = 0.0
        self._pool: _RankWorkerPool | None = None
        self._mp_active = False
        # per-phase supervision state
        self._phase_name = ""
        self._phase_restarts = 0
        self._phase_payload: tuple | None = None
        self._superstep_idx = 0
        self._ckpt_state: dict[int, object] = {}
        self._replay_log: list[tuple] = []

    # ------------------------------------------------------------------ #
    def run_phase(
        self,
        name: str,
        program: VertexProgram,
        initial_messages: Iterable[Tuple[int, Tuple]],
        *,
        max_events: Optional[int] = None,
        max_supersteps: int = 1_000_000,
    ) -> PhaseStats:
        """Run ``program`` to quiescence with rank-parallel, supervised
        supersteps (in-process fallback per the module's fallback rules
        — counts are identical either way)."""
        use_pool = (
            self.workers > 1
            and fork_available()
            and supports_mp(program)
            and self.discipline is QueueDiscipline.PRIORITY
        )
        self.workers_used = self.workers if use_pool else 1
        if not use_pool:
            return super().run_phase(
                name,
                program,
                initial_messages,
                max_events=max_events,
                max_supersteps=max_supersteps,
            )
        if self._pool is None:
            self._pool = _RankWorkerPool(
                self.partition, self.workers, timeout_s=self.worker_timeout_s
            )
        self._mp_active = True
        self._phase_name = name
        self._phase_restarts = 0
        try:
            return super().run_phase(
                name,
                program,
                initial_messages,
                max_events=max_events,
                max_supersteps=max_supersteps,
            )
        finally:
            self._mp_active = False
            self._phase_payload = None
            self._ckpt_state = {}
            self._replay_log = []

    # ------------------------------------------------------------------ #
    # BSPBatchedEngine hooks: replicate / shard / gather — supervised
    # ------------------------------------------------------------------ #
    def _phase_begin(self, program: VertexProgram) -> None:
        if not self._mp_active:
            return
        pool = self._pool
        self._phase_payload = (type(program), program.mp_clone_payload())
        self._superstep_idx = 0
        self._ckpt_state = {}
        self._replay_log = []
        for w in range(pool.n_workers):
            pool.send(w, ("phase", *self._phase_payload))
        for w in range(pool.n_workers):
            try:
                pool.recv(w)
            except _WorkerDeath as death:
                self._recover_worker(death)

    def _superstep_batch(self, program, targets, payload, proc_rank, width):
        if not self._mp_active:
            return super()._superstep_batch(
                program, targets, payload, proc_rank, width
            )
        pool = self._pool
        idx = self._superstep_idx + 1
        delays = self._inject_faults(idx)

        worker_of_msg = pool.rank_worker[proc_rank]
        shards: dict[int, tuple] = {}
        for w in range(pool.n_workers):
            mask = worker_of_msg == w
            shards[w] = (targets[mask], payload[mask])
            pool.send(w, ("step", *shards[w], delays.get(w, 0.0)))
        parts: dict[int, tuple] = {}
        dead: list[_WorkerDeath] = []
        for w in range(pool.n_workers):
            try:
                parts[w] = pool.recv(w)
            except _WorkerDeath as death:
                dead.append(death)
        for death in dead:
            parts[death.worker] = self._recover_worker(
                death, redrive_shard=shards[death.worker]
            )

        self._replay_log.append((targets, payload, worker_of_msg))
        self._superstep_idx = idx
        if idx - self._ckpt_superstep() >= self.checkpoint_interval:
            self._take_checkpoint()

        ordered = [parts[w] for w in range(pool.n_workers)]
        return (
            np.concatenate([p[0] for p in ordered]),
            np.concatenate([p[1] for p in ordered]),
            np.vstack([p[2] for p in ordered]),
        )

    def _phase_end(self, program: VertexProgram) -> None:
        if not self._mp_active:
            return
        pool = self._pool
        for w in range(pool.n_workers):
            pool.send(w, ("collect",))
        for w in range(pool.n_workers):
            program.mp_merge(self._supervised_collect(w))

    # ------------------------------------------------------------------ #
    # supervision internals
    # ------------------------------------------------------------------ #
    def _ckpt_superstep(self) -> int:
        """Superstep the current checkpoint/replay-log covers up to."""
        return self._superstep_idx - len(self._replay_log)

    def _inject_faults(self, superstep: int) -> dict[int, float]:
        """Fire the plan's kill/delay actions scheduled for this
        superstep; returns per-worker injected delays."""
        plan, pool = self.fault_plan, self._pool
        delays: dict[int, float] = {}
        if plan is None:
            return delays
        for act in plan.take(
            "kill_worker", phase=self._phase_name, superstep=superstep
        ):
            w = (act.worker or 0) % pool.n_workers
            pool.send(w, ("crash",))
        for act in plan.take(
            "delay_worker", phase=self._phase_name, superstep=superstep
        ):
            delays[(act.worker or 0) % pool.n_workers] = act.delay_s
        return delays

    def _take_checkpoint(self) -> None:
        """Snapshot every worker's owned-vertex state and clear the
        replay log (recovery then re-drives at most
        ``checkpoint_interval`` supersteps)."""
        pool = self._pool
        for w in range(pool.n_workers):
            pool.send(w, ("collect",))
        state = {w: self._supervised_collect(w) for w in range(pool.n_workers)}
        self._ckpt_state = state
        self._replay_log = []

    def _supervised_collect(self, w: int):
        """Receive worker ``w``'s pending ``collect`` reply, recovering
        (and re-asking) if the worker died — a crash during collect
        loses since-checkpoint state, so it is rebuilt first."""
        pool = self._pool
        while True:
            try:
                return pool.recv(w)
            except _WorkerDeath as death:
                self._recover_worker(death)
                pool.send(w, ("collect",))

    def _recover_worker(self, death: _WorkerDeath, *, redrive_shard=None):
        """Respawn a dead/hung worker and re-drive it to the cluster's
        current superstep.

        Restore sequence: fresh fork → phase-start snapshot
        (``mp_materialize``) → last checkpoint (``mp_merge`` of its own
        collect) → replay of every logged superstep shard (emissions
        discarded — the cluster consumed the originals) → optionally
        the *current* superstep, whose emissions are returned.  Every
        step is a deterministic function of restored state, so the
        returned emissions are bit-identical to what the dead worker
        would have produced.  Raises
        :class:`~repro.errors.WorkerCrashError` once the phase's
        restart budget is spent.
        """
        pool = self._pool
        # recovery_wall_s is fault-recovery *provenance* (surfaced in
        # EngineResult), not hot-path timing; it never feeds a decision
        t0 = time.perf_counter()  # repro: ignore[REP103]
        while True:
            w = death.worker
            if self._phase_restarts >= self.max_restarts:
                raise WorkerCrashError(
                    f"bsp-mp worker {w} failed in phase "
                    f"{self._phase_name!r} ({death.reason}) and the "
                    f"restart budget is spent "
                    f"({self._phase_restarts} restarts, "
                    f"max_restarts={self.max_restarts})",
                    restarts=self.restarts,
                    exitcode=death.exitcode,
                ) from death
            self._phase_restarts += 1
            self.restarts += 1
            try:
                pool.respawn(w)
                pool.call(w, ("phase", *self._phase_payload))
                if w in self._ckpt_state:
                    pool.call(w, ("restore", self._ckpt_state[w]))
                for targets, payload, worker_of_msg in self._replay_log:
                    mask = worker_of_msg == w
                    pool.call(
                        w, ("step", targets[mask], payload[mask], 0.0)
                    )
                    self.replayed_supersteps += 1
                emissions = None
                if redrive_shard is not None:
                    emissions = pool.call(
                        w, ("step", *redrive_shard, 0.0)
                    )
                    self.replayed_supersteps += 1
                self.recovery_wall_s += time.perf_counter() - t0  # repro: ignore[REP103]
                return emissions
            except _WorkerDeath as again:
                # the replacement died too (e.g. a plan that kills the
                # same worker twice, or a persistently failing host
                # slot) — loop, consuming another unit of the budget
                death = again

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the worker pool down (idempotent; the solver calls this
        in a ``finally``, so exceptions never leak processes — and the
        pool's ``terminate`` → ``kill`` escalation means even a wedged
        child cannot stall exit)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "BSPMultiprocessEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - gc-order dependent
        try:
            self.close()
        except Exception:
            pass
