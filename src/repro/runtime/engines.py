"""Pluggable runtime-engine registry.

The mirror image of :mod:`repro.shortest_paths.backends`, one layer up:
where that registry swaps the *sequential kernel* of the Voronoi sweep,
this one swaps the *simulated runtime* every message-driven phase runs
on.  Every consumer — the distributed solver, the experiment harness,
the CLI, the benchmarks — funnels through this module, so a single
``engine="..."`` knob switches the executor everywhere at once.

Contract
--------
An engine is built by a registered factory
``(partition, machine=None, discipline=..., *, aggregate_remote=False,
workers=None, checkpoint_interval=None, max_restarts=None,
worker_timeout_s=None, fault_plan=None, shm_transport=None,
coalesce_threshold=None, coalesce_max=None)`` — factories must accept
(and may ignore) every keyword knob, so a single :func:`make_engine`
call site serves all engines —
and exposes the :class:`~repro.runtime.engine.EngineBase` surface:

* ``run_phase(name, program, initial_messages, *, max_events=None)``
  runs a :class:`~repro.runtime.engine.VertexProgram` to quiescence and
  returns a :class:`~repro.runtime.engine.PhaseStats`;
* ``add_analytic_phase`` / ``total_time`` / ``phases`` record phases
  whose cost is analytic (collectives, MST);
* ``close()`` releases external resources (``bsp-mp``'s worker pool; a
  no-op for the in-process engines).  Callers that own an engine must
  close it in a ``finally`` — the solver and :func:`run_phase_with` do.

Parity guarantee (pinned by ``tests/test_engines.py`` and
``tests/test_engine_mp.py``): every engine drives a program to the
**identical converged state** — for the solver, the identical
``(src, dist)`` fixpoint and hence the bit-identical Steiner tree.  The
bulk-synchronous engines (``bsp``, ``bsp-batched``, ``bsp-mp`` at any
worker count) additionally produce **identical message counts, visit
counts and superstep counts** — they execute the same supersteps, one
per-message, one vectorised, one vectorised-and-rank-parallel.  Message
counts *across* execution models legitimately differ — scheduling order
changes how many wasted relaxations occur, which is exactly the effect
the paper's Figs. 5-6 measure — so cross-model count equality is a
measured quantity (the async-vs-BSP ablation), not an invariant.

Registered engines
------------------
``async-heap``
    The asynchronous discrete-event executor
    (:class:`~repro.runtime.engine.AsyncEngine`) — the HavoqGT stand-in
    and the paper-faithful default.
``bsp``
    Per-message bulk-synchronous supersteps
    (:class:`~repro.runtime.engine.BSPEngine`) — the Pregel/Giraph
    execution model the paper contrasts against.
``bsp-batched``
    Vectorised supersteps
    (:class:`~repro.runtime.engine_batched.BSPBatchedEngine`): each
    superstep is NumPy array operations over the partitioned CSR
    instead of one Python callback per message — same semantics as
    ``bsp``, order-of-magnitude less interpreter overhead.
``bsp-mp``
    Multiprocess rank-parallel supersteps
    (:class:`~repro.runtime.engine_mp.BSPMultiprocessEngine`): the
    batched supersteps sharded across a persistent pool of forked
    workers, one per group of simulated ranks — true parallelism,
    selected with ``SolverConfig(engine="bsp-mp", workers=N)`` or
    ``repro-steiner solve --engine bsp-mp --workers N``.
``bsp-native``
    Compiled supersteps
    (:class:`~repro.runtime.engine_native.BSPNativeEngine`): the whole
    batched superstep fused into one numba-JIT kernel.  numba is
    optional — without it the engine *is* ``bsp-batched``, and
    :func:`engine_availability` / ``repro-steiner engines`` report the
    fallback and the import-failure reason.

>>> "bsp-mp" in available_engines() and "bsp-native" in available_engines()
True
>>> available_engines()[0] == DEFAULT_ENGINE == "async-heap"
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.cost_model import MachineModel
from repro.runtime.engine import AsyncEngine, BSPEngine, EngineBase, PhaseStats
from repro.runtime.engine_batched import BSPBatchedEngine
from repro.runtime.engine_mp import BSPMultiprocessEngine
from repro.runtime.partition import PartitionedGraph
from repro.runtime.queues import QueueDiscipline

if TYPE_CHECKING:
    from repro.faults import FaultPlan

__all__ = [
    "DEFAULT_ENGINE",
    "EngineResult",
    "available_engines",
    "engine_availability",
    "engine_help",
    "get_engine",
    "make_engine",
    "register_engine",
    "register_unavailable_engine",
    "run_phase_with",
    "verify_engines_agree",
]

EngineFactory = Callable[..., EngineBase]

#: the paper-faithful executor every other engine is compared against
DEFAULT_ENGINE = "async-heap"

_REGISTRY: dict[str, EngineFactory] = {}
_HELP: dict[str, str] = {}
#: name -> {"status": "available" | "fallback" | "unavailable",
#:          "reason": import-failure text (or None),
#:          "fallback": registry name the entry delegates to (or None)}
#: — the per-entry availability record behind ``repro-steiner engines``.
#: ``fallback`` entries are registered and callable (they run as their
#: NumPy twin); ``unavailable`` entries are listing-only.
_AVAILABILITY: dict[str, dict] = {}


@dataclass(frozen=True)
class EngineResult:
    """One phase run plus provenance of the engine that executed it.

    Attributes
    ----------
    stats:
        The recorded :class:`~repro.runtime.engine.PhaseStats` (simulated
        time, visit and local/remote message counts, busy time).
    engine:
        Registry name of the engine that ran the phase.
    elapsed_s:
        Wall-clock seconds spent inside ``run_phase`` — the quantity the
        engine benchmarks compare (simulated time is a *model* output
        and near-identical across the BSP family by construction).
    n_supersteps:
        Superstep count for the bulk-synchronous engines, ``None`` for
        the asynchronous one.
    workers:
        Worker processes the phase actually ran on: ``None`` for
        engines without a pool, ``1`` when ``bsp-mp`` fell back to
        in-process execution, the pool size otherwise.
    restarts / replayed_supersteps / recovery_wall_s:
        Fault-recovery provenance from ``bsp-mp``'s supervisor: worker
        restarts performed, supersteps re-driven during recovery, and
        wall-clock seconds spent recovering.  All zero on a fault-free
        run and for engines without a pool — and whenever non-zero, the
        results are still bit-identical to the fault-free run (the
        recovery-preserves-parity contract, ``docs/robustness.md``).
    coalesced_supersteps:
        How many *logical* supersteps ``bsp-mp`` executed inside
        coalesced groups (several supersteps behind one barrier,
        ``docs/engines.md``).  Zero for every other engine and when
        coalescing never engaged; ``n_supersteps`` always counts
        logical supersteps regardless, so this records only the
        physical-barrier savings.
    """

    stats: PhaseStats
    engine: str
    elapsed_s: float
    n_supersteps: Optional[int] = None
    workers: Optional[int] = None
    restarts: int = 0
    replayed_supersteps: int = 0
    recovery_wall_s: float = 0.0
    coalesced_supersteps: int = 0


def register_engine(
    name: str,
    help_text: str = "",
    *,
    status: str = "available",
    reason: str | None = None,
    fallback: str | None = None,
) -> Callable[[EngineFactory], EngineFactory]:
    """Decorator registering ``factory`` as runtime engine ``name``.

    Re-registering a name overwrites it (deliberate: lets tests and
    downstream users shadow an engine with an instrumented variant).

    ``status``/``reason``/``fallback`` record availability provenance
    for optional tiers: ``"fallback"`` means the entry is callable but
    runs as the twin named by ``fallback`` because its accelerator
    failed to import (``reason`` carries the import error) — surfaced
    by :func:`engine_availability` and the CLI listing.
    """

    def deco(factory: EngineFactory) -> EngineFactory:
        _REGISTRY[name] = factory
        doc_lines = (factory.__doc__ or "").strip().splitlines()
        _HELP[name] = help_text or (doc_lines[0] if doc_lines else name)
        _AVAILABILITY[name] = {
            "status": status,
            "reason": reason,
            "fallback": fallback,
        }
        return factory

    return deco


def register_unavailable_engine(name: str, help_text: str, reason: str) -> None:
    """Record an optional engine that could not register at all.

    The name stays *out* of the callable registry (``get_engine`` keeps
    failing fast), but :func:`engine_availability` and the CLI listing
    show the entry with its import-failure reason instead of silently
    omitting it.
    """
    _HELP[name] = help_text
    _AVAILABILITY[name] = {
        "status": "unavailable",
        "reason": reason,
        "fallback": None,
    }


def available_engines() -> list[str]:
    """Registered engine names, default first, rest alphabetical."""
    rest = sorted(k for k in _REGISTRY if k != DEFAULT_ENGINE)
    return [DEFAULT_ENGINE, *rest] if DEFAULT_ENGINE in _REGISTRY else rest


def engine_help() -> dict[str, str]:
    """``{name: one-line description}`` for CLI listings."""
    return {name: _HELP.get(name, "") for name in available_engines()}


def engine_availability() -> dict[str, dict]:
    """Per-entry availability: ``{name: {status, reason, fallback, help}}``.

    Registered (callable) entries first, in :func:`available_engines`
    order; ``unavailable`` listing-only entries follow alphabetically.
    ``status`` is ``"available"`` (the named executor runs),
    ``"fallback"`` (callable, but running as ``fallback`` — ``reason``
    says why) or ``"unavailable"`` (not callable; ``reason`` says why).
    """
    names = available_engines()
    names += sorted(k for k in _AVAILABILITY if k not in _REGISTRY)
    out: dict[str, dict] = {}
    for name in names:
        record = dict(
            _AVAILABILITY.get(
                name, {"status": "available", "reason": None, "fallback": None}
            )
        )
        record["help"] = _HELP.get(name, "")
        out[name] = record
    return out


def get_engine(name: str) -> EngineFactory:
    """Resolve an engine name; raises :class:`ValueError` when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown runtime engine {name!r}; "
            f"available: {available_engines()}"
        ) from None


def make_engine(
    name: str,
    partition: PartitionedGraph,
    machine: MachineModel | None = None,
    discipline: QueueDiscipline | str = QueueDiscipline.PRIORITY,
    *,
    aggregate_remote: bool = False,
    workers: Optional[int] = None,
    checkpoint_interval: Optional[int] = None,
    max_restarts: Optional[int] = None,
    worker_timeout_s: Optional[float] = None,
    fault_plan: "FaultPlan | None" = None,
    shm_transport: Optional[bool] = None,
    coalesce_threshold: Optional[int] = None,
    coalesce_max: Optional[int] = None,
) -> EngineBase:
    """Instantiate the named engine over a partitioned graph.

    ``workers`` sizes ``bsp-mp``'s process pool (``None`` = its
    reproducible default); ``checkpoint_interval`` / ``max_restarts`` /
    ``worker_timeout_s`` / ``fault_plan`` configure its fault-tolerance
    layer, and ``shm_transport`` / ``coalesce_threshold`` /
    ``coalesce_max`` its data plane (``None`` = engine defaults; see
    :mod:`repro.runtime.engine_mp`).  The in-process engines accept and
    ignore every pool knob, so callers can thread them unconditionally
    — none of the knobs changes results (the recovery-preserves-parity
    and transport-preserves-parity contracts).  The caller owns the
    returned engine and must
    :meth:`~repro.runtime.engine.EngineBase.close` it when done (a
    no-op for engines without external resources).
    """
    return get_engine(name)(
        partition,
        machine,
        discipline,
        aggregate_remote=aggregate_remote,
        workers=workers,
        checkpoint_interval=checkpoint_interval,
        max_restarts=max_restarts,
        worker_timeout_s=worker_timeout_s,
        fault_plan=fault_plan,
        shm_transport=shm_transport,
        coalesce_threshold=coalesce_threshold,
        coalesce_max=coalesce_max,
    )


def run_phase_with(
    engine_name: str,
    partition: PartitionedGraph,
    program: Any,
    initial_messages: Iterable[Tuple[int, Tuple]],
    *,
    machine: MachineModel | None = None,
    discipline: QueueDiscipline | str = QueueDiscipline.PRIORITY,
    name: str = "phase",
    max_events: Optional[int] = None,
    workers: Optional[int] = None,
) -> EngineResult:
    """Run one program phase under the chosen engine.

    The program converges to the identical state under every engine (the
    registry contract); the choice trades execution model and wall-clock
    speed.  Returns the stats plus provenance, for benchmarks and the
    ``repro-steiner engines --bench`` report.  The engine is always
    closed before returning — even when the phase raises — so ``bsp-mp``
    worker processes never outlive the call.
    """
    engine = make_engine(
        engine_name, partition, machine, discipline, workers=workers
    )
    try:
        t0 = time.perf_counter()
        stats = engine.run_phase(
            name, program, initial_messages, max_events=max_events
        )
        elapsed = time.perf_counter() - t0
    finally:
        engine.close()
    return EngineResult(
        stats=stats,
        engine=engine_name,
        elapsed_s=elapsed,
        n_supersteps=getattr(engine, "n_supersteps", None),
        workers=getattr(engine, "workers_used", None),
        restarts=getattr(engine, "restarts", 0),
        replayed_supersteps=getattr(engine, "replayed_supersteps", 0),
        recovery_wall_s=getattr(engine, "recovery_wall_s", 0.0),
        coalesced_supersteps=getattr(engine, "coalesced_supersteps", 0),
    )


def verify_engines_agree(
    partition: PartitionedGraph,
    program_factory: Callable[[], object],
    initial_fn: Callable[[object], Iterable[Tuple[int, Tuple]]],
    state_fn: Callable[[object], Sequence[np.ndarray]],
    *,
    engines: Sequence[str] | None = None,
    machine: MachineModel | None = None,
    discipline: QueueDiscipline | str = QueueDiscipline.PRIORITY,
    workers: Optional[int] = None,
) -> dict[str, EngineResult]:
    """Run a fresh program under several engines and assert their
    converged states are identical (the registry contract).

    ``program_factory`` builds a fresh program per engine; ``initial_fn``
    yields its phase-start messages; ``state_fn`` extracts the arrays to
    compare.  Used by the engine benchmark before any speedup is
    recorded, mirroring ``verify_backends_agree``.
    """
    names = list(engines) if engines is not None else available_engines()
    results: dict[str, EngineResult] = {}
    ref_state: Sequence[np.ndarray] | None = None
    ref_name = ""
    for engine_name in names:
        program = program_factory()
        results[engine_name] = run_phase_with(
            engine_name,
            partition,
            program,
            list(initial_fn(program)),
            machine=machine,
            discipline=discipline,
            workers=workers,
        )
        state = state_fn(program)
        if ref_state is None:
            ref_state, ref_name = state, engine_name
        elif not all(
            np.array_equal(a, b) for a, b in zip(ref_state, state)
        ):
            raise AssertionError(
                f"engine {engine_name!r} disagrees with {ref_name!r}"
            )
    return results


# --------------------------------------------------------------------- #
# built-in registrations
# --------------------------------------------------------------------- #
@register_engine(
    "async-heap",
    "asynchronous discrete-event executor (HavoqGT stand-in, default)",
)
def _async_heap_factory(
    partition: PartitionedGraph,
    machine: MachineModel | None = None,
    discipline: QueueDiscipline | str = QueueDiscipline.PRIORITY,
    *,
    aggregate_remote: bool = False,
    workers: Optional[int] = None,
    checkpoint_interval: Optional[int] = None,
    max_restarts: Optional[int] = None,
    worker_timeout_s: Optional[float] = None,
    fault_plan: "FaultPlan | None" = None,
    shm_transport: Optional[bool] = None,
    coalesce_threshold: Optional[int] = None,
    coalesce_max: Optional[int] = None,
) -> AsyncEngine:
    return AsyncEngine(
        partition, machine, discipline, aggregate_remote=aggregate_remote
    )


@register_engine(
    "bsp", "per-message bulk-synchronous supersteps (Pregel-style ablation)"
)
def _bsp_factory(
    partition: PartitionedGraph,
    machine: MachineModel | None = None,
    discipline: QueueDiscipline | str = QueueDiscipline.PRIORITY,
    *,
    aggregate_remote: bool = False,
    workers: Optional[int] = None,
    checkpoint_interval: Optional[int] = None,
    max_restarts: Optional[int] = None,
    worker_timeout_s: Optional[float] = None,
    fault_plan: "FaultPlan | None" = None,
    shm_transport: Optional[bool] = None,
    coalesce_threshold: Optional[int] = None,
    coalesce_max: Optional[int] = None,
) -> BSPEngine:
    # aggregation is an async-runtime knob; BSP already models bulk
    # per-superstep delivery, so the flag is accepted and ignored —
    # as is workers, which only the pooled engine consumes
    return BSPEngine(partition, machine, discipline)


@register_engine(
    "bsp-batched",
    "vectorised bulk-synchronous supersteps (NumPy array ops per superstep)",
)
def _bsp_batched_factory(
    partition: PartitionedGraph,
    machine: MachineModel | None = None,
    discipline: QueueDiscipline | str = QueueDiscipline.PRIORITY,
    *,
    aggregate_remote: bool = False,
    workers: Optional[int] = None,
    checkpoint_interval: Optional[int] = None,
    max_restarts: Optional[int] = None,
    worker_timeout_s: Optional[float] = None,
    fault_plan: "FaultPlan | None" = None,
    shm_transport: Optional[bool] = None,
    coalesce_threshold: Optional[int] = None,
    coalesce_max: Optional[int] = None,
) -> BSPBatchedEngine:
    return BSPBatchedEngine(partition, machine, discipline)


@register_engine(
    "bsp-mp",
    "multiprocess rank-parallel batched supersteps (forked worker pool)",
)
def _bsp_mp_factory(
    partition: PartitionedGraph,
    machine: MachineModel | None = None,
    discipline: QueueDiscipline | str = QueueDiscipline.PRIORITY,
    *,
    aggregate_remote: bool = False,
    workers: Optional[int] = None,
    checkpoint_interval: Optional[int] = None,
    max_restarts: Optional[int] = None,
    worker_timeout_s: Optional[float] = None,
    fault_plan: "FaultPlan | None" = None,
    shm_transport: Optional[bool] = None,
    coalesce_threshold: Optional[int] = None,
    coalesce_max: Optional[int] = None,
) -> BSPMultiprocessEngine:
    return BSPMultiprocessEngine(
        partition,
        machine,
        discipline,
        workers=workers,
        checkpoint_interval=checkpoint_interval,
        max_restarts=max_restarts,
        worker_timeout_s=worker_timeout_s,
        fault_plan=fault_plan,
        shm_transport=shm_transport,
        coalesce_threshold=coalesce_threshold,
        coalesce_max=coalesce_max,
    )


def _register_bsp_native() -> None:
    """Register the JIT tier (or its fallback twin) under ``bsp-native``.

    The entry is *always* registered: with numba present the engine
    fuses each superstep into one compiled kernel; without, the
    constructed engine transparently runs the batched NumPy supersteps
    (identical semantics and counters) and the availability record says
    so (status ``fallback`` + the import-failure reason).
    """
    from repro.native import NUMBA_AVAILABLE, NUMBA_IMPORT_ERROR

    @register_engine(
        "bsp-native",
        "fused JIT-compiled supersteps (numba; falls back to bsp-batched)",
        status="available" if NUMBA_AVAILABLE else "fallback",
        reason=NUMBA_IMPORT_ERROR,
        fallback=None if NUMBA_AVAILABLE else "bsp-batched",
    )
    def _bsp_native_factory(
        partition: PartitionedGraph,
        machine: MachineModel | None = None,
        discipline: QueueDiscipline | str = QueueDiscipline.PRIORITY,
        *,
        aggregate_remote: bool = False,
        workers: Optional[int] = None,
        checkpoint_interval: Optional[int] = None,
        max_restarts: Optional[int] = None,
        worker_timeout_s: Optional[float] = None,
        fault_plan: "FaultPlan | None" = None,
        shm_transport: Optional[bool] = None,
        coalesce_threshold: Optional[int] = None,
        coalesce_max: Optional[int] = None,
    ) -> EngineBase:
        from repro.runtime.engine_native import BSPNativeEngine

        return BSPNativeEngine(partition, machine, discipline)


_register_bsp_native()


if TYPE_CHECKING:
    from repro.contracts import RuntimeEngine
    from repro.runtime.engine_native import BSPNativeEngine

    # mypy structurally verifies every built-in engine class against the
    # registry contract (repro.contracts.RuntimeEngine); dropping or
    # renaming a contract member fails type-checking on this line.  The
    # REP501 checker rule is the runtime twin of this assignment.
    _ENGINE_CONFORMANCE: tuple[type[RuntimeEngine], ...] = (
        AsyncEngine,
        BSPEngine,
        BSPBatchedEngine,
        BSPMultiprocessEngine,
        BSPNativeEngine,
    )
