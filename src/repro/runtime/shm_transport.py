"""Shared-memory message transport for the ``bsp-mp`` engine.

Per-superstep inbox shards and worker emissions are flat ``int64``
arrays.  Pickling them through a pipe costs a copy on each side plus
the pickle framing per superstep — the dominant IPC cost on
many-tiny-superstep graphs.  This module replaces the array *bytes*
with a :class:`ShmRing` per direction: the writer packs the arrays
into a ``multiprocessing.shared_memory`` segment and sends only a
small ``("shm", offset, rows, cols)`` descriptor over the pipe; the
reader reconstructs zero-copy ``np.ndarray`` views.

Layout
------
A ring is one ``int64`` array of ``capacity_bytes // 8`` slots with a
monotonically advancing ``head``.  One *block* is a C-contiguous
``(rows, cols)`` submatrix starting at ``offset``; a message batch of
``k`` logical arrays (widths ``w_0..w_{k-1}``) is packed column-wise
into a single block of ``cols = sum(w_i)``, so the reader recovers
each array as a strided column view of the same block.  Descriptors
are self-describing — ``(offset, rows, cols)`` fully locates a block —
so a reader never needs the writer's head, and a respawned writer can
restart its head at zero without corrupting in-flight reads (the
protocol is strict request/reply: a block is consumed before the next
one is written over it).

Fallback
--------
Every pack degrades to a ``("raw", *arrays)`` pickled descriptor when
the ring is absent (``shared_memory`` unavailable, transport disabled)
or the batch does not fit; :func:`unpack_message_block` accepts both
forms, so the pickled path stays the parity reference and the shm path
needs no size guarantees.  Bit-equality of the two forms is pinned by
``tests/test_shm_transport.py``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SHM_AVAILABLE",
    "ShmRing",
    "pack_message_block",
    "unpack_message_block",
]

try:  # pragma: no cover - import guard, both sides exercised in CI
    from multiprocessing import shared_memory as _shared_memory

    SHM_AVAILABLE = True
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]
    SHM_AVAILABLE = False

#: descriptor tags: a block living in the ring vs pickled-through arrays
_TAG_SHM = "shm"
_TAG_RAW = "raw"


class ShmRing:
    """A single-writer ``int64`` ring over one shared-memory segment.

    The writer (parent for inbox rings, worker for emission rings)
    advances ``head`` with each :meth:`reserve`; the reader only ever
    maps descriptors through :meth:`view`.  There is no free-list: the
    request/reply lockstep of the engine protocol guarantees a block is
    fully consumed (or copied) before the writer can wrap over it.
    """

    __slots__ = ("_shm", "_arr", "nslots", "_head")

    def __init__(self, capacity_bytes: int) -> None:
        if not SHM_AVAILABLE:  # pragma: no cover - guarded by callers
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        if capacity_bytes < 8:
            raise ValueError("capacity_bytes must be >= 8")
        self.nslots = int(capacity_bytes) // 8
        self._shm = _shared_memory.SharedMemory(
            create=True, size=self.nslots * 8
        )
        self._arr: Optional[np.ndarray] = np.frombuffer(
            self._shm.buf, dtype=np.int64
        )
        self._head = 0

    # ------------------------------------------------------------------ #
    def reserve(
        self, n_rows: int, n_cols: int, *, wrap: bool = True
    ) -> Optional[Tuple[int, np.ndarray]]:
        """Claim a ``(n_rows, n_cols)`` block; returns ``(offset, view)``
        or ``None`` when the block cannot fit (caller falls back to the
        pickled path).  ``wrap=False`` refuses to rewind ``head`` —
        used when several blocks of one reply must stay live at once."""
        need = int(n_rows) * int(n_cols)
        if self._arr is None or need > self.nslots:
            return None
        if self._head + need > self.nslots:
            if not wrap:
                return None
            self._head = 0
        offset = self._head
        self._head = offset + need
        view = self._arr[offset : offset + need].reshape(n_rows, n_cols)
        return offset, view

    def view(self, offset: int, n_rows: int, n_cols: int) -> np.ndarray:
        """Zero-copy ``(n_rows, n_cols)`` view of a packed block."""
        assert self._arr is not None, "ring is closed"
        need = int(n_rows) * int(n_cols)
        return self._arr[offset : offset + need].reshape(n_rows, n_cols)

    def rewind(self) -> None:
        """Reset ``head`` to zero (start of a multi-block reply)."""
        self._head = 0

    def close(self, *, unlink: bool = False) -> None:
        """Detach from the segment; ``unlink=True`` (owner only)
        destroys it.  Idempotent."""
        # drop the exported ndarray first or SharedMemory.close() raises
        # BufferError for the outstanding memoryview
        self._arr = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - interpreter-dependent
            pass
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


# --------------------------------------------------------------------- #
# descriptor pack / unpack
# --------------------------------------------------------------------- #
def pack_message_block(
    ring: Optional[ShmRing],
    arrays: Sequence[np.ndarray],
    *,
    wrap: bool = True,
) -> tuple:
    """Pack equal-length ``int64`` arrays (1-D or 2-D) into one ring
    block, returning the ``("shm", offset, rows, cols)`` descriptor —
    or the pickled ``("raw", *arrays)`` fallback when ``ring`` is
    ``None`` or the block does not fit."""
    if ring is None:
        return (_TAG_RAW, *arrays)
    rows = int(arrays[0].shape[0])
    widths = [1 if a.ndim == 1 else int(a.shape[1]) for a in arrays]
    cols = sum(widths)
    reserved = ring.reserve(rows, cols, wrap=wrap)
    if reserved is None:
        return (_TAG_RAW, *arrays)
    offset, block = reserved
    c = 0
    for a, w in zip(arrays, widths):
        if a.ndim == 1:
            block[:, c] = a
        else:
            block[:, c : c + w] = a
        c += w
    return (_TAG_SHM, offset, rows, cols)


def unpack_message_block(
    ring: Optional[ShmRing],
    blob: tuple,
    widths: Sequence[int],
    *,
    copy: bool = False,
) -> tuple:
    """Decode a descriptor back into its arrays.

    ``widths`` gives each logical array's column count (``1`` yields a
    1-D array, matching what was packed).  Shm descriptors return
    column *views* of the ring block — pass ``copy=True`` when the
    arrays must outlive the block (e.g. a streamed multi-block reply
    decoded after further writes).  Raw descriptors pass the pickled
    arrays through untouched.
    """
    if blob[0] == _TAG_RAW:
        return tuple(blob[1:])
    tag, offset, rows, cols = blob
    assert tag == _TAG_SHM and cols == sum(widths), blob
    assert ring is not None, "shm descriptor without a ring"
    block = ring.view(offset, rows, cols)
    out = []
    c = 0
    for w in widths:
        a = block[:, c] if w == 1 else block[:, c : c + w]
        out.append(a.copy() if copy else a)
        c += w
    return tuple(out)
