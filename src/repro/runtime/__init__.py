"""Distributed-runtime simulation — the HavoqGT/MPI substitute.

The paper runs on an MPI cluster (up to 512 nodes / 8K ranks) with
HavoqGT's asynchronous vertex-centric engine.  Neither MPI nor multiple
cores are available in this environment, so this package provides a
**deterministic discrete-event simulation (DES)** of that runtime:

* :mod:`~repro.runtime.partition` — vertex block/hash partitioning with
  optional high-degree *delegates* (HavoqGT's vertex-cut);
* :mod:`~repro.runtime.queues` — per-rank FIFO and priority message
  queues (the paper's §IV message-prioritisation optimisation);
* :mod:`~repro.runtime.cost_model` — the analytic machine model mapping
  events to simulated seconds;
* :mod:`~repro.runtime.engine` — the asynchronous event engine (plus a
  bulk-synchronous variant for the BSP ablation);
* :mod:`~repro.runtime.engine_batched` — the vectorised BSP engine
  (array-at-a-time supersteps over the partitioned CSR);
* :mod:`~repro.runtime.engines` — the pluggable engine registry
  (``async-heap`` / ``bsp`` / ``bsp-batched``, selected via
  ``SolverConfig(engine=...)``);
* :mod:`~repro.runtime.collectives` — simulated ``MPI_Allreduce``;
* :mod:`~repro.runtime.memory` — the cluster-wide memory accounting used
  to reproduce Fig. 8.

The simulation executes the *same message-driven algorithm* as a real
deployment (same state transitions, same output), and derives *simulated
parallel time* from per-rank clocks, so the scaling **shape** of every
experiment is preserved.
"""

from repro.runtime.cost_model import MachineModel
from repro.runtime.partition import PartitionedGraph, block_partition, hash_partition
from repro.runtime.queues import QueueDiscipline
from repro.runtime.engine import (
    AsyncEngine,
    BSPEngine,
    EngineBase,
    PhaseStats,
    VertexProgram,
)
from repro.runtime.engine_batched import BSPBatchedEngine
from repro.runtime.engines import (
    DEFAULT_ENGINE,
    EngineResult,
    available_engines,
    engine_help,
    get_engine,
    make_engine,
    register_engine,
    run_phase_with,
    verify_engines_agree,
)
from repro.runtime.collectives import allreduce_min_time, allreduce_elementwise_min
from repro.runtime.memory import MemoryReport, estimate_memory

__all__ = [
    "AsyncEngine",
    "BSPBatchedEngine",
    "BSPEngine",
    "DEFAULT_ENGINE",
    "EngineBase",
    "EngineResult",
    "MachineModel",
    "MemoryReport",
    "PartitionedGraph",
    "PhaseStats",
    "QueueDiscipline",
    "VertexProgram",
    "allreduce_elementwise_min",
    "allreduce_min_time",
    "available_engines",
    "block_partition",
    "engine_help",
    "estimate_memory",
    "get_engine",
    "hash_partition",
    "make_engine",
    "register_engine",
    "run_phase_with",
    "verify_engines_agree",
]
