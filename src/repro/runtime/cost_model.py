"""Analytic machine model for the discrete-event simulation.

Every simulated quantity reported by the library flows through this one
dataclass, so the assumptions are in a single place.  Constants are loosely
calibrated to the paper's testbed (Quartz: Xeon E5-2695v4 nodes, Omni-Path
interconnect, 16 ranks/node) at the granularity that matters for *shape*:

* per-visitor CPU cost (vertex-centric phases),
* per-arc CPU cost (edge-centric scans),
* local vs remote message delivery latency,
* bandwidth-proportional transfer cost,
* LogP-style tree allreduce for collectives,
* per-edge cost of the sequential MST.

The defaults make a ~100K-arc graph take on the order of seconds of
*simulated* time on a handful of ranks, which is the regime of the paper's
small-graph tables; absolute values are not meaningful, ratios are.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MachineModel"]


@dataclass(frozen=True)
class MachineModel:
    """Cost constants (seconds) for the simulated cluster.

    Attributes
    ----------
    t_visit:
        CPU time to dequeue one visitor message and run its callback
        (excluding emission costs).
    t_emit:
        CPU time to construct and enqueue one outgoing message.
    t_edge_scan:
        CPU time per arc in edge-centric scans (Alg. 5's local phase).
    t_local_latency:
        Delivery latency for a message whose target lives on the sending
        rank (in-memory queue push).
    t_remote_latency:
        One-way network latency for a cross-rank message.
    bytes_per_message:
        Wire size of one visitor message (header + payload).
    bandwidth:
        Per-link bandwidth in bytes/second (only the bandwidth term of
        large transfers; small visitor messages are latency-dominated).
    alpha_collective:
        Per-tree-level latency of an allreduce.
    beta_collective:
        Per-byte cost of an allreduce.
    t_mst_edge:
        Sequential per-edge-log-term cost of the Prim MST on ``G'1``
        (calibrated so ~50M edges ≈ 2 s, matching §V-B's report).
    """

    t_visit: float = 2.0e-7
    t_emit: float = 5.0e-8
    t_edge_scan: float = 6.0e-8
    t_local_latency: float = 2.0e-7
    t_remote_latency: float = 3.0e-6
    bytes_per_message: int = 40
    bandwidth: float = 5.0e9
    alpha_collective: float = 8.0e-6
    beta_collective: float = 6.0e-10
    t_mst_edge: float = 1.6e-9

    # ------------------------------------------------------------------ #
    def message_delay(self, same_rank: bool) -> float:
        """End-to-end delivery delay of one visitor message."""
        if same_rank:
            return self.t_local_latency
        return self.t_remote_latency + self.bytes_per_message / self.bandwidth

    def allreduce_time(self, n_ranks: int, nbytes: int) -> float:
        """Tree allreduce estimate: ``alpha * ceil(log2 P) + beta * bytes``.

        Matches the textbook recursive-doubling model; exact constants do
        not matter, the log-P latency term and linear byte term do (they
        produce the Fig. 4/8 behaviour where the ``|S| = 10K`` collective
        on a ~50M-entry buffer becomes visible).
        """
        if n_ranks <= 1:
            return 0.0
        levels = math.ceil(math.log2(n_ranks))
        return self.alpha_collective * levels + self.beta_collective * nbytes * levels

    def mst_time(self, n_edges: int, n_vertices: int) -> float:
        """Sequential Prim on the replicated distance graph ``G'1``."""
        if n_edges <= 0:
            return 0.0
        return self.t_mst_edge * n_edges * max(1.0, math.log2(max(2, n_vertices)))

    def scan_time(self, n_arcs: int) -> float:
        """Edge-centric scan of ``n_arcs`` local arcs."""
        return self.t_edge_scan * n_arcs
