"""Simulated MPI collectives.

The distributed algorithm uses ``MPI_Allreduce(MPI_MIN)`` twice (paper
Alg. 5): once over the per-rank min-distance cross-cell edge buffers
(``EN``) and once over source-vertex ids during global edge pruning.  The
simulation performs the reduction **semantically** (element-wise min over
per-rank arrays) and charges the analytic tree-allreduce cost from the
:class:`~repro.runtime.cost_model.MachineModel`.

§V-F notes memory pressure from allreducing a ~50M-entry buffer in one
shot and that chunked collectives trade memory for time —
:func:`chunked_allreduce_time` models exactly that trade-off for the
Fig. 8 discussion.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.runtime.cost_model import MachineModel

__all__ = [
    "allreduce_elementwise_min",
    "allreduce_min_time",
    "chunked_allreduce_time",
]


def allreduce_elementwise_min(per_rank_arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Element-wise MIN across per-rank buffers (the semantic result every
    rank holds after ``MPI_Allreduce(MPI_MIN)``)."""
    if not per_rank_arrays:
        raise ValueError("need at least one rank buffer")
    out = np.array(per_rank_arrays[0], copy=True)
    for arr in per_rank_arrays[1:]:
        np.minimum(out, arr, out=out)
    return out


def allreduce_min_time(
    machine: MachineModel,
    n_ranks: int,
    n_elements: int,
    elem_bytes: int = 8,
) -> float:
    """Simulated duration of one allreduce over ``n_elements`` items."""
    return machine.allreduce_time(n_ranks, n_elements * elem_bytes)


def chunked_allreduce_time(
    machine: MachineModel,
    n_ranks: int,
    n_elements: int,
    chunk_elements: int,
    elem_bytes: int = 8,
) -> float:
    """Duration when the buffer is reduced in fixed-size chunks.

    Each chunk pays the full latency term, so many small chunks are slower
    but bound the peak communication buffer to ``chunk_elements`` — the
    memory/runtime trade-off of §V-F.
    """
    if chunk_elements < 1:
        raise ValueError("chunk size must be >= 1")
    n_chunks = max(1, math.ceil(n_elements / chunk_elements))
    per_chunk = min(chunk_elements, n_elements)
    return n_chunks * machine.allreduce_time(n_ranks, per_chunk * elem_bytes)
