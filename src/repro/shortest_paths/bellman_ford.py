"""Queue-based Bellman–Ford (SPFA) single-source shortest paths.

The paper bases its distributed Voronoi kernel on Bellman–Ford because —
unlike Dijkstra or Δ-stepping — it tolerates fully asynchronous relaxation:
a vertex may relax with a stale distance and later be corrected.  This
sequential version is used by tests as a second oracle and by the BSP
ablation as the per-round relaxation kernel.
"""

from __future__ import annotations

from collections import deque
from typing import Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["bellman_ford"]

INF = np.iinfo(np.int64).max
NO_VERTEX = np.int64(-1)


def bellman_ford(graph: CSRGraph, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """Shortest distances/predecessors from ``source`` via SPFA.

    Returns the same ``(dist, pred)`` pair as
    :func:`repro.shortest_paths.dijkstra.dijkstra`; on graphs with positive
    weights the two must agree exactly (tested).
    """
    n = graph.n_vertices
    if not (0 <= source < n):
        raise GraphError(f"source {source} out of range")
    dist = np.full(n, INF, dtype=np.int64)
    pred = np.full(n, NO_VERTEX, dtype=np.int64)
    dist[source] = 0
    in_queue = np.zeros(n, dtype=bool)
    queue: deque[int] = deque([source])
    in_queue[source] = True
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    while queue:
        u = queue.popleft()
        in_queue[u] = False
        du = dist[u]
        for i in range(indptr[u], indptr[u + 1]):
            v = indices[i]
            nd = du + weights[i]
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                if not in_queue[v]:
                    queue.append(int(v))
                    in_queue[v] = True
    return dist, pred
