"""Single-source Dijkstra on :class:`~repro.graph.csr.CSRGraph`.

Binary-heap (``heapq``) implementation with lazy deletion.  Distances are
``int64`` with :data:`~repro.shortest_paths.voronoi.INF` as the unreached
sentinel — edge weights are positive integers throughout the library, so
integer arithmetic is exact (no float round-off in tie-breaking, which
matters for the deterministic cross-implementation agreement tests).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["dijkstra", "dijkstra_to_targets", "reconstruct_path"]

INF = np.iinfo(np.int64).max
NO_VERTEX = np.int64(-1)


def dijkstra(graph: CSRGraph, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """Shortest distances and predecessors from ``source``.

    Returns
    -------
    dist:
        ``int64[n]``, :data:`INF` where unreachable.
    pred:
        ``int64[n]``, predecessor on a shortest path (``-1`` for the
        source and unreachable vertices).
    """
    n = graph.n_vertices
    if not (0 <= source < n):
        raise GraphError(f"source {source} out of range")
    dist = np.full(n, INF, dtype=np.int64)
    pred = np.full(n, NO_VERTEX, dtype=np.int64)
    dist[source] = 0
    heap: list[tuple[int, int]] = [(0, source)]
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    while heap:
        d, u = heapq.heappop(heap)
        if d != dist[u]:
            continue  # stale entry
        for i in range(indptr[u], indptr[u + 1]):
            v = indices[i]
            nd = d + weights[i]
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (int(nd), int(v)))
    return dist, pred


def dijkstra_to_targets(
    graph: CSRGraph,
    source: int,
    targets: Iterable[int],
) -> Tuple[np.ndarray, np.ndarray]:
    """Dijkstra that stops once every target is settled.

    This is the kernel the KMB baseline runs once per seed: the paper's
    Table I measures exactly this "APSP among seeds" cost.  Early exit
    keeps the asymptotics identical but trims constants on graphs whose
    seeds cluster.
    """
    n = graph.n_vertices
    target_set = {int(t) for t in targets}
    # sorted so the failing target (and thus the error) is deterministic
    for t in sorted(target_set):
        if not (0 <= t < n):
            raise GraphError(f"target {t} out of range")
    remaining = set(target_set)
    remaining.discard(source)
    dist = np.full(n, INF, dtype=np.int64)
    pred = np.full(n, NO_VERTEX, dtype=np.int64)
    dist[source] = 0
    heap: list[tuple[int, int]] = [(0, source)]
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    while heap and remaining:
        d, u = heapq.heappop(heap)
        if d != dist[u]:
            continue
        remaining.discard(u)
        for i in range(indptr[u], indptr[u + 1]):
            v = indices[i]
            nd = d + weights[i]
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (int(nd), int(v)))
    return dist, pred


def reconstruct_path(pred: np.ndarray, source: int, target: int) -> list[int]:
    """Vertex sequence ``source .. target`` following ``pred`` pointers.

    Raises :class:`GraphError` if ``target`` was not reached from
    ``source`` (broken predecessor chain).
    """
    path = [int(target)]
    guard = pred.size + 1
    v = int(target)
    while v != source:
        v = int(pred[v])
        if v == NO_VERTEX:
            raise GraphError(f"no path recorded from {source} to {target}")
        path.append(v)
        guard -= 1
        if guard < 0:
            raise GraphError("predecessor chain contains a cycle")
    path.reverse()
    return path
