"""Near-shortest-path edge sets — the ``|S| = 2`` exploration primitive.

The paper's introduction: "When |S| = 2, sets of edges that exist in
shortest weighted paths and near-shortest weighted paths (low total
distance paths) provide an attractive framework for understanding the
relationships between the seeds", with Steiner trees as the |S| > 2
generalisation.  This module supplies that |S| = 2 primitive so the
library covers the full exploration workflow the paper motivates:

* :func:`shortest_path_edges` — edges lying on *some* shortest ``s-t``
  path;
* :func:`near_shortest_path_edges` — edges lying on some path of total
  distance ≤ ``(1 + epsilon) · d(s, t)`` (the "augmenting paths" the
  analyst adds to build up a subgraph);
* :func:`path_dag` — the induced exploration subgraph with per-edge
  slack, ready for ranking/pruning.

All are two Dijkstra sweeps plus a vectorised edge filter: an edge
``(u, v)`` is on a path of length ``d(s,u) + w + d(v,t)``, so the test
is ``ds[u] + w + dt[v] <= (1 + eps) * d(s,t)`` in either orientation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.shortest_paths.dijkstra import INF, dijkstra

__all__ = [
    "NearShortestResult",
    "near_shortest_path_edges",
    "shortest_path_edges",
    "path_dag",
]


@dataclass(frozen=True)
class NearShortestResult:
    """Edges participating in low-distance ``s-t`` paths.

    Attributes
    ----------
    source, target:
        The two seed vertices.
    distance:
        ``d(source, target)`` — the shortest-path distance.
    epsilon:
        The slack used for membership.
    edges:
        ``int64[k, 3]`` rows ``(u, v, w)``, ``u < v``.
    slack:
        ``int64[k]`` — for each edge, the extra distance of the best
        path through it versus the shortest path (0 for shortest-path
        edges).  The analyst's ranking signal.
    """

    source: int
    target: int
    distance: int
    epsilon: float
    edges: np.ndarray
    slack: np.ndarray

    @property
    def n_edges(self) -> int:
        """Number of qualifying edges."""
        return int(self.edges.shape[0])

    def vertices(self) -> np.ndarray:
        """Vertices incident to the edge set (plus the two seeds)."""
        if self.edges.size == 0:
            return np.asarray(sorted({self.source, self.target}), dtype=np.int64)
        return np.unique(
            np.concatenate(
                [self.edges[:, 0], self.edges[:, 1], [self.source, self.target]]
            )
        ).astype(np.int64)


def near_shortest_path_edges(
    graph: CSRGraph,
    source: int,
    target: int,
    epsilon: float = 0.0,
) -> NearShortestResult:
    """Edges on ``s-t`` paths within ``(1 + epsilon)`` of the shortest.

    Raises :class:`GraphError` if ``target`` is unreachable.
    """
    if epsilon < 0:
        raise GraphError("epsilon must be non-negative")
    if source == target:
        raise GraphError("source and target must differ")
    ds, _ = dijkstra(graph, source)
    if ds[target] == INF:
        raise GraphError(f"no path from {source} to {target}")
    dt, _ = dijkstra(graph, target)
    d_st = int(ds[target])
    budget = int(np.floor((1.0 + epsilon) * d_st))

    eu, ev, ew = graph.edge_array()
    ok = (ds[eu] != INF) & (ds[ev] != INF) & (dt[eu] != INF) & (dt[ev] != INF)
    eu, ev, ew = eu[ok], ev[ok], ew[ok]
    through_fwd = ds[eu] + ew + dt[ev]  # s ->u, (u,v), v-> t
    through_bwd = ds[ev] + ew + dt[eu]
    best = np.minimum(through_fwd, through_bwd)
    keep = best <= budget
    edges = np.stack([eu[keep], ev[keep], ew[keep]], axis=1)
    slack = (best[keep] - d_st).astype(np.int64)
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    return NearShortestResult(
        source=int(source),
        target=int(target),
        distance=d_st,
        epsilon=float(epsilon),
        edges=edges[order],
        slack=slack[order],
    )


def shortest_path_edges(
    graph: CSRGraph,
    source: int,
    target: int,
) -> NearShortestResult:
    """Edges on *some* exactly-shortest ``s-t`` path (``epsilon = 0``)."""
    return near_shortest_path_edges(graph, source, target, 0.0)


def path_dag(
    graph: CSRGraph,
    source: int,
    target: int,
    epsilon: float = 0.0,
) -> CSRGraph:
    """The exploration subgraph: the near-shortest edge set as its own
    :class:`CSRGraph` over the original vertex ids (vertices not on any
    qualifying path are isolated)."""
    result = near_shortest_path_edges(graph, source, target, epsilon)
    return CSRGraph.from_edges(
        graph.n_vertices, result.edges[:, :2], result.edges[:, 2]
    )
