"""SciPy-accelerated Voronoi-cell backend.

:func:`repro.shortest_paths.voronoi.compute_voronoi_cells` is a pure
Python binary-heap sweep — clear, deterministic, but interpreter-bound.
This module computes the *identical* diagram using
``scipy.sparse.csgraph.dijkstra(min_only=True)`` for the distance part
(compiled C, typically several times faster on large graphs) followed
by two order-independent passes:

1. **owner propagation**: processing vertices in increasing distance
   order, ``src[v] = min(src[u])`` over tight in-neighbours
   (``dist[u] + w(u, v) == dist[v]``).  Tight in-neighbours always have
   strictly smaller distance (weights are positive), so a single pass in
   distance order reaches the lexicographic ``(dist, owner)`` fixpoint —
   the same one the heap sweep and the asynchronous distributed kernel
   converge to (proof sketch in the voronoi module);
2. **predecessor canonicalisation** — the shared
   :func:`~repro.shortest_paths.voronoi.canonicalize_predecessors` pass.

Bit-equality with the heap backend is asserted by the test suite on
every graph family, so callers may switch backends freely:

>>> from repro.shortest_paths.scipy_backend import compute_voronoi_cells_scipy
>>> # drop-in replacement for compute_voronoi_cells

Exactness note: SciPy returns float64 distances; integer edge weights
summed along paths stay below 2**53 for any graph this library can hold
in memory, so the float -> int64 round-trip is exact.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.shortest_paths.voronoi import (
    INF,
    NO_VERTEX,
    VoronoiDiagram,
    _validate_seeds,
    canonicalize_predecessors,
)

__all__ = ["compute_voronoi_cells_scipy"]


def compute_voronoi_cells_scipy(
    graph: CSRGraph,
    seeds: Sequence[int],
) -> VoronoiDiagram:
    """Voronoi diagram via SciPy's compiled multi-source Dijkstra.

    Returns the same ``(src, pred, dist)`` arrays as
    :func:`~repro.shortest_paths.voronoi.compute_voronoi_cells`.
    """
    import scipy.sparse as sp
    from scipy.sparse.csgraph import dijkstra as sp_dijkstra

    seeds_arr = _validate_seeds(graph, seeds)
    n = graph.n_vertices

    if graph.n_arcs == 0:
        src = np.full(n, NO_VERTEX, dtype=np.int64)
        dist = np.full(n, INF, dtype=np.int64)
        src[seeds_arr] = seeds_arr
        dist[seeds_arr] = 0
        pred = np.full(n, NO_VERTEX, dtype=np.int64)
        return VoronoiDiagram(seeds=seeds_arr, src=src, pred=pred, dist=dist)

    mat = sp.csr_matrix(
        (graph.weights.astype(np.float64), graph.indices, graph.indptr),
        shape=(n, n),
    )
    dist_f = sp_dijkstra(mat, directed=True, indices=seeds_arr, min_only=True)
    reached = np.isfinite(dist_f)
    dist = np.full(n, INF, dtype=np.int64)
    dist[reached] = dist_f[reached].astype(np.int64)

    # owner propagation in increasing-distance order
    src = np.full(n, NO_VERTEX, dtype=np.int64)
    src[seeds_arr] = seeds_arr
    order = np.argsort(dist_f[reached], kind="stable")
    reached_ids = np.nonzero(reached)[0][order]
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    seed_mask = np.zeros(n, dtype=bool)
    seed_mask[seeds_arr] = True
    for v in reached_ids:
        v = int(v)
        if seed_mask[v]:
            continue
        lo, hi = indptr[v], indptr[v + 1]
        nbrs = indices[lo:hi]
        tight = (dist[nbrs] + weights[lo:hi]) == dist[v]
        # every reached non-seed has >= 1 tight in-neighbour, and all
        # tight in-neighbours have strictly smaller dist => already final
        src[v] = src[nbrs[tight]].min()

    pred = canonicalize_predecessors(graph, src, dist)
    return VoronoiDiagram(seeds=seeds_arr, src=src, pred=pred, dist=dist)
