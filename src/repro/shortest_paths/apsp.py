"""All-pair-shortest-paths among a seed set.

This is the expensive Step 1 of the KMB algorithm (paper Alg. 1): build
the complete distance graph ``G1`` whose vertices are the seeds and whose
edge ``(s, t)`` carries ``d1(s, t)``, the shortest-path distance in the
background graph.  Cost grows linearly with ``|S|`` (one Dijkstra per
seed), which is precisely the comparison the paper's Table I draws against
the seed-count-independent Voronoi-cell sweep.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SeedError
from repro.graph.csr import CSRGraph
from repro.shortest_paths.dijkstra import dijkstra_to_targets

__all__ = ["seed_pairs_apsp"]


def seed_pairs_apsp(
    graph: CSRGraph,
    seeds: Sequence[int],
    *,
    early_exit: bool = True,
) -> np.ndarray:
    """Pairwise shortest distances between seeds.

    Parameters
    ----------
    graph:
        Background graph.
    seeds:
        ``k`` distinct seed vertex ids.
    early_exit:
        Stop each per-seed Dijkstra once all other seeds are settled
        (semantics unchanged; mirrors a sensible C++ implementation).

    Returns
    -------
    ``int64[k, k]`` symmetric distance matrix in *seed list order*, zero
    diagonal, :data:`~repro.shortest_paths.dijkstra.INF` for unreachable
    pairs.
    """
    seed_list = [int(s) for s in seeds]
    if len(set(seed_list)) != len(seed_list):
        raise SeedError("seed set contains duplicates")
    if not seed_list:
        raise SeedError("seed set must be non-empty")
    k = len(seed_list)
    out = np.zeros((k, k), dtype=np.int64)
    targets = seed_list if early_exit else range(graph.n_vertices)
    for i, s in enumerate(seed_list):
        if early_exit:
            dist, _ = dijkstra_to_targets(graph, s, targets)
        else:
            from repro.shortest_paths.dijkstra import dijkstra

            dist, _ = dijkstra(graph, s)
        for j, t in enumerate(seed_list):
            out[i, j] = dist[t]
    # symmetry is guaranteed on undirected graphs; enforce min to be safe
    out = np.minimum(out, out.T)
    np.fill_diagonal(out, 0)
    return out
