"""Alternative multi-source kernels for Voronoi-cell computation.

The paper (§III) weighs three families for the distance phase:

* **Dijkstra-order** multi-source search — the sequential reference
  (:func:`repro.shortest_paths.voronoi.compute_voronoi_cells`);
* **Bellman–Ford / SPFA** — tolerates asynchrony, the basis of the
  distributed kernel (Alg. 4);
* **Δ-stepping** (Meyer & Sanders; used by Ceccarello et al. for
  multi-source distance sweeps) — work-efficient but
  bucket-*synchronous*, which the paper argues "does not naturally
  extend to distributed memory".

This module provides the latter two as drop-in multi-source kernels
producing the *identical* fixpoint ``(src, dist)`` as the reference
(same lexicographic ``(dist, owner)`` tie-break), so the kernel choice
is a pure performance ablation — exercised by the kernel ablation bench
and cross-checked by tests.

Both kernels are also reachable through the backend registry
(:mod:`repro.shortest_paths.backends`) as ``"spfa"`` and
``"delta-python"``; the production-speed variant of the Δ-stepping
schedule — NumPy bucket relaxations instead of this per-edge loop —
lives in :mod:`repro.shortest_paths.vectorized` and is registered as
``"delta-numpy"``.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.shortest_paths.voronoi import (
    INF,
    NO_VERTEX,
    VoronoiDiagram,
    _validate_seeds,
    canonicalize_predecessors,
)

__all__ = [
    "compute_voronoi_cells_spfa",
    "compute_voronoi_cells_delta_stepping",
]


def compute_voronoi_cells_spfa(
    graph: CSRGraph,
    seeds: Sequence[int],
) -> VoronoiDiagram:
    """Voronoi cells via queue-based Bellman–Ford (SPFA).

    The sequential analogue of the distributed Alg. 4 kernel: vertices
    adopt a lexicographic improvement ``(dist, owner)`` and re-notify
    neighbours.  Converges to the same fixpoint as the Dijkstra-order
    reference; predecessors are canonicalised for bit-equality.
    """
    seeds_arr = _validate_seeds(graph, seeds)
    n = graph.n_vertices
    src = np.full(n, NO_VERTEX, dtype=np.int64)
    dist = np.full(n, INF, dtype=np.int64)
    in_queue = np.zeros(n, dtype=bool)
    queue: deque[int] = deque()
    for s in seeds_arr:
        s = int(s)
        src[s] = s
        dist[s] = 0
        queue.append(s)
        in_queue[s] = True

    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    while queue:
        u = queue.popleft()
        in_queue[u] = False
        du, su = dist[u], src[u]
        for i in range(indptr[u], indptr[u + 1]):
            v = indices[i]
            nd = du + weights[i]
            if nd < dist[v] or (nd == dist[v] and su < src[v]):
                dist[v] = nd
                src[v] = su
                if not in_queue[v]:
                    queue.append(int(v))
                    in_queue[v] = True

    pred = canonicalize_predecessors(graph, src, dist)
    return VoronoiDiagram(seeds=seeds_arr, src=src, pred=pred, dist=dist)


def compute_voronoi_cells_delta_stepping(
    graph: CSRGraph,
    seeds: Sequence[int],
    delta: int | None = None,
) -> VoronoiDiagram:
    """Voronoi cells via multi-source Δ-stepping.

    Buckets are keyed by distance; within a bucket, light edges are
    settled iteratively, heavy edges once — the Meyer–Sanders schedule,
    generalised to multiple sources with the ``(dist, owner)``
    tie-break.  This is the Ceccarello-et-al.-style kernel the paper
    considered and rejected for distributed memory; sequentially it is
    a legitimate alternative, and the ablation bench compares it.
    """
    seeds_arr = _validate_seeds(graph, seeds)
    n = graph.n_vertices
    if delta is None:
        delta = max(1, int(graph.weights.mean())) if graph.n_arcs else 1
    if delta < 1:
        raise GraphError("delta must be >= 1")

    src = np.full(n, NO_VERTEX, dtype=np.int64)
    dist = np.full(n, INF, dtype=np.int64)
    buckets: dict[int, set[int]] = {0: set()}
    for s in seeds_arr:
        s = int(s)
        src[s] = s
        dist[s] = 0
        buckets[0].add(s)

    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    def relax(v: int, nd: int, owner: int) -> None:
        if nd < dist[v] or (nd == dist[v] and owner < src[v]):
            old_b = dist[v] // delta if dist[v] != INF else None
            if old_b is not None and old_b in buckets:
                buckets[old_b].discard(v)
            dist[v] = nd
            src[v] = owner
            buckets.setdefault(nd // delta, set()).add(v)

    while buckets:
        b = min(buckets)
        if not buckets[b]:
            del buckets[b]
            continue
        settled: list[int] = []
        while buckets.get(b):
            frontier = list(buckets[b])
            buckets[b] = set()
            settled.extend(frontier)
            for u in frontier:
                du, su = int(dist[u]), int(src[u])
                for i in range(indptr[u], indptr[u + 1]):
                    w = int(weights[i])
                    if w <= delta:
                        relax(int(indices[i]), du + w, su)
        del buckets[b]
        for u in settled:
            du, su = int(dist[u]), int(src[u])
            if du // delta != b:
                continue  # pushed into a later bucket meanwhile
            for i in range(indptr[u], indptr[u + 1]):
                w = int(weights[i])
                if w > delta:
                    relax(int(indices[i]), du + w, su)

    pred = canonicalize_predecessors(graph, src, dist)
    return VoronoiDiagram(seeds=seeds_arr, src=src, pred=pred, dist=dist)
