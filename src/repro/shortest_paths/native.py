"""Fused native (numba-JIT) multi-source Δ-stepping over the raw CSR.

The ``delta-numpy`` kernel (:mod:`repro.shortest_paths.vectorized`)
already moves all per-edge work into compiled NumPy loops, but each
relaxation wave still pays several full-array dispatches: the
``np.repeat`` neighbour gather, the improvement mask, the packed-key
``np.minimum.at`` reduction, the ``np.nonzero`` frontier rebuild.  On
1M–10M-edge graphs that dispatch overhead — not the arithmetic —
dominates (see ``benchmarks/bench_backends.py``, scale suite).  This
module runs the *same* bucket-synchronous Δ-stepping schedule as
compiled kernels: neighbour gather, relaxation and the lexicographic
``(dist, owner)`` minimum fused into a single pass over the frontier's
out-arcs, with the gather ``prange``-parallel across frontier vertices.

Fallback contract (see ``docs/kernels.md``): when numba is not
installed, :func:`compute_voronoi_cells_delta_numba` silently delegates
to
:func:`~repro.shortest_paths.vectorized.compute_voronoi_cells_delta_numpy`
— the registry entry keeps working, just without the JIT tier (the
``repro-steiner backends`` listing reports which one you are getting).
Because :func:`~repro.native.njit` is the identity decorator in that
case, the kernels below also remain callable as plain Python, which is
how ``tests/test_native.py`` pins their bit-identity to ``delta-numpy``
even in no-numba environments (``force=True`` skips the fallback).

Determinism: the converged lexicographic ``(dist, owner)`` fixpoint is
*unique* (smaller-seed-id tie-break), so any schedule that relaxes to
quiescence lands on the bit-identical ``(dist, src)`` arrays, and the
predecessors are rewritten by the shared
:func:`~repro.shortest_paths.voronoi.canonicalize_predecessors` pass.
Hence the result is bit-for-bit equal to every other registered backend
by construction — and the property tests re-check it anyway.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.native import NUMBA_AVAILABLE, njit, prange, register_warmup
from repro.shortest_paths.voronoi import (
    INF,
    NO_VERTEX,
    VoronoiDiagram,
    _validate_seeds,
    canonicalize_predecessors,
)

__all__ = ["compute_voronoi_cells_delta_numba"]


@njit(parallel=True)
def _wave(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    frontier: np.ndarray,
    flen: int,
    want_light: bool,
    delta: int,
    dist: np.ndarray,
    src: np.ndarray,
    pending: np.ndarray,
    plist: np.ndarray,
    plen: int,
    offs: np.ndarray,
) -> int:
    """One relaxation wave: fused gather + relax + lexicographic commit.

    Gathers every out-arc candidate of ``frontier[:flen]`` into flat
    buffers (``prange`` over frontier vertices — each writes a disjoint
    slice, so the parallel loop is race-free), then commits the
    per-vertex lexicographic ``(dist, owner)`` minima serially.  Arcs
    on the wrong side of the light/heavy split leave a ``-1`` sentinel.
    Newly-improved vertices are appended to ``plist`` (the pending set);
    returns the updated pending count.
    """
    total = 0
    for i in range(flen):
        u = frontier[i]
        offs[i] = total
        total += indptr[u + 1] - indptr[u]
    cand_head = np.empty(total, dtype=np.int64)
    cand_nd = np.empty(total, dtype=np.int64)
    cand_owner = np.empty(total, dtype=np.int64)

    for i in prange(flen):
        u = frontier[i]
        du = dist[u]
        su = src[u]
        j = offs[i]
        for a in range(indptr[u], indptr[u + 1]):
            w = weights[a]
            is_light = w <= delta
            if is_light == want_light:
                cand_head[j] = indices[a]
                cand_nd[j] = du + w
                cand_owner[j] = su
            else:
                cand_head[j] = -1
            j += 1

    for j in range(total):
        v = cand_head[j]
        if v < 0:
            continue
        nd = cand_nd[j]
        dv = dist[v]
        if nd < dv or (nd == dv and cand_owner[j] < src[v]):
            dist[v] = nd
            src[v] = cand_owner[j]
            if pending[v] == 0:
                pending[v] = 1
                plist[plen] = v
                plen += 1
    return plen


@njit
def _sweep(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    seeds: np.ndarray,
    delta: int,
    dist: np.ndarray,
    src: np.ndarray,
    inf: int,
) -> None:
    """Fused multi-source Δ-stepping to quiescence (in-place).

    The Meyer–Sanders bucket loop, exactly as ``delta-numpy`` schedules
    it: per bucket ``[lo, lo + delta)``, light arcs relax in waves until
    the bucket drains, then the heavy arcs of every vertex settled in
    the bucket relax once.  Mutates ``dist``/``src`` to the unique
    lexicographic ``(dist, owner)`` fixpoint.
    """
    n = dist.shape[0]
    pending = np.zeros(n, dtype=np.uint8)
    plist = np.empty(n, dtype=np.int64)  # exactly the flagged vertices
    nextlist = np.empty(n, dtype=np.int64)
    frontier = np.empty(n, dtype=np.int64)
    settled = np.empty(n, dtype=np.int64)
    settled_mark = np.zeros(n, dtype=np.uint8)
    offs = np.empty(n + 1, dtype=np.int64)

    plen = 0
    for i in range(seeds.shape[0]):
        s = seeds[i]
        dist[s] = 0
        src[s] = s
        pending[s] = 1
        plist[plen] = s
        plen += 1

    while plen > 0:
        mind = inf
        for i in range(plen):
            d = dist[plist[i]]
            if d < mind:
                mind = d
        b = mind // delta
        lo = b * delta
        hi = lo + delta

        # ---- light phase: waves until bucket b stops changing -------- #
        slen = 0
        while True:
            flen = 0
            rlen = 0
            for i in range(plen):
                v = plist[i]
                d = dist[v]
                if d >= lo and d < hi:
                    frontier[flen] = v
                    flen += 1
                    pending[v] = 0
                    if settled_mark[v] == 0:
                        settled_mark[v] = 1
                        settled[slen] = v
                        slen += 1
                else:
                    nextlist[rlen] = v
                    rlen += 1
            tmp = plist
            plist = nextlist
            nextlist = tmp
            plen = rlen
            if flen == 0:
                break
            plen = _wave(
                indptr, indices, weights, frontier, flen, True, delta,
                dist, src, pending, plist, plen, offs,
            )

        # ---- heavy phase: once, from the vertices settled in b ------- #
        flen = 0
        for i in range(slen):
            u = settled[i]
            settled_mark[u] = 0
            if dist[u] // delta == b:
                frontier[flen] = u
                flen += 1
        if flen > 0:
            plen = _wave(
                indptr, indices, weights, frontier, flen, False, delta,
                dist, src, pending, plist, plen, offs,
            )


def compute_voronoi_cells_delta_numba(
    graph: CSRGraph,
    seeds: Sequence[int],
    delta: int | None = None,
    *,
    force: bool = False,
) -> VoronoiDiagram:
    """Voronoi diagram via the fused compiled Δ-stepping sweep.

    Drop-in replacement for
    :func:`~repro.shortest_paths.vectorized.compute_voronoi_cells_delta_numpy`
    with the identical ``(dist, src)`` fixpoint and canonical
    predecessors (the registry contract).  Without numba installed the
    call transparently falls back to the NumPy kernel — unless
    ``force=True``, which runs the (slow) plain-Python form of the
    kernels instead; the parity tests use that hook to pin the kernel
    logic itself, not just the fallback, in no-numba environments.

    Parameters
    ----------
    delta:
        Bucket width; defaults to
        :func:`~repro.shortest_paths.vectorized.default_delta` — the
        same heuristic as ``delta-numpy``, so the two tiers run the
        same schedule.
    """
    if not NUMBA_AVAILABLE and not force:
        from repro.shortest_paths.vectorized import (
            compute_voronoi_cells_delta_numpy,
        )

        return compute_voronoi_cells_delta_numpy(graph, seeds, delta)

    from repro.shortest_paths.vectorized import default_delta

    seeds_arr = _validate_seeds(graph, seeds)
    if delta is None:
        delta = default_delta(graph)
    if delta < 1:
        raise GraphError("delta must be >= 1")

    n = graph.n_vertices
    dist = np.full(n, INF, dtype=np.int64)
    src = np.full(n, NO_VERTEX, dtype=np.int64)
    _sweep(
        graph.indptr,
        graph.indices,
        graph.weights,
        seeds_arr,
        np.int64(delta),
        dist,
        src,
        np.int64(INF),
    )
    pred = canonicalize_predecessors(graph, src, dist)
    return VoronoiDiagram(seeds=seeds_arr, src=src, pred=pred, dist=dist)


@register_warmup
def _warmup() -> None:
    """Compile the sweep kernels on a 3-vertex path (both arc classes),
    outside any benchmark timing column."""
    indptr = np.array([0, 1, 3, 4], dtype=np.int64)
    indices = np.array([1, 0, 2, 1], dtype=np.int64)
    weights = np.array([1, 1, 9, 9], dtype=np.int64)
    dist = np.full(3, INF, dtype=np.int64)
    src = np.full(3, NO_VERTEX, dtype=np.int64)
    _sweep(
        indptr,
        indices,
        weights,
        np.array([0], dtype=np.int64),
        np.int64(2),
        dist,
        src,
        np.int64(INF),
    )
