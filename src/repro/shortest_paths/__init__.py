"""Shortest-path kernels.

The paper's algorithm replaces all-pair-shortest-paths (APSP) among seeds —
the expensive step of the KMB algorithm — with Voronoi-cell computation
(one multi-source shortest-path sweep).  This package provides both, plus
classic single-source kernels used by baselines, tests and ablations.
"""

from repro.shortest_paths.backends import (
    DEFAULT_BACKEND,
    MultiSourceResult,
    available_backends,
    backend_help,
    compute_multisource,
    get_backend,
    register_backend,
    verify_backends_agree,
)
from repro.shortest_paths.dijkstra import dijkstra, dijkstra_to_targets
from repro.shortest_paths.bellman_ford import bellman_ford
from repro.shortest_paths.voronoi import (
    INF,
    NO_VERTEX,
    VoronoiDiagram,
    compute_voronoi_cells,
)
from repro.shortest_paths.apsp import seed_pairs_apsp
from repro.shortest_paths.delta_stepping import delta_stepping
from repro.shortest_paths.multisource import (
    compute_voronoi_cells_delta_stepping,
    compute_voronoi_cells_spfa,
)
from repro.shortest_paths.near_shortest import (
    NearShortestResult,
    near_shortest_path_edges,
    path_dag,
    shortest_path_edges,
)
from repro.shortest_paths.scipy_backend import compute_voronoi_cells_scipy
from repro.shortest_paths.vectorized import compute_voronoi_cells_delta_numpy

__all__ = [
    "DEFAULT_BACKEND",
    "INF",
    "MultiSourceResult",
    "NO_VERTEX",
    "NearShortestResult",
    "VoronoiDiagram",
    "available_backends",
    "backend_help",
    "bellman_ford",
    "compute_multisource",
    "compute_voronoi_cells",
    "compute_voronoi_cells_delta_numpy",
    "compute_voronoi_cells_delta_stepping",
    "compute_voronoi_cells_scipy",
    "compute_voronoi_cells_spfa",
    "delta_stepping",
    "dijkstra",
    "dijkstra_to_targets",
    "get_backend",
    "near_shortest_path_edges",
    "path_dag",
    "register_backend",
    "seed_pairs_apsp",
    "shortest_path_edges",
    "verify_backends_agree",
]
