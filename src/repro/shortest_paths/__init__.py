"""Shortest-path kernels.

The paper's algorithm replaces all-pair-shortest-paths (APSP) among seeds —
the expensive step of the KMB algorithm — with Voronoi-cell computation
(one multi-source shortest-path sweep).  This package provides both, plus
classic single-source kernels used by baselines, tests and ablations.
"""

from repro.shortest_paths.dijkstra import dijkstra, dijkstra_to_targets
from repro.shortest_paths.bellman_ford import bellman_ford
from repro.shortest_paths.voronoi import (
    INF,
    NO_VERTEX,
    VoronoiDiagram,
    compute_voronoi_cells,
)
from repro.shortest_paths.apsp import seed_pairs_apsp
from repro.shortest_paths.delta_stepping import delta_stepping
from repro.shortest_paths.multisource import (
    compute_voronoi_cells_delta_stepping,
    compute_voronoi_cells_spfa,
)
from repro.shortest_paths.near_shortest import (
    NearShortestResult,
    near_shortest_path_edges,
    path_dag,
    shortest_path_edges,
)
from repro.shortest_paths.scipy_backend import compute_voronoi_cells_scipy

__all__ = [
    "INF",
    "NO_VERTEX",
    "NearShortestResult",
    "VoronoiDiagram",
    "bellman_ford",
    "compute_voronoi_cells",
    "compute_voronoi_cells_delta_stepping",
    "compute_voronoi_cells_scipy",
    "compute_voronoi_cells_spfa",
    "delta_stepping",
    "dijkstra",
    "dijkstra_to_targets",
    "near_shortest_path_edges",
    "path_dag",
    "seed_pairs_apsp",
    "shortest_path_edges",
]
