"""Δ-stepping single-source shortest paths (Meyer & Sanders).

The paper discusses Δ-stepping as the work-efficient alternative used by
Ceccarello et al. for multi-source distance computation, but rejects it for
the distributed setting because its bucket synchronisation "does not
naturally extend to distributed memory".  We include a sequential
implementation (a) as another oracle for the shortest-path tests and (b)
so the ablation benches can contrast its bucket-synchronous behaviour with
the asynchronous Bellman–Ford kernel the paper chose.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["delta_stepping"]

INF = np.iinfo(np.int64).max
NO_VERTEX = np.int64(-1)


def delta_stepping(
    graph: CSRGraph,
    source: int,
    delta: int | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Shortest distances/predecessors from ``source``.

    Parameters
    ----------
    delta:
        Bucket width.  Defaults to ``max(1, mean edge weight)`` — the
        standard heuristic.

    Returns
    -------
    ``(dist, pred)`` identical in meaning (and, on positive weights, in
    value) to :func:`repro.shortest_paths.dijkstra.dijkstra`.
    """
    n = graph.n_vertices
    if not (0 <= source < n):
        raise GraphError(f"source {source} out of range")
    if delta is None:
        delta = max(1, int(graph.weights.mean())) if graph.n_arcs else 1
    if delta < 1:
        raise GraphError("delta must be >= 1")

    dist = np.full(n, INF, dtype=np.int64)
    pred = np.full(n, NO_VERTEX, dtype=np.int64)
    dist[source] = 0
    buckets: dict[int, set[int]] = {0: {source}}
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    def relax(v: int, nd: int, via: int) -> None:
        if nd < dist[v]:
            old_b = dist[v] // delta if dist[v] != INF else None
            if old_b is not None and old_b in buckets:
                buckets[old_b].discard(v)
            dist[v] = nd
            pred[v] = via
            buckets.setdefault(nd // delta, set()).add(v)

    b = 0
    while buckets:
        while b not in buckets or not buckets[b]:
            if b in buckets and not buckets[b]:
                del buckets[b]
            if not buckets:
                return dist, pred
            b = min(buckets)
        # phase: repeatedly settle light edges within bucket b
        settled_this_bucket: list[int] = []
        while buckets.get(b):
            frontier = list(buckets[b])
            buckets[b] = set()
            settled_this_bucket.extend(frontier)
            for u in frontier:
                du = int(dist[u])
                for i in range(indptr[u], indptr[u + 1]):
                    w = int(weights[i])
                    if w <= delta:  # light edge
                        relax(int(indices[i]), du + w, u)
        del buckets[b]
        # heavy edges once per bucket
        for u in settled_this_bucket:
            du = int(dist[u])
            if du // delta != b:
                continue  # was re-relaxed into a later bucket
            for i in range(indptr[u], indptr[u + 1]):
                w = int(weights[i])
                if w > delta:
                    relax(int(indices[i]), du + w, u)
        b += 1
    return dist, pred
