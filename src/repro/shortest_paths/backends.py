"""Pluggable multi-source shortest-path backends.

Every consumer of the Voronoi-cell sweep — the sequential solver, the
baselines, the experiment harness, the CLI — funnels through this
registry, so a single ``backend="..."`` knob switches the kernel that
dominates the paper's runtime (§II, Table 1) everywhere at once.

Contract
--------
A backend is a callable ``(graph, seeds, **options) -> VoronoiDiagram``
whose result satisfies, for every registered backend identically:

* ``dist[v]`` — the exact multi-source distance (``INF`` unreachable);
* ``src[v]``  — the *smallest* seed id among all shortest paths to
  ``v`` (the lexicographic ``(dist, owner)`` fixpoint — the library's
  deterministic tie-break rule);
* ``pred``    — the canonical predecessor assignment of
  :func:`~repro.shortest_paths.voronoi.canonicalize_predecessors`
  (order-independent, hence bit-for-bit comparable across backends).

:func:`compute_multisource` wraps the call and returns a
:class:`MultiSourceResult` carrying the diagram plus provenance
(backend name, wall time) for benchmarks and reports.  Cross-backend
bit-equality is enforced by the property tests in
``tests/test_backends.py`` and re-checked at runtime by
:func:`verify_backends_agree`.

Registered backends
-------------------
``dijkstra``
    Heap-based multi-source Dijkstra — the pure-Python reference
    (:func:`~repro.shortest_paths.voronoi.compute_voronoi_cells`).
``delta-numpy``
    Vectorised bucket-synchronous Δ-stepping on the raw CSR arrays
    (:mod:`repro.shortest_paths.vectorized`) — the fast default for
    large graphs.
``scipy``
    ``scipy.sparse.csgraph``-accelerated sweep
    (:mod:`repro.shortest_paths.scipy_backend`); optional, registered
    only when SciPy imports.
``spfa`` / ``delta-python``
    The queue-based Bellman–Ford and per-edge Δ-stepping ablation
    kernels (:mod:`repro.shortest_paths.multisource`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

try:  # SciPy is an optional accelerator, never a hard dependency
    import scipy.sparse.csgraph as _scipy_csgraph

    _SCIPY_IMPORT_ERROR: str | None = None
except ImportError as _exc:  # pragma: no cover - exercised only without SciPy
    _scipy_csgraph = None
    _SCIPY_IMPORT_ERROR = f"{type(_exc).__name__}: {_exc}"

from repro.graph.csr import CSRGraph
from repro.shortest_paths.voronoi import (
    VoronoiDiagram,
    canonicalize_predecessors,
    compute_voronoi_cells,
)

__all__ = [
    "DEFAULT_BACKEND",
    "MultiSourceResult",
    "available_backends",
    "backend_availability",
    "backend_help",
    "compute_multisource",
    "get_backend",
    "register_backend",
    "register_unavailable_backend",
    "verify_backends_agree",
]

BackendFn = Callable[..., VoronoiDiagram]

#: the reference backend every other one must match bit-for-bit
DEFAULT_BACKEND = "dijkstra"

_REGISTRY: dict[str, BackendFn] = {}
_HELP: dict[str, str] = {}
#: name -> {"status": "available" | "fallback" | "unavailable",
#:          "reason": import-failure text (or None),
#:          "fallback": registry name the entry delegates to (or None)}
#: — the per-entry availability record behind ``repro-steiner backends``.
#: ``fallback`` entries are registered and callable (they delegate to
#: their NumPy twin); ``unavailable`` entries are listing-only.
_AVAILABILITY: dict[str, dict] = {}


@dataclass(frozen=True)
class MultiSourceResult:
    """A Voronoi diagram plus provenance of the backend that built it.

    Attributes
    ----------
    diagram:
        The ``(seeds, src, pred, dist)`` arrays; ``pred`` is canonical,
        so two results from different backends compare equal iff the
        backends agree.
    backend:
        Registry name of the kernel that produced the diagram.
    elapsed_s:
        Wall-clock seconds spent inside the backend call.
    """

    diagram: VoronoiDiagram
    backend: str
    elapsed_s: float

    @property
    def seeds(self) -> np.ndarray:
        return self.diagram.seeds

    @property
    def src(self) -> np.ndarray:
        return self.diagram.src

    @property
    def pred(self) -> np.ndarray:
        return self.diagram.pred

    @property
    def dist(self) -> np.ndarray:
        return self.diagram.dist

    def agrees_with(self, other: "MultiSourceResult") -> bool:
        """Bit-for-bit equality of the two diagrams (the contract)."""
        return (
            np.array_equal(self.dist, other.dist)
            and np.array_equal(self.src, other.src)
            and np.array_equal(self.pred, other.pred)
        )


def register_backend(
    name: str,
    help_text: str = "",
    *,
    status: str = "available",
    reason: str | None = None,
    fallback: str | None = None,
) -> Callable[[BackendFn], BackendFn]:
    """Decorator registering ``fn`` as multi-source backend ``name``.

    Re-registering a name overwrites it (deliberate: lets tests and
    downstream users shadow a backend with an instrumented variant).

    ``status``/``reason``/``fallback`` record availability provenance
    for optional tiers: ``"fallback"`` means the entry is callable but
    delegates to the twin named by ``fallback`` because its accelerator
    failed to import (``reason`` carries the import error) — surfaced
    by :func:`backend_availability` and the CLI listing.
    """

    def deco(fn: BackendFn) -> BackendFn:
        _REGISTRY[name] = fn
        doc_lines = (fn.__doc__ or "").strip().splitlines()
        _HELP[name] = help_text or (doc_lines[0] if doc_lines else name)
        _AVAILABILITY[name] = {
            "status": status,
            "reason": reason,
            "fallback": fallback,
        }
        return fn

    return deco


def register_unavailable_backend(
    name: str, help_text: str, reason: str
) -> None:
    """Record an optional backend that could not register at all.

    The name stays *out* of the callable registry (``get_backend``
    keeps failing fast), but :func:`backend_availability` and the CLI
    listing show the entry with its import-failure reason instead of
    silently omitting it.
    """
    _HELP[name] = help_text
    _AVAILABILITY[name] = {
        "status": "unavailable",
        "reason": reason,
        "fallback": None,
    }


def available_backends() -> list[str]:
    """Registered backend names, reference first, rest alphabetical."""
    rest = sorted(k for k in _REGISTRY if k != DEFAULT_BACKEND)
    return [DEFAULT_BACKEND, *rest] if DEFAULT_BACKEND in _REGISTRY else rest


def backend_help() -> dict[str, str]:
    """``{name: one-line description}`` for CLI listings."""
    return {name: _HELP.get(name, "") for name in available_backends()}


def backend_availability() -> dict[str, dict]:
    """Per-entry availability: ``{name: {status, reason, fallback, help}}``.

    Registered (callable) entries first, in :func:`available_backends`
    order; ``unavailable`` listing-only entries (optional tiers whose
    import failed outright) follow alphabetically.  ``status`` is
    ``"available"`` (the named kernel runs), ``"fallback"`` (callable,
    but delegating to ``fallback`` — ``reason`` says why) or
    ``"unavailable"`` (not callable; ``reason`` says why).
    """
    names = available_backends()
    names += sorted(k for k in _AVAILABILITY if k not in _REGISTRY)
    out: dict[str, dict] = {}
    for name in names:
        record = dict(
            _AVAILABILITY.get(
                name, {"status": "available", "reason": None, "fallback": None}
            )
        )
        record["help"] = _HELP.get(name, "")
        out[name] = record
    return out


def get_backend(name: str) -> BackendFn:
    """Resolve a backend name; raises :class:`ValueError` when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown shortest-path backend {name!r}; "
            f"available: {available_backends()}"
        ) from None


def compute_multisource(
    graph: CSRGraph,
    seeds: Sequence[int],
    *,
    backend: str = DEFAULT_BACKEND,
    **options: Any,
) -> MultiSourceResult:
    """Run the multi-source sweep under the chosen backend.

    All backends return the identical diagram (the registry contract);
    the choice is purely a performance decision.
    """
    fn = get_backend(backend)
    t0 = time.perf_counter()
    diagram = fn(graph, seeds, **options)
    return MultiSourceResult(
        diagram=diagram, backend=backend, elapsed_s=time.perf_counter() - t0
    )


def verify_backends_agree(
    graph: CSRGraph,
    seeds: Sequence[int],
    backends: Sequence[str] | None = None,
) -> MultiSourceResult:
    """Run several backends and assert their diagrams are identical.

    Returns the reference result.  Used by the equivalence tests and as
    a belt-and-braces check in the benchmark harness before speedups are
    recorded.
    """
    names = list(backends) if backends is not None else available_backends()
    results = [compute_multisource(graph, seeds, backend=b) for b in names]
    ref = results[0]
    for res in results[1:]:
        if not ref.agrees_with(res):
            raise AssertionError(
                f"backend {res.backend!r} disagrees with {ref.backend!r}"
            )
    return ref


# --------------------------------------------------------------------- #
# built-in registrations
# --------------------------------------------------------------------- #
@register_backend(
    "dijkstra", "heap-based multi-source Dijkstra (pure-Python reference)"
)
def _dijkstra_backend(graph: CSRGraph, seeds: Sequence[int]) -> VoronoiDiagram:
    vd = compute_voronoi_cells(graph, seeds)
    vd.pred = canonicalize_predecessors(graph, vd.src, vd.dist)
    return vd


@register_backend(
    "delta-numpy",
    "vectorised bucket-synchronous Delta-stepping (NumPy relaxations)",
)
def _delta_numpy_backend(
    graph: CSRGraph, seeds: Sequence[int], delta: int | None = None
) -> VoronoiDiagram:
    from repro.shortest_paths.vectorized import compute_voronoi_cells_delta_numpy

    return compute_voronoi_cells_delta_numpy(graph, seeds, delta)


@register_backend(
    "spfa", "queue-based Bellman-Ford (the distributed kernel's basis)"
)
def _spfa_backend(graph: CSRGraph, seeds: Sequence[int]) -> VoronoiDiagram:
    from repro.shortest_paths.multisource import compute_voronoi_cells_spfa

    return compute_voronoi_cells_spfa(graph, seeds)


@register_backend(
    "delta-python", "per-edge Delta-stepping (sequential ablation kernel)"
)
def _delta_python_backend(
    graph: CSRGraph, seeds: Sequence[int], delta: int | None = None
) -> VoronoiDiagram:
    from repro.shortest_paths.multisource import (
        compute_voronoi_cells_delta_stepping,
    )

    return compute_voronoi_cells_delta_stepping(graph, seeds, delta)


def _register_delta_numba() -> None:
    """Register the JIT tier (or its fallback twin) under ``delta-numba``.

    The entry is *always* registered: with numba present it runs the
    fused compiled sweep; without, the callable transparently delegates
    to ``delta-numpy`` and the availability record says so (status
    ``fallback`` + the import-failure reason).
    """
    from repro.native import NUMBA_AVAILABLE, NUMBA_IMPORT_ERROR

    @register_backend(
        "delta-numba",
        "fused JIT-compiled Delta-stepping (numba; falls back to delta-numpy)",
        status="available" if NUMBA_AVAILABLE else "fallback",
        reason=NUMBA_IMPORT_ERROR,
        fallback=None if NUMBA_AVAILABLE else "delta-numpy",
    )
    def _delta_numba_backend(
        graph: CSRGraph, seeds: Sequence[int], delta: int | None = None
    ) -> VoronoiDiagram:
        from repro.shortest_paths.native import compute_voronoi_cells_delta_numba

        return compute_voronoi_cells_delta_numba(graph, seeds, delta)


_register_delta_numba()


if _scipy_csgraph is not None:

    @register_backend(
        "scipy",
        "scipy.sparse.csgraph compiled multi-source Dijkstra "
        "(int64-exact fallback for astronomical weights)",
    )
    def _scipy_backend(graph: CSRGraph, seeds: Sequence[int]) -> VoronoiDiagram:
        """SciPy sweep, guarded for exactness.

        SciPy computes distances in float64, which is exact only while
        every path sum stays below 2**53.  ``n * max_weight`` bounds any
        shortest-path sum; past that bound the rounded distances break
        the tight-edge equality the owner/predecessor passes rely on
        (and hence the registry's bit-for-bit contract), so we delegate
        to the integer-exact vectorised kernel instead.
        """
        if graph.n_arcs:
            path_bound = int(graph.weights.max()) * max(1, graph.n_vertices - 1)
            if path_bound >= 2**53:
                from repro.shortest_paths.vectorized import (
                    compute_voronoi_cells_delta_numpy,
                )

                return compute_voronoi_cells_delta_numpy(graph, seeds)
        from repro.shortest_paths.scipy_backend import compute_voronoi_cells_scipy

        return compute_voronoi_cells_scipy(graph, seeds)

else:  # pragma: no cover - exercised only without SciPy
    register_unavailable_backend(
        "scipy",
        "scipy.sparse.csgraph compiled multi-source Dijkstra "
        "(int64-exact fallback for astronomical weights)",
        _SCIPY_IMPORT_ERROR or "ImportError: scipy",
    )


if TYPE_CHECKING:
    from repro.contracts import DiagramLike

    # mypy structurally verifies the diagram type against the registry
    # contract (repro.contracts.DiagramLike); the REP502 checker rule is
    # the runtime twin of this assignment.
    _DIAGRAM_CONFORMANCE: type[DiagramLike] = VoronoiDiagram
