"""Exact Voronoi-cell computation (Mehlhorn's construction).

For seed set ``S``, the Voronoi cell ``N(s)`` of ``s in S`` is the set of
vertices closer to ``s`` than to any other seed (paper §II).  One
multi-source Dijkstra sweep — all seeds start at distance 0 — computes, for
every vertex ``v``:

* ``src[v]``  — the owning seed (``src(v)`` in the paper),
* ``pred[v]`` — predecessor on the shortest path to that seed,
* ``dist[v]`` — ``d1(src(v), v)``.

Ties (equidistant seeds) are broken toward the **smaller seed vertex id**,
which makes the diagram a deterministic function of the graph — the same
rule the distributed implementation's message ordering enforces, so the
sequential and simulated-distributed code paths agree bit-for-bit.

This module is the sequential reference; the distributed version lives in
:mod:`repro.core.voronoi_visitor` and is checked against this one in the
integration tests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import GraphError, SeedError
from repro.graph.csr import CSRGraph

__all__ = [
    "INF",
    "NO_VERTEX",
    "VoronoiDiagram",
    "compute_voronoi_cells",
    "canonicalize_predecessors",
]

INF = np.iinfo(np.int64).max
NO_VERTEX = np.int64(-1)


@dataclass
class VoronoiDiagram:
    """Per-vertex Voronoi state ``(src, pred, dist)`` for a seed set.

    Attributes
    ----------
    seeds:
        The seed vertex ids, ascending, as given to
        :func:`compute_voronoi_cells`.
    src:
        ``int64[n]`` owning seed per vertex; ``-1`` where unreachable.
    pred:
        ``int64[n]`` predecessor towards the owning seed; ``-1`` for seeds
        themselves and unreachable vertices.
    dist:
        ``int64[n]`` distance to the owning seed; :data:`INF` where
        unreachable.
    """

    seeds: np.ndarray
    src: np.ndarray
    pred: np.ndarray
    dist: np.ndarray

    def cell(self, seed: int) -> np.ndarray:
        """Vertex ids of ``N(seed)``."""
        return np.nonzero(self.src == seed)[0].astype(np.int64)

    def cell_sizes(self) -> dict[int, int]:
        """``{seed: |N(seed)|}`` for all seeds."""
        return {int(s): int((self.src == s).sum()) for s in self.seeds}

    def reached(self) -> np.ndarray:
        """Boolean mask of vertices belonging to some cell."""
        return self.src != NO_VERTEX

    def path_to_seed(self, v: int) -> list[int]:
        """Vertices on the recorded shortest path ``v .. src[v]``."""
        if self.src[v] == NO_VERTEX:
            raise GraphError(f"vertex {v} is not in any Voronoi cell")
        path = [int(v)]
        guard = self.src.size + 1
        while path[-1] != self.src[v]:
            nxt = int(self.pred[path[-1]])
            if nxt == NO_VERTEX:
                raise GraphError(f"broken predecessor chain at {path[-1]}")
            path.append(nxt)
            guard -= 1
            if guard < 0:
                raise GraphError("predecessor chain contains a cycle")
        return path


def _validate_seeds(graph: CSRGraph, seeds: Sequence[int]) -> np.ndarray:
    arr = np.asarray(sorted(int(s) for s in seeds), dtype=np.int64)
    if arr.size == 0:
        raise SeedError("seed set must be non-empty")
    if np.unique(arr).size != arr.size:
        raise SeedError("seed set contains duplicates")
    if arr[0] < 0 or arr[-1] >= graph.n_vertices:
        raise SeedError("seed vertex id out of range")
    return arr


def compute_voronoi_cells(
    graph: CSRGraph,
    seeds: Sequence[int],
    *,
    backend: str | None = None,
) -> VoronoiDiagram:
    """Compute the Voronoi diagram of ``seeds`` over ``graph``.

    Single multi-source Dijkstra: the heap is keyed ``(dist, src, vertex)``
    so equidistant claims resolve toward the smaller seed id, then the
    smaller vertex id — a total order, hence a deterministic diagram.

    Complexity ``O((|V| + |E|) log |V|)`` regardless of ``|S|`` — this
    independence from the seed count is exactly why the paper prefers
    Voronoi cells over APSP (its Table I).

    Parameters
    ----------
    backend:
        ``None`` (default) runs the inline heap sweep below and returns
        the sweep-order predecessors.  Any registered name from
        :mod:`repro.shortest_paths.backends` dispatches to that kernel
        instead — same ``(dist, src)``, *canonical* predecessors.
    """
    if backend is not None:
        from repro.shortest_paths.backends import get_backend

        return get_backend(backend)(graph, seeds)
    seeds_arr = _validate_seeds(graph, seeds)
    n = graph.n_vertices
    src: np.ndarray = np.full(n, NO_VERTEX, dtype=np.int64)
    pred = np.full(n, NO_VERTEX, dtype=np.int64)
    dist = np.full(n, INF, dtype=np.int64)

    heap: list[tuple[int, int, int]] = []
    for s in seeds_arr:
        s = int(s)
        dist[s] = 0
        src[s] = s
        heap.append((0, s, s))
    heapq.heapify(heap)

    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    settled = np.zeros(n, dtype=bool)
    while heap:
        d, owner, u = heapq.heappop(heap)
        if settled[u] or d != dist[u] or owner != src[u]:
            continue
        settled[u] = True
        for i in range(indptr[u], indptr[u + 1]):
            v = indices[i]
            if settled[v]:
                continue
            nd = d + weights[i]
            # strict improvement, or equal distance but smaller owning seed
            if nd < dist[v] or (nd == dist[v] and owner < src[v]):
                dist[v] = nd
                src[v] = owner
                pred[v] = u
                heapq.heappush(heap, (int(nd), int(owner), int(v)))
    return VoronoiDiagram(seeds=seeds_arr, src=src, pred=pred, dist=dist)


def canonicalize_predecessors(
    graph: CSRGraph,
    src: np.ndarray,
    dist: np.ndarray,
) -> np.ndarray:
    """Order-independent predecessor assignment.

    Message-passing (and even heap-based Dijkstra) record *a* valid
    predecessor whose identity depends on relaxation order.  To make the
    output Steiner tree a deterministic function of the graph — so the
    distributed simulation, the sequential reference and every queue
    discipline produce the *identical* tree — both code paths rewrite
    ``pred`` canonically after convergence:

        ``pred[v] = min { u in adj(v) : src[u] == src[v]
                          and dist[u] + d(u, v) == dist[v] }``

    Any vertex reached by the sweep has at least one such tight same-cell
    in-neighbour (the one its final state was adopted from), distances
    strictly decrease along the chain (weights are positive), and the
    chain terminates at the cell's seed — so the canonical ``pred`` is a
    valid shortest-path in-forest.  Fully vectorised (one pass over the
    arc arrays).
    """
    n = graph.n_vertices
    u_arr = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    v_arr = graph.indices
    w_arr = graph.weights
    ok = (dist[u_arr] != INF) & (dist[v_arr] != INF) & (dist[v_arr] > 0)
    u_ok, v_ok, w_ok = u_arr[ok], v_arr[ok], w_arr[ok]
    tight = (src[u_ok] == src[v_ok]) & (dist[u_ok] + w_ok == dist[v_ok])
    pred = np.full(n, NO_VERTEX, dtype=np.int64)
    tmp = np.full(n, n, dtype=np.int64)  # sentinel: n is > any vertex id
    np.minimum.at(tmp, v_ok[tight], u_ok[tight])
    chosen = tmp < n
    pred[chosen] = tmp[chosen]
    return pred
