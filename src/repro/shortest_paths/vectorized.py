"""Vectorised multi-source Δ-stepping on the raw CSR arrays.

The reference multi-source kernels (:mod:`repro.shortest_paths.voronoi`,
:mod:`repro.shortest_paths.multisource`) relax one edge per Python
bytecode loop iteration, even though :class:`~repro.graph.csr.CSRGraph`
already stores the adjacency as flat NumPy arrays.  This module runs the
Meyer–Sanders Δ-stepping schedule with *bucket-wide* NumPy relaxations:

* the frontier of the current bucket is a vertex array, not a Python
  set;
* all out-arcs of the frontier are gathered in one shot (``np.repeat``
  over the CSR offsets — no per-vertex slicing);
* the lexicographic ``(dist, owner)`` winner per target vertex is
  selected with a single ``np.lexsort`` + first-occurrence reduction,
  replacing the per-edge compare-and-swap.

Per bucket phase the Python interpreter executes O(1) statements; all
per-edge work happens inside compiled NumPy kernels.  On the ~100K-arc
generator graphs this is an order of magnitude faster than the heap
reference (see ``benchmarks/bench_backends.py``).

Determinism: the kernel converges to the same unique lexicographic
``(dist, owner)`` fixpoint as every other kernel in the library — the
smaller-seed-id tie-break — and predecessors are rewritten by the shared
:func:`~repro.shortest_paths.voronoi.canonicalize_predecessors` pass, so
the output is bit-for-bit identical to the reference (property-tested in
``tests/test_backends.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.shortest_paths.voronoi import (
    INF,
    NO_VERTEX,
    VoronoiDiagram,
    _validate_seeds,
    canonicalize_predecessors,
)

__all__ = ["compute_voronoi_cells_delta_numpy", "default_delta"]


def default_delta(graph: CSRGraph) -> int:
    """Bucket width heuristic for the vectorised kernel.

    The kernel batches a whole bucket per NumPy call, so its cost is
    ``(number of relaxation waves) x (cost per wave)``.  Narrow buckets
    mean more buckets but much shorter light-edge fixpoint iterations
    inside each (fewer duplicated relaxations reach the packed-key
    reduction), which measures fastest across the generator families:
    Δ = mean/4 beats both the textbook Δ ≈ mean and a single giant
    bucket (chaotic Bellman–Ford) by 10-40% on the 100K-edge graphs
    (see ``benchmarks/bench_backends.py``).
    """
    if graph.n_arcs == 0:
        return 1
    return max(1, int(graph.weights.mean()) // 4)


def _out_arcs(
    frontier: np.ndarray,
    indptr: np.ndarray,
    degrees: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Arc ids of every out-arc of ``frontier``, plus the repeated tails.

    Pure index arithmetic: for frontier vertex ``u`` with CSR range
    ``[indptr[u], indptr[u+1])`` the arc ids are that range; all ranges
    are materialised with one ``np.repeat`` and one ``np.arange``.
    """
    counts = degrees[frontier]
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    ends = np.cumsum(counts)
    # arc id = indptr[u] + (position within u's segment)
    arc_ids = (
        np.repeat(indptr[frontier] - (ends - counts), counts)
        + np.arange(total, dtype=np.int64)
    )
    tails = np.repeat(frontier, counts)
    return arc_ids, tails


_KEY_SENTINEL = np.iinfo(np.int64).max


def _relax(
    arc_ids: np.ndarray,
    tails: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    dist: np.ndarray,
    src: np.ndarray,
    pending: np.ndarray,
) -> None:
    """One vectorised relaxation wave over ``arc_ids``.

    Candidate per arc: ``(dist[tail] + w, src[tail])`` for the head
    vertex.  Candidates that do not improve the head's current
    ``(dist, owner)`` state are dropped up front; among the survivors
    the per-head lexicographic minimum is found by packing the pair
    into one int64 key ``nd * n + owner`` (owner < n keeps the packing
    order-preserving) and reducing with ``np.minimum.at`` — numpy's
    indexed-loop fast path, orders of magnitude cheaper than a lexsort.
    Falls back to the sort-based reduction if the packed key could
    overflow (astronomical distances).
    """
    if arc_ids.size == 0:
        return
    heads = indices[arc_ids]
    nd = dist[tails] + weights[arc_ids]
    owner = src[tails]

    better = (nd < dist[heads]) | ((nd == dist[heads]) & (owner < src[heads]))
    heads, nd, owner = heads[better], nd[better], owner[better]
    if heads.size == 0:
        return

    n = np.int64(dist.size)
    if int(nd.max()) <= (_KEY_SENTINEL - int(n)) // int(n):
        best = np.full(dist.size, _KEY_SENTINEL, dtype=np.int64)
        np.minimum.at(best, heads, nd * n + owner)
        winners = np.nonzero(best != _KEY_SENTINEL)[0]
        win_nd = best[winners] // n
        dist[winners] = win_nd
        src[winners] = best[winners] - win_nd * n
        pending[winners] = True
        return

    order = np.lexsort((owner, nd, heads))  # pragma: no cover - overflow path
    heads, nd, owner = heads[order], nd[order], owner[order]
    first = np.ones(heads.size, dtype=bool)
    first[1:] = heads[1:] != heads[:-1]
    heads, nd, owner = heads[first], nd[first], owner[first]
    dist[heads] = nd
    src[heads] = owner
    pending[heads] = True


def compute_voronoi_cells_delta_numpy(
    graph: CSRGraph,
    seeds: Sequence[int],
    delta: int | None = None,
) -> VoronoiDiagram:
    """Voronoi diagram via vectorised multi-source Δ-stepping.

    Drop-in replacement for
    :func:`repro.shortest_paths.voronoi.compute_voronoi_cells` with the
    canonical predecessor assignment (the registry contract); same
    ``(dist, src)`` fixpoint, NumPy bucket relaxations instead of a
    per-edge Python loop.

    Parameters
    ----------
    delta:
        Bucket width; defaults to :func:`default_delta`.
    """
    seeds_arr = _validate_seeds(graph, seeds)
    n = graph.n_vertices
    if delta is None:
        delta = default_delta(graph)
    if delta < 1:
        raise GraphError("delta must be >= 1")

    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    degrees = np.diff(indptr)
    light = weights <= delta

    dist = np.full(n, INF, dtype=np.int64)
    src = np.full(n, NO_VERTEX, dtype=np.int64)
    dist[seeds_arr] = 0
    src[seeds_arr] = seeds_arr
    pending = np.zeros(n, dtype=bool)
    pending[seeds_arr] = True

    while True:
        pending_ids = np.nonzero(pending)[0]
        if pending_ids.size == 0:
            break
        b = int(dist[pending_ids].min()) // delta
        lo = b * delta
        hi = lo + delta

        # light-edge phase: iterate until the bucket stops changing
        # (owner-only improvements re-enter the same bucket)
        settled: list[np.ndarray] = []
        while True:
            in_bucket = pending_ids[
                (dist[pending_ids] >= lo) & (dist[pending_ids] < hi)
            ]
            if in_bucket.size == 0:
                break
            pending[in_bucket] = False
            settled.append(in_bucket)
            arc_ids, tails = _out_arcs(in_bucket, indptr, degrees)
            keep = light[arc_ids]
            _relax(
                arc_ids[keep], tails[keep], indices, weights, dist, src, pending
            )
            pending_ids = np.nonzero(pending)[0]

        # heavy-edge phase: once, from the vertices that settled in b
        settled_arr = np.unique(np.concatenate(settled)) if settled else None
        if settled_arr is not None:
            settled_arr = settled_arr[dist[settled_arr] // delta == b]
            arc_ids, tails = _out_arcs(settled_arr, indptr, degrees)
            keep = ~light[arc_ids]
            _relax(
                arc_ids[keep], tails[keep], indices, weights, dist, src, pending
            )

    pred = canonicalize_predecessors(graph, src, dist)
    return VoronoiDiagram(seeds=seeds_arr, src=src, pred=pred, dist=dist)
