"""``prange`` race detector: REP301 (non-disjoint array writes) and
REP302 (reductions onto shared state).

Inside a ``@njit(parallel=True)`` kernel, iterations of a ``prange``
loop run concurrently.  The only writes that are safe without
synchronisation are those provably touching disjoint memory per
iteration.  This detector implements the discipline the repo's own
kernels follow (``shortest_paths/native.py``):

* parallel gathers write ``arr[j]`` where ``j`` starts from a
  per-iteration offset (``j = offs[i]``) — disjoint slices;
* everything order-sensitive (the lexicographic ``(dist, owner)``
  commit) happens in a *serial* loop after the parallel gather.

The analysis marks a name *iteration-local* when it is the ``prange``
loop variable, a nested loop target, or assigned inside the loop body
from an expression built on iteration-local names (so ``j = offs[i]``
then ``j += 1`` stays local).  Then:

* **REP301** — a subscript store whose index involves *no*
  iteration-local name writes the same locations from every iteration:
  a write-write race.
* **REP302** — an augmented assignment onto a shared scalar (or a
  shared-array cell indexed without iteration-locals) is a reduction
  racing against itself.  numba auto-privatises *some* scalar
  reductions; when you have verified yours is one of them, suppress
  with a justification — the serial-commit pattern is still preferred
  because it keeps the commit order (and thus tie-breaking) defined.

Functions compiled with plain ``@njit`` (no ``parallel=True``) are out
of scope: without parallel semantics there is nothing to race.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, file_rule

__all__: list[str] = []


def _is_parallel_njit(fn: ast.FunctionDef) -> bool:
    """True for ``@njit(parallel=True)`` / ``@numba.njit(parallel=True)``."""
    for deco in fn.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        name = None
        if isinstance(deco.func, ast.Name):
            name = deco.func.id
        elif isinstance(deco.func, ast.Attribute):
            name = deco.func.attr
        if name != "njit":
            continue
        for kw in deco.keywords:
            if (
                kw.arg == "parallel"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    return False


def _is_prange_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "prange"
    return isinstance(func, ast.Attribute) and func.attr == "prange"


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _iteration_local_names(loop: ast.For) -> set[str]:
    """Names whose value is private to one ``prange`` iteration."""
    local = _names_in(loop.target)
    # nested loop targets are per-iteration too
    for node in ast.walk(loop):
        if node is loop:
            continue
        if isinstance(node, ast.For):
            local |= _names_in(node.target)
    # fixpoint: plain assignments from iteration-local-derived indices
    # (j = offs[i]; du = dist[u]; ...) extend the local set
    changed = True
    while changed:
        changed = False
        for node in ast.walk(loop):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                tgt = node.targets[0]
                if isinstance(tgt, ast.Name) and tgt.id not in local:
                    if _names_in(node.value) & local:
                        local.add(tgt.id)
                        changed = True
    return local


def _index_names(subscript: ast.Subscript) -> set[str]:
    return _names_in(subscript.slice)


@file_rule(
    ("REP301", "prange write not indexed by the loop variable or a "
               "derived disjoint offset"),
    ("REP302", "prange reduction onto shared state without the "
               "serial-commit pattern"),
)
def check_prange_races(ctx: ModuleContext) -> Iterator[Finding]:
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, ast.FunctionDef) or not _is_parallel_njit(fn):
            continue
        for loop in ast.walk(fn):
            if not isinstance(loop, ast.For) or not _is_prange_call(loop.iter):
                continue
            local = _iteration_local_names(loop)
            # arrays *allocated inside* the loop body are private to the
            # iteration (numba materialises one per iteration), so any
            # name rebound by a plain assignment in the body is safe as
            # a store base even when the index is iteration-independent
            private_bases = {
                t.id
                for n in ast.walk(loop)
                if isinstance(n, ast.Assign)
                for t in n.targets
                if isinstance(t, ast.Name)
            }
            for node in ast.walk(loop):
                if isinstance(node, ast.Assign):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Subscript):
                            if (
                                isinstance(tgt.value, ast.Name)
                                and tgt.value.id in private_bases
                            ):
                                continue
                            finding = _check_store(ctx, tgt, local, node)
                            if finding is not None:
                                yield finding
                elif isinstance(node, ast.AugAssign):
                    tgt = node.target
                    if isinstance(tgt, ast.Name) and tgt.id not in local:
                        yield ctx.finding(
                            "REP302",
                            node,
                            f"reduction onto shared scalar {tgt.id!r} "
                            f"inside prange: iterations race on it; commit "
                            f"serially after the parallel gather (or verify "
                            f"numba privatises this reduction and suppress)",
                        )
                    elif isinstance(tgt, ast.Subscript):
                        if not (_index_names(tgt) & local):
                            base = ast.unparse(tgt.value)
                            yield ctx.finding(
                                "REP302",
                                node,
                                f"reduction onto shared array cell "
                                f"{base}[...] with an iteration-independent "
                                f"index inside prange: iterations race; use "
                                f"the serial-commit pattern",
                            )


def _check_store(
    ctx: ModuleContext,
    tgt: ast.Subscript,
    local: set[str],
    node: ast.AST,
) -> Finding | None:
    if _index_names(tgt) & local:
        return None  # indexed by the loop variable or a derived offset
    base = ast.unparse(tgt.value)
    return ctx.finding(
        "REP301",
        node,
        f"write to {base}[...] whose index involves no prange-iteration-"
        f"local name: every iteration hits the same locations (write-"
        f"write race); index by the loop variable or a per-iteration "
        f"offset (e.g. j = offs[i])",
    )
