"""Registry-contract conformance: REP501/REP502/REP503.

The engine and backend registries promise interchangeability; a
registered entry that is missing part of the structural surface
(``close()`` so pools never leak, the four diagram arrays, the
``MultiSourceResult`` provenance fields) breaks callers that were
written against the contract, typically on a path no test pins.

These are *repo rules*: they instantiate every registered entry over a
tiny fixed instance and verify the members of the contracts stated in
:mod:`repro.contracts` (the same Protocols mypy checks statically):

* **REP501** — a registered engine factory returned an object missing
  part of :data:`~repro.contracts.ENGINE_CONTRACT`.
* **REP502** — a registered backend is not callable on
  ``(graph, seeds)`` or returned a diagram missing part of
  :data:`~repro.contracts.DIAGRAM_CONTRACT`.
* **REP503** — :class:`~repro.shortest_paths.backends.MultiSourceResult`
  lost part of :data:`~repro.contracts.MULTISOURCE_RESULT_CONTRACT`.

Engines are instantiated with ``workers=1`` so ``bsp-mp`` stays
in-process (no forked pool at check time); every engine is ``close()``d
before the rule returns.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.analysis.engine import Finding, repo_rule
from repro.contracts import (
    DIAGRAM_CONTRACT,
    ENGINE_CONTRACT,
    MULTISOURCE_RESULT_CONTRACT,
)

__all__: list[str] = []


def _tiny_instance() -> "tuple[Any, Any]":
    """A 4-vertex path graph + 2-rank block partition, enough to
    instantiate every engine and run every backend."""
    import numpy as np

    from repro.graph.csr import CSRGraph
    from repro.runtime.partition import block_partition

    edges = np.array([[0, 1], [1, 2], [2, 3]], dtype=np.int64)
    weights = np.array([1, 2, 3], dtype=np.int64)
    graph = CSRGraph.from_edges(4, edges, weights)
    return graph, block_partition(graph, 2)


@repo_rule(
    ("REP501", "registered engine violates the RuntimeEngine contract"),
    ("REP502", "registered backend violates the diagram contract"),
    ("REP503", "MultiSourceResult lost a contract member"),
)
def check_registry_contracts() -> Iterator[Finding]:
    import numpy as np

    from repro.runtime.engines import available_engines, make_engine
    from repro.shortest_paths.backends import (
        MultiSourceResult,
        available_backends,
        get_backend,
    )

    graph, partition = _tiny_instance()

    for name in available_engines():
        engine = make_engine(name, partition, workers=1)
        try:
            missing = [a for a in ENGINE_CONTRACT if not hasattr(engine, a)]
        finally:
            engine.close()
        if missing:
            yield Finding(
                rule="REP501",
                path="src/repro/runtime/engines.py",
                line=1,
                col=0,
                message=f"engine {name!r} ({type(engine).__name__}) is "
                f"missing contract member(s) {missing} "
                f"(repro.contracts.RuntimeEngine)",
            )

    for name in available_backends():
        fn = get_backend(name)
        try:
            diagram = fn(graph, [0, 3])
        except Exception as exc:  # conformance probe: report, don't crash
            yield Finding(
                rule="REP502",
                path="src/repro/shortest_paths/backends.py",
                line=1,
                col=0,
                message=f"backend {name!r} failed the conformance probe "
                f"(graph, seeds) -> diagram: {type(exc).__name__}: {exc}",
            )
            continue
        missing = [
            a
            for a in DIAGRAM_CONTRACT
            if not isinstance(getattr(diagram, a, None), np.ndarray)
        ]
        if missing:
            yield Finding(
                rule="REP502",
                path="src/repro/shortest_paths/backends.py",
                line=1,
                col=0,
                message=f"backend {name!r} returned a diagram missing "
                f"ndarray member(s) {missing} (repro.contracts.DiagramLike)",
            )

    missing = [
        a for a in MULTISOURCE_RESULT_CONTRACT if not hasattr(MultiSourceResult, a)
    ]
    # dataclass fields are instance attributes, invisible on the class
    import dataclasses

    field_names = {f.name for f in dataclasses.fields(MultiSourceResult)}
    missing = [m for m in missing if m not in field_names]
    if missing:
        yield Finding(
            rule="REP503",
            path="src/repro/shortest_paths/backends.py",
            line=1,
            col=0,
            message=f"MultiSourceResult is missing contract member(s) "
            f"{missing} (repro.contracts.MULTISOURCE_RESULT_CONTRACT)",
        )
