"""The ``repro-steiner check`` rule engine.

A small, dependency-free static-analysis pass purpose-built for this
repository's invariants: bit-identical parity across backends, engines,
worker counts and fault-recovery replays only survives new code if that
code is deterministic, keeps the cache fingerprint honest, and keeps
``prange`` kernels race-free.  Runtime tests catch a violation only on
the path they happen to exercise; these rules catch the *bug classes*
at review time, on every path.

Architecture
------------
* **File rules** (:func:`file_rule`) receive a parsed
  :class:`ModuleContext` per checked file and yield :class:`Finding`s.
* **Repo rules** (:func:`repo_rule`) run once per invocation against the
  *imported* package (registry conformance, fingerprint coverage) — the
  half of the contract AST inspection cannot see.
* Every finding carries a stable rule id (``REP0xx``); a finding whose
  line carries ``# repro: ignore[REPxxx]`` is recorded but suppressed
  (it never affects the exit code).  Suppressions should carry a
  justification comment — the rule catalogue (``docs/analysis.md``)
  shows the expected form.

Adding a rule
-------------
Write a generator taking a :class:`ModuleContext` (or nothing, for repo
rules), decorate it with :func:`file_rule`/:func:`repo_rule`, give its
findings a fresh ``REPxxx`` id, add a fixture under
``tests/analysis_fixtures/`` proving it fires, and document it in
``docs/analysis.md``.  Importing the module registers the rule; the
built-in rule modules are imported by :mod:`repro.analysis`.
"""

from __future__ import annotations

import ast
import json
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

__all__ = [
    "DEFAULT_EXCLUDES",
    "Finding",
    "ModuleContext",
    "Report",
    "file_rule",
    "repo_rule",
    "iter_python_files",
    "run_check",
    "rule_catalogue",
]

#: Path components that are never checked: the analysis fixtures are
#: deliberately rule-violating code, and caches are not source.
DEFAULT_EXCLUDES: tuple[str, ...] = (
    "analysis_fixtures",
    "__pycache__",
    ".git",
    ".numba_cache",
)

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Z0-9,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    def render(self) -> str:
        tag = "  [suppressed]" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{tag}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Finding":
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload["col"]),
            message=str(payload["message"]),
            suppressed=bool(payload["suppressed"]),
        )


class ModuleContext:
    """A parsed source file plus the lookups rules share.

    Attributes
    ----------
    path:
        The path as given on the command line (relative paths stay
        relative, so CI output is machine-independent).
    tree:
        The parsed ``ast`` module with parent links
        (:meth:`parent_of`).
    suppressions:
        ``{line: {rule ids ignored on that line}}`` from
        ``# repro: ignore[...]`` comments.
    """

    def __init__(self, path: str | Path, source: str) -> None:
        self.path = str(path)
        self.source = source
        self.tree = ast.parse(source, filename=self.path)
        self._parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node
        self.suppressions = _collect_suppressions(source)

    @classmethod
    def from_file(cls, path: str | Path) -> "ModuleContext":
        with tokenize.open(path) as fh:  # honours PEP 263 encodings
            return cls(path, fh.read())

    # ------------------------------------------------------------------ #
    def parent_of(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``, applying suppressions."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return self.finding_at(rule, line, col, message)

    def finding_at(
        self, rule: str, line: int, col: int, message: str
    ) -> Finding:
        suppressed = rule in self.suppressions.get(line, set())
        return Finding(
            rule=rule,
            path=self.path,
            line=line,
            col=col,
            message=message,
            suppressed=suppressed,
        )


def _collect_suppressions(source: str) -> dict[int, set[str]]:
    """Map ``line -> {rule ids}`` from ``# repro: ignore[...]`` comments.

    Tokenizing (rather than regexing raw lines) keeps directives inside
    string literals inert, so documentation that *mentions* the syntax
    never suppresses anything.
    """
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if not m:
                continue
            rules = {r for r in (p.strip() for p in m.group(1).split(",")) if r}
            out.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:  # pragma: no cover - unparseable file
        pass
    return out


# --------------------------------------------------------------------- #
# rule registries
# --------------------------------------------------------------------- #
FileRule = Callable[[ModuleContext], Iterable[Finding]]
RepoRule = Callable[[], Iterable[Finding]]

_FILE_RULES: list[FileRule] = []
_REPO_RULES: list[RepoRule] = []
#: ``{rule id: one-line description}`` registered alongside the rules.
_CATALOGUE: dict[str, str] = {}


def file_rule(
    *ids_and_help: tuple[str, str],
) -> Callable[[FileRule], FileRule]:
    """Register a per-file rule; ``ids_and_help`` documents each
    ``REPxxx`` id the rule can emit."""

    def deco(fn: FileRule) -> FileRule:
        _FILE_RULES.append(fn)
        _CATALOGUE.update(dict(ids_and_help))
        return fn

    return deco


def repo_rule(
    *ids_and_help: tuple[str, str],
) -> Callable[[RepoRule], RepoRule]:
    """Register a once-per-invocation rule (imports the live package)."""

    def deco(fn: RepoRule) -> RepoRule:
        _REPO_RULES.append(fn)
        _CATALOGUE.update(dict(ids_and_help))
        return fn

    return deco


def rule_catalogue() -> dict[str, str]:
    """``{rule id: description}`` for every registered rule, sorted."""
    return dict(sorted(_CATALOGUE.items()))


# --------------------------------------------------------------------- #
# running
# --------------------------------------------------------------------- #
def iter_python_files(
    paths: Sequence[str | Path],
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths``, sorted, excluding any
    whose path contains an excluded component."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in candidates:
            if any(part in excludes for part in f.parts):
                continue
            if f in seen:
                continue
            seen.add(f)
            yield f


@dataclass
class Report:
    """The outcome of one ``repro-steiner check`` invocation."""

    findings: list[Finding] = field(default_factory=list)
    checked_files: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if (self.unsuppressed or self.errors) else 0

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.unsuppressed:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))

    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        return json.dumps(
            {
                "version": 1,
                "checked_files": self.checked_files,
                "counts": self.counts(),
                "findings": [f.to_dict() for f in self.findings],
                "errors": list(self.errors),
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, blob: str) -> "Report":
        payload = json.loads(blob)
        return cls(
            findings=[Finding.from_dict(d) for d in payload["findings"]],
            checked_files=int(payload["checked_files"]),
            errors=[str(e) for e in payload.get("errors", [])],
        )

    def render(self, *, show_suppressed: bool = False) -> str:
        lines = [
            f.render()
            for f in self.findings
            if show_suppressed or not f.suppressed
        ]
        lines.extend(f"error: {e}" for e in self.errors)
        n_sup = sum(1 for f in self.findings if f.suppressed)
        summary = (
            f"checked {self.checked_files} file(s): "
            f"{len(self.unsuppressed)} finding(s), {n_sup} suppressed"
        )
        if self.counts():
            summary += " (" + ", ".join(
                f"{rule}: {n}" for rule, n in self.counts().items()
            ) + ")"
        lines.append(summary)
        return "\n".join(lines)


def check_source(path: str | Path, source: str) -> list[Finding]:
    """Run every file rule over one in-memory module (the test hook)."""
    ctx = ModuleContext(path, source)
    findings: list[Finding] = []
    for rule in _FILE_RULES:
        findings.extend(rule(ctx))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def run_check(
    paths: Sequence[str | Path],
    *,
    repo_rules: bool = True,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
) -> Report:
    """Run the full pass: file rules over ``paths``, then repo rules.

    Unreadable or syntactically invalid files are reported in
    ``Report.errors`` (non-zero exit) rather than raised — the checker
    must never crash on the code it judges.
    """
    report = Report()
    for f in iter_python_files(paths, excludes):
        try:
            ctx = ModuleContext.from_file(f)
        except (OSError, SyntaxError, ValueError) as exc:
            report.errors.append(f"{f}: {type(exc).__name__}: {exc}")
            continue
        report.checked_files += 1
        for rule in _FILE_RULES:
            report.findings.extend(rule(ctx))
    if repo_rules:
        for rule in _REPO_RULES:
            try:
                report.findings.extend(rule())
            except Exception as exc:  # repo rules import live code; never crash
                report.errors.append(
                    f"repo rule {rule.__name__} crashed: "
                    f"{type(exc).__name__}: {exc}"
                )
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
