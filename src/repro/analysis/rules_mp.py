"""mp-protocol conformance: REP401/REP402 (static), REP504 (probe).

The ``bsp-mp`` engine replicates a program into its forked workers via
four hooks — ``mp_clone_payload`` / ``mp_materialize`` (phase start),
``mp_collect`` / ``mp_merge`` (quiescence fold-back, doubling as the
checkpoint format for fault recovery).  The engine gates on *one* probe
(``hasattr`` over all four), so a class defining a strict subset either
falls back to in-process execution silently (hooks wasted) or — worse,
if the probe ever loosens — ships half a protocol: cloning without
merging loses converged state, collecting without materialising breaks
checkpoint restore.

**REP401** fires on any class defining some but not all four hooks.
The hook list is :data:`repro.contracts.MP_PROGRAM_CONTRACT`, the same
data the engine's probe uses.

**REP402** extends the gate to the shared-memory data plane: an
mp-capable program's emissions travel between processes as fixed-width
``int64`` blocks in a :class:`~repro.runtime.shm_transport.ShmRing`,
and the receiving side reconstructs them from
``program.batch_payload_width`` alone — the descriptors carry offsets,
not schemas.  A base-less class implementing all four hooks must
therefore also pin ``batch_payload_width`` as a *literal* int; a
missing or computed width means the decode geometry cannot be audited
statically and can silently diverge between parent and worker.
(Classes with bases are skipped — the width may be inherited.)

**REP504** is the live half: a repo rule that round-trips a synthetic
emission batch of every registered mp program's declared width through
``ShmRing`` pack/unpack and requires bit-identical arrays back — the
transport-preserves-parity contract, verified at check time for every
width actually shipped.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, file_rule, repo_rule
from repro.contracts import MP_PROGRAM_CONTRACT

__all__: list[str] = []


@file_rule(
    ("REP401", "class defines only part of the bsp-mp clone protocol"),
)
def check_mp_protocol(ctx: ModuleContext) -> Iterator[Finding]:
    hooks = set(MP_PROGRAM_CONTRACT)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        defined = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name in hooks
        }
        if not defined or defined == hooks:
            continue
        missing = sorted(hooks - defined)
        yield ctx.finding(
            "REP401",
            node,
            f"class {node.name!r} defines {sorted(defined)} but not "
            f"{missing}: bsp-mp requires all four hooks or none "
            f"(partial protocols half-work — clone without merge loses "
            f"converged state)",
        )


def _literal_int_width(node: ast.ClassDef) -> "bool | None":
    """``True``/``False`` if the class body assigns
    ``batch_payload_width`` a literal-int/non-literal value, ``None``
    if it never assigns it at all."""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            names = {t.id for t in stmt.targets if isinstance(t, ast.Name)}
            value: ast.expr | None = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names = {stmt.target.id}
            value = stmt.value
        else:
            continue
        if "batch_payload_width" not in names:
            continue
        return (
            isinstance(value, ast.Constant)
            and type(value.value) is int
        )
    return None


@file_rule(
    ("REP402", "mp program lacks a literal batch_payload_width"),
)
def check_mp_width_is_literal(ctx: ModuleContext) -> Iterator[Finding]:
    hooks = set(MP_PROGRAM_CONTRACT)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef) or node.bases:
            # inherited widths are fine — the base class gets checked
            continue
        defined = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name in hooks
        }
        if defined != hooks:
            continue  # partial protocols are REP401's finding, not ours
        literal = _literal_int_width(node)
        if literal is True:
            continue
        how = (
            "never assigns" if literal is None else "computes rather than pins"
        )
        yield ctx.finding(
            "REP402",
            node,
            f"class {node.name!r} implements the full bsp-mp clone "
            f"protocol but {how} 'batch_payload_width': the shm "
            f"descriptor path decodes emission blocks from this width "
            f"alone, so it must be a literal int on the class",
        )


@repo_rule(
    ("REP504", "mp program emissions fail the shm round-trip probe"),
)
def check_shm_round_trip() -> Iterator[Finding]:
    """Round-trip a synthetic emission batch of every registered mp
    program's ``batch_payload_width`` through the shm descriptor path.

    'Registered' means: defined in a :mod:`repro.core` module with all
    four clone hooks — the same population ``DistributedSteinerSolver``
    hands to ``bsp-mp``.  The probe packs ``(targets, payload)`` blocks
    (int64 extremes included) into a fresh ring and requires the decode
    to be bit-identical; any drift here would surface as silent parity
    loss between the pickled and shm transports.
    """
    import importlib
    import pkgutil

    import numpy as np

    import repro.core
    from repro.runtime.shm_transport import (
        SHM_AVAILABLE,
        ShmRing,
        pack_message_block,
        unpack_message_block,
    )

    if not SHM_AVAILABLE:  # pragma: no cover - platform without shm
        return

    programs: list[tuple[str, type]] = []
    for info in pkgutil.iter_modules(repro.core.__path__):
        module = importlib.import_module(f"repro.core.{info.name}")
        for obj in vars(module).values():
            if (
                isinstance(obj, type)
                and obj.__module__ == module.__name__
                and all(hasattr(obj, h) for h in MP_PROGRAM_CONTRACT)
            ):
                programs.append((module.__name__, obj))

    ring = ShmRing(4096 * 8)
    try:
        for mod_name, cls in sorted(programs, key=lambda p: p[1].__name__):
            path = "src/" + mod_name.replace(".", "/") + ".py"
            width = getattr(cls, "batch_payload_width", None)
            if not isinstance(width, int) or width < 1:
                yield Finding(
                    rule="REP504",
                    path=path,
                    line=1,
                    col=0,
                    message=f"mp program {cls.__name__!r} has no usable "
                    f"batch_payload_width ({width!r}) — the shm "
                    f"descriptor path cannot decode its emissions",
                )
                continue
            lo, hi = -(2**62), 2**62
            targets = np.array([0, 1, -1, hi, lo, 7], dtype=np.int64)
            payload = (
                np.arange(targets.size * width, dtype=np.int64)
                .reshape(targets.size, width)
            )
            payload[0, 0] = hi
            payload[-1, -1] = lo
            batch = (targets, payload)
            widths = (1, width)
            blob = pack_message_block(ring, batch)
            if blob[0] != "shm":
                yield Finding(
                    rule="REP504",
                    path=path,
                    line=1,
                    col=0,
                    message=f"mp program {cls.__name__!r}: probe batch of "
                    f"width {width} did not take the shm path "
                    f"(got {blob[0]!r} descriptor)",
                )
                continue
            decoded = unpack_message_block(ring, blob, widths, copy=True)
            same = all(
                a.dtype == np.int64 and np.array_equal(a.reshape(b.shape), b)
                for a, b in zip(decoded, batch)
            )
            if not same:
                yield Finding(
                    rule="REP504",
                    path=path,
                    line=1,
                    col=0,
                    message=f"mp program {cls.__name__!r}: emission batch "
                    f"of width {width} did not round-trip the shm ring "
                    f"bit-identically — pickled and shm transports would "
                    f"silently diverge",
                )
    finally:
        ring.close(unlink=True)
