"""mp-protocol conformance: REP401 (partial ``bsp-mp`` clone protocol).

The ``bsp-mp`` engine replicates a program into its forked workers via
four hooks — ``mp_clone_payload`` / ``mp_materialize`` (phase start),
``mp_collect`` / ``mp_merge`` (quiescence fold-back, doubling as the
checkpoint format for fault recovery).  The engine gates on *one* probe
(``hasattr`` over all four), so a class defining a strict subset either
falls back to in-process execution silently (hooks wasted) or — worse,
if the probe ever loosens — ships half a protocol: cloning without
merging loses converged state, collecting without materialising breaks
checkpoint restore.

**REP401** fires on any class defining some but not all four hooks.
The hook list is :data:`repro.contracts.MP_PROGRAM_CONTRACT`, the same
data the engine's probe uses.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, file_rule
from repro.contracts import MP_PROGRAM_CONTRACT

__all__: list[str] = []


@file_rule(
    ("REP401", "class defines only part of the bsp-mp clone protocol"),
)
def check_mp_protocol(ctx: ModuleContext) -> Iterator[Finding]:
    hooks = set(MP_PROGRAM_CONTRACT)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        defined = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name in hooks
        }
        if not defined or defined == hooks:
            continue
        missing = sorted(hooks - defined)
        yield ctx.finding(
            "REP401",
            node,
            f"class {node.name!r} defines {sorted(defined)} but not "
            f"{missing}: bsp-mp requires all four hooks or none "
            f"(partial protocols half-work — clone without merge loses "
            f"converged state)",
        )
