"""Fingerprint-coverage audit: REP201/REP202/REP203.

``SolveCache`` keys on ``SolverConfig.fingerprint()``.  A config field
that silently stays out of the fingerprint is a cache-poisoning bug:
two configs that compute *different* results share a key, and whichever
lands first serves for both.  The converse — an excluded field that no
longer exists, or an exclusion without a written justification — makes
the exclusion list rot back into the hand-maintained state PR-8 had.

This is a *repo rule*: it audits the imported
:class:`repro.core.config.SolverConfig` against the shared exclusion
data :data:`repro.core.config.FINGERPRINT_EXCLUSIONS` (the runtime
skips exactly those keys), so the checker and the runtime can never
disagree about what is excluded.

* **REP201** — an exclusion names a field that does not exist (stale).
* **REP202** — a dataclass field is neither present in
  ``fingerprint_material()`` nor excluded (silently sharding the
  cache), or is both excluded *and* hashed (inconsistent).
* **REP203** — an exclusion has no written justification.

Findings are anchored at the field's definition line in
``src/repro/core/config.py`` when the file is reachable, else line 1.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect
from pathlib import Path
from typing import Iterator

from repro.analysis.engine import Finding, repo_rule

__all__: list[str] = []


def _config_anchor_lines() -> tuple[str, dict[str, int]]:
    """``(path, {field or constant name: line})`` in the config source."""
    from repro.core import config as config_mod

    try:
        path = inspect.getsourcefile(config_mod) or "src/repro/core/config.py"
        source = Path(path).read_text()
    except OSError:  # pragma: no cover - source unavailable (zipapp)
        return "src/repro/core/config.py", {}
    lines: dict[str, int] = {}
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "SolverConfig":
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    lines[stmt.target.id] = stmt.lineno
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                if (
                    isinstance(tgt, ast.Name)
                    and tgt.id == "FINGERPRINT_EXCLUSIONS"
                ):
                    lines[tgt.id] = node.lineno
    return path, lines


@repo_rule(
    ("REP201", "fingerprint exclusion names a non-existent SolverConfig field"),
    ("REP202", "SolverConfig field neither fingerprinted nor excluded"),
    ("REP203", "fingerprint exclusion lacks a written justification"),
)
def check_fingerprint_coverage() -> Iterator[Finding]:
    from repro.core.config import FINGERPRINT_EXCLUSIONS, SolverConfig

    path, anchors = _config_anchor_lines()
    excl_line = anchors.get("FINGERPRINT_EXCLUSIONS", 1)

    field_names = {f.name for f in dataclasses.fields(SolverConfig)}
    material = set(SolverConfig().fingerprint_material())

    for name in sorted(set(FINGERPRINT_EXCLUSIONS) - field_names):
        yield Finding(
            rule="REP201",
            path=path,
            line=excl_line,
            col=0,
            message=f"FINGERPRINT_EXCLUSIONS entry {name!r} is not a "
            f"SolverConfig field (stale exclusion — remove it)",
        )
    for name in sorted(field_names - material - set(FINGERPRINT_EXCLUSIONS)):
        yield Finding(
            rule="REP202",
            path=path,
            line=anchors.get(name, 1),
            col=0,
            message=f"SolverConfig.{name} is neither hashed by "
            f"fingerprint() nor listed in FINGERPRINT_EXCLUSIONS: two "
            f"configs differing only in it would share a SolveCache key; "
            f"hash it or exclude it with a justification",
        )
    for name in sorted(material & set(FINGERPRINT_EXCLUSIONS)):
        yield Finding(
            rule="REP202",
            path=path,
            line=anchors.get(name, excl_line),
            col=0,
            message=f"SolverConfig.{name} is excluded from the "
            f"fingerprint yet still present in fingerprint_material() — "
            f"the runtime and the exclusion data disagree",
        )
    for name, reason in sorted(FINGERPRINT_EXCLUSIONS.items()):
        if not (isinstance(reason, str) and reason.strip()):
            yield Finding(
                rule="REP203",
                path=path,
                line=excl_line,
                col=0,
                message=f"FINGERPRINT_EXCLUSIONS[{name!r}] has no written "
                f"justification; document why changing it can never "
                f"change results",
            )
