"""Determinism lint: REP101 (unseeded RNG), REP102 (unordered-set
iteration), REP103 (wall clock in kernel/engine hot paths).

The repo's parity contract — bit-identical trees, converged arrays and
BSP counters across 5 backends x 5 engines, worker counts and
fault-recovery replays — survives only while every source of
nondeterminism is either absent or explicitly seeded.  These three
rules flag the classes that have actually bitten reproductions like
this one:

* **REP101** — a ``random.*`` / ``np.random.*`` global-state call, or a
  generator constructed without a seed (``default_rng()``,
  ``Random()``).  Any of these makes results depend on process history
  or OS entropy.  Fix: thread an explicit seed into a *local*
  ``np.random.default_rng(seed)`` / ``random.Random(seed)``.
* **REP102** — iterating a ``set``/``frozenset`` (directly, via a
  comprehension, or via ``list()``/``tuple()``) without ``sorted(...)``.
  Set iteration order depends on insertion history and hash
  randomisation of the element values; any result derived from it can
  differ between runs.  Order-insensitive consumers (``sorted``,
  ``sum``, ``min``, ``max``, ``any``, ``all``, ``len``, ``set``,
  ``frozenset``, set comprehensions) are exempt.  ``dict`` iteration is
  insertion-ordered in supported Pythons and therefore exempt — unless
  the dict was built from a set, which the set-origin tracking catches
  at the set itself.
* **REP103** — a wall-clock read (``time.time``, ``perf_counter``,
  ``monotonic``, ``datetime.now``, ...) inside the kernel/engine hot
  paths (``repro/shortest_paths/``, ``repro/runtime/``) outside the
  sanctioned timing helpers (:data:`SANCTIONED_TIMERS`).  Timing
  belongs in the benchmark harness and the provenance wrappers; a clock
  read on the hot path is either dead weight or — worse — feeding an
  adaptive decision that breaks replay determinism.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, file_rule

__all__ = ["SANCTIONED_TIMERS"]

# ---------------------------------------------------------------------- #
# REP101 — unseeded / global-state randomness
# ---------------------------------------------------------------------- #
#: np.random members that *construct* a generator: fine when passed an
#: explicit (non-None) seed, flagged when called bare.
_NP_CONSTRUCTORS = {"default_rng", "SeedSequence", "RandomState"}
#: np.random members that are types/plumbing, never entropy sources.
_NP_BENIGN = {"Generator", "BitGenerator", "PCG64", "PCG64DXSM", "Philox",
              "MT19937", "SFC64"}
#: stdlib random members that construct a generator (seedable).
_RANDOM_CONSTRUCTORS = {"Random"}
_RANDOM_BENIGN = {"getstate", "setstate"}


class _ImportTracker(ast.NodeVisitor):
    """Resolve local names to the modules this rule cares about."""

    def __init__(self) -> None:
        self.numpy_aliases: set[str] = set()
        self.np_random_aliases: set[str] = set()
        self.random_aliases: set[str] = set()
        #: local name -> member name imported from stdlib random
        self.from_random: dict[str, str] = {}
        #: local name -> member name imported from numpy.random
        self.from_np_random: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy":
                self.numpy_aliases.add(bound)
            elif alias.name == "numpy.random":
                (self.np_random_aliases if alias.asname else self.numpy_aliases
                 ).add(bound)
            elif alias.name == "random":
                self.random_aliases.add(bound)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "numpy" and alias.name == "random":
                self.np_random_aliases.add(bound)
            elif node.module == "numpy.random":
                self.from_np_random[bound] = alias.name
            elif node.module == "random":
                self.from_random[bound] = alias.name


def _has_explicit_seed(call: ast.Call) -> bool:
    """True when the constructor call carries a non-None seed argument."""
    args = list(call.args) + [kw.value for kw in call.keywords]
    if not args:
        return False
    first = call.args[0] if call.args else call.keywords[0].value
    return not (isinstance(first, ast.Constant) and first.value is None)


@file_rule(
    ("REP101", "unseeded or global-state RNG call"),
)
def check_unseeded_rng(ctx: ModuleContext) -> Iterator[Finding]:
    imports = _ImportTracker()
    imports.visit(ctx.tree)

    def classify(member: str, origin: str, call: ast.Call) -> str | None:
        """Return a message when the RNG member call is a finding."""
        constructors = (
            _NP_CONSTRUCTORS if origin == "np" else _RANDOM_CONSTRUCTORS
        )
        benign = _NP_BENIGN if origin == "np" else _RANDOM_BENIGN
        if member in benign:
            return None
        if member in constructors:
            if _has_explicit_seed(call):
                return None
            return (
                f"{member}() without an explicit seed: results depend on "
                f"OS entropy; pass a seed threaded from the caller"
            )
        mod = "np.random" if origin == "np" else "random"
        return (
            f"global-state RNG call {mod}.{member}(): determinism then "
            f"depends on process-wide call order; use a local seeded "
            f"generator instead"
        )

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        message: str | None = None
        if isinstance(func, ast.Attribute):
            value = func.value
            # np.random.<member>(...)
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in imports.numpy_aliases
            ):
                message = classify(func.attr, "np", node)
            # <np_random_alias>.<member>(...)
            elif (
                isinstance(value, ast.Name)
                and value.id in imports.np_random_aliases
            ):
                message = classify(func.attr, "np", node)
            # random.<member>(...)
            elif (
                isinstance(value, ast.Name)
                and value.id in imports.random_aliases
            ):
                message = classify(func.attr, "random", node)
        elif isinstance(func, ast.Name):
            if func.id in imports.from_random:
                message = classify(imports.from_random[func.id], "random", node)
            elif func.id in imports.from_np_random:
                message = classify(imports.from_np_random[func.id], "np", node)
        if message is not None:
            yield ctx.finding("REP101", node, message)


# ---------------------------------------------------------------------- #
# REP102 — unordered-set iteration
# ---------------------------------------------------------------------- #
#: callables whose result does not depend on argument order
_ORDER_INSENSITIVE = {
    "sorted", "set", "frozenset", "sum", "min", "max", "any", "all", "len",
}
#: callables that materialise their argument *in iteration order*
_ORDER_SENSITIVE_CTORS = {"list", "tuple"}
#: set methods that return another set
_SET_RETURNING_METHODS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}


def _set_typed_names(scope: ast.AST) -> set[str]:
    """Names in ``scope`` that (only ever) hold sets.

    A name qualifies when every plain assignment to it in the scope is a
    set-ish expression and it is never rebound by a loop/with/aug
    target.  Nested function bodies are separate scopes and skipped.
    """
    assigned_set: set[str] = set()
    assigned_other: set[str] = set()

    def walk(node: ast.AST, top: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ) and not top:
                continue
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue  # nested scope
            if isinstance(child, ast.Assign):
                for tgt in child.targets:
                    if isinstance(tgt, ast.Name):
                        if _is_set_expr(child.value, set()):
                            assigned_set.add(tgt.id)
                        else:
                            assigned_other.add(tgt.id)
                    else:
                        for name in ast.walk(tgt):
                            if isinstance(name, ast.Name):
                                assigned_other.add(name.id)
            elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                tgt = child.target
                if isinstance(tgt, ast.Name):
                    assigned_other.add(tgt.id)
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                for name in ast.walk(child.target):
                    if isinstance(name, ast.Name):
                        assigned_other.add(name.id)
                walk(child, False)
                continue
            walk(child, False)

    walk(scope, True)
    return assigned_set - assigned_other


def _is_set_expr(node: ast.AST, set_names: set[str]) -> bool:
    """Best-effort: does this expression evaluate to a set/frozenset?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_RETURNING_METHODS
            and _is_set_expr(func.value, set_names)
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


#: method sinks that fold their argument order-insensitively into a set
_ORDER_INSENSITIVE_METHODS = {
    "update", "difference_update", "intersection_update",
    "symmetric_difference_update", "union", "intersection", "difference",
    "issubset", "issuperset", "isdisjoint",
}


def _iteration_sink_ok(ctx: ModuleContext, node: ast.AST) -> bool:
    """True when the iteration's consumer is order-insensitive."""
    parent = ctx.parent_of(node)
    if isinstance(parent, ast.Call):
        if (
            isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_INSENSITIVE
        ):
            return True
        if (
            isinstance(parent.func, ast.Attribute)
            and parent.func.attr in _ORDER_INSENSITIVE_METHODS
        ):
            return True
    return False


@file_rule(
    ("REP102", "iteration over an unordered set/frozenset"),
)
def check_set_iteration(ctx: ModuleContext) -> Iterator[Finding]:
    # per-scope set-typed name resolution: module plus each function
    scopes: list[ast.AST] = [ctx.tree]
    scopes.extend(
        n
        for n in ast.walk(ctx.tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    module_sets = _set_typed_names(ctx.tree)

    def names_for(node: ast.AST) -> set[str]:
        # innermost enclosing function scope, else module scope
        cur = ctx.parent_of(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return _set_typed_names(cur) | module_sets
            cur = ctx.parent_of(cur)
        return module_sets

    msg = (
        "iterates a set/frozenset: ordering depends on insertion history "
        "and element hashing; wrap the iterable in sorted(...) (or prove "
        "the consumer order-insensitive and suppress)"
    )
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter, names_for(node)):
                yield ctx.finding("REP102", node.iter, f"for-loop {msg}")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            set_names = names_for(node)
            if any(
                _is_set_expr(gen.iter, set_names) for gen in node.generators
            ) and not _iteration_sink_ok(ctx, node):
                yield ctx.finding("REP102", node, f"comprehension {msg}")
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in _ORDER_SENSITIVE_CTORS and node.args:
                if _is_set_expr(node.args[0], names_for(node)):
                    yield ctx.finding(
                        "REP102",
                        node,
                        f"{node.func.id}() over a set {msg}",
                    )


# ---------------------------------------------------------------------- #
# REP103 — wall clock inside kernel/engine hot paths
# ---------------------------------------------------------------------- #
#: module-path fragments that mark the kernel/engine hot paths
_HOT_PATH_FRAGMENTS = ("repro/shortest_paths/", "repro/runtime/")
#: The sanctioned timing helpers: the two provenance wrappers whose whole
#: job is to time a phase/sweep from *outside* the kernel.  Everything
#: else on a hot path must justify its clock read with a suppression.
SANCTIONED_TIMERS: frozenset[str] = frozenset(
    {"run_phase_with", "compute_multisource"}
)
_CLOCK_ATTRS = {
    "time": {
        "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
        "monotonic_ns", "process_time", "process_time_ns", "thread_time",
        "thread_time_ns",
    },
    "datetime": {"now", "utcnow", "today"},
}


def _enclosing_function(ctx: ModuleContext, node: ast.AST) -> str | None:
    cur = ctx.parent_of(node)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cur.name
        cur = ctx.parent_of(cur)
    return None


@file_rule(
    ("REP103", "wall-clock call in a kernel/engine hot path"),
)
def check_hot_path_clock(ctx: ModuleContext) -> Iterator[Finding]:
    posix = ctx.path.replace("\\", "/")
    if not any(frag in posix for frag in _HOT_PATH_FRAGMENTS):
        return
    # names imported directly: from time import perf_counter
    clock_names: dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_ATTRS["time"]:
                    clock_names[alias.asname or alias.name] = alias.name

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        member: str | None = None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            if base == "time" and func.attr in _CLOCK_ATTRS["time"]:
                member = f"time.{func.attr}"
            elif base == "datetime" and func.attr in _CLOCK_ATTRS["datetime"]:
                member = f"datetime.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in clock_names:
            member = f"time.{clock_names[func.id]}"
        if member is None:
            continue
        fn = _enclosing_function(ctx, node)
        if fn in SANCTIONED_TIMERS:
            continue
        yield ctx.finding(
            "REP103",
            node,
            f"{member}() inside hot-path module (enclosing function "
            f"{fn or '<module>'!r} is not a sanctioned timing helper); "
            f"move timing to the benchmark/provenance layer",
        )
