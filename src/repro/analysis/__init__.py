"""Repo-invariant static analysis: the ``repro-steiner check`` pass.

See :mod:`repro.analysis.engine` for the architecture and
``docs/analysis.md`` for the rule catalogue.  Importing this package
registers the built-in rule families:

* ``REP1xx`` — determinism lint (:mod:`~repro.analysis.rules_determinism`)
* ``REP2xx`` — fingerprint-coverage audit (:mod:`~repro.analysis.rules_fingerprint`)
* ``REP3xx`` — ``prange`` race detector (:mod:`~repro.analysis.rules_prange`)
* ``REP4xx`` — mp-protocol conformance (:mod:`~repro.analysis.rules_mp`)
* ``REP5xx`` — registry-contract conformance (:mod:`~repro.analysis.rules_contracts`)
"""

from repro.analysis import (  # importing registers the rules
    rules_contracts,
    rules_determinism,
    rules_fingerprint,
    rules_mp,
    rules_prange,
)
from repro.analysis.engine import (
    DEFAULT_EXCLUDES,
    Finding,
    ModuleContext,
    Report,
    check_source,
    file_rule,
    iter_python_files,
    repo_rule,
    rule_catalogue,
    run_check,
)

__all__ = [
    "DEFAULT_EXCLUDES",
    "Finding",
    "ModuleContext",
    "Report",
    "check_source",
    "file_rule",
    "iter_python_files",
    "repo_rule",
    "rule_catalogue",
    "run_check",
]
