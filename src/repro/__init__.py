"""repro — Distributed 2-approximation Steiner minimal trees.

A full reproduction of *"Towards Distributed 2-Approximation Steiner
Minimal Trees in Billion-edge Graphs"* (Reza, Sanders, Pearce; IPDPS
2022, arXiv:2205.14503): the Voronoi-cell-based parallel algorithm, a
deterministic discrete-event simulation of its MPI/HavoqGT runtime, the
sequential 2-approximation baselines (KMB, Mehlhorn, WWW, Takahashi), an
exact solver for quality measurement, and a harness regenerating every
table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import grid_graph, sequential_steiner_tree
>>> g = grid_graph(8, 8)
>>> result = sequential_steiner_tree(g, seeds=[0, 7, 56, 63])
>>> result.total_distance >= 1
True

See ``examples/`` for realistic scenarios and ``DESIGN.md`` for the
architecture map.
"""

from repro.core import (
    DistributedSteinerSolver,
    SolverConfig,
    SteinerTreeResult,
    distributed_steiner_tree,
    sequential_steiner_tree,
)
from repro.errors import (
    ConvergenceError,
    DisconnectedSeedsError,
    GraphError,
    PartitionError,
    ReproError,
    SeedError,
    SimulationError,
    ValidationError,
)
from repro.graph import (
    CSRGraph,
    WeightSpec,
    assign_uniform_weights,
    erdos_renyi_graph,
    grid_graph,
    preferential_attachment_graph,
    random_geometric_graph,
    rmat_graph,
)
from repro.runtime import MachineModel, QueueDiscipline
from repro.seeds import SeedStrategy, select_seeds
from repro.shortest_paths import (
    near_shortest_path_edges,
    shortest_path_edges,
)
from repro.validation import (
    approximation_error_pct,
    approximation_ratio,
    validate_steiner_tree,
)

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "ConvergenceError",
    "DisconnectedSeedsError",
    "DistributedSteinerSolver",
    "GraphError",
    "MachineModel",
    "PartitionError",
    "QueueDiscipline",
    "ReproError",
    "SeedError",
    "SeedStrategy",
    "SimulationError",
    "SolverConfig",
    "SteinerTreeResult",
    "ValidationError",
    "WeightSpec",
    "approximation_error_pct",
    "approximation_ratio",
    "assign_uniform_weights",
    "distributed_steiner_tree",
    "erdos_renyi_graph",
    "grid_graph",
    "near_shortest_path_edges",
    "preferential_attachment_graph",
    "random_geometric_graph",
    "rmat_graph",
    "select_seeds",
    "sequential_steiner_tree",
    "shortest_path_edges",
    "validate_steiner_tree",
    "__version__",
]
