"""Structural contracts of the two plug-in registries, as ``typing.Protocol``s.

The engine registry (:mod:`repro.runtime.engines`) and the backend
registry (:mod:`repro.shortest_paths.backends`) both promise that every
registered entry is interchangeable: any engine drives a program to the
identical converged state, any backend produces the bit-identical
Voronoi diagram.  That guarantee only holds if each entry actually
implements the full structural surface the callers rely on — ``close()``
so pools never leak, ``run_phase`` returning :class:`PhaseStats`,
diagram results carrying all four arrays.

This module states those surfaces *once*, as Protocols, so they are
verified twice:

* **statically** — mypy checks the concrete engine classes and backend
  callables against the Protocols (the ``TYPE_CHECKING`` assignments at
  the bottom of the registry modules);
* **at review time** — the ``repro-steiner check`` registry-conformance
  rules (``REP501``/``REP502``/``REP503``,
  :mod:`repro.analysis.rules_contracts`) instantiate every registered
  entry and verify the members listed in :data:`ENGINE_CONTRACT` /
  :data:`DIAGRAM_CONTRACT` / :data:`MULTISOURCE_RESULT_CONTRACT` are
  present.

The ``*_CONTRACT`` tuples are the runtime mirror of each Protocol's
member list — kept adjacent so adding a member to one without the other
is a one-line review catch.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Iterable,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

if TYPE_CHECKING:  # heavy imports only for annotations
    import numpy as np

    from repro.graph.csr import CSRGraph
    from repro.runtime.engine import PhaseStats
    from repro.shortest_paths.voronoi import VoronoiDiagram

__all__ = [
    "DIAGRAM_CONTRACT",
    "ENGINE_CONTRACT",
    "MP_PROGRAM_CONTRACT",
    "MULTISOURCE_RESULT_CONTRACT",
    "DiagramLike",
    "MultiSourceBackend",
    "MPCloneable",
    "RuntimeEngine",
]


@runtime_checkable
class RuntimeEngine(Protocol):
    """The executor surface every registered engine factory must return.

    Mirrors :class:`repro.runtime.engine.EngineBase`; consumers (the
    solver, ``run_phase_with``, the benchmarks) use exactly these
    members.
    """

    phases: list["PhaseStats"]
    clock: float

    def run_phase(
        self,
        name: str,
        program: Any,
        initial_messages: Iterable[Tuple[int, Tuple[Any, ...]]],
        *,
        max_events: Optional[int] = None,
    ) -> "PhaseStats": ...

    def add_analytic_phase(
        self,
        name: str,
        sim_time: float,
        *,
        n_messages_remote: int = 0,
        bytes_sent: int = 0,
    ) -> "PhaseStats": ...

    def total_time(self) -> float: ...

    def close(self) -> None: ...


#: Runtime mirror of :class:`RuntimeEngine` for the REP501 checker rule.
ENGINE_CONTRACT: tuple[str, ...] = (
    "run_phase",
    "add_analytic_phase",
    "total_time",
    "close",
    "phases",
    "clock",
)


@runtime_checkable
class MultiSourceBackend(Protocol):
    """A registered multi-source shortest-path kernel.

    ``(graph, seeds, **options) -> VoronoiDiagram`` whose result is the
    unique lexicographic ``(dist, owner)`` fixpoint with canonical
    predecessors — bit-identical across every registered backend.
    """

    def __call__(
        self, graph: "CSRGraph", seeds: Sequence[int], /, **options: Any
    ) -> "VoronoiDiagram": ...


@runtime_checkable
class DiagramLike(Protocol):
    """The four arrays every backend's diagram must expose."""

    seeds: "np.ndarray"
    src: "np.ndarray"
    pred: "np.ndarray"
    dist: "np.ndarray"


#: Runtime mirror of :class:`DiagramLike` for the REP502 checker rule.
DIAGRAM_CONTRACT: tuple[str, ...] = ("seeds", "src", "pred", "dist")


#: Members of :class:`repro.shortest_paths.backends.MultiSourceResult`
#: that downstream consumers (benchmarks, serve, CLI listings) rely on;
#: verified by the REP503 checker rule.
MULTISOURCE_RESULT_CONTRACT: tuple[str, ...] = (
    "diagram",
    "backend",
    "elapsed_s",
    "seeds",
    "src",
    "pred",
    "dist",
    "agrees_with",
)


@runtime_checkable
class MPCloneable(Protocol):
    """The ``bsp-mp`` program-cloning protocol — all four hooks or none.

    A program that defines any one of these must define all four, or
    worker replication half-works: clone without merge loses converged
    state, collect without materialize cannot checkpoint.  Enforced
    statically by the REP401 rule (:mod:`repro.analysis.rules_mp`).
    """

    def mp_clone_payload(self) -> dict[str, Any]: ...

    @classmethod
    def mp_materialize(cls, partition: Any, payload: dict[str, Any]) -> Any: ...

    def mp_collect(self, owned: "np.ndarray") -> dict[str, Any]: ...

    def mp_merge(self, collected: dict[str, Any]) -> None: ...


#: Runtime mirror of :class:`MPCloneable` for the REP401 checker rule —
#: shared with :data:`repro.runtime.engine_mp._MP_HOOKS`.
MP_PROGRAM_CONTRACT: tuple[str, ...] = (
    "mp_clone_payload",
    "mp_materialize",
    "mp_collect",
    "mp_merge",
)
