"""Validation of Steiner trees and Voronoi diagrams.

These checks encode the definitions from the paper's §II and are used
throughout the test suite (including the Hypothesis property tests) and
by the harness to certify every benchmark run before reporting numbers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.graph.csr import CSRGraph
from repro.mst.union_find import UnionFind
from repro.shortest_paths.voronoi import INF, NO_VERTEX, VoronoiDiagram

__all__ = [
    "validate_steiner_tree",
    "validate_voronoi_diagram",
    "approximation_ratio",
    "approximation_error_pct",
]


def validate_steiner_tree(
    graph: CSRGraph,
    seeds: Sequence[int],
    edges: np.ndarray,
    *,
    require_seed_leaves: bool = True,
) -> None:
    """Assert ``edges`` forms a valid Steiner tree for ``seeds``.

    Checks (paper §II definitions):

    1. every row ``(u, v, w)`` is a real graph edge with its true weight;
    2. the edge set is acyclic (union-find);
    3. all seeds lie in one connected tree component;
    4. the tree is *spanning-minimal*: every tree vertex connects to the
       seeds (no disconnected decorative edges);
    5. optionally, every leaf is a seed (KMB Step 5 guarantees no Steiner
       vertex remains a leaf).

    Raises :class:`ValidationError` with a specific message on the first
    violated property.
    """
    seeds_arr = np.asarray(sorted(int(s) for s in seeds), dtype=np.int64)
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 3)
    n = graph.n_vertices

    if seeds_arr.size == 0:
        raise ValidationError("empty seed set")
    if seeds_arr.size == 1 and edges.shape[0] == 0:
        return  # single seed, trivial tree

    # 1. membership + weight
    for u, v, w in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise ValidationError(f"edge ({u},{v}) endpoint out of range")
        true_w = graph.edge_weight(int(u), int(v))  # raises if absent
        if true_w != w:
            raise ValidationError(
                f"edge ({u},{v}) carries weight {w}, graph says {true_w}"
            )

    # 2. acyclicity
    uf = UnionFind(n)
    for u, v, _ in edges:
        if not uf.union(int(u), int(v)):
            raise ValidationError(f"cycle introduced by edge ({u},{v})")

    # 3. seed connectivity
    root = uf.find(int(seeds_arr[0]))
    for s in seeds_arr[1:]:
        if uf.find(int(s)) != root:
            raise ValidationError(f"seed {s} not connected to seed {seeds_arr[0]}")

    # 4. no stray components: every edge endpoint must be connected to the
    # seeds' component
    for u, v, _ in edges:
        if uf.find(int(u)) != root:
            raise ValidationError(f"tree edge ({u},{v}) disconnected from seeds")

    # |edges| == |vertices| - 1 for the tree component
    tree_vertices = np.unique(
        np.concatenate([edges[:, 0], edges[:, 1], seeds_arr])
    )
    if edges.shape[0] != tree_vertices.size - 1:
        raise ValidationError(
            f"{edges.shape[0]} edges over {tree_vertices.size} vertices: not a tree"
        )

    # 5. leaves are seeds
    if require_seed_leaves and edges.shape[0]:
        deg: dict[int, int] = {}
        for u, v, _ in edges:
            deg[int(u)] = deg.get(int(u), 0) + 1
            deg[int(v)] = deg.get(int(v), 0) + 1
        seed_set = {int(s) for s in seeds_arr}
        for v, d in deg.items():
            if d == 1 and v not in seed_set:
                raise ValidationError(f"Steiner vertex {v} is a leaf")


def validate_voronoi_diagram(graph: CSRGraph, vd: VoronoiDiagram) -> None:
    """Assert the Voronoi diagram invariants of the paper's §II.

    1. cells partition the reached vertex set and every seed owns itself;
    2. ``dist[v]`` equals the true multi-source shortest distance
       (checked by local optimality: no edge can improve any vertex, and
       every non-seed reached vertex has a tight predecessor edge);
    3. predecessor chains stay within the cell and strictly decrease in
       distance (hence acyclic, ending at the seed).
    """
    src, pred, dist = vd.src, vd.pred, vd.dist
    n = graph.n_vertices
    for s in vd.seeds:
        if src[s] != s or dist[s] != 0:
            raise ValidationError(f"seed {s} does not own itself at distance 0")

    u_arr = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    v_arr, w_arr = graph.indices, graph.weights
    both = (dist[u_arr] != INF) & (dist[v_arr] != INF)
    # 2a. no improving edge: dist[v] <= dist[u] + w for all edges
    if both.any():
        lhs = dist[v_arr[both]]
        rhs = dist[u_arr[both]] + w_arr[both]
        bad = lhs > rhs
        if bad.any():
            i = int(np.nonzero(bad)[0][0])
            raise ValidationError(
                f"edge relaxation violated at arc "
                f"({u_arr[both][i]} -> {v_arr[both][i]})"
            )
    # reached vertex adjacent to unreached one is impossible
    half = (dist[u_arr] != INF) & (dist[v_arr] == INF)
    if half.any():
        raise ValidationError("reached vertex adjacent to unreached vertex")

    seed_set = {int(s) for s in vd.seeds}
    reached = np.nonzero(src != NO_VERTEX)[0]
    for v in reached:
        v = int(v)
        if v in seed_set:
            continue
        p = int(pred[v])
        if p == NO_VERTEX:
            raise ValidationError(f"reached non-seed {v} has no predecessor")
        if src[p] != src[v]:
            raise ValidationError(f"predecessor of {v} lies in another cell")
        if dist[p] + graph.edge_weight(p, v) != dist[v]:
            raise ValidationError(f"predecessor edge of {v} is not tight")
    # unreached vertices carry clean sentinel state
    unreached = np.nonzero(src == NO_VERTEX)[0]
    if unreached.size and not (
        (dist[unreached] == INF).all() and (pred[unreached] == NO_VERTEX).all()
    ):
        raise ValidationError("unreached vertex carries partial state")


def approximation_ratio(found_distance: int, optimal_distance: int) -> float:
    """``D(GS) / Dmin(G)`` — Table VII's left half."""
    if optimal_distance <= 0:
        raise ValidationError("optimal distance must be positive")
    return found_distance / optimal_distance


def approximation_error_pct(found_distance: int, optimal_distance: int) -> float:
    """Percent error relative to the optimum — Table VII's right half."""
    return (approximation_ratio(found_distance, optimal_distance) - 1.0) * 100.0
