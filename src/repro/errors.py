"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause while
still being able to discriminate between graph-construction problems,
algorithm preconditions, and simulation misconfiguration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Malformed graph input (bad shapes, negative weights, self loops...)."""


class SeedError(ReproError):
    """Invalid seed (terminal) set: empty, out of range, duplicated, or
    not mutually reachable in the background graph."""


class DisconnectedSeedsError(SeedError):
    """The seed vertices do not all lie in one connected component, so no
    Steiner tree containing all of them exists."""

    def __init__(self, unreached: list[int]):
        self.unreached = list(unreached)
        super().__init__(
            f"{len(self.unreached)} seed vertex/vertices unreachable from the "
            f"first seed: {self.unreached[:10]}"
            + ("..." if len(self.unreached) > 10 else "")
        )


class PartitionError(ReproError):
    """Invalid partitioning request (e.g. more ranks than vertices)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class WorkerCrashError(SimulationError):
    """A ``bsp-mp`` worker process died (or hung past the heartbeat
    timeout) more times than ``max_restarts`` allows.

    This is the *transient* failure class: the superstep that was lost
    is deterministically retryable (the serve layer retries exactly this
    exception with exponential backoff), unlike a program-raised
    :class:`SimulationError`, which would recur identically on replay.
    """

    def __init__(
        self,
        message: str,
        *,
        restarts: int = 0,
        exitcode: int | None = None,
    ) -> None:
        self.restarts = restarts
        self.exitcode = exitcode
        super().__init__(message)


class ConvergenceError(ReproError):
    """An iterative routine exceeded its iteration budget."""


class ValidationError(ReproError):
    """An output artefact (tree, Voronoi diagram...) failed validation."""
