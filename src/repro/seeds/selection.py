"""Seed-vertex selection strategies (paper §V "Seed Vertex Selection" and
§V-E "Studying Seed Selection Alternatives").

All strategies draw from the **largest connected component** so every seed
is guaranteed to be Steiner-tree-connectable, exactly as the paper
requires.  Four strategies are provided:

* **BFS-level** (the paper's default): compute BFS levels from a random
  component vertex and sample seeds across levels proportionally to level
  population ("often a higher percentage of vertices are selected from a
  level with higher vertex frequency") — this avoids the degenerate case
  where most seeds are directly connected.
* **Uniform random**: uniform over the component.
* **Eccentric**: k-BFS heuristic (Iwabuchi et al.) — each subsequent seed
  maximises the cumulative BFS distance from all previous seeds, pushing
  seeds far apart.
* **Proximate**: the same machinery with ``argmin``, pulling seeds close
  together (the paper notes this yields much smaller trees).
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.errors import SeedError
from repro.graph.connectivity import bfs_levels, largest_component_vertices
from repro.graph.csr import CSRGraph

__all__ = [
    "SeedStrategy",
    "select_seeds",
    "bfs_level_seeds",
    "uniform_random_seeds",
    "eccentric_seeds",
    "proximate_seeds",
]


class SeedStrategy(str, enum.Enum):
    """Named strategies accepted by :func:`select_seeds`."""

    BFS_LEVEL = "bfs-level"
    UNIFORM_RANDOM = "uniform-random"
    ECCENTRIC = "eccentric"
    PROXIMATE = "proximate"


def select_seeds(
    graph: CSRGraph,
    k: int,
    strategy: SeedStrategy | str = SeedStrategy.BFS_LEVEL,
    *,
    seed: int = 0,
) -> np.ndarray:
    """Select ``k`` seed vertices with the given strategy.

    Returns a sorted ``int64[k]`` array of distinct vertex ids, all within
    the largest connected component.
    """
    strategy = SeedStrategy(strategy)
    if strategy is SeedStrategy.BFS_LEVEL:
        return bfs_level_seeds(graph, k, seed=seed)
    if strategy is SeedStrategy.UNIFORM_RANDOM:
        return uniform_random_seeds(graph, k, seed=seed)
    if strategy is SeedStrategy.ECCENTRIC:
        return eccentric_seeds(graph, k, seed=seed)
    return proximate_seeds(graph, k, seed=seed)


def _component(graph: CSRGraph, k: int) -> np.ndarray:
    comp = largest_component_vertices(graph)
    if comp.size < k:
        raise SeedError(
            f"largest component has {comp.size} vertices; cannot select {k} seeds"
        )
    if k < 1:
        raise SeedError("seed count must be >= 1")
    return comp


def uniform_random_seeds(graph: CSRGraph, k: int, *, seed: int = 0) -> np.ndarray:
    """``k`` vertices uniformly at random from the largest component."""
    comp = _component(graph, k)
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(comp, size=k, replace=False)).astype(np.int64)


def bfs_level_seeds(graph: CSRGraph, k: int, *, seed: int = 0) -> np.ndarray:
    """The paper's default: stratified sampling across BFS levels.

    From a random component vertex, compute BFS levels, then allocate the
    ``k`` picks to levels proportionally to level size (larger levels get
    more seeds), sampling uniformly within each level.
    """
    comp = _component(graph, k)
    rng = np.random.default_rng(seed)
    root = int(comp[rng.integers(0, comp.size)])
    levels = bfs_levels(graph, root)
    comp_levels = levels[comp]
    max_level = int(comp_levels.max())
    # level populations (restricted to the component)
    pops = np.bincount(comp_levels, minlength=max_level + 1).astype(np.float64)
    quota = pops / pops.sum() * k
    counts = np.floor(quota).astype(np.int64)
    # distribute the remainder to the levels with the largest fractional
    # part (deterministic given the RNG state drives only the sampling)
    short = k - int(counts.sum())
    if short > 0:
        frac_order = np.argsort(-(quota - counts), kind="stable")
        for lvl in frac_order[:short]:
            counts[lvl] += 1
    picked: list[int] = []
    for lvl in range(max_level + 1):
        want = int(counts[lvl])
        if want == 0:
            continue
        members = comp[comp_levels == lvl]
        want = min(want, members.size)
        picked.extend(rng.choice(members, size=want, replace=False).tolist())
    # top up if rounding starved some level (tiny levels)
    if len(picked) < k:
        pool = np.setdiff1d(comp, np.asarray(picked, dtype=np.int64))
        extra = rng.choice(pool, size=k - len(picked), replace=False)
        picked.extend(extra.tolist())
    return np.sort(np.asarray(picked[:k], dtype=np.int64))


def _kbfs_seeds(
    graph: CSRGraph,
    k: int,
    *,
    seed: int,
    maximize: bool,
) -> np.ndarray:
    """Shared k-BFS machinery for eccentric/proximate selection.

    Round ``j`` picks the vertex with the extreme (max or min) cumulative
    BFS level over all previous rounds, exactly the paper's
    ``u_{k-n+1} = argmax/argmin sum_j l_j(v_i)`` rule.
    """
    comp = _component(graph, k)
    rng = np.random.default_rng(seed)
    in_comp = np.zeros(graph.n_vertices, dtype=bool)
    in_comp[comp] = True

    first = int(comp[rng.integers(0, comp.size)])
    chosen = [first]
    cumulative = np.zeros(graph.n_vertices, dtype=np.int64)
    for _ in range(k - 1):
        lv = bfs_levels(graph, chosen[-1])
        # unreachable vertices cannot be in the component; clamp defensively
        lv = np.where(lv < 0, 0, lv)
        cumulative += lv
        score = np.where(in_comp, cumulative, -1 if maximize else np.iinfo(np.int64).max)
        score = score.copy()
        score[np.asarray(chosen, dtype=np.int64)] = (
            -1 if maximize else np.iinfo(np.int64).max
        )
        nxt = int(score.argmax() if maximize else score.argmin())
        chosen.append(nxt)
    return np.sort(np.asarray(chosen, dtype=np.int64))


def eccentric_seeds(graph: CSRGraph, k: int, *, seed: int = 0) -> np.ndarray:
    """Seeds far from each other (k-BFS argmax; paper §V-E "Eccentric")."""
    return _kbfs_seeds(graph, k, seed=seed, maximize=True)


def proximate_seeds(graph: CSRGraph, k: int, *, seed: int = 0) -> np.ndarray:
    """Seeds close to each other (k-BFS argmin; paper §V-E "Proximate")."""
    return _kbfs_seeds(graph, k, seed=seed, maximize=False)


def validate_seed_set(graph: CSRGraph, seeds: Sequence[int]) -> np.ndarray:
    """Normalise and validate an externally supplied seed set."""
    arr = np.asarray(sorted(int(s) for s in seeds), dtype=np.int64)
    if arr.size == 0:
        raise SeedError("seed set must be non-empty")
    if np.unique(arr).size != arr.size:
        raise SeedError("seed set contains duplicates")
    if arr[0] < 0 or arr[-1] >= graph.n_vertices:
        raise SeedError("seed vertex id out of range")
    return arr
