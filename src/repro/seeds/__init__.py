"""Seed (terminal) vertex selection strategies from the paper's §V."""

from repro.seeds.selection import (
    SeedStrategy,
    select_seeds,
    bfs_level_seeds,
    uniform_random_seeds,
    eccentric_seeds,
    proximate_seeds,
)

__all__ = [
    "SeedStrategy",
    "select_seeds",
    "bfs_level_seeds",
    "uniform_random_seeds",
    "eccentric_seeds",
    "proximate_seeds",
]
