"""Optional numba JIT support — one import guard for every native tier.

The native kernel tiers (``voronoi_backend="delta-numba"``,
``engine="bsp-native"``) depend on `numba <https://numba.pydata.org>`_,
which is deliberately **optional**: the library's hard dependency set
stays NumPy-only, and every native tier degrades to its NumPy twin when
numba cannot be imported.  This module centralises that guard so the
policy lives in exactly one place:

* :data:`NUMBA_AVAILABLE` / :data:`NUMBA_IMPORT_ERROR` — did the import
  succeed, and if not, why (the registries surface the reason through
  ``repro-steiner backends`` / ``engines``);
* :func:`njit` / :data:`prange` — decorator and range shims.  With
  numba present, :func:`njit` applies ``numba.njit(cache=True, ...)``;
  without it, the decorated function is returned **unchanged**, so the
  kernels remain callable as plain Python — slow, but semantically
  identical, which is how the parity tests exercise the kernel logic in
  no-numba environments;
* :func:`warmup` — compile (or re-load from the on-disk cache) every
  registered kernel on a tiny instance, so first-call JIT compilation
  never lands inside a benchmark timing column;
* cache-dir pinning — ``NUMBA_CACHE_DIR`` is defaulted (never
  overridden) to a stable per-user path before numba is first imported,
  so repeated bench runs reuse compiled artifacts instead of paying
  compilation once per process.

Install the optional dependency with ``pip install numba`` (or the
packaging extra ``pip install -e ".[native]"``).
"""

from __future__ import annotations

import os
import tempfile
from typing import Any, Callable

__all__ = [
    "NUMBA_AVAILABLE",
    "NUMBA_IMPORT_ERROR",
    "native_status",
    "njit",
    "prange",
    "register_warmup",
    "warmup",
]

#: pinned compilation cache (see ``docs/kernels.md``): respected if the
#: user already set it, defaulted to a stable per-user directory
#: otherwise — MUST happen before ``import numba``
_CACHE_ENV = "NUMBA_CACHE_DIR"
if not os.environ.get(_CACHE_ENV):
    _uid = getattr(os, "getuid", lambda: "shared")()
    os.environ[_CACHE_ENV] = os.path.join(
        tempfile.gettempdir(), f"repro-steiner-numba-{_uid}"
    )

try:
    import numba as _numba

    NUMBA_AVAILABLE = True
    NUMBA_IMPORT_ERROR: str | None = None
    prange = _numba.prange
except ImportError as _exc:  # the graceful-fallback path (CI no-numba leg)
    _numba = None
    NUMBA_AVAILABLE = False
    NUMBA_IMPORT_ERROR = f"{type(_exc).__name__}: {_exc}"
    prange = range


def njit(*args: Any, **kwargs: Any) -> Callable:
    """``numba.njit`` with library defaults, or the identity decorator.

    With numba installed this is ``numba.njit(cache=True, **kwargs)`` —
    on-disk caching keyed by the pinned :data:`NUMBA_CACHE_DIR` (so a
    process pays compilation at most once per kernel per machine).
    Without numba the decorated function is returned unchanged: every
    kernel in the native tiers is written in the nopython subset *and*
    as valid plain NumPy-on-scalars Python, so the un-jitted form runs
    (slowly) for parity testing.

    Supports both ``@njit`` and ``@njit(parallel=True)`` spellings.
    """
    if args and callable(args[0]) and not kwargs:
        fn = args[0]
        if _numba is None:
            return fn
        return _numba.njit(cache=True)(fn)

    kwargs.setdefault("cache", True)

    def deco(fn: Callable) -> Callable:
        if _numba is None:
            return fn
        return _numba.njit(**kwargs)(fn)

    return deco


_WARMUPS: list[Callable[[], None]] = []


def register_warmup(fn: Callable[[], None]) -> Callable[[], None]:
    """Register a zero-argument warm-up callable (one per kernel module).

    Each callable runs its module's jitted kernels on a tiny fixed
    instance, forcing compilation (or cache re-load).  Collected here so
    benchmarks can warm *every* native tier with one :func:`warmup`
    call before their timing loops.
    """
    _WARMUPS.append(fn)
    return fn


def warmup() -> int:
    """Compile every registered native kernel outside any timing column.

    Returns the number of warm-up routines that ran.  A no-op returning
    ``0`` when numba is absent — the fallback tiers have nothing to
    compile.
    """
    if not NUMBA_AVAILABLE:
        return 0
    for fn in _WARMUPS:
        fn()
    return len(_WARMUPS)


def native_status() -> dict[str, Any]:
    """Machine-readable JIT-tier status for CLI listings and bench metadata.

    >>> status = native_status()
    >>> sorted(status) == ['available', 'cache_dir', 'reason', 'version']
    True
    >>> status['available'] == (status['reason'] is None)
    True
    """
    return {
        "available": NUMBA_AVAILABLE,
        "version": getattr(_numba, "__version__", None),
        "reason": NUMBA_IMPORT_ERROR,
        "cache_dir": os.environ.get(_CACHE_ENV),
    }
