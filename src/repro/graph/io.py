"""Graph persistence.

Two formats:

* **edge list** (text, ``u v w`` per line) — interchange with external
  tools and the examples;
* **binary .npz** — the analogue of the HavoqGT binary graph format the
  paper loads (Table III reports per-dataset binary sizes).  Saving via
  :func:`save_npz` and loading via :func:`load_npz` round-trips the CSR
  arrays losslessly and :func:`npz_nbytes` reports the on-disk footprint so
  the harness can reproduce Table III's "Size" column for the stand-ins.
"""

from __future__ import annotations

import io as _io
import os
from pathlib import Path

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = [
    "save_edge_list",
    "load_edge_list",
    "save_npz",
    "load_npz",
    "npz_nbytes",
]

_FORMAT_VERSION = 1


def save_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write unique undirected edges as ``u v w`` lines (ascii)."""
    src, dst, w = graph.edge_array()
    with open(path, "w", encoding="ascii") as fh:
        fh.write(f"# n_vertices={graph.n_vertices}\n")
        for i in range(src.size):
            fh.write(f"{src[i]} {dst[i]} {w[i]}\n")


def load_edge_list(path: str | os.PathLike) -> CSRGraph:
    """Read a file produced by :func:`save_edge_list`.

    Lines starting with ``#`` are comments; the first comment may carry
    ``n_vertices=``, otherwise it is inferred as ``max id + 1``.
    """
    n_vertices = None
    rows: list[tuple[int, int, int]] = []
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "n_vertices=" in line:
                    n_vertices = int(line.split("n_vertices=")[1])
                continue
            parts = line.split()
            if len(parts) == 2:
                u, v, w = int(parts[0]), int(parts[1]), 1
            elif len(parts) == 3:
                u, v, w = int(parts[0]), int(parts[1]), int(parts[2])
            else:
                raise GraphError(f"malformed edge line: {line!r}")
            rows.append((u, v, w))
    if not rows:
        return CSRGraph.from_edges(n_vertices or 0, np.zeros((0, 2), np.int64), [])
    arr = np.asarray(rows, dtype=np.int64)
    if n_vertices is None:
        n_vertices = int(arr[:, :2].max()) + 1
    return CSRGraph.from_edges(n_vertices, arr[:, :2], arr[:, 2])


def save_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Persist CSR arrays to a compressed ``.npz`` (binary format)."""
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
    )


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph saved by :func:`save_npz`."""
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise GraphError(f"unsupported graph format version {version}")
        return CSRGraph(data["indptr"], data["indices"], data["weights"])


def npz_nbytes(graph: CSRGraph) -> int:
    """Size in bytes of the (uncompressed) binary representation — the
    reproduction of Table III's per-dataset "Size" column."""
    buf = _io.BytesIO()
    np.savez(
        buf,
        format_version=np.int64(_FORMAT_VERSION),
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
    )
    return buf.getbuffer().nbytes


def dataset_size_label(nbytes: int) -> str:
    """Format a byte count the way Table III does (692MB, 2.1GB, ...)."""
    units = [("TB", 1 << 40), ("GB", 1 << 30), ("MB", 1 << 20), ("KB", 1 << 10)]
    for name, scale in units:
        if nbytes >= scale:
            return f"{nbytes / scale:.1f}{name}"
    return f"{nbytes}B"


# ensure Path is re-exported for typing convenience in callers
_ = Path
