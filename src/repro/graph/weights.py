"""Edge-weight assignment.

The paper (Table III) assigns every dataset non-zero positive integer edge
weights drawn from a dataset-specific range ``[1, W]`` — e.g. ``[1, 5K]``
for LiveJournal and ``[1, 500K]`` for WDC12 — and §V-D sweeps that range to
study its effect on convergence.  :func:`assign_uniform_weights` reproduces
that scheme; :class:`WeightSpec` names a range so dataset registries and
experiment sweeps can carry it around.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["WeightSpec", "assign_uniform_weights"]


@dataclass(frozen=True)
class WeightSpec:
    """A uniform integer edge-weight range ``[low, high]`` (inclusive)."""

    low: int = 1
    high: int = 5_000

    def __post_init__(self) -> None:
        if self.low < 1:
            raise GraphError("weight range must start at >= 1")
        if self.high < self.low:
            raise GraphError("weight range upper bound below lower bound")

    def label(self) -> str:
        """Human-readable range label used in Fig-7-style reports."""
        return f"[{self.low}, {_si(self.high)}]"


def _si(x: int) -> str:
    if x >= 1_000_000 and x % 1_000_000 == 0:
        return f"{x // 1_000_000}M"
    if x >= 1_000 and x % 1_000 == 0:
        return f"{x // 1_000}K"
    return str(x)


def assign_uniform_weights(
    graph: CSRGraph,
    spec: WeightSpec | tuple[int, int],
    *,
    seed: int = 0,
) -> CSRGraph:
    """Return ``graph`` with fresh i.i.d. uniform integer edge weights.

    Both directions of each undirected edge receive the same weight, as
    required by every algorithm in the library.

    Parameters
    ----------
    graph:
        Topology to reweight.
    spec:
        Weight range, a :class:`WeightSpec` or an ``(low, high)`` tuple.
    seed:
        RNG seed — weight assignment is deterministic given the seed, which
        the paper's §V-D notes matters ("results are subjected to randomness
        associated with edge weight assignment").
    """
    if isinstance(spec, tuple):
        spec = WeightSpec(*spec)
    rng = np.random.default_rng(seed)
    src, dst, _ = graph.edge_array()
    w = rng.integers(spec.low, spec.high + 1, size=src.size, dtype=np.int64)
    edges = np.stack([src, dst], axis=1)
    return CSRGraph.from_edges(graph.n_vertices, edges, w)
