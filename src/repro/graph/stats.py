"""Descriptive graph statistics (the columns of the paper's Table III)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["GraphStats", "graph_stats"]


@dataclass(frozen=True)
class GraphStats:
    """Summary row mirroring Table III: ``|V|``, ``2|E|``, max/avg degree,
    weight range and in-memory size."""

    n_vertices: int
    n_arcs: int          # 2|E|, the convention Table III reports
    max_degree: int
    avg_degree: float
    weight_min: int
    weight_max: int
    nbytes: int

    def as_row(self) -> dict[str, object]:
        """Dict form for table rendering."""
        return {
            "|V|": self.n_vertices,
            "2|E|": self.n_arcs,
            "Max. degree": self.max_degree,
            "Avg. degree": round(self.avg_degree, 1),
            "Edge weight": f"[{self.weight_min}, {self.weight_max}]",
            "Size": self.nbytes,
        }


def graph_stats(graph: CSRGraph) -> GraphStats:
    """Compute the Table-III statistics for ``graph``."""
    if graph.n_arcs:
        wmin, wmax = int(graph.weights.min()), int(graph.weights.max())
    else:
        wmin = wmax = 0
    return GraphStats(
        n_vertices=graph.n_vertices,
        n_arcs=graph.n_arcs,
        max_degree=graph.max_degree,
        avg_degree=graph.avg_degree,
        weight_min=wmin,
        weight_max=wmax,
        nbytes=graph.nbytes(),
    )


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of vertices with degree ``d``."""
    deg = graph.degree()
    if deg.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(deg).astype(np.int64)
