"""Graph substrate: CSR storage, generators, weights, connectivity, IO.

This package provides everything the Steiner-tree layers need from a graph
library, implemented on flat NumPy arrays for cache-friendly, vectorised
access (the Python analogue of the paper's CSR C++ data structures and the
HavoqGT binary graph format).
"""

from repro.graph.csr import CSRGraph
from repro.graph.weights import assign_uniform_weights, WeightSpec
from repro.graph.connectivity import (
    bfs_levels,
    connected_components,
    largest_component_vertices,
)
from repro.graph.diameter import approximate_diameter, double_sweep_lower_bound
from repro.graph.generators import (
    erdos_renyi_graph,
    grid_graph,
    preferential_attachment_graph,
    random_geometric_graph,
    rmat_graph,
)

__all__ = [
    "CSRGraph",
    "WeightSpec",
    "approximate_diameter",
    "assign_uniform_weights",
    "bfs_levels",
    "double_sweep_lower_bound",
    "connected_components",
    "largest_component_vertices",
    "erdos_renyi_graph",
    "grid_graph",
    "preferential_attachment_graph",
    "random_geometric_graph",
    "rmat_graph",
]
