"""Compressed-sparse-row graph storage on NumPy arrays.

The paper stores graphs in HavoqGT's binary CSR format and reports the
per-dataset storage cost (Table III).  :class:`CSRGraph` is the Python
equivalent: an undirected, edge-weighted graph held as three flat arrays

* ``indptr``  -- ``int64[n_vertices + 1]``, adjacency offsets,
* ``indices`` -- ``int64[2 * n_edges]``, neighbour ids (both directions of
  every undirected edge are stored, matching the paper's "symmetric edges,
  2|E|" convention),
* ``weights`` -- ``int64[2 * n_edges]``, positive integer distances
  ``d : E -> Z+ \\ {0}`` exactly as in the paper's preliminaries.

Vertices are dense integers ``0 .. n_vertices - 1``.  Construction is fully
vectorised (sort-based) so million-edge graphs build in well under a second.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Tuple

import numpy as np

from repro.errors import GraphError

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable undirected edge-weighted graph in CSR form.

    Parameters
    ----------
    indptr, indices, weights:
        Pre-built CSR arrays.  Use :meth:`from_edges` unless you already
        have validated CSR data; the constructor only performs cheap shape
        checks.

    Notes
    -----
    ``n_edges`` counts *undirected* edges; ``indices`` has ``2 * n_edges``
    entries because both directions are materialised (required by the
    vertex-centric runtime, whose visitors scan out-neighbours).
    """

    __slots__ = ("indptr", "indices", "weights", "_n_vertices", "_content_hash")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1 or weights.ndim != 1:
            raise GraphError("CSR arrays must be one-dimensional")
        if indptr.size == 0:
            raise GraphError("indptr must have at least one entry")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphError(
                "indptr must start at 0 and end at len(indices) "
                f"(got {indptr[0]}..{indptr[-1]} for {indices.size} entries)"
            )
        if indices.size != weights.size:
            raise GraphError("indices and weights must have equal length")
        if indices.size and (np.diff(indptr) < 0).any():
            raise GraphError("indptr must be non-decreasing")
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self._n_vertices = indptr.size - 1
        self._content_hash: str | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        n_vertices: int,
        edges: Iterable[Tuple[int, int]] | np.ndarray,
        weights: Iterable[int] | np.ndarray,
        *,
        symmetrize: bool = True,
        drop_self_loops: bool = True,
        dedupe: str = "min",
    ) -> "CSRGraph":
        """Build a graph from an edge list.

        Parameters
        ----------
        n_vertices:
            Number of vertices; edge endpoints must lie in
            ``[0, n_vertices)``.
        edges:
            ``(m, 2)`` array-like of endpoints.  Treated as undirected.
        weights:
            ``m`` positive integer edge distances.
        symmetrize:
            Materialise both directions (the library default; all
            algorithms assume it).
        drop_self_loops:
            Silently discard ``(v, v)`` entries (they can never be part of
            a Steiner tree).
        dedupe:
            Policy for parallel edges: ``"min"`` keeps the smallest weight
            (the only one a shortest path or Steiner tree could use),
            ``"error"`` raises, ``"keep"`` keeps duplicates as-is.
        """
        edge_arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        edge_arr = edge_arr.astype(np.int64, copy=False)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise GraphError("edges must be an (m, 2) array")
        w_arr = np.asarray(
            list(weights) if not isinstance(weights, np.ndarray) else weights,
            dtype=np.int64,
        )
        if w_arr.shape != (edge_arr.shape[0],):
            raise GraphError(
                f"weights length {w_arr.shape} does not match edge count "
                f"{edge_arr.shape[0]}"
            )
        if n_vertices < 0:
            raise GraphError("n_vertices must be non-negative")
        if edge_arr.size:
            if edge_arr.min() < 0 or edge_arr.max() >= n_vertices:
                raise GraphError("edge endpoint out of range")
            if (w_arr <= 0).any():
                raise GraphError(
                    "edge weights must be positive integers (paper: "
                    "d(u, v) in Z+ \\ {0})"
                )

        if drop_self_loops and edge_arr.size:
            keep = edge_arr[:, 0] != edge_arr[:, 1]
            edge_arr, w_arr = edge_arr[keep], w_arr[keep]

        # canonicalise as (min, max) so duplicates in either direction merge
        lo = np.minimum(edge_arr[:, 0], edge_arr[:, 1])
        hi = np.maximum(edge_arr[:, 0], edge_arr[:, 1])
        if edge_arr.size and dedupe != "keep":
            key = lo * np.int64(n_vertices) + hi
            order = np.lexsort((w_arr, key))
            key, lo, hi, w_arr = key[order], lo[order], hi[order], w_arr[order]
            first = np.ones(key.size, dtype=bool)
            first[1:] = key[1:] != key[:-1]
            if dedupe == "error" and not first.all():
                raise GraphError("duplicate (parallel) edges present")
            # lexsort put the min weight first within each duplicate group
            lo, hi, w_arr = lo[first], hi[first], w_arr[first]

        if symmetrize:
            src = np.concatenate([lo, hi])
            dst = np.concatenate([hi, lo])
            w2 = np.concatenate([w_arr, w_arr])
        else:
            src, dst, w2 = lo, hi, w_arr

        order = np.lexsort((dst, src))
        src, dst, w2 = src[order], dst[order], w2[order]
        indptr = np.zeros(n_vertices + 1, dtype=np.int64)
        if src.size:
            counts = np.bincount(src, minlength=n_vertices)
            np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst, w2)

    @classmethod
    def from_networkx(cls, nx_graph, weight: str = "weight") -> "CSRGraph":
        """Convert a :class:`networkx.Graph` with integer vertex labels
        ``0..n-1`` and a positive integer ``weight`` attribute."""
        n = nx_graph.number_of_nodes()
        edges = []
        weights = []
        for u, v, data in nx_graph.edges(data=True):
            edges.append((int(u), int(v)))
            weights.append(int(data.get(weight, 1)))
        return cls.from_edges(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2), weights)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def n_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self._n_vertices

    @property
    def n_edges(self) -> int:
        """Number of *undirected* edges ``|E|`` (half the stored arcs)."""
        return self.indices.size // 2

    @property
    def n_arcs(self) -> int:
        """Number of stored directed arcs, ``2|E|`` (Table III convention)."""
        return self.indices.size

    def degree(self, v: int | None = None):
        """Degree of vertex ``v``, or the full ``int64[n]`` degree vector."""
        if v is None:
            return np.diff(self.indptr)
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def max_degree(self) -> int:
        """Largest vertex degree (Table III's "Max. degree" column)."""
        if self._n_vertices == 0:
            return 0
        return int(np.diff(self.indptr).max())

    @property
    def avg_degree(self) -> float:
        """Average degree ``2|E| / |V|`` (Table III convention)."""
        if self._n_vertices == 0:
            return 0.0
        return self.n_arcs / self._n_vertices

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour ids of ``v`` (a zero-copy CSR slice)."""
        return self.indices[self.indptr[v]: self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors`."""
        return self.weights[self.indptr[v]: self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the undirected edge ``(u, v)`` exists."""
        return bool(np.isin(v, self.neighbors(u)).any())

    def edge_weight(self, u: int, v: int) -> int:
        """Weight of edge ``(u, v)``; raises :class:`GraphError` if absent."""
        nbrs = self.neighbors(u)
        hit = np.nonzero(nbrs == v)[0]
        if hit.size == 0:
            raise GraphError(f"no edge ({u}, {v})")
        return int(self.neighbor_weights(u)[hit[0]])

    def edge_array(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Unique undirected edges as ``(src, dst, weight)`` with
        ``src < dst`` — convenient for edge-centric vectorised scans."""
        src = np.repeat(np.arange(self._n_vertices, dtype=np.int64), self.degree())
        keep = src < self.indices
        return src[keep], self.indices[keep], self.weights[keep]

    def iter_edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate unique undirected ``(u, v, w)`` with ``u < v``."""
        src, dst, w = self.edge_array()
        for i in range(src.size):
            yield int(src[i]), int(dst[i]), int(w[i])

    # ------------------------------------------------------------------ #
    # derived graphs / export
    # ------------------------------------------------------------------ #
    def reweighted(self, new_weights: np.ndarray) -> "CSRGraph":
        """Same topology, new per-arc weights (``int64[2|E|]``, must assign
        the same weight to both directions of every edge)."""
        new_weights = np.asarray(new_weights, dtype=np.int64)
        if new_weights.shape != self.weights.shape:
            raise GraphError("weight array shape mismatch")
        if new_weights.size and (new_weights <= 0).any():
            raise GraphError("edge weights must be positive")
        return CSRGraph(self.indptr.copy(), self.indices.copy(), new_weights)

    def induced_subgraph(self, vertices: np.ndarray) -> Tuple["CSRGraph", np.ndarray]:
        """Subgraph induced on ``vertices``.

        Returns ``(subgraph, mapping)`` where ``mapping[i]`` is the original
        id of subgraph vertex ``i``.  Vertices are relabelled densely.
        """
        vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        if vertices.size and (vertices[0] < 0 or vertices[-1] >= self._n_vertices):
            raise GraphError("vertex id out of range")
        new_id = np.full(self._n_vertices, -1, dtype=np.int64)
        new_id[vertices] = np.arange(vertices.size, dtype=np.int64)
        src, dst, w = self.edge_array()
        keep = (new_id[src] >= 0) & (new_id[dst] >= 0)
        edges = np.stack([new_id[src[keep]], new_id[dst[keep]]], axis=1)
        sub = CSRGraph.from_edges(vertices.size, edges, w[keep])
        return sub, vertices

    def to_networkx(self):
        """Export to :class:`networkx.Graph` (weights under ``"weight"``)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n_vertices))
        src, dst, w = self.edge_array()
        g.add_weighted_edges_from(
            zip(src.tolist(), dst.tolist(), w.tolist()), weight="weight"
        )
        return g

    def nbytes(self) -> int:
        """In-memory footprint of the CSR arrays (the analogue of the
        "Size" column in the paper's Table III)."""
        return self.indptr.nbytes + self.indices.nbytes + self.weights.nbytes

    def total_weight(self) -> int:
        """Sum of all undirected edge weights."""
        return int(self.weights.sum()) // 2

    def content_hash(self) -> str:
        """SHA-256 over the CSR arrays, memoised on the instance.

        Two graphs share a content hash iff they are :meth:`__eq__`-equal;
        this is the ``graph_hash`` component of the serve/cache key
        ``(graph_hash, frozenset(seeds), config_fingerprint)``.  The
        O(|E|) hashing cost is paid once per graph object.
        """
        if self._content_hash is None:
            h = hashlib.sha256()
            for arr in (self.indptr, self.indices, self.weights):
                h.update(str(arr.size).encode())
                h.update(np.ascontiguousarray(arr).data)
            self._content_hash = h.hexdigest()[:16]
        return self._content_hash

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(n_vertices={self._n_vertices}, n_edges={self.n_edges}, "
            f"max_degree={self.max_degree})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.weights, other.weights)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash is fine
        return id(self)
