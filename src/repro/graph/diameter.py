"""Weighted-diameter approximation by multi-probe sweeps.

The paper cites Ceccarello et al. (IPDPS'16), who use multi-source
shortest-path sweeps — the same machinery as Voronoi cells — for
*diameter approximation of weighted graphs*.  This module closes that
loop: the classic double-sweep / k-probe lower bound built on the
library's Dijkstra kernel.  Used by the harness to characterise
datasets and by users sizing ``epsilon`` for near-shortest-path
exploration.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.shortest_paths.dijkstra import INF, dijkstra

__all__ = ["approximate_diameter", "double_sweep_lower_bound"]


def double_sweep_lower_bound(graph: CSRGraph, start: int) -> tuple[int, int, int]:
    """One double sweep: Dijkstra from ``start``, then from the farthest
    vertex found.  Returns ``(lower_bound, endpoint_a, endpoint_b)``.

    On trees the double sweep is exact; on general graphs it is a lower
    bound that is empirically tight on real-world topologies.
    """
    if not (0 <= start < graph.n_vertices):
        raise GraphError(f"start vertex {start} out of range")
    dist, _ = dijkstra(graph, start)
    reached = dist != INF
    if not reached.any():
        return 0, start, start
    masked = np.where(reached, dist, -1)
    a = int(masked.argmax())
    dist2, _ = dijkstra(graph, a)
    masked2 = np.where(dist2 != INF, dist2, -1)
    b = int(masked2.argmax())
    return int(masked2[b]), a, b


def approximate_diameter(
    graph: CSRGraph,
    *,
    n_probes: int = 4,
    seed: int = 0,
) -> int:
    """Weighted-diameter lower bound from ``n_probes`` double sweeps.

    Each probe starts from a random vertex; the best (largest) double
    sweep result is returned.  Cost: ``2 * n_probes`` Dijkstra runs.
    """
    if graph.n_vertices == 0:
        return 0
    if n_probes < 1:
        raise GraphError("need at least one probe")
    rng = np.random.default_rng(seed)
    best = 0
    for _ in range(n_probes):
        start = int(rng.integers(0, graph.n_vertices))
        lb, _, _ = double_sweep_lower_bound(graph, start)
        best = max(best, lb)
    return best
