"""Connectivity primitives: BFS levels, connected components, largest CC.

The paper's seed-selection procedure (§V) first identifies the largest
connected component with BFS and then samples seeds from BFS levels, so
these routines are part of the evaluated pipeline, not just utilities.
Implementations are frontier-vectorised NumPy BFS (no per-vertex Python
loop on the hot path).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = [
    "bfs_levels",
    "connected_components",
    "largest_component_vertices",
    "is_connected",
]

UNREACHED = np.int64(-1)


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Hop distance from ``source`` to every vertex (``-1`` if unreachable).

    Frontier-at-a-time BFS: each round gathers all neighbours of the
    current frontier with two vectorised CSR expansions.
    """
    n = graph.n_vertices
    if not (0 <= source < n):
        raise GraphError(f"source {source} out of range for {n} vertices")
    levels = np.full(n, UNREACHED, dtype=np.int64)
    levels[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        starts = graph.indptr[frontier]
        ends = graph.indptr[frontier + 1]
        total = int((ends - starts).sum())
        if total == 0:
            break
        # gather all neighbours of the frontier in one vectorised shot:
        # absolute CSR positions = repeat(starts) + within-vertex offsets
        counts = ends - starts
        base = np.repeat(starts, counts)
        group_start = np.repeat(np.cumsum(counts) - counts, counts)
        offsets = np.arange(total, dtype=np.int64) - group_start
        out = np.unique(graph.indices[base + offsets])
        new = out[levels[out] == UNREACHED]
        levels[new] = level
        frontier = new
    return levels


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component id per vertex (ids are 0-based, ordered by first vertex).

    Uses :func:`scipy.sparse.csgraph.connected_components` on the CSR
    arrays directly — zero-copy and linear time.
    """
    import scipy.sparse as sp
    from scipy.sparse.csgraph import connected_components as scipy_cc

    n = graph.n_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    mat = sp.csr_matrix(
        (
            np.ones(graph.indices.size, dtype=np.int8),
            graph.indices,
            graph.indptr,
        ),
        shape=(n, n),
    )
    _, labels = scipy_cc(mat, directed=False)
    return labels.astype(np.int64)


def largest_component_vertices(graph: CSRGraph) -> np.ndarray:
    """Vertex ids of the largest connected component (sorted ascending).

    This mirrors the paper's seed-selection precondition: "first, we
    identify the largest connected component using Breadth-first search".
    """
    labels = connected_components(graph)
    if labels.size == 0:
        return np.zeros(0, dtype=np.int64)
    counts = np.bincount(labels)
    return np.nonzero(labels == counts.argmax())[0].astype(np.int64)


def is_connected(graph: CSRGraph) -> bool:
    """True iff the graph has exactly one connected component."""
    if graph.n_vertices <= 1:
        return True
    labels = connected_components(graph)
    return bool((labels == labels[0]).all())
