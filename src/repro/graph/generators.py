"""Synthetic graph generators.

The paper evaluates on eight real-world graphs (Table III) ranging from
CiteSeer (9.4K edges) to WDC12 (257B edges).  The billion-edge originals
need terabytes of memory, so the harness substitutes *scaled-down synthetic
stand-ins* whose degree distributions match the originals' shape:

* :func:`rmat_graph` — Kronecker/R-MAT, the standard generator for skewed
  power-law web/social graphs (WDC, ClueWeb, UK-Web, Friendster,
  LiveJournal stand-ins).  Skew drives the load-imbalance and
  message-queue behaviour the paper's runtime optimisations target.
* :func:`preferential_attachment_graph` — Barabási–Albert, for the
  citation/co-author graphs (Patent, MiCo, CiteSeer stand-ins).
* :func:`erdos_renyi_graph`, :func:`grid_graph`,
  :func:`random_geometric_graph` — low-skew topologies used in tests,
  examples (VLSI-style routing on grids) and ablations.

All generators return a connected-ish raw topology with unit weights;
callers layer weights via :func:`repro.graph.weights.assign_uniform_weights`
and restrict to the largest connected component via
:func:`repro.graph.connectivity.largest_component_vertices` — the same
pipeline the paper uses for seed selection (§V, "Seed Vertex Selection").
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = [
    "rmat_graph",
    "preferential_attachment_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "random_geometric_graph",
]


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> CSRGraph:
    """Generate an R-MAT (recursive-matrix / Kronecker) graph.

    Parameters
    ----------
    scale:
        ``n_vertices = 2 ** scale``.
    edge_factor:
        Undirected edges generated per vertex (before dedupe), Graph500
        convention.
    a, b, c:
        Recursive quadrant probabilities (``d = 1 - a - b - c``).  The
        defaults are the Graph500 values, which produce the heavy-tailed
        degree distributions typical of web crawls such as WDC12.
    seed:
        RNG seed; generation is deterministic.
    """
    if scale < 1 or scale > 28:
        raise GraphError("rmat scale must be in [1, 28]")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphError("rmat probabilities must be non-negative")
    n = 1 << scale
    m = n * edge_factor
    rng = np.random.default_rng(seed)

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Vectorised bit-by-bit quadrant drawing: at each of the `scale` levels
    # every edge independently picks one of the four quadrants.
    p_row = a + b          # probability the row bit is 0
    p_col_row0 = a / (a + b) if (a + b) > 0 else 0.0
    p_col_row1 = c / (c + d) if (c + d) > 0 else 0.0
    for _ in range(scale):
        u = rng.random(m)
        row_bit = (u >= p_row).astype(np.int64)
        v = rng.random(m)
        col_threshold = np.where(row_bit == 0, p_col_row0, p_col_row1)
        col_bit = (v >= col_threshold).astype(np.int64)
        src = (src << 1) | row_bit
        dst = (dst << 1) | col_bit

    # random vertex relabelling removes the artificial id-locality of RMAT
    perm = rng.permutation(n)
    src, dst = perm[src], perm[dst]
    edges = np.stack([src, dst], axis=1)
    return CSRGraph.from_edges(n, edges, np.ones(m, dtype=np.int64))


def preferential_attachment_graph(
    n_vertices: int,
    attach: int = 4,
    *,
    seed: int = 0,
) -> CSRGraph:
    """Barabási–Albert preferential attachment (citation-graph stand-in).

    Each new vertex attaches to ``attach`` existing vertices chosen
    proportionally to degree, via the standard repeated-endpoint trick
    (sampling uniformly from the running endpoint list).
    """
    if n_vertices < 2:
        raise GraphError("need at least 2 vertices")
    attach = min(attach, n_vertices - 1)
    rng = np.random.default_rng(seed)
    # endpoint pool: each edge contributes both endpoints
    src_list = []
    dst_list = []
    pool = list(range(attach))  # initial clique-ish core seeds the pool
    for v in range(attach, n_vertices):
        # sample `attach` distinct targets from the pool (degree-biased)
        targets: set[int] = set()
        while len(targets) < attach:
            pick = pool[rng.integers(0, len(pool))] if pool else int(
                rng.integers(0, v)
            )
            if pick != v:
                targets.add(pick)
        for t in targets:
            src_list.append(v)
            dst_list.append(t)
            pool.append(v)
            pool.append(t)
    edges = np.stack(
        [np.asarray(src_list, dtype=np.int64), np.asarray(dst_list, dtype=np.int64)],
        axis=1,
    )
    return CSRGraph.from_edges(
        n_vertices, edges, np.ones(edges.shape[0], dtype=np.int64)
    )


def erdos_renyi_graph(n_vertices: int, n_edges: int, *, seed: int = 0) -> CSRGraph:
    """G(n, m)-style uniform random graph (low skew baseline)."""
    if n_vertices < 2:
        raise GraphError("need at least 2 vertices")
    rng = np.random.default_rng(seed)
    # oversample to compensate for self-loop/duplicate removal
    m = int(n_edges * 1.25) + 8
    src = rng.integers(0, n_vertices, size=m, dtype=np.int64)
    dst = rng.integers(0, n_vertices, size=m, dtype=np.int64)
    keep = src != dst
    src, dst = src[keep][:n_edges * 2], dst[keep][:n_edges * 2]
    edges = np.stack([src, dst], axis=1)
    g = CSRGraph.from_edges(
        n_vertices, edges, np.ones(edges.shape[0], dtype=np.int64)
    )
    return g


def grid_graph(rows: int, cols: int, *, diagonal: bool = False) -> CSRGraph:
    """2-D lattice: vertex ``(r, c)`` is ``r * cols + c``.

    The canonical substrate for the VLSI-routing application the paper's
    introduction motivates (rectilinear Steiner trees on placement grids).
    With ``diagonal=True``, 8-connectivity is used instead of 4.
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    r, c = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    vid = (r * cols + c).astype(np.int64)
    edges = []
    # horizontal
    edges.append(np.stack([vid[:, :-1].ravel(), vid[:, 1:].ravel()], axis=1))
    # vertical
    edges.append(np.stack([vid[:-1, :].ravel(), vid[1:, :].ravel()], axis=1))
    if diagonal:
        edges.append(np.stack([vid[:-1, :-1].ravel(), vid[1:, 1:].ravel()], axis=1))
        edges.append(np.stack([vid[1:, :-1].ravel(), vid[:-1, 1:].ravel()], axis=1))
    e = np.concatenate(edges, axis=0)
    return CSRGraph.from_edges(rows * cols, e, np.ones(e.shape[0], dtype=np.int64))


def random_geometric_graph(
    n_vertices: int,
    radius: float,
    *,
    seed: int = 0,
) -> CSRGraph:
    """Unit-square random geometric graph (sensor/communication-network
    stand-in for the multicast-routing application domain)."""
    if n_vertices < 2:
        raise GraphError("need at least 2 vertices")
    rng = np.random.default_rng(seed)
    pts = rng.random((n_vertices, 2))
    # grid-bucketed neighbour search keeps this O(n) for sane radii
    cell = max(radius, 1e-9)
    gx = (pts[:, 0] / cell).astype(np.int64)
    gy = (pts[:, 1] / cell).astype(np.int64)
    buckets: dict[tuple[int, int], list[int]] = {}
    for i in range(n_vertices):
        buckets.setdefault((int(gx[i]), int(gy[i])), []).append(i)
    src_list: list[int] = []
    dst_list: list[int] = []
    r2 = radius * radius
    for (bx, by), members in buckets.items():
        cand: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                cand.extend(buckets.get((bx + dx, by + dy), []))
        cand_arr = np.asarray(cand, dtype=np.int64)
        for i in members:
            d2 = ((pts[cand_arr] - pts[i]) ** 2).sum(axis=1)
            close = cand_arr[(d2 <= r2) & (cand_arr > i)]
            src_list.extend([i] * close.size)
            dst_list.extend(close.tolist())
    if not src_list:
        # fall back to a path so the graph is usable in tests
        src = np.arange(n_vertices - 1, dtype=np.int64)
        edges = np.stack([src, src + 1], axis=1)
    else:
        edges = np.stack(
            [np.asarray(src_list, dtype=np.int64), np.asarray(dst_list, dtype=np.int64)],
            axis=1,
        )
    return CSRGraph.from_edges(
        n_vertices, edges, np.ones(edges.shape[0], dtype=np.int64)
    )
