"""Unit tests for core-algorithm components: the distributed Voronoi
program, the distance graph, and tree-edge identification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distance_graph import build_distance_graph, local_min_edge_costs
from repro.core.tree_edge import TreeEdgeProgram, walk_tree_edges
from repro.core.voronoi_visitor import VoronoiProgram
from repro.runtime.cost_model import MachineModel
from repro.runtime.engine import AsyncEngine
from repro.runtime.partition import block_partition, hash_partition
from repro.shortest_paths.voronoi import (
    NO_VERTEX,
    canonicalize_predecessors,
    compute_voronoi_cells,
)
from tests.conftest import component_seeds, make_connected_graph


def run_voronoi_program(graph, seeds, *, ranks=4, discipline="priority",
                        delegate_threshold=None, partition_fn=block_partition):
    part = partition_fn(graph, ranks, delegate_threshold=delegate_threshold)
    engine = AsyncEngine(part, MachineModel(), discipline)
    prog = VoronoiProgram(part)
    engine.run_phase("vc", prog, list(prog.initial_messages(np.asarray(seeds))))
    return prog


class TestVoronoiProgram:
    @pytest.mark.parametrize("discipline", ["fifo", "priority"])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_sequential_fixpoint(self, seed, discipline):
        g = make_connected_graph(35, 90, seed=seed + 60)
        seeds = component_seeds(g, 4, seed=seed)
        prog = run_voronoi_program(g, seeds, discipline=discipline)
        vd = compute_voronoi_cells(g, seeds)
        assert np.array_equal(prog.dist, vd.dist)
        assert np.array_equal(prog.src, vd.src)

    def test_delegates_do_not_change_fixpoint(self, skewed_graph):
        seeds = component_seeds(skewed_graph, 5, seed=1)
        plain = run_voronoi_program(skewed_graph, seeds)
        deleg = run_voronoi_program(
            skewed_graph, seeds, delegate_threshold=int(skewed_graph.avg_degree * 3)
        )
        assert np.array_equal(plain.dist, deleg.dist)
        assert np.array_equal(plain.src, deleg.src)

    def test_hash_partition_same_fixpoint(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=2)
        a = run_voronoi_program(random_graph, seeds)
        b = run_voronoi_program(random_graph, seeds, partition_fn=hash_partition)
        assert np.array_equal(a.dist, b.dist)
        assert np.array_equal(a.src, b.src)

    def test_fifo_generates_more_messages(self):
        g = make_connected_graph(60, 180, weight_high=100, seed=5)
        seeds = component_seeds(g, 4, seed=5)
        part = block_partition(g, 4)
        machine = MachineModel()
        counts = {}
        for disc in ("fifo", "priority"):
            engine = AsyncEngine(part, machine, disc)
            prog = VoronoiProgram(part)
            stats = engine.run_phase("vc", prog, list(prog.initial_messages(seeds)))
            counts[disc] = stats.n_messages
        assert counts["fifo"] >= counts["priority"]


class TestDistanceGraph:
    def test_matches_bruteforce(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=3)
        vd = compute_voronoi_cells(random_graph, seeds)
        dg = build_distance_graph(random_graph, seeds, vd.src, vd.dist)

        # brute force: min over all cross edges per cell pair
        expected: dict[tuple[int, int], int] = {}
        for u, v, w in random_graph.iter_edges():
            su, sv = int(vd.src[u]), int(vd.src[v])
            if su == NO_VERTEX or sv == NO_VERTEX or su == sv:
                continue
            key = (min(su, sv), max(su, sv))
            d = int(vd.dist[u] + w + vd.dist[v])
            expected[key] = min(expected.get(key, 1 << 60), d)

        got = {
            (int(s), int(t)): int(d)
            for s, t, d in zip(dg.cell_s, dg.cell_t, dg.dprime)
        }
        assert got == expected

    def test_bridge_endpoints_in_right_cells(self, random_graph):
        seeds = component_seeds(random_graph, 5, seed=4)
        vd = compute_voronoi_cells(random_graph, seeds)
        dg = build_distance_graph(random_graph, seeds, vd.src, vd.dist)
        for i in range(dg.n_edges):
            assert vd.src[dg.u[i]] == dg.cell_s[i]
            assert vd.src[dg.v[i]] == dg.cell_t[i]
            assert random_graph.has_edge(int(dg.u[i]), int(dg.v[i]))

    def test_single_cell_empty(self, random_graph):
        vd = compute_voronoi_cells(random_graph, [0])
        dg = build_distance_graph(random_graph, np.asarray([0]), vd.src, vd.dist)
        assert dg.n_edges == 0
        si, ti = dg.seed_indices()
        assert si.size == 0 and ti.size == 0

    def test_seed_indices(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=6)
        vd = compute_voronoi_cells(random_graph, seeds)
        dg = build_distance_graph(random_graph, seeds, vd.src, vd.dist)
        si, ti = dg.seed_indices()
        assert np.array_equal(seeds[si], dg.cell_s)
        assert np.array_equal(seeds[ti], dg.cell_t)

    def test_local_min_edge_costs(self, random_graph):
        machine = MachineModel()
        single = local_min_edge_costs(block_partition(random_graph, 1), machine)
        multi = local_min_edge_costs(block_partition(random_graph, 4), machine)
        assert single[1] == 0  # no halo messages on one rank
        assert multi[1] > 0
        assert multi[2] == multi[1] * 24  # bytes per halo record


class TestTreeEdges:
    def test_walk_equals_program(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=7)
        vd = compute_voronoi_cells(random_graph, seeds)
        pred = canonicalize_predecessors(random_graph, vd.src, vd.dist)
        dg = build_distance_graph(random_graph, seeds, vd.src, vd.dist)
        endpoints = np.concatenate([dg.u, dg.v])

        seq_edges = set(walk_tree_edges(vd.src, pred, vd.dist, endpoints))

        part = block_partition(random_graph, 4)
        prog = TreeEdgeProgram(part, vd.src, pred, vd.dist)
        engine = AsyncEngine(part, MachineModel(), "priority")
        engine.run_phase("te", prog, list(prog.initial_messages(endpoints)))
        assert set(prog.edges) == seq_edges

    def test_walk_weights_are_true_edge_weights(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=8)
        vd = compute_voronoi_cells(random_graph, seeds)
        pred = canonicalize_predecessors(random_graph, vd.src, vd.dist)
        dg = build_distance_graph(random_graph, seeds, vd.src, vd.dist)
        endpoints = np.concatenate([dg.u, dg.v])
        for u, v, w in walk_tree_edges(vd.src, pred, vd.dist, endpoints):
            assert random_graph.edge_weight(u, v) == w

    def test_seed_endpoint_contributes_nothing(self, random_graph):
        seeds = component_seeds(random_graph, 3, seed=9)
        vd = compute_voronoi_cells(random_graph, seeds)
        pred = canonicalize_predecessors(random_graph, vd.src, vd.dist)
        edges = walk_tree_edges(vd.src, pred, vd.dist, np.asarray([seeds[0]]))
        assert edges == []
