"""Property tests for the shared-memory transport (``shm_transport``).

The transport's whole contract is *byte-level fidelity*: whatever the
pickled pipe path would have delivered, the ring path must deliver
bit-identically — under wraparound, under multi-block streamed replies
decoded out of order, and under the does-not-fit fallback.  Hypothesis
drives random emission batches through both paths and compares.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.shm_transport import (
    SHM_AVAILABLE,
    ShmRing,
    pack_message_block,
    unpack_message_block,
)

pytestmark = pytest.mark.skipif(
    not SHM_AVAILABLE, reason="multiprocessing.shared_memory unavailable"
)

PROPERTY = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def emission_batch(draw, max_rows=40, max_width=4):
    """A random message batch shaped like one superstep's emissions:
    a few 1-D arrays (src ranks, targets) plus a 2-D payload block."""
    rows = draw(st.integers(min_value=0, max_value=max_rows))
    width = draw(st.integers(min_value=1, max_value=max_width))
    ints = st.integers(min_value=-(2**62), max_value=2**62)
    src = np.asarray(
        draw(st.lists(ints, min_size=rows, max_size=rows)), dtype=np.int64
    )
    targets = np.asarray(
        draw(st.lists(ints, min_size=rows, max_size=rows)), dtype=np.int64
    )
    payload = np.asarray(
        draw(
            st.lists(
                st.lists(ints, min_size=width, max_size=width),
                min_size=rows,
                max_size=rows,
            )
        ),
        dtype=np.int64,
    ).reshape(rows, width)
    return src, targets, payload


def widths_of(arrays):
    return tuple(1 if a.ndim == 1 else a.shape[1] for a in arrays)


def assert_batches_equal(got, want):
    """Value equality under the transport's shape contract: a width-1
    column always decodes 1-D, so an ``(n, 1)`` input legitimately
    comes back as ``(n,)`` — same bytes, flattened."""
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert a.dtype == np.int64
        assert np.array_equal(a.reshape(b.shape), b)


@pytest.fixture
def ring():
    r = ShmRing(4096 * 8)
    yield r
    r.close(unlink=True)


class TestRoundTrip:
    @PROPERTY
    @given(emission_batch())
    def test_shm_equals_pickled(self, batch):
        """Bit-equality of the two descriptor forms on random batches —
        the transport-preserves-parity clause at the byte level."""
        ring = ShmRing(64 * 1024)
        try:
            widths = widths_of(batch)
            shm_blob = pack_message_block(ring, batch)
            raw_blob = pack_message_block(None, batch)
            assert shm_blob[0] == "shm" and raw_blob[0] == "raw"
            # copy=True: the decoded arrays must not keep the segment
            # alive past the close below (the engine's streamed-group
            # decode does the same)
            via_shm = unpack_message_block(ring, shm_blob, widths, copy=True)
            via_raw = unpack_message_block(None, raw_blob, widths)
            assert_batches_equal(via_shm, batch)
            assert_batches_equal(via_raw, batch)
            # the shape contract: width-1 columns decode 1-D, wider 2-D
            assert [a.ndim for a in via_shm] == [
                1 if w == 1 else 2 for w in widths
            ]
        finally:
            ring.close(unlink=True)

    @PROPERTY
    @given(st.lists(emission_batch(max_rows=20), min_size=1, max_size=8))
    def test_sequential_batches_round_trip(self, batches):
        """Back-to-back packs (the per-superstep lockstep) each decode
        exactly, including after the ring wraps."""
        ring = ShmRing(256 * 8)  # small: forces frequent wraparound
        try:
            for batch in batches:
                blob = pack_message_block(ring, batch)
                got = unpack_message_block(
                    ring, blob, widths_of(batch), copy=True
                )
                assert_batches_equal(got, batch)
        finally:
            ring.close(unlink=True)


class TestWraparound:
    def test_head_rewinds_to_zero(self, ring):
        """A block that would run past the end restarts at offset 0 —
        never a partial straddling write."""
        a = np.arange(ring.nslots - 3, dtype=np.int64)
        first = pack_message_block(ring, [a])
        assert first[:2] == ("shm", 0)
        b = np.asarray([7, 8, 9, 10], dtype=np.int64)
        second = pack_message_block(ring, [b])
        assert second[:2] == ("shm", 0)  # wrapped, not offset len(a)
        assert np.array_equal(
            unpack_message_block(ring, second, (1,))[0], b
        )

    def test_oversized_block_falls_back_to_raw(self, ring):
        a = np.arange(ring.nslots + 1, dtype=np.int64)
        blob = pack_message_block(ring, [a])
        assert blob[0] == "raw"
        assert np.array_equal(unpack_message_block(ring, blob, (1,))[0], a)

    def test_no_wrap_refuses_overflow(self, ring):
        """``wrap=False`` (multi-block streamed replies) never rewinds
        over a live block: the overflowing pack degrades to raw."""
        a = np.arange(ring.nslots - 2, dtype=np.int64)
        assert pack_message_block(ring, [a], wrap=False)[0] == "shm"
        b = np.arange(8, dtype=np.int64)
        blob = pack_message_block(ring, [b], wrap=False)
        assert blob[0] == "raw"
        assert np.array_equal(unpack_message_block(ring, blob, (1,))[0], b)
        # the first block is still intact at its original offset
        assert np.array_equal(ring.view(0, a.size, 1).ravel(), a)


class TestDescriptorOrdering:
    @PROPERTY
    @given(
        st.lists(emission_batch(max_rows=12), min_size=2, max_size=6),
        st.randoms(use_true_random=False),
    )
    def test_out_of_order_decode(self, batches, rnd):
        """A streamed multi-block reply (one descriptor per coalesced
        superstep, ``wrap=False`` after a rewind) decodes correctly in
        *any* completion order — descriptors are self-describing, so
        nothing depends on reading them head-first."""
        ring = ShmRing(64 * 1024)
        try:
            ring.rewind()
            blobs = [
                pack_message_block(ring, batch, wrap=False)
                for batch in batches
            ]
            order = list(range(len(batches)))
            rnd.shuffle(order)
            for i in order:
                got = unpack_message_block(
                    ring, blobs[i], widths_of(batches[i]), copy=True
                )
                assert_batches_equal(got, batches[i])
        finally:
            ring.close(unlink=True)

    def test_copy_survives_overwrite(self, ring):
        """``copy=True`` detaches the arrays from the ring: a later pack
        over the same slots must not mutate them (the streamed-group
        decode contract); an uncopied view *does* alias by design."""
        a = np.asarray([1, 2, 3], dtype=np.int64)
        blob = pack_message_block(ring, [a])
        view = unpack_message_block(ring, blob, (1,))[0]
        copied = unpack_message_block(ring, blob, (1,), copy=True)[0]
        ring.rewind()
        pack_message_block(ring, [np.asarray([9, 9, 9], dtype=np.int64)])
        assert np.array_equal(copied, a)
        aliased = view.tolist()
        del view  # release the buffer export before the ring closes
        assert aliased == [9, 9, 9]


class TestRingLifecycle:
    def test_capacity_floor(self):
        with pytest.raises(ValueError, match="capacity"):
            ShmRing(7)

    def test_close_is_idempotent_and_releases(self):
        ring = ShmRing(1024)
        name = ring._shm.name
        ring.close(unlink=True)
        ring.close(unlink=True)  # second close: no-op, no raise
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_closed_ring_packs_raw(self):
        ring = ShmRing(1024)
        ring.close(unlink=True)
        a = np.arange(4, dtype=np.int64)
        blob = pack_message_block(ring, [a])
        assert blob[0] == "raw"
        assert np.array_equal(unpack_message_block(None, blob, (1,))[0], a)
