"""Cross-engine conformance harness: one matrix pins every engine.

This module is the single place the registry-wide parity contract is
spelled out and exercised.  The helpers here (``solve_with``,
``assert_counts_identical``, ``assert_conformance``) are the canonical
implementations — ``tests/test_engines.py``, ``tests/test_engine_mp.py``
and ``tests/test_native.py`` import them for their engine-specific
suites, so there is exactly one definition of "engines agree" in the
tree.

What the matrix pins, for **every registered engine** (discovered via
``engine_availability()``, so a newly registered engine joins the
matrix automatically and cannot ship unpinned):

* identical Steiner tree — same edge triples, same total weight — on
  every topology × weight-regime × rank-count cell;
* bit-identical BSP counters (``n_visits``, ``n_messages_local``,
  ``n_messages_remote``, ``bytes_sent``, ``peak_queue_total``) and
  superstep counts across the whole BSP family (``bsp``,
  ``bsp-batched``, ``bsp-mp`` at worker counts {1, 2, 4},
  ``bsp-native``), with ``sim_time`` equal to float round-off;
* ``bsp-mp`` specifically: the shared-memory transport and the pickled
  fallback produce bit-identical results *and counters*, and adaptive
  superstep coalescing preserves the logical superstep count while
  recording the physical grouping in provenance
  (``coalesced_supersteps``) — the transport-preserves-parity clause.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.core.voronoi_visitor import VoronoiProgram
from repro.graph.generators import grid_graph
from repro.graph.weights import assign_uniform_weights
from repro.runtime.engine_batched import BSPBatchedEngine
from repro.runtime.engine_mp import BSPMultiprocessEngine, fork_available
from repro.runtime.engines import available_engines, engine_availability
from repro.runtime.partition import block_partition
from repro.runtime.shm_transport import SHM_AVAILABLE
from tests.conftest import component_seeds, make_connected_graph

#: the engine counters that must match bit-for-bit across the BSP family
COUNTERS = (
    "n_visits",
    "n_messages_local",
    "n_messages_remote",
    "bytes_sent",
    "peak_queue_total",
)

#: engines that share the bulk-synchronous superstep semantics: their
#: counters are bit-identical, not merely their converged state
BSP_FAMILY = ("bsp", "bsp-batched", "bsp-mp", "bsp-native")

#: ``bsp-mp`` pool sizes the conformance matrix pins (issue clause)
WORKER_COUNTS = (1, 2, 4)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)
needs_shm = pytest.mark.skipif(
    not SHM_AVAILABLE, reason="multiprocessing.shared_memory unavailable"
)


def registered_engines() -> list[str]:
    """Every engine the registry can actually construct, in the
    deterministic listing order — the matrix's engine axis."""
    records = engine_availability()
    return [
        name
        for name in available_engines()
        if records[name]["status"] != "unavailable"
    ]


def solve_with(graph, seeds, engine, n_ranks=6, **cfg):
    """One full solve under the named engine (shared helper)."""
    return DistributedSteinerSolver(
        graph, SolverConfig(n_ranks=n_ranks, engine=engine, **cfg)
    ).solve(seeds)


def assert_counts_identical(ref_stats, stats, ref_engine, engine):
    """The bit-identical-counters contract for one phase run directly on
    two engine instances (superstep counts included)."""
    for attr in COUNTERS:
        assert getattr(ref_stats, attr) == getattr(stats, attr), attr
    assert ref_engine.n_supersteps == engine.n_supersteps
    assert stats.sim_time == pytest.approx(ref_stats.sim_time, rel=1e-9)


def assert_conformance(graph, seeds, n_ranks=6, engines=None, **cfg):
    """The full cross-engine contract on one solver instance.

    Solves with every engine in ``engines`` (default: every registered
    engine) and asserts: identical tree everywhere; bit-identical phase
    counters within the BSP family (``sim_time`` to round-off); and
    identical walk-phase message counts across *all* engines (the
    tree-edge walk is order-independent — the Voronoi phase's counts
    are legitimately schedule-dependent, the paper's own Fig. 5/6
    effect).  Returns the per-engine results for extra assertions.
    """
    names = list(engines) if engines is not None else registered_engines()
    results = {
        engine: solve_with(graph, seeds, engine, n_ranks=n_ranks, **cfg)
        for engine in names
    }
    ref = next(iter(results.values()))
    for engine, res in results.items():
        assert np.array_equal(ref.edges, res.edges), engine
        assert ref.total_distance == res.total_distance, engine
    family = [n for n in names if n in BSP_FAMILY]
    if len(family) > 1:
        bsp_ref = results[family[0]]
        for other in family[1:]:
            for p_ref, p_other in zip(
                bsp_ref.phases, results[other].phases
            ):
                for attr in COUNTERS:
                    assert getattr(p_ref, attr) == getattr(p_other, attr), (
                        other,
                        p_ref.name,
                        attr,
                    )
                assert p_other.sim_time == pytest.approx(
                    p_ref.sim_time, rel=1e-9
                ), (other, p_ref.name)
    walk = [res.phases[5] for res in results.values()]
    assert len({(p.n_messages_local, p.n_messages_remote) for p in walk}) == 1
    return results


# --------------------------------------------------------------------- #
# the matrix axes
# --------------------------------------------------------------------- #
def _grid(weight_regime):
    g = grid_graph(6, 6)
    return g if weight_regime == "unit" else assign_uniform_weights(
        g, (1, 20), seed=51
    )


def _er(weight_regime):
    g = make_connected_graph(40, 110, seed=52)
    return (
        assign_uniform_weights(g, (1, 1), seed=53)
        if weight_regime == "unit"
        else g
    )


def _chain(weight_regime):
    # a long path: maximally deep supersteps with tiny inboxes — the
    # regime where bsp-mp's adaptive coalescing engages hardest
    g = grid_graph(1, 48)
    return g if weight_regime == "unit" else assign_uniform_weights(
        g, (1, 9), seed=54
    )


TOPOLOGIES = {"grid": _grid, "er-random": _er, "chain": _chain}
WEIGHT_REGIMES = ("unit", "uniform")
RANK_COUNTS = (1, 6)

MATRIX = [
    pytest.param(topo, regime, n_ranks, id=f"{topo}-{regime}-r{n_ranks}")
    for topo in TOPOLOGIES
    for regime in WEIGHT_REGIMES
    for n_ranks in RANK_COUNTS
]


class TestConformanceMatrix:
    """Every registered engine, across topology × weights × ranks."""

    @pytest.mark.parametrize("topo,regime,n_ranks", MATRIX)
    def test_cell(self, topo, regime, n_ranks):
        graph = TOPOLOGIES[topo](regime)
        seeds = component_seeds(graph, 4, seed=55)
        assert_conformance(graph, seeds, n_ranks=n_ranks, workers=2)

    def test_matrix_covers_every_registered_engine(self):
        """The engine axis is *discovered*, never hand-listed: a new
        registry entry joins the matrix or this test names it."""
        names = registered_engines()
        assert set(names) >= {
            "async-heap",
            "bsp",
            "bsp-batched",
            "bsp-mp",
            "bsp-native",
        }
        # and the family split is total over the discovered axis
        assert all(n in BSP_FAMILY or n == "async-heap" for n in names)


@needs_fork
class TestWorkerCountConformance:
    """``bsp-mp`` at every pinned pool size, on both transports."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("shm", [True, False], ids=["shm", "pickle"])
    def test_counters_and_tree(self, random_graph, workers, shm):
        if shm and not SHM_AVAILABLE:
            pytest.skip("multiprocessing.shared_memory unavailable")
        seeds = component_seeds(random_graph, 5, seed=56)
        results = assert_conformance(
            random_graph,
            seeds,
            n_ranks=8,
            engines=("bsp", "bsp-batched", "bsp-mp"),
            workers=workers,
            shm_transport=shm,
        )
        mp = results["bsp-mp"]
        if workers > 1:
            assert mp.provenance["transport"] == (
                "shm" if shm else "pickle"
            )
        else:
            assert "transport" not in mp.provenance

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_superstep_counts_engine_level(self, random_graph, workers):
        """Direct engine runs: n_supersteps (logical) identical to
        bsp-batched at every worker count, shm transport on."""
        seeds = np.asarray(component_seeds(random_graph, 5, seed=57))
        part = block_partition(random_graph, 8)

        def run(engine):
            prog = VoronoiProgram(part)
            try:
                stats = engine.run_phase(
                    "Voronoi Cell", prog, list(prog.initial_messages(seeds))
                )
            finally:
                engine.close()
            return prog, stats

        ref_engine = BSPBatchedEngine(part)
        ref_prog, ref_stats = run(ref_engine)
        mp_engine = BSPMultiprocessEngine(part, workers=workers)
        mp_prog, mp_stats = run(mp_engine)
        assert np.array_equal(ref_prog.src, mp_prog.src)
        assert np.array_equal(ref_prog.dist, mp_prog.dist)
        assert_counts_identical(ref_stats, mp_stats, ref_engine, mp_engine)


@needs_fork
@needs_shm
class TestTransportParity:
    """shm rings vs pickled pipes: same bytes, same everything."""

    def test_bit_identity_across_transports(self, random_graph):
        seeds = component_seeds(random_graph, 5, seed=58)
        shm = solve_with(
            random_graph, seeds, "bsp-mp", n_ranks=8, workers=2,
            shm_transport=True,
        )
        pickled = solve_with(
            random_graph, seeds, "bsp-mp", n_ranks=8, workers=2,
            shm_transport=False,
        )
        assert np.array_equal(shm.edges, pickled.edges)
        assert shm.total_distance == pickled.total_distance
        for p_s, p_p in zip(shm.phases, pickled.phases):
            for attr in COUNTERS:
                assert getattr(p_s, attr) == getattr(p_p, attr), (
                    p_s.name,
                    attr,
                )
        assert shm.provenance["transport"] == "shm"
        assert pickled.provenance["transport"] == "pickle"
        # coalescing provenance (a *physical* grouping record) is the
        # only other key allowed to differ between the two runs
        same_keys = set(shm.provenance) ^ set(pickled.provenance)
        assert same_keys <= {"coalesced_supersteps", "transport"}


@needs_fork
class TestCoalescingConformance:
    """Grouped supersteps change barriers, never logical counters."""

    def test_logical_counters_invariant(self):
        # a long chain drives many tiny supersteps: coalescing engages
        graph = grid_graph(1, 48)
        seeds = [0, 47]
        grouped = solve_with(
            graph, seeds, "bsp-mp", n_ranks=6, workers=2,
            coalesce_threshold=4096, coalesce_max=8,
        )
        barriered = solve_with(
            graph, seeds, "bsp-mp", n_ranks=6, workers=2, coalesce_max=1,
        )
        batched = solve_with(graph, seeds, "bsp-batched", n_ranks=6)
        assert np.array_equal(grouped.edges, barriered.edges)
        assert np.array_equal(grouped.edges, batched.edges)
        for p_g, p_b, p_ref in zip(
            grouped.phases, barriered.phases, batched.phases
        ):
            for attr in COUNTERS:
                assert (
                    getattr(p_g, attr)
                    == getattr(p_b, attr)
                    == getattr(p_ref, attr)
                ), (p_g.name, attr)
        assert grouped.provenance["coalesced_supersteps"] > 0
        assert "coalesced_supersteps" not in barriered.provenance

    def test_coalescing_preserves_n_supersteps(self):
        """Engine-level: the logical superstep count is identical with
        grouping on and off (provenance records grouping separately)."""
        graph = grid_graph(1, 48)
        part = block_partition(graph, 6)
        seeds = np.asarray([0, 47])
        counts = {}
        for label, kwargs in {
            "grouped": dict(coalesce_threshold=4096, coalesce_max=8),
            "one-per-barrier": dict(coalesce_max=1),
        }.items():
            engine = BSPMultiprocessEngine(part, workers=2, **kwargs)
            prog = VoronoiProgram(part)
            try:
                engine.run_phase(
                    "Voronoi Cell", prog, list(prog.initial_messages(seeds))
                )
            finally:
                engine.close()
            counts[label] = engine.n_supersteps
            if label == "grouped":
                assert engine.coalesced_supersteps > 0
            else:
                assert engine.coalesced_supersteps == 0
        assert counts["grouped"] == counts["one-per-barrier"]
