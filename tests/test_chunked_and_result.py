"""Tests for chunked collectives (§V-F option) and the result API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from tests.conftest import component_seeds, make_connected_graph


@pytest.fixture(scope="module")
def instance():
    g = make_connected_graph(60, 160, seed=900)
    seeds = component_seeds(g, 8, seed=900)
    return g, seeds


class TestChunkedCollectives:
    def test_same_tree_any_chunking(self, instance):
        g, seeds = instance
        baseline = DistributedSteinerSolver(
            g, SolverConfig(n_ranks=8)
        ).solve(seeds)
        for chunk in (1, 5, 100, 10_000):
            res = DistributedSteinerSolver(
                g, SolverConfig(n_ranks=8, collective_chunk_elements=chunk)
            ).solve(seeds)
            assert np.array_equal(res.edges, baseline.edges)

    def test_chunking_slows_collectives(self, instance):
        g, seeds = instance
        single = DistributedSteinerSolver(
            g, SolverConfig(n_ranks=8)
        ).solve(seeds)
        chunked = DistributedSteinerSolver(
            g, SolverConfig(n_ranks=8, collective_chunk_elements=2)
        ).solve(seeds)
        coll = lambda r: r.phase_time("Global Min Dist. Edge") + r.phase_time(
            "Global Edge Pruning"
        )
        assert coll(chunked) > coll(single)

    def test_chunking_bounds_memory(self, instance):
        g, seeds = instance
        single = DistributedSteinerSolver(
            g, SolverConfig(n_ranks=8)
        ).solve(seeds)
        chunked = DistributedSteinerSolver(
            g, SolverConfig(n_ranks=8, collective_chunk_elements=3)
        ).solve(seeds)
        assert chunked.memory.en_buffer_bytes < single.memory.en_buffer_bytes

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            SolverConfig(collective_chunk_elements=0)


class TestResultAPI:
    def test_vertices_includes_isolated_seed(self, instance):
        g, seeds = instance
        res = DistributedSteinerSolver(g, SolverConfig(n_ranks=4)).solve(seeds)
        verts = set(res.vertices().tolist())
        assert set(seeds.tolist()) <= verts

    def test_edge_rows_sorted_and_unique(self, instance):
        g, seeds = instance
        res = DistributedSteinerSolver(g, SolverConfig(n_ranks=4)).solve(seeds)
        rows = [tuple(r) for r in res.edges[:, :2].tolist()]
        assert rows == sorted(rows)
        assert len(set(rows)) == len(rows)
        assert (res.edges[:, 0] < res.edges[:, 1]).all()

    def test_message_count_sums_phases(self, instance):
        g, seeds = instance
        res = DistributedSteinerSolver(g, SolverConfig(n_ranks=4)).solve(seeds)
        assert res.message_count() == sum(p.n_messages for p in res.phases)

    def test_sim_time_is_phase_sum(self, instance):
        g, seeds = instance
        res = DistributedSteinerSolver(g, SolverConfig(n_ranks=4)).solve(seeds)
        assert res.sim_time() == pytest.approx(
            sum(p.sim_time for p in res.phases)
        )
