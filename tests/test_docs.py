"""The documentation layer: docs-site integrity + docstring doctests.

CI builds the site with ``mkdocs build --strict`` (every warning — a
broken nav entry or unresolvable internal link — fails the pipeline).
mkdocs is deliberately not a runtime dependency, so this module
approximates the same checks with the stdlib: tier-1 catches broken
cross-references locally, the strict build catches them again (plus
anything mkdocs-specific) in CI.

The doctest half is the contract-docstring spot-check for the runtime
modules: the examples embedded in ``repro.runtime.engines``,
``engine_batched`` and ``engine_mp`` must execute.
"""

from __future__ import annotations

import doctest
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOCS = ROOT / "docs"

#: [text](target) — excluding images and external/absolute targets
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _strip_code_blocks(text: str) -> str:
    """Fenced code blocks may contain ``[x](y)``-shaped noise."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def _slugify(heading: str) -> str:
    """The toc-extension slug for a heading (good enough for ours)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return re.sub(r"[\s]+", "-", slug).strip("-")


def nav_entries() -> list[str]:
    """``*.md`` paths referenced from the mkdocs nav."""
    text = (ROOT / "mkdocs.yml").read_text()
    nav = text[text.index("\nnav:") :]
    return re.findall(r":\s*([\w\-/]+\.md)\s*$", nav, flags=re.MULTILINE)


class TestDocsSite:
    def test_mkdocs_config_exists_and_is_strict(self):
        text = (ROOT / "mkdocs.yml").read_text()
        assert "strict: true" in text, "CI relies on --strict semantics"

    def test_nav_entries_exist(self):
        entries = nav_entries()
        assert entries, "empty nav"
        for entry in entries:
            assert (DOCS / entry).is_file(), f"nav references missing {entry}"

    def test_no_orphan_pages(self):
        """Every page is reachable from the nav (mkdocs only warns on
        some orphans; we hold the stricter line)."""
        entries = set(nav_entries())
        pages = {p.relative_to(DOCS).as_posix() for p in DOCS.rglob("*.md")}
        assert pages == entries

    @pytest.mark.parametrize(
        "page", sorted(p.name for p in DOCS.glob("*.md"))
    )
    def test_internal_links_resolve(self, page):
        """Relative links (and their anchors) must point at real pages
        and real headings — what `mkdocs build --strict` enforces."""
        text = _strip_code_blocks((DOCS / page).read_text())
        for target in _LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path, _, anchor = target.partition("#")
            dest = DOCS / page if not path else (DOCS / page).parent / path
            assert dest.is_file(), f"{page}: broken link -> {target}"
            if anchor:
                slugs = {
                    _slugify(h)
                    for h in _HEADING_RE.findall(
                        _strip_code_blocks(dest.read_text())
                    )
                }
                assert anchor in slugs, f"{page}: broken anchor -> {target}"

    def test_repo_paths_mentioned_in_docs_exist(self):
        """Docs cite repo files (tests, baselines, workflows); keep the
        citations honest."""
        cited = set()
        for p in DOCS.glob("*.md"):
            cited |= set(
                re.findall(
                    r"`((?:tests|benchmarks|src)/[\w\-./]+?\.(?:py|json))`",
                    p.read_text(),
                )
            )
        assert cited, "expected at least one repo-file citation"
        for rel in sorted(cited):
            assert (ROOT / rel).is_file(), f"docs cite missing file {rel}"

    def test_docs_mention_the_engine_matrix(self):
        """The architecture/engines pages must document all registered
        engines and backends — regenerate the docs when registering."""
        from repro.runtime.engines import available_engines
        from repro.shortest_paths.backends import available_backends

        engines_page = (DOCS / "engines.md").read_text()
        for name in available_engines():
            assert f"`{name}`" in engines_page, name
        backends_page = (DOCS / "backends.md").read_text()
        for name in available_backends():
            assert f"`{name}`" in backends_page, name


class TestDoctests:
    """The CI doctest spot-check, mirrored locally."""

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.runtime.engines",
            "repro.runtime.engine_batched",
            "repro.runtime.engine_mp",
        ],
    )
    def test_runtime_module_doctests(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.attempted > 0, f"{module_name}: no doctests found"
        assert results.failed == 0
