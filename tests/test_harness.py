"""Tests for the harness: datasets, reporting, registry, CLI."""

from __future__ import annotations

import pytest

from repro.harness.datasets import DATASETS, SEED_COUNTS, load_dataset
from repro.harness.registry import EXPERIMENTS, get_runner, run_experiment
from repro.harness.reporting import (
    fmt_bytes,
    fmt_si,
    fmt_time,
    render_stacked,
    render_table,
)


class TestDatasets:
    def test_all_eight_present(self):
        assert set(DATASETS) == {
            "WDC", "CLW", "UKW", "FRS", "LVJ", "PTN", "MCO", "CTS",
        }

    def test_relative_size_ordering(self):
        sizes = {name: load_dataset(name).n_arcs for name in DATASETS}
        # WDC is the biggest; CTS the smallest; the web graphs descend
        assert sizes["WDC"] == max(sizes.values())
        assert sizes["CTS"] == min(sizes.values())
        assert sizes["WDC"] > sizes["CLW"] > sizes["UKW"] > sizes["FRS"]
        assert sizes["FRS"] > sizes["LVJ"] > sizes["CTS"]

    def test_weight_ranges_match_table3(self):
        for name, spec in DATASETS.items():
            g = load_dataset(name)
            assert g.weights.min() >= spec.weight_range.low
            assert g.weights.max() <= spec.weight_range.high

    def test_caching(self):
        assert load_dataset("CTS") is load_dataset("CTS")
        assert load_dataset("cts") is load_dataset("CTS")  # case-insensitive

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("NOPE")

    def test_seed_count_mapping(self):
        assert SEED_COUNTS == {10: 10, 100: 30, 1000: 100, 10000: 300}

    def test_web_graphs_are_skewed(self):
        for name in ("WDC", "CLW", "UKW", "FRS"):
            g = load_dataset(name)
            assert g.max_degree > 5 * g.avg_degree, name


class TestReporting:
    def test_fmt_time_units(self):
        assert fmt_time(5e-7).endswith("us")
        assert fmt_time(0.005).endswith("ms")
        assert fmt_time(3.0) == "3.0s"
        assert fmt_time(600).endswith("m")
        assert fmt_time(7300).endswith("h")
        assert fmt_time(-3.0) == "-3.0s"

    def test_fmt_si(self):
        assert fmt_si(1_500) == "1.5K"
        assert fmt_si(2_000_000) == "2.0M"
        assert fmt_si(3_100_000_000) == "3.1B"
        assert fmt_si(12) == "12"

    def test_fmt_bytes(self):
        assert fmt_bytes(100) == "100B"
        assert fmt_bytes(10 << 10) == "10.0KB"
        assert fmt_bytes(3 << 30) == "3.0GB"

    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        # all data lines equal width
        assert len(lines[3]) == len(lines[4])

    def test_render_stacked(self):
        out = render_stacked("label", {"phase A": 0.75, "phase B": 0.25})
        assert "label" in out
        assert out.count("|") == 2

    def test_render_stacked_zero_total(self):
        out = render_stacked("empty", {"phase": 0.0})
        assert "phase" in out


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        # every evaluation table and figure has an entry
        for exp_id in (
            "table1", "fig3", "fig4", "table4", "fig5", "fig6", "fig7",
            "table5", "fig8", "table6", "table7", "fig9",
        ):
            assert exp_id in EXPERIMENTS

    def test_get_runner_resolves(self):
        fn = get_runner("table3")
        assert callable(fn)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_runner("fig99")
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestCLI:
    def test_list(self, capsys):
        from repro.harness.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig9" in out

    def test_solve(self, capsys):
        from repro.harness.cli import main

        assert main(["solve", "--dataset", "CTS", "--seeds", "5"]) == 0
        out = capsys.readouterr().out
        assert "SteinerTree" in out
        assert "Voronoi Cell" in out

    def test_run_quick_experiment(self, capsys):
        from repro.harness.cli import main

        assert main(["run", "table3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Dataset characteristics" in out

    def test_rejects_unknown_experiment(self):
        from repro.harness.cli import main

        with pytest.raises(SystemExit):
            main(["run", "not-an-experiment"])
