"""Tests for the tree path-query API on SteinerTreeResult."""

from __future__ import annotations

import pytest

from repro.core.sequential import sequential_steiner_tree
from repro.shortest_paths.dijkstra import dijkstra
from tests.conftest import component_seeds, make_connected_graph


@pytest.fixture(scope="module")
def tree_instance():
    g = make_connected_graph(50, 140, seed=4000)
    seeds = component_seeds(g, 6, seed=40)
    return g, seeds, sequential_steiner_tree(g, seeds)


class TestPathBetween:
    def test_path_endpoints(self, tree_instance):
        _, seeds, res = tree_instance
        path = res.path_between(int(seeds[0]), int(seeds[-1]))
        assert path[0] == int(seeds[0])
        assert path[-1] == int(seeds[-1])

    def test_consecutive_vertices_are_tree_edges(self, tree_instance):
        _, seeds, res = tree_instance
        edge_set = {(int(u), int(v)) for u, v, _ in res.edges}
        path = res.path_between(int(seeds[0]), int(seeds[1]))
        for u, v in zip(path, path[1:]):
            assert (min(u, v), max(u, v)) in edge_set

    def test_path_is_simple(self, tree_instance):
        _, seeds, res = tree_instance
        path = res.path_between(int(seeds[0]), int(seeds[2]))
        assert len(path) == len(set(path))

    def test_same_vertex(self, tree_instance):
        _, seeds, res = tree_instance
        assert res.path_between(int(seeds[0]), int(seeds[0])) == [int(seeds[0])]

    def test_symmetric(self, tree_instance):
        _, seeds, res = tree_instance
        fwd = res.path_between(int(seeds[0]), int(seeds[3]))
        bwd = res.path_between(int(seeds[3]), int(seeds[0]))
        assert fwd == bwd[::-1]

    def test_missing_vertex_raises(self, tree_instance):
        g, seeds, res = tree_instance
        outside = next(
            v for v in range(g.n_vertices)
            if v not in set(res.vertices().tolist())
        )
        with pytest.raises(KeyError):
            res.path_between(int(seeds[0]), outside)


class TestPathDistance:
    def test_tree_distance_at_least_graph_distance(self, tree_instance):
        g, seeds, res = tree_instance
        dist, _ = dijkstra(g, int(seeds[0]))
        for t in seeds[1:]:
            assert res.path_distance(int(seeds[0]), int(t)) >= int(dist[t])

    def test_all_seed_pairs_reachable(self, tree_instance):
        _, seeds, res = tree_instance
        for a in seeds:
            for b in seeds:
                assert res.path_distance(int(a), int(b)) >= 0

    def test_distance_is_edge_sum(self, tree_instance):
        _, seeds, res = tree_instance
        a, b = int(seeds[0]), int(seeds[1])
        path = res.path_between(a, b)
        total = res.path_distance(a, b)
        lookup = {(int(u), int(v)): int(w) for u, v, w in res.edges}
        manual = sum(
            lookup[(min(u, v), max(u, v))] for u, v in zip(path, path[1:])
        )
        assert total == manual
