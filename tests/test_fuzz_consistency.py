"""Fuzz-style cross-configuration consistency: on a battery of random
graphs, every solver configuration must produce the identical tree, and
the tree must satisfy the approximation bound wherever the exact answer
is computable.

This is the heavyweight end of the agreement testing pyramid — the
cheap per-feature checks live in test_solver.py; here the configuration
*matrix* is exercised jointly on skewed and tie-heavy inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import exact_steiner_tree
from repro.core.config import SolverConfig
from repro.core.sequential import sequential_steiner_tree
from repro.core.solver import DistributedSteinerSolver
from repro.graph.connectivity import largest_component_vertices
from repro.graph.generators import rmat_graph
from repro.graph.weights import assign_uniform_weights
from repro.validation import validate_steiner_tree
from tests.conftest import component_seeds, make_connected_graph

CONFIG_MATRIX = [
    SolverConfig(n_ranks=1),
    SolverConfig(n_ranks=6, discipline="fifo"),
    SolverConfig(n_ranks=6, discipline="priority"),
    SolverConfig(n_ranks=6, partition="hash"),
    SolverConfig(n_ranks=6, delegate_threshold=6),
    SolverConfig(n_ranks=6, bsp=True),
    SolverConfig(n_ranks=6, aggregate_remote_messages=True),
    SolverConfig(n_ranks=6, collective_chunk_elements=3),
    SolverConfig(n_ranks=6, bsp=True, delegate_threshold=5),
    SolverConfig(
        n_ranks=11,
        discipline="fifo",
        partition="hash",
        delegate_threshold=5,
        aggregate_remote_messages=True,
    ),
]


@pytest.mark.parametrize("trial", range(6))
def test_configuration_matrix_agreement(trial):
    """All nine configurations produce the bit-identical tree."""
    g = make_connected_graph(
        45, 130, weight_high=7 if trial % 2 else 40, seed=trial + 1000
    )
    seeds = component_seeds(g, 4 + trial % 4, seed=trial)
    reference = sequential_steiner_tree(g, seeds)
    validate_steiner_tree(g, seeds, reference.edges)
    for cfg in CONFIG_MATRIX:
        res = DistributedSteinerSolver(g, cfg).solve(seeds)
        assert np.array_equal(res.edges, reference.edges), cfg


@pytest.mark.parametrize("trial", range(3))
def test_skewed_graph_agreement(trial):
    """RMAT hubs + tie-heavy small weights stress delegates and order."""
    g = rmat_graph(7, 6, seed=trial + 50)
    g = assign_uniform_weights(g, (1, 3), seed=trial + 51)
    comp = largest_component_vertices(g)
    rng = np.random.default_rng(trial)
    seeds = np.sort(rng.choice(comp, size=6, replace=False))
    reference = sequential_steiner_tree(g, seeds)
    for cfg in CONFIG_MATRIX[:6]:
        res = DistributedSteinerSolver(g, cfg).solve(seeds)
        assert np.array_equal(res.edges, reference.edges), cfg


@pytest.mark.parametrize("trial", range(4))
def test_bound_versus_exact(trial):
    g = make_connected_graph(28, 70, seed=trial + 2000)
    seeds = component_seeds(g, 5, seed=trial)
    opt = exact_steiner_tree(g, seeds)
    for cfg in (CONFIG_MATRIX[0], CONFIG_MATRIX[2], CONFIG_MATRIX[5]):
        res = DistributedSteinerSolver(g, cfg).solve(seeds)
        assert opt.total_distance <= res.total_distance <= 2 * opt.total_distance


def test_seed_order_irrelevant(random_graph):
    """Permuting the input seed order must not change anything."""
    seeds = component_seeds(random_graph, 6, seed=3)
    shuffled = seeds[::-1]
    a = sequential_steiner_tree(random_graph, seeds)
    b = sequential_steiner_tree(random_graph, shuffled)
    assert np.array_equal(a.edges, b.edges)


def test_vertex_relabelling_preserves_weight():
    """Solving on a relabelled copy gives a tree of identical weight."""
    g = make_connected_graph(40, 110, seed=3000)
    seeds = component_seeds(g, 5, seed=30)
    base = sequential_steiner_tree(g, seeds)

    rng = np.random.default_rng(9)
    perm = rng.permutation(g.n_vertices)
    src, dst, w = g.edge_array()
    import numpy as _np

    from repro.graph.csr import CSRGraph

    g2 = CSRGraph.from_edges(
        g.n_vertices, _np.stack([perm[src], perm[dst]], axis=1), w
    )
    res = sequential_steiner_tree(g2, perm[seeds])
    assert res.total_distance == base.total_distance
