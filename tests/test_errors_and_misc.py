"""Tests for the exception hierarchy, engine aggregation, and the
EXPERIMENTS.md generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    ConvergenceError,
    DisconnectedSeedsError,
    GraphError,
    PartitionError,
    ReproError,
    SeedError,
    SimulationError,
    ValidationError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            SeedError,
            PartitionError,
            SimulationError,
            ConvergenceError,
            ValidationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_disconnected_seeds_is_seed_error(self):
        assert issubclass(DisconnectedSeedsError, SeedError)

    def test_disconnected_seeds_message(self):
        err = DisconnectedSeedsError([5, 7])
        assert "2 seed" in str(err)
        assert err.unreached == [5, 7]

    def test_disconnected_seeds_truncates_long_lists(self):
        err = DisconnectedSeedsError(list(range(50)))
        assert "..." in str(err)

    def test_catchall(self):
        try:
            raise SeedError("nope")
        except ReproError:
            pass  # the single except clause the hierarchy promises


class TestAggregation:
    def test_same_tree_and_faster_or_equal(self):
        from repro.core.config import SolverConfig
        from repro.core.solver import DistributedSteinerSolver
        from tests.conftest import component_seeds, make_connected_graph

        g = make_connected_graph(60, 160, seed=950)
        seeds = component_seeds(g, 6, seed=950)
        plain = DistributedSteinerSolver(
            g, SolverConfig(n_ranks=8)
        ).solve(seeds)
        agg = DistributedSteinerSolver(
            g, SolverConfig(n_ranks=8, aggregate_remote_messages=True)
        ).solve(seeds)
        assert np.array_equal(plain.edges, agg.edges)

    def test_aggregation_cuts_hub_fanout_cost(self):
        """A hub fanning out to one remote rank should serve faster with
        aggregation (one transfer, shared overhead)."""
        from repro.graph.csr import CSRGraph
        from repro.runtime.cost_model import MachineModel
        from repro.runtime.engine import AsyncEngine
        from repro.runtime.partition import block_partition

        # star: hub 0 on rank 0, leaves on rank 1
        n = 32
        g = CSRGraph.from_edges(n, [(0, i) for i in range(1, n)], [1] * (n - 1))
        part = block_partition(g, 2)

        class FanOut:
            def priority(self, payload):
                return 0.0

            def visit(self, vertex, payload, emit):
                if vertex == 0:
                    for v in range(1, n):
                        emit(v, ("x",))

            def visit_rank(self, rank, payload, emit):
                raise AssertionError

        times = {}
        for agg in (False, True):
            engine = AsyncEngine(
                part, MachineModel(), "priority", aggregate_remote=agg
            )
            stats = engine.run_phase("fan", FanOut(), [(0, ("go",))])
            times[agg] = stats.sim_time
            assert stats.n_visits == n  # hub + all leaves
        assert times[True] < times[False]


class TestExperimentsMdGenerator:
    def test_quick_generation_writes_file(self, tmp_path, monkeypatch):
        import repro.harness.experiments_md as gen

        # restrict to two cheap experiments to keep the test fast (patch
        # both the registry and the generator's imported binding)
        small = {
            "table3": "repro.harness.experiments.table3_datasets",
            "fig2": "repro.harness.experiments.fig2_walkthrough",
        }
        monkeypatch.setattr("repro.harness.registry.EXPERIMENTS", small)
        monkeypatch.setattr(gen, "EXPERIMENTS", small)
        out = tmp_path / "EXP.md"
        assert gen.main(["--quick", "--out", str(out)]) == 0
        text = out.read_text()
        assert "# EXPERIMENTS" in text
        assert "table3" in text and "fig2" in text

    def test_expectations_cover_registry(self):
        from repro.harness.experiments_md import PAPER_EXPECTATIONS
        from repro.harness.registry import EXPERIMENTS

        missing = set(EXPERIMENTS) - set(PAPER_EXPECTATIONS)
        assert not missing, f"experiments without paper expectation: {missing}"
