"""Unit tests for the harness experiment scaffolding (_shared)."""

from __future__ import annotations

import numpy as np

from repro.core.result import PHASE_NAMES
from repro.harness.experiments._shared import (
    ExperimentReport,
    phase_times,
    seeds_for,
    solve,
)


class TestSolveHelper:
    def test_solve_returns_phased_result(self):
        res = solve("CTS", 5, n_ranks=4)
        assert tuple(p.name for p in res.phases) == PHASE_NAMES
        assert res.total_distance > 0

    def test_solve_respects_discipline(self):
        fifo = solve("CTS", 5, n_ranks=4, discipline="fifo")
        prio = solve("CTS", 5, n_ranks=4, discipline="priority")
        assert np.array_equal(fifo.edges, prio.edges)

    def test_solve_forwards_config_kwargs(self):
        res = solve("CTS", 5, n_ranks=4, collect_diagram=True)
        assert res.diagram is not None

    def test_seeds_for_deterministic(self):
        a = seeds_for("CTS", 6, seed=3)
        b = seeds_for("CTS", 6, seed=3)
        assert np.array_equal(a, b)
        assert a.size == 6

    def test_phase_times_keys(self):
        res = solve("CTS", 5, n_ranks=4)
        pt = phase_times(res)
        assert tuple(pt) == PHASE_NAMES
        assert all(t >= 0 for t in pt.values())


class TestExperimentReport:
    def test_render_contains_everything(self):
        rep = ExperimentReport(
            "demo", "Demo title", tables=["col\n---\n1"], notes=["a note"]
        )
        text = rep.render()
        assert "demo" in text and "Demo title" in text
        assert "col" in text and "note: a note" in text

    def test_render_without_notes(self):
        rep = ExperimentReport("x", "t")
        assert rep.render().startswith("== x: t ==")
