"""Unit tests for shortest-path kernels: Dijkstra, Bellman–Ford,
Δ-stepping, APSP-among-seeds — all cross-checked against networkx and
each other."""

from __future__ import annotations

import numpy as np
import pytest

import networkx as nx

from repro.errors import GraphError, SeedError
from repro.shortest_paths.apsp import seed_pairs_apsp
from repro.shortest_paths.bellman_ford import bellman_ford
from repro.shortest_paths.delta_stepping import delta_stepping
from repro.shortest_paths.dijkstra import (
    INF,
    dijkstra,
    dijkstra_to_targets,
    reconstruct_path,
)
from tests.conftest import component_seeds, make_connected_graph


def nx_distances(graph, source):
    return nx.single_source_dijkstra_path_length(
        graph.to_networkx(), source, weight="weight"
    )


class TestDijkstra:
    def test_vs_networkx(self, random_graph):
        dist, _ = dijkstra(random_graph, 0)
        expected = nx_distances(random_graph, 0)
        for v in range(random_graph.n_vertices):
            if v in expected:
                assert dist[v] == expected[v]
            else:
                assert dist[v] == INF

    def test_pred_gives_tight_paths(self, random_graph):
        dist, pred = dijkstra(random_graph, 0)
        for v in range(random_graph.n_vertices):
            if v == 0 or dist[v] == INF:
                continue
            p = int(pred[v])
            assert dist[p] + random_graph.edge_weight(p, v) == dist[v]

    def test_reconstruct_path(self, weighted_grid):
        dist, pred = dijkstra(weighted_grid, 0)
        path = reconstruct_path(pred, 0, 63)
        assert path[0] == 0 and path[-1] == 63
        total = sum(
            weighted_grid.edge_weight(path[i], path[i + 1])
            for i in range(len(path) - 1)
        )
        assert total == dist[63]

    def test_reconstruct_no_path(self):
        pred = np.asarray([-1, -1], dtype=np.int64)
        with pytest.raises(GraphError, match="no path"):
            reconstruct_path(pred, 0, 1)

    def test_source_out_of_range(self, small_grid):
        with pytest.raises(GraphError):
            dijkstra(small_grid, 999)

    def test_unreachable_vertices(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges(4, [(0, 1), (2, 3)], [1, 1])
        dist, pred = dijkstra(g, 0)
        assert dist[2] == INF and dist[3] == INF
        assert pred[2] == -1


class TestDijkstraToTargets:
    def test_targets_settled(self, random_graph):
        targets = [5, 10, 15]
        dist, _ = dijkstra_to_targets(random_graph, 0, targets)
        full, _ = dijkstra(random_graph, 0)
        for t in targets:
            assert dist[t] == full[t]

    def test_target_out_of_range(self, small_grid):
        with pytest.raises(GraphError):
            dijkstra_to_targets(small_grid, 0, [999])


class TestAlternativeKernels:
    @pytest.mark.parametrize("seed", range(5))
    def test_bellman_ford_equals_dijkstra(self, seed):
        g = make_connected_graph(35, 90, seed=seed)
        d1, _ = dijkstra(g, 0)
        d2, _ = bellman_ford(g, 0)
        assert np.array_equal(d1, d2)

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("delta", [1, 3, 10, None])
    def test_delta_stepping_equals_dijkstra(self, seed, delta):
        g = make_connected_graph(30, 80, seed=seed + 50)
        d1, _ = dijkstra(g, 0)
        d2, _ = delta_stepping(g, 0, delta)
        assert np.array_equal(d1, d2)

    def test_bellman_ford_pred_tight(self, random_graph):
        dist, pred = bellman_ford(random_graph, 0)
        for v in range(random_graph.n_vertices):
            if v == 0 or dist[v] == INF:
                continue
            p = int(pred[v])
            assert dist[p] + random_graph.edge_weight(p, v) == dist[v]

    def test_delta_stepping_bad_delta(self, small_grid):
        with pytest.raises(GraphError):
            delta_stepping(small_grid, 0, 0)

    def test_bellman_ford_source_out_of_range(self, small_grid):
        with pytest.raises(GraphError):
            bellman_ford(small_grid, -1)


class TestAPSP:
    def test_vs_pairwise_networkx(self, random_graph):
        seeds = component_seeds(random_graph, 5, seed=1)
        mat = seed_pairs_apsp(random_graph, seeds)
        nxg = random_graph.to_networkx()
        for i, s in enumerate(seeds):
            for j, t in enumerate(seeds):
                if i == j:
                    assert mat[i, j] == 0
                else:
                    assert mat[i, j] == nx.dijkstra_path_length(
                        nxg, int(s), int(t), weight="weight"
                    )

    def test_symmetry(self, random_graph):
        seeds = component_seeds(random_graph, 6, seed=2)
        mat = seed_pairs_apsp(random_graph, seeds)
        assert np.array_equal(mat, mat.T)

    def test_early_exit_equivalent(self, random_graph):
        seeds = component_seeds(random_graph, 5, seed=3)
        a = seed_pairs_apsp(random_graph, seeds, early_exit=True)
        b = seed_pairs_apsp(random_graph, seeds, early_exit=False)
        assert np.array_equal(a, b)

    def test_duplicate_seeds_rejected(self, small_grid):
        with pytest.raises(SeedError):
            seed_pairs_apsp(small_grid, [0, 0, 1])

    def test_empty_seeds_rejected(self, small_grid):
        with pytest.raises(SeedError):
            seed_pairs_apsp(small_grid, [])
