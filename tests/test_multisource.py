"""Tests for the alternative multi-source Voronoi kernels (SPFA and
Δ-stepping) — they must reach the identical fixpoint as the reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.shortest_paths.multisource import (
    compute_voronoi_cells_delta_stepping,
    compute_voronoi_cells_spfa,
)
from repro.shortest_paths.voronoi import compute_voronoi_cells
from repro.validation import validate_voronoi_diagram
from tests.conftest import component_seeds, make_connected_graph

KERNELS = [
    compute_voronoi_cells_spfa,
    compute_voronoi_cells_delta_stepping,
]


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("seed", range(5))
def test_fixpoint_matches_reference(kernel, seed):
    g = make_connected_graph(35, 95, seed=seed + 700)
    seeds = component_seeds(g, 4, seed=seed)
    ref = compute_voronoi_cells(g, seeds)
    alt = kernel(g, seeds)
    assert np.array_equal(ref.src, alt.src)
    assert np.array_equal(ref.dist, alt.dist)


@pytest.mark.parametrize("kernel", KERNELS)
def test_pred_is_canonical(kernel, random_graph):
    from repro.shortest_paths.voronoi import canonicalize_predecessors

    seeds = component_seeds(random_graph, 4, seed=1)
    vd = kernel(random_graph, seeds)
    expected = canonicalize_predecessors(random_graph, vd.src, vd.dist)
    assert np.array_equal(vd.pred, expected)
    validate_voronoi_diagram(random_graph, vd)


@pytest.mark.parametrize("kernel", KERNELS)
def test_single_seed(kernel, random_graph):
    from repro.shortest_paths.dijkstra import dijkstra

    vd = kernel(random_graph, [0])
    dist, _ = dijkstra(random_graph, 0)
    assert np.array_equal(vd.dist, dist)


@pytest.mark.parametrize("delta", [1, 2, 5, 50, None])
def test_delta_stepping_insensitive_to_delta(random_graph, delta):
    seeds = component_seeds(random_graph, 4, seed=2)
    ref = compute_voronoi_cells(random_graph, seeds)
    alt = compute_voronoi_cells_delta_stepping(random_graph, seeds, delta)
    assert np.array_equal(ref.src, alt.src)
    assert np.array_equal(ref.dist, alt.dist)


def test_delta_stepping_bad_delta(random_graph):
    with pytest.raises(GraphError):
        compute_voronoi_cells_delta_stepping(random_graph, [0], 0)


@pytest.mark.parametrize("kernel", KERNELS)
def test_weight_tie_stress(kernel):
    """All-equal weights maximise tie-breaking pressure."""
    from repro.graph.generators import grid_graph

    g = grid_graph(7, 7)  # unit weights everywhere
    seeds = [0, 6, 42, 48, 24]
    ref = compute_voronoi_cells(g, seeds)
    alt = kernel(g, seeds)
    assert np.array_equal(ref.src, alt.src)
    assert np.array_equal(ref.dist, alt.dist)
    assert np.array_equal(ref.pred if alt.pred is None else alt.pred, alt.pred)
