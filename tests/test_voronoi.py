"""Unit tests for Voronoi-cell computation and predecessor
canonicalisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, SeedError
from repro.shortest_paths.dijkstra import dijkstra
from repro.shortest_paths.voronoi import (
    INF,
    NO_VERTEX,
    canonicalize_predecessors,
    compute_voronoi_cells,
)
from repro.validation import validate_voronoi_diagram
from tests.conftest import component_seeds, make_connected_graph


class TestVoronoiCells:
    def test_invariants_random_graphs(self):
        for seed in range(6):
            g = make_connected_graph(40, 100, seed=seed)
            seeds = component_seeds(g, 4, seed=seed)
            vd = compute_voronoi_cells(g, seeds)
            validate_voronoi_diagram(g, vd)

    def test_dist_is_min_over_seeds(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=9)
        vd = compute_voronoi_cells(random_graph, seeds)
        per_seed = [dijkstra(random_graph, int(s))[0] for s in seeds]
        stacked = np.stack(per_seed)
        expected = stacked.min(axis=0)
        assert np.array_equal(vd.dist, expected)

    def test_owner_is_min_id_among_closest(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=9)
        vd = compute_voronoi_cells(random_graph, seeds)
        per_seed = {int(s): dijkstra(random_graph, int(s))[0] for s in seeds}
        for v in range(random_graph.n_vertices):
            if vd.src[v] == NO_VERTEX:
                continue
            best = min(
                (int(d[v]), s) for s, d in per_seed.items()
            )
            assert (int(vd.dist[v]), int(vd.src[v])) == best

    def test_cells_partition_reached(self, random_graph):
        seeds = component_seeds(random_graph, 5, seed=2)
        vd = compute_voronoi_cells(random_graph, seeds)
        sizes = vd.cell_sizes()
        assert sum(sizes.values()) == int(vd.reached().sum())

    def test_seed_owns_itself(self, weighted_grid):
        vd = compute_voronoi_cells(weighted_grid, [0, 63])
        assert vd.src[0] == 0 and vd.dist[0] == 0
        assert vd.src[63] == 63 and vd.dist[63] == 0

    def test_single_seed_is_sssp(self, random_graph):
        vd = compute_voronoi_cells(random_graph, [0])
        dist, _ = dijkstra(random_graph, 0)
        assert np.array_equal(vd.dist, dist)
        assert (vd.src[vd.reached()] == 0).all()

    def test_path_to_seed(self, weighted_grid):
        vd = compute_voronoi_cells(weighted_grid, [0, 63])
        path = vd.path_to_seed(35)
        assert path[0] == 35
        assert path[-1] == vd.src[35]

    def test_path_to_seed_unreached(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges(4, [(0, 1), (2, 3)], [1, 1])
        vd = compute_voronoi_cells(g, [0])
        with pytest.raises(GraphError):
            vd.path_to_seed(3)

    def test_seed_validation(self, small_grid):
        with pytest.raises(SeedError):
            compute_voronoi_cells(small_grid, [])
        with pytest.raises(SeedError):
            compute_voronoi_cells(small_grid, [0, 0])
        with pytest.raises(SeedError):
            compute_voronoi_cells(small_grid, [-1])
        with pytest.raises(SeedError):
            compute_voronoi_cells(small_grid, [999])

    def test_deterministic(self, skewed_graph):
        seeds = component_seeds(skewed_graph, 6, seed=0)
        a = compute_voronoi_cells(skewed_graph, seeds)
        b = compute_voronoi_cells(skewed_graph, seeds)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.pred, b.pred)
        assert np.array_equal(a.dist, b.dist)


class TestCanonicalPredecessors:
    def test_canonical_pred_is_valid(self):
        for seed in range(4):
            g = make_connected_graph(35, 90, seed=seed + 20)
            seeds = component_seeds(g, 4, seed=seed)
            vd = compute_voronoi_cells(g, seeds)
            pred = canonicalize_predecessors(g, vd.src, vd.dist)
            vd.pred = pred
            validate_voronoi_diagram(g, vd)

    def test_canonical_pred_is_min_tight_neighbor(self, random_graph):
        seeds = component_seeds(random_graph, 3, seed=5)
        vd = compute_voronoi_cells(random_graph, seeds)
        pred = canonicalize_predecessors(random_graph, vd.src, vd.dist)
        for v in range(random_graph.n_vertices):
            if vd.src[v] == NO_VERTEX or vd.src[v] == v:
                assert pred[v] == NO_VERTEX
                continue
            tight = [
                int(u)
                for u in random_graph.neighbors(v)
                if vd.src[u] == vd.src[v]
                and vd.dist[u] != INF
                and vd.dist[u] + random_graph.edge_weight(int(u), v) == vd.dist[v]
            ]
            assert tight, f"no tight in-neighbour for {v}"
            assert pred[v] == min(tight)

    def test_canonical_pred_idempotent_under_input_pred(self, random_graph):
        # result depends only on (src, dist), not on the incoming pred
        seeds = component_seeds(random_graph, 4, seed=6)
        vd = compute_voronoi_cells(random_graph, seeds)
        p1 = canonicalize_predecessors(random_graph, vd.src, vd.dist)
        p2 = canonicalize_predecessors(random_graph, vd.src, vd.dist)
        assert np.array_equal(p1, p2)
