"""Integration tests for the solvers: sequential reference vs
distributed simulation, across configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SolverConfig
from repro.core.result import PHASE_NAMES
from repro.core.sequential import sequential_steiner_tree
from repro.core.solver import DistributedSteinerSolver, distributed_steiner_tree
from repro.errors import DisconnectedSeedsError
from repro.graph.csr import CSRGraph
from repro.shortest_paths.dijkstra import dijkstra
from repro.validation import validate_steiner_tree
from tests.conftest import component_seeds, make_connected_graph


class TestSequentialReference:
    @pytest.mark.parametrize("seed", range(6))
    def test_valid_trees(self, seed):
        g = make_connected_graph(40, 110, seed=seed)
        seeds = component_seeds(g, 5, seed=seed)
        res = sequential_steiner_tree(g, seeds)
        validate_steiner_tree(g, seeds, res.edges)
        assert res.total_distance == int(res.edges[:, 2].sum())

    def test_single_seed(self, random_graph):
        res = sequential_steiner_tree(random_graph, [3])
        assert res.n_edges == 0
        assert res.total_distance == 0
        assert list(res.vertices()) == [3]

    def test_two_seeds_equals_shortest_path(self, random_graph):
        seeds = component_seeds(random_graph, 2, seed=11)
        res = sequential_steiner_tree(random_graph, seeds)
        dist, _ = dijkstra(random_graph, int(seeds[0]))
        assert res.total_distance == int(dist[seeds[1]])

    def test_all_vertices_as_seeds_is_mst(self, random_graph):
        import networkx as nx

        seeds = np.arange(random_graph.n_vertices)
        res = sequential_steiner_tree(random_graph, seeds)
        t = nx.minimum_spanning_tree(random_graph.to_networkx(), weight="weight")
        mst_w = sum(d["weight"] for _, _, d in t.edges(data=True))
        assert res.total_distance == mst_w

    def test_disconnected_seeds_raise(self):
        g = CSRGraph.from_edges(4, [(0, 1), (2, 3)], [1, 1])
        with pytest.raises(DisconnectedSeedsError):
            sequential_steiner_tree(g, [0, 3])

    def test_diagram_attached(self, random_graph):
        seeds = component_seeds(random_graph, 3, seed=12)
        res = sequential_steiner_tree(random_graph, seeds)
        assert res.diagram is not None
        assert res.diagram.src.size == random_graph.n_vertices


class TestDistributedMatchesSequential:
    @pytest.mark.parametrize("seed", range(6))
    def test_identical_trees(self, seed):
        g = make_connected_graph(40, 110, seed=seed + 200)
        seeds = component_seeds(g, 5, seed=seed)
        ref = sequential_steiner_tree(g, seeds)
        res = distributed_steiner_tree(g, seeds, config=SolverConfig(n_ranks=4))
        assert np.array_equal(ref.edges, res.edges)
        assert ref.total_distance == res.total_distance

    @pytest.mark.parametrize(
        "config_kwargs",
        [
            {"n_ranks": 1},
            {"n_ranks": 7},
            {"n_ranks": 4, "discipline": "fifo"},
            {"n_ranks": 4, "partition": "hash"},
            {"n_ranks": 4, "delegate_threshold": 8},
            {"n_ranks": 4, "bsp": True},
        ],
    )
    def test_config_invariance(self, random_graph, config_kwargs):
        seeds = component_seeds(random_graph, 5, seed=3)
        ref = sequential_steiner_tree(random_graph, seeds)
        res = distributed_steiner_tree(
            random_graph, seeds, config=SolverConfig(**config_kwargs)
        )
        assert np.array_equal(ref.edges, res.edges)

    def test_run_to_run_determinism(self, skewed_graph):
        seeds = component_seeds(skewed_graph, 6, seed=4)
        solver = DistributedSteinerSolver(skewed_graph, SolverConfig(n_ranks=4))
        a = solver.solve(seeds)
        b = solver.solve(seeds)
        assert np.array_equal(a.edges, b.edges)
        assert a.message_count() == b.message_count()
        assert a.sim_time() == pytest.approx(b.sim_time())


class TestDistributedResult:
    def test_phase_names_and_order(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=5)
        res = distributed_steiner_tree(random_graph, seeds)
        assert tuple(p.name for p in res.phases) == PHASE_NAMES
        assert res.sim_time() > 0

    def test_phase_time_lookup(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=5)
        res = distributed_steiner_tree(random_graph, seeds)
        assert res.phase_time("Voronoi Cell") > 0
        with pytest.raises(KeyError):
            res.phase_time("nonsense")

    def test_memory_report_attached(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=6)
        res = distributed_steiner_tree(random_graph, seeds)
        assert res.memory is not None
        assert res.memory.total_bytes > 0

    def test_diagram_on_request(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=6)
        without = distributed_steiner_tree(random_graph, seeds)
        assert without.diagram is None
        with_d = distributed_steiner_tree(
            random_graph, seeds, config=SolverConfig(collect_diagram=True)
        )
        assert with_d.diagram is not None

    def test_steiner_vertices_disjoint_from_seeds(self, random_graph):
        seeds = component_seeds(random_graph, 5, seed=7)
        res = distributed_steiner_tree(random_graph, seeds)
        assert not set(res.steiner_vertices().tolist()) & set(seeds.tolist())

    def test_to_networkx(self, random_graph):
        import networkx as nx

        seeds = component_seeds(random_graph, 4, seed=8)
        res = distributed_steiner_tree(random_graph, seeds)
        t = res.to_networkx()
        assert nx.is_tree(t)
        assert all(int(s) in t for s in seeds)

    def test_summary_string(self, random_graph):
        seeds = component_seeds(random_graph, 3, seed=9)
        res = distributed_steiner_tree(random_graph, seeds)
        assert "SteinerTree" in res.summary()

    def test_disconnected_seeds_raise(self):
        g = CSRGraph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)], [1, 1, 1, 1])
        with pytest.raises(DisconnectedSeedsError) as exc:
            distributed_steiner_tree(g, [0, 5], config=SolverConfig(n_ranks=2))
        assert exc.value.unreached  # names the unreachable seeds

    def test_wall_time_recorded(self, random_graph):
        seeds = component_seeds(random_graph, 3, seed=10)
        res = distributed_steiner_tree(random_graph, seeds)
        assert res.wall_time_s > 0


class TestSolverConfig:
    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            SolverConfig(n_ranks=0)

    def test_invalid_partition(self):
        with pytest.raises(ValueError):
            SolverConfig(partition="triangular")

    def test_discipline_coercion(self):
        from repro.runtime.queues import QueueDiscipline

        cfg = SolverConfig(discipline="fifo")
        assert cfg.discipline is QueueDiscipline.FIFO
