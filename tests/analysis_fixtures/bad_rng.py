# Known-bad fixture for REP101 (unseeded / global-state RNG).
# Line numbers are asserted by tests/test_analysis.py — append only.
import random

import numpy as np
from random import shuffle

rng_ok = np.random.default_rng(42)  # ok: explicit seed
gen_ok = np.random.Generator(np.random.PCG64(7))  # ok: seeded bit generator
local_ok = random.Random(13)  # ok: seeded local instance

bad_default = np.random.default_rng()  # REP101 line 12
bad_none = np.random.default_rng(None)  # REP101 line 13
bad_global_np = np.random.rand(3)  # REP101 line 14
bad_global_py = random.random()  # REP101 line 15
bad_imported = shuffle([1, 2, 3])  # REP101 line 16
bad_ctor = random.Random()  # REP101 line 17
