# Known-bad fixture for REP102 (unordered-set iteration).
# Line numbers are asserted by tests/test_analysis.py — append only.
items = {3, 1, 2}


def collect():
    out = []
    for x in items:  # REP102 line 8 (module-level set-typed name)
        out.append(x)
    for y in sorted(items):  # ok: sorted
        out.append(y)
    for z in {"a", "b"}:  # REP102 line 12 (set literal)
        out.append(z)
    return out


def comprehensions(edges):
    local = set(edges)
    bad_list = [e for e in local]  # REP102 line 19
    ok_total = sum(w for w in local)  # ok: order-insensitive sink
    ok_sorted = sorted(e for e in local)  # ok: sorted sink
    ok_set = {e for e in local}  # ok: set result
    bad_ctor = list(local)  # REP102 line 23
    ok_len = len(local)
    acc = set()
    acc.update(e for e in local)  # ok: set.update sink
    return bad_list, ok_total, ok_sorted, ok_set, bad_ctor, ok_len, acc


def rebound_is_not_a_set(edges):
    maybe = set(edges)
    maybe = [1, 2]  # rebinding disqualifies the name
    for m in maybe:  # ok: not provably a set
        yield m
