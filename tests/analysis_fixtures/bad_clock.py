# Known-bad fixture for REP103 (wall-clock reads in hot paths).
# The test feeds this source to check_source() under a synthetic
# hot-path name (repro/runtime/...); on its real path REP103 is silent.
# Line numbers are asserted by tests/test_analysis.py — append only.
import time
from time import perf_counter


def run_phase_with(clock, fn):
    t0 = time.perf_counter()  # ok: sanctioned timing helper
    fn()
    return time.perf_counter() - t0  # ok: sanctioned timing helper


def hot_loop(values):
    started = time.time()  # REP103 line 16
    tick = perf_counter()  # REP103 line 17
    total = 0.0
    for v in values:
        total += v
    return total, started, tick
