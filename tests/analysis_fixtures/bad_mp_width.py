# Known-bad fixture for REP402 (mp program without a literal width).
# Line numbers are asserted by tests/test_analysis.py — append only.


class WidthlessProgram:  # REP402 line 5: full protocol, no width at all
    def mp_clone_payload(self):
        return {}

    @classmethod
    def mp_materialize(cls, payload):
        return cls()

    def mp_collect(self):
        return {}

    def mp_merge(self, parts):
        return None


class ComputedWidthProgram:  # REP402 line 20: width is an expression
    batch_payload_width = 1 + 2

    def mp_clone_payload(self):
        return {}

    @classmethod
    def mp_materialize(cls, payload):
        return cls()

    def mp_collect(self):
        return {}

    def mp_merge(self, parts):
        return None


class LiteralWidthProgram:  # ok: full protocol + literal int width
    batch_payload_width = 3

    def mp_clone_payload(self):
        return {}

    @classmethod
    def mp_materialize(cls, payload):
        return cls()

    def mp_collect(self):
        return {}

    def mp_merge(self, parts):
        return None


class DerivedProgram(LiteralWidthProgram):  # ok: width inherited via base
    def mp_clone_payload(self):
        return {}

    @classmethod
    def mp_materialize(cls, payload):
        return cls()

    def mp_collect(self):
        return {}

    def mp_merge(self, parts):
        return None
