# Known-bad fixture for REP401 (partial mp-clone protocol).
# Line numbers are asserted by tests/test_analysis.py — append only.


class PartialProgram:  # REP401 line 5: clone_payload/materialize, no collect/merge
    def mp_clone_payload(self):
        return {}

    @classmethod
    def mp_materialize(cls, payload):
        return cls()


class CompleteProgram:  # ok: all four hooks + literal width (REP402)
    batch_payload_width = 1

    def mp_clone_payload(self):
        return {}

    @classmethod
    def mp_materialize(cls, payload):
        return cls()

    def mp_collect(self):
        return {}

    def mp_merge(self, parts):
        return None


class NotAProgram:  # ok: no hooks at all
    def run(self):
        return None
