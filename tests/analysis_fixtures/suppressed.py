# Fixture for suppression handling.
# Line numbers are asserted by tests/test_analysis.py — append only.
import numpy as np

quiet = np.random.default_rng()  # repro: ignore[REP101]
loud = np.random.default_rng()  # REP101 line 6: no suppression
wrong_rule = np.random.default_rng()  # repro: ignore[REP999]
multi = np.random.default_rng()  # repro: ignore[REP101, REP103]
