# Known-bad fixture for REP301/REP302 (prange data races).
# Line numbers are asserted by tests/test_analysis.py — append only.
import numpy as np
from numba import njit, prange


@njit(parallel=True, cache=True)
def races(out, shared, offs, vals):
    total = 0.0
    for i in prange(out.shape[0]):
        out[i] = vals[i] * 2.0  # ok: indexed by loop var
        j = offs[i]
        out[j] = vals[i]  # ok: j derived from i (disjoint slices)
        shared[0] = vals[i]  # REP301 line 14: iteration-independent store
        total += vals[i]  # REP302 line 15: shared scalar reduction
        shared[1] += vals[i]  # REP302 line 16: shared cell reduction
        scratch = np.zeros(4)
        scratch[0] = vals[i]  # ok: scratch is iteration-private
    return total


@njit(cache=True)
def serial_kernel(out, vals):
    # not parallel=True: REP3xx rules do not apply here
    acc = 0.0
    for i in range(out.shape[0]):
        acc += vals[i]
        out[0] = acc
    return acc
