"""Tests for the near-shortest-path exploration primitive (|S|=2)."""

from __future__ import annotations

import pytest

import networkx as nx

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.shortest_paths.dijkstra import dijkstra, reconstruct_path
from repro.shortest_paths.near_shortest import (
    near_shortest_path_edges,
    path_dag,
    shortest_path_edges,
)
from tests.conftest import component_seeds, make_connected_graph


class TestShortestPathEdges:
    def test_contains_one_shortest_path(self, random_graph):
        s, t = (int(x) for x in component_seeds(random_graph, 2, seed=1))
        res = shortest_path_edges(random_graph, s, t)
        dist, pred = dijkstra(random_graph, s)
        path = reconstruct_path(pred, s, t)
        path_edges = {
            (min(a, b), max(a, b)) for a, b in zip(path, path[1:])
        }
        found = {(int(u), int(v)) for u, v, _ in res.edges}
        assert path_edges <= found
        assert res.distance == int(dist[t])

    def test_every_edge_is_on_a_shortest_path(self, random_graph):
        s, t = (int(x) for x in component_seeds(random_graph, 2, seed=2))
        res = shortest_path_edges(random_graph, s, t)
        ds, _ = dijkstra(random_graph, s)
        dt, _ = dijkstra(random_graph, t)
        for u, v, w in res.edges:
            through = min(ds[u] + w + dt[v], ds[v] + w + dt[u])
            assert through == res.distance
        assert (res.slack == 0).all()

    def test_diamond_includes_both_routes(self):
        g = CSRGraph.from_edges(
            4, [(0, 1), (1, 3), (0, 2), (2, 3)], [1, 1, 1, 1]
        )
        res = shortest_path_edges(g, 0, 3)
        assert res.n_edges == 4  # both equal-cost routes

    def test_vs_networkx_all_shortest_paths(self):
        g = make_connected_graph(25, 70, weight_high=5, seed=5)
        s, t = (int(x) for x in component_seeds(g, 2, seed=5))
        res = shortest_path_edges(g, s, t)
        nxg = g.to_networkx()
        expected = set()
        for path in nx.all_shortest_paths(nxg, s, t, weight="weight"):
            for a, b in zip(path, path[1:]):
                expected.add((min(a, b), max(a, b)))
        found = {(int(u), int(v)) for u, v, _ in res.edges}
        assert found == expected


class TestNearShortest:
    def test_monotone_in_epsilon(self, random_graph):
        s, t = (int(x) for x in component_seeds(random_graph, 2, seed=3))
        sizes = [
            near_shortest_path_edges(random_graph, s, t, eps).n_edges
            for eps in (0.0, 0.1, 0.5, 2.0)
        ]
        assert sizes == sorted(sizes)

    def test_slack_within_budget(self, random_graph):
        s, t = (int(x) for x in component_seeds(random_graph, 2, seed=4))
        eps = 0.4
        res = near_shortest_path_edges(random_graph, s, t, eps)
        assert (res.slack >= 0).all()
        assert (res.slack + res.distance <= (1 + eps) * res.distance).all()

    def test_large_epsilon_captures_component_edges(self, random_graph):
        s, t = (int(x) for x in component_seeds(random_graph, 2, seed=6))
        res = near_shortest_path_edges(random_graph, s, t, 1e6)
        # every edge with both endpoints reachable qualifies
        assert res.n_edges == random_graph.n_edges

    def test_vertices_contains_seeds(self, random_graph):
        s, t = (int(x) for x in component_seeds(random_graph, 2, seed=7))
        res = near_shortest_path_edges(random_graph, s, t, 0.2)
        verts = set(res.vertices().tolist())
        assert s in verts and t in verts


class TestPathDag:
    def test_dag_is_subgraph(self, random_graph):
        s, t = (int(x) for x in component_seeds(random_graph, 2, seed=8))
        sub = path_dag(random_graph, s, t, 0.3)
        assert sub.n_vertices == random_graph.n_vertices
        for u, v, w in sub.iter_edges():
            assert random_graph.edge_weight(u, v) == w

    def test_steiner_tree_of_two_seeds_lies_in_dag(self, random_graph):
        from repro.core.sequential import sequential_steiner_tree

        s, t = (int(x) for x in component_seeds(random_graph, 2, seed=9))
        sub = path_dag(random_graph, s, t, 0.0)
        tree = sequential_steiner_tree(random_graph, [s, t])
        for u, v, _ in tree.edges:
            assert sub.has_edge(int(u), int(v))


class TestErrors:
    def test_same_endpoints(self, random_graph):
        with pytest.raises(GraphError):
            shortest_path_edges(random_graph, 0, 0)

    def test_negative_epsilon(self, random_graph):
        with pytest.raises(GraphError):
            near_shortest_path_edges(random_graph, 0, 1, -0.5)

    def test_unreachable_target(self):
        g = CSRGraph.from_edges(4, [(0, 1), (2, 3)], [1, 1])
        with pytest.raises(GraphError, match="no path"):
            shortest_path_edges(g, 0, 3)
