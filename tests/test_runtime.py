"""Unit tests for the distributed-runtime simulation: partitioning,
queues, cost model, collectives, memory model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph.generators import grid_graph, rmat_graph
from repro.runtime.collectives import (
    allreduce_elementwise_min,
    allreduce_min_time,
    chunked_allreduce_time,
)
from repro.runtime.cost_model import MachineModel
from repro.runtime.memory import estimate_memory
from repro.runtime.partition import block_partition, hash_partition
from repro.runtime.queues import FIFOQueue, PriorityQueue, QueueDiscipline, make_queue


class TestPartitioning:
    def test_block_owner_balanced(self):
        g = grid_graph(8, 8)
        part = block_partition(g, 4)
        counts = part.local_vertex_count()
        assert counts.sum() == 64
        assert counts.max() - counts.min() <= 1

    def test_block_contiguous(self):
        g = grid_graph(8, 8)
        part = block_partition(g, 4)
        # block ownership is monotone in vertex id
        assert (np.diff(part.owner) >= 0).all()

    def test_hash_covers_all_ranks(self):
        g = grid_graph(10, 10)
        part = hash_partition(g, 8)
        assert set(np.unique(part.owner)) == set(range(8))

    def test_arc_rank_follows_owner_without_delegates(self):
        g = grid_graph(6, 6)
        part = block_partition(g, 3)
        u, v, w, arc_rank = part.arc_arrays()
        assert np.array_equal(arc_rank, part.owner[u])

    def test_single_rank(self):
        g = grid_graph(4, 4)
        part = block_partition(g, 1)
        assert part.cut_arc_count() == 0
        assert part.load_imbalance() == pytest.approx(1.0)

    def test_delegates_selected_by_degree(self):
        g = rmat_graph(8, 8, seed=0)
        part = block_partition(g, 4, delegate_threshold=50)
        deg = g.degree()
        assert set(part.delegates.tolist()) == set(
            np.nonzero(deg > 50)[0].tolist()
        )
        for d in part.delegates:
            assert part.is_delegate(int(d))

    def test_delegate_arcs_striped(self):
        g = rmat_graph(8, 8, seed=0)
        part = block_partition(g, 4, delegate_threshold=50)
        for d in part.delegates[:3]:
            ranks = part.slice_ranks(int(d))
            assert ranks.size > 1  # hub adjacency spans multiple ranks

    def test_delegates_reduce_imbalance(self):
        g = rmat_graph(9, 8, seed=1)
        base = block_partition(g, 8)
        deleg = block_partition(g, 8, delegate_threshold=int(g.avg_degree * 4))
        assert deleg.load_imbalance() <= base.load_imbalance()

    def test_invalid_rank_count(self):
        g = grid_graph(3, 3)
        with pytest.raises(PartitionError):
            block_partition(g, 0)
        with pytest.raises(PartitionError):
            hash_partition(g, -1)

    def test_invalid_delegate_threshold(self):
        g = grid_graph(3, 3)
        with pytest.raises(PartitionError):
            block_partition(g, 2, delegate_threshold=0)

    def test_cut_arcs_grow_with_ranks(self):
        g = grid_graph(10, 10)
        cuts = [block_partition(g, p).cut_arc_count() for p in (1, 2, 4, 8)]
        assert cuts == sorted(cuts)


class TestQueues:
    def test_fifo_order(self):
        q = FIFOQueue()
        for i, prio in enumerate([5.0, 1.0, 3.0]):
            q.push(prio, f"m{i}")
        assert [q.pop() for _ in range(3)] == ["m0", "m1", "m2"]

    def test_priority_order(self):
        q = PriorityQueue()
        q.push(5.0, "late")
        q.push(1.0, "early")
        q.push(3.0, "mid")
        assert [q.pop() for _ in range(3)] == ["early", "mid", "late"]

    def test_priority_tie_breaks_by_arrival(self):
        q = PriorityQueue()
        q.push(2.0, "first")
        q.push(2.0, "second")
        assert q.pop() == "first"
        assert q.pop() == "second"

    def test_peak_tracking(self):
        for q in (FIFOQueue(), PriorityQueue()):
            q.push(1.0, "a")
            q.push(1.0, "b")
            q.pop()
            q.push(1.0, "c")
            assert q.peak == 2
            assert len(q) == 2

    def test_make_queue(self):
        assert isinstance(make_queue("fifo"), FIFOQueue)
        assert isinstance(make_queue(QueueDiscipline.PRIORITY), PriorityQueue)
        with pytest.raises(ValueError):
            make_queue("bogus")


class TestCostModel:
    def test_allreduce_monotone_in_ranks(self):
        m = MachineModel()
        times = [m.allreduce_time(p, 1024) for p in (1, 2, 4, 8, 16)]
        assert times[0] == 0.0
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_allreduce_monotone_in_bytes(self):
        m = MachineModel()
        assert m.allreduce_time(8, 10) < m.allreduce_time(8, 10_000_000)

    def test_remote_message_slower_than_local(self):
        m = MachineModel()
        assert m.message_delay(False) > m.message_delay(True)

    def test_mst_time_scales(self):
        m = MachineModel()
        assert m.mst_time(0, 5) == 0.0
        assert m.mst_time(10_000, 100) < m.mst_time(50_000_000, 10_000)

    def test_scan_time_linear(self):
        m = MachineModel()
        assert m.scan_time(2_000) == pytest.approx(2 * m.scan_time(1_000))


class TestCollectives:
    def test_elementwise_min(self):
        a = np.asarray([5, 2, 9])
        b = np.asarray([3, 7, 1])
        out = allreduce_elementwise_min([a, b])
        assert list(out) == [3, 2, 1]
        # inputs untouched
        assert list(a) == [5, 2, 9]

    def test_elementwise_min_single_rank(self):
        a = np.asarray([4, 4])
        assert list(allreduce_elementwise_min([a])) == [4, 4]

    def test_elementwise_min_empty_raises(self):
        with pytest.raises(ValueError):
            allreduce_elementwise_min([])

    def test_allreduce_min_time(self):
        m = MachineModel()
        assert allreduce_min_time(m, 8, 1000) > 0

    def test_chunked_tradeoff(self):
        m = MachineModel()
        single = chunked_allreduce_time(m, 16, 100_000, 100_000)
        chunked = chunked_allreduce_time(m, 16, 100_000, 1_000)
        assert chunked > single  # more latency terms

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            chunked_allreduce_time(MachineModel(), 4, 100, 0)


class TestMemoryModel:
    def test_breakdown_sums(self):
        g = grid_graph(10, 10)
        part = block_partition(g, 4)
        rep = estimate_memory(part, 10, peak_queue_total=500)
        assert rep.total_bytes == rep.graph_bytes + rep.runtime_bytes
        assert rep.graph_bytes == g.nbytes()
        assert rep.queue_bytes == 500 * MachineModel().bytes_per_message

    def test_runtime_grows_quadratically_with_seeds(self):
        g = grid_graph(10, 10)
        part = block_partition(g, 4)
        small = estimate_memory(part, 10, peak_queue_total=0)
        large = estimate_memory(part, 100, peak_queue_total=0)
        # C(100,2)/C(10,2) = 110x on the pairwise buffers
        assert large.en_buffer_bytes == small.en_buffer_bytes * 110

    def test_observed_distance_edges_override(self):
        g = grid_graph(5, 5)
        part = block_partition(g, 2)
        rep = estimate_memory(part, 50, peak_queue_total=0, n_distance_edges=7)
        assert rep.distance_graph_bytes == 7 * 24 * 2
