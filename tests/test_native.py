"""The native (numba-JIT) kernel tier: shim, parity and fallback.

Pinned contracts:

* ``repro.native`` — the one import guard: without numba,
  :func:`~repro.native.njit` is the identity decorator (both
  spellings), ``prange`` is ``range``, :func:`~repro.native.warmup` is
  a no-op and :func:`~repro.native.native_status` carries the
  import-failure reason.  The cache dir is pinned before numba is ever
  imported.
* ``delta-numba`` is bit-identical to ``delta-numpy`` — the identical
  ``(dist, src, pred)`` triple on every input, pinned here with
  ``force=True`` so the *kernel logic itself* (run as plain Python) is
  exercised even in no-numba environments, across weight regimes
  (unit/tie-heavy, small, astronomical), seed-set sizes, delta choices
  and the serve layer's fused stacked-CSR path.
* ``bsp-native`` is counter-identical to ``bsp-batched`` — the same
  converged ``(src, dist, pred)`` fixpoint AND the same ``n_visits``,
  ``n_messages_local``, ``n_messages_remote``, ``bytes_sent``,
  ``peak_queue_total``, per-rank busy time, simulated time and
  superstep count, pinned with ``force_native=True``; and it falls
  back to the batched path (still identical) whenever the native
  kernel cannot apply (FIFO discipline, delegates, non-native
  programs, numba absent without force).
* Both tiers stay registered without numba, reported as ``fallback``
  entries by the availability listings, and resolve to their NumPy
  twins' results.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.voronoi_visitor import VoronoiProgram
from repro.graph.csr import CSRGraph
from repro.native import NUMBA_AVAILABLE, native_status, njit, prange, warmup
from repro.runtime.engine_batched import BSPBatchedEngine
from repro.runtime.engine_native import BSPNativeEngine, supports_native
from repro.runtime.engines import engine_availability, make_engine
from repro.runtime.partition import block_partition, hash_partition
from repro.runtime.queues import QueueDiscipline
from repro.shortest_paths.backends import (
    backend_availability,
    compute_multisource,
    get_backend,
)
from repro.shortest_paths.native import compute_voronoi_cells_delta_numba
from repro.shortest_paths.vectorized import compute_voronoi_cells_delta_numpy
from tests.conftest import component_seeds, make_connected_graph

# the counter list is owned by the cross-engine conformance harness —
# one definition of "bit-for-bit across the BSP family" in the tree
from tests.test_engine_conformance import COUNTERS

PROPERTY = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def graph_seeds_weights(draw, max_vertices=20, weight_regimes=(1, 8, 10**13)):
    """Random graph + seed set + a weight regime.

    ``max_weight=1`` degenerates to unit weights (the tie-heaviest case
    for the smaller-owner rule); ``10**13`` pushes path sums past
    float64's exact-integer range, so any kernel that rounds breaks the
    bit-for-bit assertion.
    """
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    backbone = [(i, i + 1) for i in range(n - 1)]
    n_chords = draw(st.integers(min_value=0, max_value=2 * n))
    chords = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=n_chords,
            max_size=n_chords,
        )
    )
    edges = backbone + [e for e in chords if e[0] != e[1]]
    max_weight = draw(st.sampled_from(weight_regimes))
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=max_weight),
            min_size=len(edges),
            max_size=len(edges),
        )
    )
    graph = CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64), weights)
    k = draw(st.integers(min_value=1, max_value=min(6, n)))
    seeds = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
    )
    return graph, seeds


def assert_diagrams_equal(a, b, label=""):
    assert np.array_equal(a.dist, b.dist), label
    assert np.array_equal(a.src, b.src), label
    assert np.array_equal(a.pred, b.pred), label


# --------------------------------------------------------------------- #
# the shim
# --------------------------------------------------------------------- #
class TestNativeShim:
    def test_status_shape(self):
        status = native_status()
        assert sorted(status) == ["available", "cache_dir", "reason", "version"]
        assert status["available"] is NUMBA_AVAILABLE
        assert (status["reason"] is None) == NUMBA_AVAILABLE
        assert status["cache_dir"]  # pinned before any numba import

    def test_warmup_counts_registered_modules(self):
        n = warmup()
        if NUMBA_AVAILABLE:
            assert n >= 2  # the sweep kernel module + the engine module
        else:
            assert n == 0

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="shim semantics without numba")
    def test_njit_is_identity_without_numba(self):
        @njit
        def f(x):
            return x + 1

        @njit(parallel=True, cache=False)
        def g(x):
            return x + 2

        assert f.__class__.__name__ == "function"
        assert f(1) == 2 and g(1) == 3
        assert prange is range

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="needs numba")
    def test_njit_compiles_with_numba(self):  # pragma: no cover - numba leg
        @njit
        def f(x):
            return x + 1

        assert f(np.int64(1)) == 2
        assert hasattr(f, "py_func")


# --------------------------------------------------------------------- #
# delta-numba <-> delta-numpy
# --------------------------------------------------------------------- #
class TestDeltaNumbaParity:
    @PROPERTY
    @given(graph_seeds_weights())
    def test_bit_identity_forced_kernels(self, case):
        # force=True runs the kernel logic (plain Python without numba)
        # rather than the fallback delegation — the real parity pin
        graph, seeds = case
        ref = compute_voronoi_cells_delta_numpy(graph, seeds)
        vd = compute_voronoi_cells_delta_numba(graph, seeds, force=True)
        assert_diagrams_equal(ref, vd)

    @PROPERTY
    @given(graph_seeds_weights(weight_regimes=(1,)))
    def test_unit_weight_tie_heavy(self, case):
        graph, seeds = case
        ref = compute_voronoi_cells_delta_numpy(graph, seeds)
        vd = compute_voronoi_cells_delta_numba(graph, seeds, force=True)
        assert_diagrams_equal(ref, vd)

    @pytest.mark.parametrize("delta", [1, 3, 17, 10**6])
    def test_explicit_delta(self, random_graph, delta):
        seeds = component_seeds(random_graph, 4, seed=2)
        ref = compute_voronoi_cells_delta_numpy(random_graph, seeds, delta)
        vd = compute_voronoi_cells_delta_numba(
            random_graph, seeds, delta, force=True
        )
        assert_diagrams_equal(ref, vd)

    @pytest.mark.parametrize("k", [1, 2, 8, 24])
    def test_seed_set_sizes(self, k):
        g = make_connected_graph(60, 170, seed=31)
        seeds = component_seeds(g, k, seed=32)
        ref = compute_voronoi_cells_delta_numpy(g, seeds)
        vd = compute_voronoi_cells_delta_numba(g, seeds, force=True)
        assert_diagrams_equal(ref, vd)

    def test_fallback_delegates_to_numpy_twin(self, random_graph):
        # without force, the call must equal delta-numpy bit-for-bit
        # whether it JIT-ran (numba) or delegated (no numba)
        seeds = component_seeds(random_graph, 5, seed=4)
        ref = compute_voronoi_cells_delta_numpy(random_graph, seeds)
        vd = compute_voronoi_cells_delta_numba(random_graph, seeds)
        assert_diagrams_equal(ref, vd)

    def test_registered_backend_resolves(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=5)
        res = compute_multisource(random_graph, seeds, backend="delta-numba")
        ref = compute_multisource(random_graph, seeds, backend="delta-numpy")
        assert res.agrees_with(ref)
        assert get_backend("delta-numba") is not None

    def test_bad_delta_rejected(self, random_graph):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            compute_voronoi_cells_delta_numba(random_graph, [0], 0, force=True)

    def test_fused_stacked_csr_parity(self):
        # the serve layer's sweep fusion: several requests stacked into
        # one disjoint-union CSR, answered by one backend call
        from repro.serve.batch import fused_multisource

        g = make_connected_graph(45, 120, seed=41)
        seed_sets = [
            component_seeds(g, 3, seed=42).tolist(),
            component_seeds(g, 5, seed=43).tolist(),
            component_seeds(g, 1, seed=44).tolist(),
        ]
        ref = fused_multisource(g, seed_sets, backend="delta-numpy")
        fused = fused_multisource(g, seed_sets, backend="delta-numba")
        assert fused.batch_size == ref.batch_size == len(seed_sets)
        for got, want in zip(fused.diagrams, ref.diagrams):
            assert_diagrams_equal(got, want, "fused slice")


# --------------------------------------------------------------------- #
# bsp-native <-> bsp-batched
# --------------------------------------------------------------------- #
def run_voronoi(engine, partition, seeds):
    prog = VoronoiProgram(partition)
    stats = engine.run_phase(
        "Voronoi Cell", prog, list(prog.initial_messages(np.asarray(seeds)))
    )
    return prog, stats


def assert_engine_parity(partition, seeds):
    batched = BSPBatchedEngine(partition)
    native = BSPNativeEngine(partition, force_native=True)
    pb, sb = run_voronoi(batched, partition, seeds)
    pn, sn = run_voronoi(native, partition, seeds)
    assert np.array_equal(pb.src, pn.src)
    assert np.array_equal(pb.dist, pn.dist)
    assert np.array_equal(pb.pred, pn.pred)
    for field in COUNTERS:
        assert getattr(sb, field) == getattr(sn, field), field
    assert batched.n_supersteps == native.n_supersteps
    assert np.allclose(sb.busy_time, sn.busy_time)
    assert sb.sim_time == pytest.approx(sn.sim_time)


class TestBSPNativeParity:
    @PROPERTY
    @given(graph_seeds_weights(), st.integers(min_value=1, max_value=6))
    def test_counter_identity_forced_kernels(self, case, n_ranks):
        graph, seeds = case
        assert_engine_parity(block_partition(graph, n_ranks), seeds)

    @pytest.mark.parametrize("n_ranks", [1, 3, 16])
    def test_rank_counts(self, random_graph, n_ranks):
        seeds = component_seeds(random_graph, 5, seed=11)
        assert_engine_parity(block_partition(random_graph, n_ranks), seeds)

    def test_hash_partition(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=12)
        assert_engine_parity(hash_partition(random_graph, 4), seeds)

    @pytest.mark.parametrize("k", [1, 2, 10])
    def test_seed_set_sizes(self, k):
        g = make_connected_graph(50, 140, seed=21)
        assert_engine_parity(block_partition(g, 4), component_seeds(g, k, seed=22))

    def test_capability_gating(self, random_graph, skewed_graph):
        part = block_partition(random_graph, 4)
        prog = VoronoiProgram(part)
        # FIFO discipline stays on the batched path
        fifo = BSPNativeEngine(part, discipline="fifo", force_native=True)
        assert not fifo._native_capable(prog)
        # delegates fan out rank-addressed messages: batched path
        dpart = block_partition(skewed_graph, 4, delegate_threshold=8)
        if dpart.delegates.size:
            deleg = BSPNativeEngine(dpart, force_native=True)
            assert not deleg._native_capable(VoronoiProgram(dpart))
        # a program without the native hook stays on the batched path
        class NoHook:
            batch_payload_width = 3

            def batch_encode(self, target, payload):
                return payload

            def batch_visit(self, *a):  # pragma: no cover - never driven
                raise NotImplementedError

        assert not supports_native(NoHook())
        # without numba the default engine is not capable either
        plain = BSPNativeEngine(part)
        assert plain._native_capable(prog) == NUMBA_AVAILABLE

    def test_fallback_path_still_identical(self, random_graph):
        # FIFO forces the batched code path inside BSPNativeEngine;
        # results must equal a plain BSPBatchedEngine under FIFO
        seeds = component_seeds(random_graph, 4, seed=13)
        part = block_partition(random_graph, 4)
        ref_engine = BSPBatchedEngine(part, discipline="fifo")
        nat_engine = BSPNativeEngine(part, discipline="fifo", force_native=True)
        pb, sb = run_voronoi(ref_engine, part, seeds)
        pn, sn = run_voronoi(nat_engine, part, seeds)
        assert np.array_equal(pb.src, pn.src)
        assert np.array_equal(pb.dist, pn.dist)
        for field in COUNTERS:
            assert getattr(sb, field) == getattr(sn, field), field

    def test_registry_constructs_native_engine(self, random_graph):
        part = block_partition(random_graph, 4)
        engine = make_engine("bsp-native", part)
        try:
            assert isinstance(engine, BSPNativeEngine)
            assert isinstance(engine, BSPBatchedEngine)  # the fallback IS it
        finally:
            engine.close()

    def test_solver_tree_identical(self, random_graph):
        from repro.core.config import SolverConfig
        from repro.core.solver import distributed_steiner_tree

        seeds = component_seeds(random_graph, 5, seed=14)
        ref = distributed_steiner_tree(
            random_graph, seeds, config=SolverConfig(engine="bsp-batched")
        )
        nat = distributed_steiner_tree(
            random_graph, seeds, config=SolverConfig(engine="bsp-native")
        )
        assert np.array_equal(ref.edges, nat.edges)
        assert ref.total_distance == nat.total_distance
        assert ref.phases[0].n_messages == nat.phases[0].n_messages


# --------------------------------------------------------------------- #
# availability surfaces
# --------------------------------------------------------------------- #
class TestAvailability:
    def test_backend_records(self):
        records = backend_availability()
        assert "delta-numba" in records
        record = records["delta-numba"]
        assert record["help"]
        if NUMBA_AVAILABLE:  # pragma: no cover - numba leg
            assert record["status"] == "available"
            assert record["reason"] is None
        else:
            assert record["status"] == "fallback"
            assert record["fallback"] == "delta-numpy"
            assert "numba" in record["reason"]
        # every callable entry carries a record
        assert all(
            r["status"] in ("available", "fallback", "unavailable")
            for r in records.values()
        )

    def test_engine_records(self):
        records = engine_availability()
        assert "bsp-native" in records
        record = records["bsp-native"]
        if NUMBA_AVAILABLE:  # pragma: no cover - numba leg
            assert record["status"] == "available"
        else:
            assert record["status"] == "fallback"
            assert record["fallback"] == "bsp-batched"
            assert "numba" in record["reason"]

    def test_unavailable_entries_are_listing_only(self):
        from repro.shortest_paths import backends as mod

        mod.register_unavailable_backend(
            "_test-missing", "test-only missing tier", "ImportError: nope"
        )
        try:
            records = backend_availability()
            assert records["_test-missing"]["status"] == "unavailable"
            assert records["_test-missing"]["reason"] == "ImportError: nope"
            with pytest.raises(ValueError, match="backend"):
                get_backend("_test-missing")
        finally:
            mod._HELP.pop("_test-missing")
            mod._AVAILABILITY.pop("_test-missing")

    def test_cli_listings_show_reason(self, capsys):
        from repro.harness.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "delta-numba" in out
        if not NUMBA_AVAILABLE:
            assert "fallback" in out
            assert "runs as 'delta-numpy'" in out
            assert "numba" in out

        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "bsp-native" in out
        if not NUMBA_AVAILABLE:
            assert "runs as 'bsp-batched'" in out

    def test_solver_config_accepts_native_names(self):
        from repro.core.config import SolverConfig

        cfg = SolverConfig(engine="bsp-native", voronoi_backend="delta-numba")
        assert cfg.bsp is True
        assert cfg.voronoi_backend == "delta-numba"

    def test_api_reexports_native_status(self):
        from repro import api

        assert api.native_status() == native_status()
