"""Smoke tests: every example script runs to completion and prints the
expected headline artefacts."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart_reproduces_fig1(self):
        out = run_example("quickstart.py")
        # the Fig. 1(b) tree: total distance 23, Steiner vertex 5
        assert "total distance D(GS) = 23" in out
        assert "[5]" in out
        assert "Voronoi Cell" in out

    def test_knowledge_discovery(self):
        out = run_example("knowledge_discovery.py")
        assert "initial connection tree" in out
        assert "after penalising the hub" in out
        assert "proximate" in out and "eccentric" in out

    def test_vlsi_routing(self):
        out = run_example("vlsi_routing.py")
        assert "approximation ratio" in out
        # the rendered fabric contains pins and route marks
        assert "P" in out and "*" in out

    def test_scaling_study(self):
        out = run_example("scaling_study.py")
        assert "strong scaling" in out
        assert "priority-queue speedup" in out

    def test_multicast_routing(self):
        out = run_example("multicast_routing.py")
        assert "multicast tree cost" in out
        assert "ratio" in out
