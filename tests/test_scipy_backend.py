"""Tests for the SciPy-accelerated Voronoi backend: bit-equality with
the pure-Python heap sweep on every graph family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sequential import sequential_steiner_tree
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_graph
from repro.shortest_paths.scipy_backend import compute_voronoi_cells_scipy
from repro.shortest_paths.voronoi import (
    canonicalize_predecessors,
    compute_voronoi_cells,
)
from repro.validation import validate_voronoi_diagram
from tests.conftest import component_seeds, make_connected_graph


def heap_reference(graph, seeds):
    vd = compute_voronoi_cells(graph, seeds)
    vd.pred = canonicalize_predecessors(graph, vd.src, vd.dist)
    return vd


class TestBitEquality:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        g = make_connected_graph(40, 110, seed=seed + 8000)
        seeds = component_seeds(g, 5, seed=seed)
        a = heap_reference(g, seeds)
        b = compute_voronoi_cells_scipy(g, seeds)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dist, b.dist)
        assert np.array_equal(a.pred, b.pred)

    def test_tie_heavy_unit_grid(self):
        g = grid_graph(9, 9)
        seeds = [0, 8, 72, 80, 40]
        a = heap_reference(g, seeds)
        b = compute_voronoi_cells_scipy(g, seeds)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.pred, b.pred)

    def test_skewed_graph(self, skewed_graph):
        seeds = component_seeds(skewed_graph, 6, seed=2)
        a = heap_reference(skewed_graph, seeds)
        b = compute_voronoi_cells_scipy(skewed_graph, seeds)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dist, b.dist)

    def test_disconnected_graph(self):
        g = CSRGraph.from_edges(5, [(0, 1), (2, 3)], [2, 3])
        a = heap_reference(g, [0])
        b = compute_voronoi_cells_scipy(g, [0])
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dist, b.dist)

    def test_edgeless_graph(self):
        g = CSRGraph.from_edges(3, np.zeros((0, 2), np.int64), [])
        vd = compute_voronoi_cells_scipy(g, [1])
        assert vd.src[1] == 1 and vd.dist[1] == 0
        assert vd.src[0] == -1

    def test_diagram_is_valid(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=3)
        vd = compute_voronoi_cells_scipy(random_graph, seeds)
        validate_voronoi_diagram(random_graph, vd)


class TestBackendOption:
    def test_sequential_tree_backends_agree(self, random_graph):
        seeds = component_seeds(random_graph, 5, seed=4)
        heap = sequential_steiner_tree(random_graph, seeds, voronoi_backend="heap")
        scipy_res = sequential_steiner_tree(
            random_graph, seeds, voronoi_backend="scipy"
        )
        assert np.array_equal(heap.edges, scipy_res.edges)
        assert heap.total_distance == scipy_res.total_distance

    def test_unknown_backend_rejected(self, random_graph):
        seeds = component_seeds(random_graph, 3, seed=5)
        with pytest.raises(ValueError, match="backend"):
            sequential_steiner_tree(random_graph, seeds, voronoi_backend="cuda")
