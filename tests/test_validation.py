"""Tests for the validation module itself (it must catch every defect
class it claims to)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sequential import sequential_steiner_tree
from repro.errors import ValidationError
from repro.graph.csr import CSRGraph
from repro.shortest_paths.voronoi import INF, NO_VERTEX, compute_voronoi_cells
from repro.validation import (
    approximation_error_pct,
    approximation_ratio,
    validate_steiner_tree,
    validate_voronoi_diagram,
)
from tests.conftest import component_seeds


def path_graph(n=5, w=2):
    edges = [(i, i + 1) for i in range(n - 1)]
    return CSRGraph.from_edges(n, edges, [w] * (n - 1))


class TestValidateSteinerTree:
    def test_accepts_valid_tree(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=1)
        res = sequential_steiner_tree(random_graph, seeds)
        validate_steiner_tree(random_graph, seeds, res.edges)  # no raise

    def test_single_seed_trivial(self, random_graph):
        validate_steiner_tree(
            random_graph, [0], np.zeros((0, 3), dtype=np.int64)
        )

    def test_rejects_empty_seed_set(self, random_graph):
        with pytest.raises(ValidationError, match="empty"):
            validate_steiner_tree(random_graph, [], np.zeros((0, 3), np.int64))

    def test_rejects_nonexistent_edge(self):
        g = path_graph()
        edges = np.asarray([[0, 4, 2]], dtype=np.int64)  # not an edge
        with pytest.raises(Exception):  # GraphError from edge_weight
            validate_steiner_tree(g, [0, 4], edges)

    def test_rejects_wrong_weight(self):
        g = path_graph()
        edges = np.asarray(
            [[0, 1, 99], [1, 2, 2], [2, 3, 2], [3, 4, 2]], dtype=np.int64
        )
        with pytest.raises(ValidationError, match="weight"):
            validate_steiner_tree(g, [0, 4], edges)

    def test_rejects_cycle(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)], [1, 1, 1])
        edges = np.asarray([[0, 1, 1], [1, 2, 1], [0, 2, 1]], dtype=np.int64)
        with pytest.raises(ValidationError, match="cycle"):
            validate_steiner_tree(g, [0, 1, 2], edges)

    def test_rejects_disconnected_seeds(self):
        g = path_graph()
        edges = np.asarray([[0, 1, 2]], dtype=np.int64)
        with pytest.raises(ValidationError, match="not connected"):
            validate_steiner_tree(g, [0, 4], edges)

    def test_rejects_stray_component(self):
        g = path_graph(6)
        # tree connecting 0-1 (the seeds), plus stray edge 3-4
        edges = np.asarray([[0, 1, 2], [3, 4, 2]], dtype=np.int64)
        with pytest.raises(ValidationError, match="disconnected|not a tree"):
            validate_steiner_tree(g, [0, 1], edges)

    def test_rejects_steiner_leaf(self):
        g = path_graph(4)
        # seeds 0,2 but tree extends to 3 -> 3 is a Steiner leaf
        edges = np.asarray([[0, 1, 2], [1, 2, 2], [2, 3, 2]], dtype=np.int64)
        with pytest.raises(ValidationError, match="leaf"):
            validate_steiner_tree(g, [0, 2], edges)
        # allowed when the check is disabled
        validate_steiner_tree(g, [0, 2], edges, require_seed_leaves=False)

    def test_rejects_out_of_range_endpoint(self):
        g = path_graph()
        edges = np.asarray([[0, 99, 2]], dtype=np.int64)
        with pytest.raises(ValidationError, match="out of range"):
            validate_steiner_tree(g, [0, 4], edges)


class TestValidateVoronoiDiagram:
    def test_accepts_valid(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=2)
        vd = compute_voronoi_cells(random_graph, seeds)
        validate_voronoi_diagram(random_graph, vd)

    def test_rejects_corrupted_distance(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=2)
        vd = compute_voronoi_cells(random_graph, seeds)
        victim = int(np.nonzero((vd.dist > 0) & (vd.dist != INF))[0][0])
        vd.dist[victim] += 5
        with pytest.raises(ValidationError):
            validate_voronoi_diagram(random_graph, vd)

    def test_rejects_corrupted_seed_state(self, random_graph):
        seeds = component_seeds(random_graph, 3, seed=3)
        vd = compute_voronoi_cells(random_graph, seeds)
        vd.dist[int(seeds[0])] = 1
        with pytest.raises(ValidationError, match="seed"):
            validate_voronoi_diagram(random_graph, vd)

    def test_rejects_cross_cell_pred(self, random_graph):
        seeds = component_seeds(random_graph, 3, seed=4)
        vd = compute_voronoi_cells(random_graph, seeds)
        # move a non-seed vertex into another cell without fixing pred
        non_seeds = [
            v
            for v in range(random_graph.n_vertices)
            if vd.src[v] != NO_VERTEX and vd.src[v] != v
        ]
        victim = non_seeds[0]
        other = next(s for s in seeds if int(s) != int(vd.src[victim]))
        vd.src[victim] = other
        with pytest.raises(ValidationError):
            validate_voronoi_diagram(random_graph, vd)


class TestRatioHelpers:
    def test_ratio(self):
        assert approximation_ratio(110, 100) == pytest.approx(1.1)

    def test_error_pct(self):
        assert approximation_error_pct(110, 100) == pytest.approx(10.0)

    def test_zero_optimum_rejected(self):
        with pytest.raises(ValidationError):
            approximation_ratio(5, 0)
