"""The solver service: fused-sweep batching, caching, protocol, and the
stdio/TCP transports.

The acceptance anchors:

* two requests sharing a graph are provably coalesced (service
  ``coalesced`` counter > 0 and per-result provenance) with trees
  **bit-identical** to independent solves;
* a repeated request hits the cache (``provenance["cache_hit"]``) and
  skips the sweep entirely.
"""

from __future__ import annotations

import io
import json
import socket
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import solve
from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.graph.generators import grid_graph
from repro.graph.weights import assign_uniform_weights
from repro.serve import (
    ProtocolHandler,
    ServiceClosed,
    SolveCache,
    SolverService,
    fused_multisource,
    make_tcp_server,
    serve_stdio,
    stack_graphs,
)
from repro.shortest_paths.backends import available_backends, compute_multisource

from tests.conftest import component_seeds, make_connected_graph

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@pytest.fixture
def graph():
    return assign_uniform_weights(grid_graph(12, 12), (1, 9), seed=13)


def make_service(graph, **kwargs):
    kwargs.setdefault("batch_window_s", 0.05)
    svc = SolverService(**kwargs)
    svc.add_graph("g", graph)
    return svc


# --------------------------------------------------------------------- #
# graph stacking / fused sweeps
# --------------------------------------------------------------------- #
class TestStackGraphs:
    def test_disjoint_union_shape(self, graph):
        stacked = stack_graphs(graph, 3)
        assert stacked.n_vertices == 3 * graph.n_vertices
        assert stacked.n_arcs == 3 * graph.n_arcs
        # copy r's adjacency is copy 0's shifted by r*n
        n = graph.n_vertices
        for r in (1, 2):
            lo = r * n
            left = stacked.neighbors(lo + 5) - lo
            assert np.array_equal(left, graph.neighbors(5))

    def test_single_copy_is_identity(self, graph):
        assert stack_graphs(graph, 1) is graph

    def test_rejects_zero_copies(self, graph):
        with pytest.raises(ValueError):
            stack_graphs(graph, 0)


class TestFusedSweep:
    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_bit_identical_to_solo_all_backends(self, backend):
        g = make_connected_graph(40, 110, seed=7)
        seed_sets = [
            component_seeds(g, 4, seed=1),
            component_seeds(g, 3, seed=2),
            component_seeds(g, 5, seed=3),
        ]
        fused = fused_multisource(g, seed_sets, backend=backend)
        assert fused.batch_size == 3
        for seeds, diagram in zip(seed_sets, fused.diagrams):
            solo = compute_multisource(g, seeds, backend=backend).diagram
            assert np.array_equal(diagram.src, solo.src)
            assert np.array_equal(diagram.dist, solo.dist)
            assert np.array_equal(diagram.pred, solo.pred)

    @given(data=st.data())
    @SLOW
    def test_bit_identical_property(self, data):
        """Random request mixes stay bit-identical under fusion."""
        g = make_connected_graph(30, 80, seed=11)
        n_req = data.draw(st.integers(min_value=2, max_value=5))
        seed_sets = [
            component_seeds(
                g, data.draw(st.integers(min_value=2, max_value=6)),
                seed=data.draw(st.integers(min_value=0, max_value=50)),
            )
            for _ in range(n_req)
        ]
        fused = fused_multisource(g, seed_sets, backend="delta-numpy")
        for seeds, diagram in zip(seed_sets, fused.diagrams):
            solo = compute_multisource(g, seeds, backend="delta-numpy").diagram
            assert np.array_equal(diagram.src, solo.src)
            assert np.array_equal(diagram.dist, solo.dist)
            assert np.array_equal(diagram.pred, solo.pred)

    def test_rejects_empty(self, graph):
        with pytest.raises(ValueError):
            fused_multisource(graph, [])


class TestDiagramInjection:
    def test_injected_diagram_tree_identical(self, graph):
        """solver.solve(diagram=...) skips phase 1 and yields the
        identical tree — the mechanism behind serve's batching."""
        seeds = [0, 23, 77, 140]
        config = SolverConfig(voronoi_backend="delta-numpy", n_ranks=4)
        ms = compute_multisource(graph, seeds, backend="delta-numpy")
        solver = DistributedSteinerSolver(graph, config)
        injected = solver.solve(seeds, diagram=ms.diagram)
        independent = solver.solve(seeds)
        assert np.array_equal(injected.edges, independent.edges)
        assert injected.total_distance == independent.total_distance
        assert injected.provenance["sweep"] == "injected"

    def test_mismatched_seed_set_rejected(self, graph):
        ms = compute_multisource(graph, [0, 5], backend="delta-numpy")
        solver = DistributedSteinerSolver(
            graph, SolverConfig(voronoi_backend="delta-numpy")
        )
        with pytest.raises(ValueError, match="different seed set"):
            solver.solve([0, 7], diagram=ms.diagram)


# --------------------------------------------------------------------- #
# cache
# --------------------------------------------------------------------- #
class TestSolveCache:
    def test_lru_eviction(self):
        cache = SolveCache(max_solutions=2)
        cache.put_solution("a", 1)
        cache.put_solution("b", 2)
        assert cache.get_solution("a") == 1  # refresh a
        cache.put_solution("c", 3)  # evicts b
        assert cache.get_solution("b") is None
        assert cache.get_solution("a") == 1
        assert cache.stats.evictions == 1
        assert cache.stats.solution_misses == 1

    def test_peek_does_not_count(self):
        cache = SolveCache()
        assert cache.peek_solution("x") is None
        cache.put_solution("x", 42)
        assert cache.peek_solution("x") == 42
        assert cache.stats.solution_hits == 0
        assert cache.stats.solution_misses == 0

    def test_diagram_side(self):
        cache = SolveCache(max_diagrams=1)
        cache.put_diagram("d1", "D1")
        assert cache.get_diagram("d1") == "D1"
        cache.put_diagram("d2", "D2")
        assert cache.get_diagram("d1") is None
        assert cache.stats.diagram_hits == 1
        assert cache.stats.diagram_misses == 1

    def test_disk_tier_survives_restart(self, graph, tmp_path):
        seeds = [0, 23, 77]
        first = SolverService(cache=SolveCache(disk_dir=tmp_path), batch_window_s=0)
        first.add_graph("g", graph)
        r1 = first.solve("g", seeds)
        first.close()

        fresh = SolveCache(disk_dir=tmp_path)
        second = SolverService(cache=fresh, batch_window_s=0)
        second.add_graph("g", graph)
        r2 = second.solve("g", seeds)
        second.close()
        assert r1.provenance["cache_hit"] is False
        assert r2.provenance["cache_hit"] is True
        assert fresh.stats.disk_hits == 1
        assert np.array_equal(r1.edges, r2.edges)

    def test_clear(self):
        cache = SolveCache()
        cache.put_solution("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.solution_hits == 0


# --------------------------------------------------------------------- #
# service semantics
# --------------------------------------------------------------------- #
class TestServiceBatching:
    def test_coalesced_requests_bit_identical(self, graph):
        """The acceptance anchor: concurrent compatible requests fuse
        (coalesce counter > 0) and every tree is bit-identical to an
        independent solve."""
        svc = make_service(graph)
        seed_sets = [[0, 23, 77, 140], [5, 60, 130], [9, 44, 100, 12]]
        pendings = [
            svc.submit({"id": f"r{i}", "graph": "g", "seeds": s})
            for i, s in enumerate(seed_sets)
        ]
        results = [p.wait(60) for p in pendings]
        svc.close()

        assert svc.counters.fused_sweeps >= 1
        assert svc.counters.coalesced > 0
        for seeds, res in zip(seed_sets, results):
            solo = solve(graph, seeds, voronoi_backend="delta-numpy")
            assert np.array_equal(res.edges, solo.edges)
            assert res.total_distance == solo.total_distance
            assert res.provenance["coalesced"] > 0
            assert res.provenance["fused_sweep"] is True
            assert res.provenance["batch_size"] == len(seed_sets)

    def test_duplicate_requests_share_one_solve(self, graph):
        svc = make_service(graph)
        seeds = [0, 23, 77]
        pendings = [
            svc.submit({"id": f"d{i}", "graph": "g", "seeds": seeds})
            for i in range(3)
        ]
        results = [p.wait(60) for p in pendings]
        svc.close()
        assert svc.counters.coalesced >= 2
        ids = {r.provenance["request_id"] for r in results}
        assert ids == {"d0", "d1", "d2"}  # per-request provenance
        for r in results[1:]:
            assert np.array_equal(r.edges, results[0].edges)

    def test_cache_hit_skips_sweep(self, graph):
        svc = make_service(graph, batch_window_s=0)
        seeds = [0, 23, 77, 140]
        first = svc.solve("g", seeds)
        second = svc.solve("g", seeds)
        svc.close()
        assert first.provenance["cache_hit"] is False
        assert second.provenance["cache_hit"] is True
        assert svc.counters.cache_hits == 1
        assert np.array_equal(first.edges, second.edges)

    def test_config_override_separates_groups(self, graph):
        """Requests with different fingerprints are not fused, but both
        still answer correctly."""
        svc = make_service(graph)
        p1 = svc.submit(
            {"id": "a", "graph": "g", "seeds": [0, 23, 77]}
        )
        p2 = svc.submit(
            {
                "id": "b",
                "graph": "g",
                "seeds": [5, 60, 130],
                "config": {"n_ranks": 4},
            }
        )
        r1, r2 = p1.wait(60), p2.wait(60)
        svc.close()
        assert r1.provenance["fused_sweep"] is False
        assert r2.provenance["fused_sweep"] is False
        assert r1.total_distance == solve(
            graph, [0, 23, 77], voronoi_backend="delta-numpy"
        ).total_distance

    def test_simulate_config_not_fused(self, graph):
        """voronoi_backend=None groups fall back to per-request solves
        (the message-driven path has no fusable sweep)."""
        svc = SolverService(
            config=SolverConfig(n_ranks=4), batch_window_s=0.05
        )
        svc.add_graph("g", graph)
        pendings = [
            svc.submit({"id": f"s{i}", "graph": "g", "seeds": s})
            for i, s in enumerate([[0, 23, 77], [5, 60, 130]])
        ]
        results = [p.wait(60) for p in pendings]
        svc.close()
        assert svc.counters.fused_sweeps == 0
        for res, seeds in zip(results, [[0, 23, 77], [5, 60, 130]]):
            solo = solve(graph, seeds, n_ranks=4)
            assert np.array_equal(res.edges, solo.edges)

    def test_solve_errors_reported_per_request(self):
        disconnected = grid_graph(2, 2)  # vertices 0-3
        svc = SolverService(batch_window_s=0)
        # two disjoint components: stack two grids without bridging
        from repro.serve.batch import stack_graphs as _stack

        svc.add_graph("g", _stack(disconnected, 2))
        with pytest.raises(Exception) as excinfo:
            svc.solve("g", [0, 5])  # seeds in different components
        svc.close()
        assert "unreachable" in str(excinfo.value)

    def test_unknown_graph_rejected_at_submit(self, graph):
        svc = make_service(graph)
        with pytest.raises(KeyError):
            svc.submit({"id": "x", "graph": "nope", "seeds": [1, 2]})
        svc.close()

    def test_closed_service_rejects_submits(self, graph):
        svc = make_service(graph)
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.submit({"id": "x", "graph": "g", "seeds": [0, 1]})

    def test_stats_shape(self, graph):
        svc = make_service(graph, batch_window_s=0)
        svc.solve("g", [0, 23, 77])
        stats = svc.stats()
        svc.close()
        assert stats["graphs"] == ["g"]
        assert stats["counters"]["requests"] == 1
        assert "cache" in stats
        assert stats["default_config_fingerprint"]


# --------------------------------------------------------------------- #
# protocol + transports
# --------------------------------------------------------------------- #
class TestProtocol:
    def run_lines(self, svc, lines):
        out = io.StringIO()
        n = serve_stdio(svc, io.StringIO("\n".join(lines) + "\n"), out)
        return n, [json.loads(x) for x in out.getvalue().splitlines()]

    def test_stdio_end_to_end(self, graph):
        svc = make_service(graph, batch_window_s=0.01)
        _, responses = self.run_lines(
            svc,
            [
                json.dumps({"id": "p", "op": "ping"}),
                json.dumps({"id": "1", "graph": "g", "seeds": [0, 23, 77]}),
                json.dumps({"id": "s", "op": "stats"}),
                json.dumps({"id": "q", "op": "shutdown"}),
            ],
        )
        svc.close()
        by_id = {r["id"]: r for r in responses}
        assert by_id["p"]["pong"] is True
        assert by_id["1"]["ok"] is True
        solo = solve(graph, [0, 23, 77], voronoi_backend="delta-numpy")
        assert by_id["1"]["result"]["total_distance"] == solo.total_distance
        assert by_id["s"]["stats"]["counters"]["requests"] >= 1
        assert by_id["q"]["shutting_down"] is True

    def test_malformed_lines_keep_connection_up(self, graph):
        svc = make_service(graph, batch_window_s=0.01)
        _, responses = self.run_lines(
            svc,
            [
                "{not json",
                json.dumps({"op": "solve"}),  # missing id
                json.dumps({"id": "bad-op", "op": "teleport"}),
                "",
                json.dumps({"id": "ok", "graph": "g", "seeds": [0, 23]}),
            ],
        )
        svc.close()
        errors = [r for r in responses if not r["ok"]]
        assert len(errors) == 3
        ok = [r for r in responses if r["ok"]]
        assert len(ok) == 1 and ok[0]["id"] == "ok"

    def test_legacy_request_fields_served(self, graph):
        svc = make_service(graph, batch_window_s=0.01)
        with pytest.warns(DeprecationWarning):
            _, responses = self.run_lines(
                svc,
                [
                    json.dumps(
                        {
                            "request_id": "old",
                            "dataset": "g",
                            "terminals": [0, 23, 77],
                        }
                    )
                ],
            )
        svc.close()
        assert responses[0]["id"] == "old" and responses[0]["ok"] is True

    def test_handler_graphs_op(self, graph):
        svc = make_service(graph)
        out: list[str] = []
        handler = ProtocolHandler(svc, out.append)
        assert handler.handle_line(json.dumps({"id": "g1", "op": "graphs"}))
        svc.close()
        assert json.loads(out[0])["graphs"] == ["g"]


class TestTCP:
    def test_concurrent_clients_coalesce(self, graph):
        svc = make_service(graph, batch_window_s=0.05)
        server = make_tcp_server(svc)
        port = server.server_address[1]
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        seed_sets = [[0, 23, 77, 140], [5, 60, 130], [9, 44, 100]]
        responses: dict[int, dict] = {}

        def client(i, seeds):
            with socket.create_connection(("127.0.0.1", port), timeout=60) as s:
                f = s.makefile("rw", encoding="utf-8", newline="\n")
                f.write(
                    json.dumps({"id": f"c{i}", "graph": "g", "seeds": seeds})
                    + "\n"
                )
                f.flush()
                responses[i] = json.loads(f.readline())

        threads = [
            threading.Thread(target=client, args=(i, s))
            for i, s in enumerate(seed_sets)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        server.shutdown()
        server.server_close()
        svc.close()

        assert len(responses) == 3
        for i, seeds in enumerate(seed_sets):
            solo = solve(graph, seeds, voronoi_backend="delta-numpy")
            assert responses[i]["ok"], responses[i]
            assert responses[i]["result"]["total_distance"] == solo.total_distance
        # at least one fused batch happened across the three sockets
        assert svc.counters.coalesced > 0

    def test_shutdown_op_stops_server(self, graph):
        svc = make_service(graph)
        server = make_tcp_server(svc)
        port = server.server_address[1]
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
        )
        thread.start()
        with socket.create_connection(("127.0.0.1", port), timeout=30) as s:
            f = s.makefile("rw", encoding="utf-8", newline="\n")
            f.write(json.dumps({"id": "bye", "op": "shutdown"}) + "\n")
            f.flush()
            assert json.loads(f.readline())["shutting_down"] is True
        thread.join(timeout=30)
        assert not thread.is_alive()
        server.server_close()
        svc.close()


class TestCLIServe:
    def test_serve_subcommand_stdio(self, monkeypatch, capsys):
        """`repro-steiner serve` over substituted stdio streams."""
        import sys as _sys

        from repro.harness.cli import main

        lines = [
            json.dumps({"id": "p", "op": "ping"}),
            json.dumps({"id": "q", "op": "shutdown"}),
        ]
        monkeypatch.setattr(
            _sys, "stdin", io.StringIO("\n".join(lines) + "\n")
        )
        rc = main(["serve", "--batch-window-ms", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        responses = [json.loads(x) for x in out.splitlines() if x]
        assert any(r.get("pong") for r in responses)
        assert any(r.get("shutting_down") for r in responses)
