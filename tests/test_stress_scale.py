"""Large-scale robustness: the engine and solver at ~10^6 message /
~10^5 arc scale (the biggest runs the test suite exercises; benches go
further)."""

from __future__ import annotations

import pytest

from repro.core.config import SolverConfig
from repro.core.sequential import sequential_steiner_tree
from repro.core.solver import DistributedSteinerSolver
from repro.graph.generators import rmat_graph
from repro.graph.weights import assign_uniform_weights
from repro.seeds.selection import select_seeds
from repro.validation import validate_steiner_tree


@pytest.fixture(scope="module")
def big_instance():
    g = rmat_graph(12, 10, seed=77)
    g = assign_uniform_weights(g, (1, 10_000), seed=78)
    seeds = select_seeds(g, 100, "bfs-level", seed=7)
    return g, seeds


@pytest.mark.slow
class TestScale:
    def test_solver_handles_large_instance(self, big_instance):
        g, seeds = big_instance
        solver = DistributedSteinerSolver(g, SolverConfig(n_ranks=32))
        res = solver.solve(seeds)
        validate_steiner_tree(g, seeds, res.edges)
        # sanity: substantial message volume was actually simulated
        assert res.message_count() > 100_000
        ref = sequential_steiner_tree(g, seeds)
        assert res.total_distance == ref.total_distance

    def test_scaling_shape_holds_at_scale(self, big_instance):
        g, seeds = big_instance
        t_small = DistributedSteinerSolver(
            g, SolverConfig(n_ranks=4)
        ).solve(seeds).sim_time()
        t_large = DistributedSteinerSolver(
            g, SolverConfig(n_ranks=32)
        ).solve(seeds).sim_time()
        assert t_large < t_small  # strong scaling survives the jump

    def test_peak_queue_bounded_by_messages(self, big_instance):
        g, seeds = big_instance
        res = DistributedSteinerSolver(
            g, SolverConfig(n_ranks=8)
        ).solve(seeds)
        vc = res.phases[0]
        assert 0 < vc.peak_queue_total <= vc.n_messages + len(seeds)
