"""The multi-source backend registry and cross-backend equivalence.

The registry contract (``repro.shortest_paths.backends``): every
backend returns the *identical* ``(dist, src, canonical pred)`` triple
— the lexicographic ``(dist, owner)`` fixpoint with the canonical
predecessor assignment.  Property tests drive all backends over random
weighted graphs, including tie-heavy unit-weight graphs where the
smaller-seed-id rule does all the work, and assert bit-equality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SolverConfig
from repro.core.sequential import sequential_steiner_tree
from repro.core.solver import distributed_steiner_tree
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_graph
from repro.shortest_paths.backends import (
    DEFAULT_BACKEND,
    available_backends,
    backend_help,
    compute_multisource,
    get_backend,
    register_backend,
    verify_backends_agree,
)
from repro.shortest_paths.vectorized import (
    compute_voronoi_cells_delta_numpy,
    default_delta,
)
from repro.shortest_paths.voronoi import (
    canonicalize_predecessors,
    compute_voronoi_cells,
)
from repro.validation import validate_voronoi_diagram
from tests.conftest import component_seeds, make_connected_graph

PROPERTY = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def graph_and_seeds(draw, max_vertices=24, max_weight=8):
    """A random weighted graph (possibly disconnected) plus a seed set.

    A path backbone keeps most of the graph connected while random
    chords add cycles; ``max_weight=1`` degenerates to unit weights,
    the tie-heaviest case for the owner tie-break.
    """
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    backbone = [(i, i + 1) for i in range(n - 1)]
    n_chords = draw(st.integers(min_value=0, max_value=2 * n))
    chords = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=n_chords,
            max_size=n_chords,
        )
    )
    edges = backbone + [e for e in chords if e[0] != e[1]]
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=max_weight),
            min_size=len(edges),
            max_size=len(edges),
        )
    )
    graph = CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64), weights)
    k = draw(st.integers(min_value=1, max_value=min(5, n)))
    seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    return graph, sorted(seeds)


def assert_all_backends_agree(graph, seeds):
    ref = compute_voronoi_cells(graph, seeds)
    ref_pred = canonicalize_predecessors(graph, ref.src, ref.dist)
    for name in available_backends():
        vd = get_backend(name)(graph, seeds)
        assert np.array_equal(vd.dist, ref.dist), name
        assert np.array_equal(vd.src, ref.src), name
        assert np.array_equal(vd.pred, ref_pred), name
        validate_voronoi_diagram(graph, vd)


class TestBackendEquivalence:
    @PROPERTY
    @given(graph_and_seeds())
    def test_random_weighted_graphs(self, case):
        graph, seeds = case
        assert_all_backends_agree(graph, seeds)

    @PROPERTY
    @given(graph_and_seeds(max_weight=1))
    def test_unit_weight_tie_heavy_graphs(self, case):
        graph, seeds = case
        assert_all_backends_agree(graph, seeds)

    @pytest.mark.parametrize("seed", range(3))
    def test_generator_graphs(self, seed):
        g = make_connected_graph(45, 120, seed=seed + 900)
        assert_all_backends_agree(g, component_seeds(g, 6, seed=seed))

    def test_grid_many_seeds(self):
        g = grid_graph(8, 8)
        assert_all_backends_agree(g, [0, 7, 27, 36, 56, 63])

    def test_verify_backends_agree_helper(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=3)
        res = verify_backends_agree(random_graph, seeds)
        assert res.backend == DEFAULT_BACKEND

    def test_astronomical_weights_stay_exact(self):
        # path sums beyond float64's exact-integer range (2**53): the
        # scipy backend must fall back to integer-exact arithmetic
        # rather than crash or silently break the bit-for-bit contract
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]
        w = 2**54
        graph = CSRGraph.from_edges(
            5, np.asarray(edges, dtype=np.int64), [w, w + 1, w, w + 3, w, w + 2]
        )
        res = verify_backends_agree(graph, [0, 4])
        assert res.dist.max() < np.iinfo(np.int64).max  # all reached


class TestVectorizedDeltaStepping:
    @pytest.mark.parametrize("delta", [1, 3, 17, 10**6, None])
    def test_delta_insensitive(self, random_graph, delta):
        seeds = component_seeds(random_graph, 4, seed=2)
        ref = compute_voronoi_cells(random_graph, seeds)
        vd = compute_voronoi_cells_delta_numpy(random_graph, seeds, delta)
        assert np.array_equal(ref.dist, vd.dist)
        assert np.array_equal(ref.src, vd.src)

    def test_bad_delta_rejected(self, random_graph):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            compute_voronoi_cells_delta_numpy(random_graph, [0], 0)

    def test_default_delta_positive(self, random_graph, small_grid):
        assert default_delta(random_graph) >= 1
        assert default_delta(small_grid) >= 1

    def test_single_seed_matches_dijkstra(self, random_graph):
        from repro.shortest_paths.dijkstra import dijkstra

        dist, _ = dijkstra(random_graph, 0)
        vd = compute_voronoi_cells_delta_numpy(random_graph, [0])
        assert np.array_equal(vd.dist, dist)


class TestRegistry:
    def test_reference_listed_first(self):
        names = available_backends()
        assert names[0] == DEFAULT_BACKEND
        assert {"delta-numpy", "spfa", "delta-python"} <= set(names)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="backend"):
            get_backend("cuda")

    def test_backend_help_covers_all(self):
        help_by_name = backend_help()
        assert set(help_by_name) == set(available_backends())
        assert all(help_by_name.values())

    def test_register_and_shadow(self, random_graph):
        calls = []

        @register_backend("_test-probe", "test-only probe")
        def probe(graph, seeds):
            calls.append(len(seeds))
            return get_backend(DEFAULT_BACKEND)(graph, seeds)

        try:
            res = compute_multisource(random_graph, [0, 1], backend="_test-probe")
            assert calls == [2]
            assert res.backend == "_test-probe"
            assert res.elapsed_s >= 0
        finally:
            from repro.shortest_paths import backends as mod

            mod._REGISTRY.pop("_test-probe")
            mod._HELP.pop("_test-probe")

    def test_multisource_result_accessors(self, random_graph):
        seeds = component_seeds(random_graph, 3, seed=5)
        res = compute_multisource(random_graph, seeds)
        assert np.array_equal(res.seeds, res.diagram.seeds)
        assert res.agrees_with(
            compute_multisource(random_graph, seeds, backend="delta-numpy")
        )

    def test_voronoi_dispatch_kwarg(self, random_graph):
        seeds = component_seeds(random_graph, 3, seed=6)
        via_kwarg = compute_voronoi_cells(random_graph, seeds, backend="delta-numpy")
        direct = compute_voronoi_cells_delta_numpy(random_graph, seeds)
        assert np.array_equal(via_kwarg.dist, direct.dist)
        assert np.array_equal(via_kwarg.pred, direct.pred)


class TestSolverIntegration:
    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            SolverConfig(voronoi_backend="cuda")

    @pytest.mark.parametrize("backend", ["dijkstra", "delta-numpy", "scipy"])
    def test_distributed_tree_identical_under_backends(
        self, random_graph, backend
    ):
        seeds = component_seeds(random_graph, 5, seed=8)
        simulated = distributed_steiner_tree(random_graph, seeds)
        fast = distributed_steiner_tree(
            random_graph, seeds, config=SolverConfig(voronoi_backend=backend)
        )
        assert np.array_equal(simulated.edges, fast.edges)
        assert simulated.total_distance == fast.total_distance
        # the fast path skips the message simulation entirely
        assert fast.phases[0].n_messages == 0

    @pytest.mark.parametrize("backend", ["heap", "dijkstra", "delta-numpy"])
    def test_sequential_tree_under_backends(self, random_graph, backend):
        seeds = component_seeds(random_graph, 5, seed=9)
        ref = sequential_steiner_tree(random_graph, seeds)
        alt = sequential_steiner_tree(random_graph, seeds, voronoi_backend=backend)
        assert np.array_equal(ref.edges, alt.edges)

    def test_mehlhorn_backend_parity(self, random_graph):
        from repro.baselines.mehlhorn import mehlhorn_steiner_tree

        seeds = component_seeds(random_graph, 5, seed=10)
        ref = mehlhorn_steiner_tree(random_graph, seeds)
        alt = mehlhorn_steiner_tree(random_graph, seeds, backend="delta-numpy")
        assert ref.total_distance == alt.total_distance


class TestCLI:
    def test_backends_list(self, capsys):
        from repro.harness.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in available_backends():
            assert name in out

    def test_backends_bench(self, capsys):
        from repro.harness.cli import main

        assert main(["backends", "--bench", "--dataset", "CTS", "--seeds", "5"]) == 0
        assert "agree bit-for-bit" in capsys.readouterr().out

    def test_solve_with_backend(self, capsys):
        from repro.harness.cli import main

        rc = main(
            [
                "solve",
                "--dataset",
                "CTS",
                "--seeds",
                "5",
                "--backend",
                "delta-numpy",
            ]
        )
        assert rc == 0
        assert "SteinerTree" in capsys.readouterr().out
