"""Property-based tests (Hypothesis) over the core invariants.

Strategy: generate random connected weighted graphs + seed sets, then
assert the algebraic/structural properties the paper's correctness rests
on.  These complement the example-based tests with adversarial inputs
(parallel edges, weight ties, stars, paths...).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.exact import exact_steiner_tree
from repro.core.config import SolverConfig
from repro.core.sequential import sequential_steiner_tree
from repro.core.solver import distributed_steiner_tree
from repro.graph.connectivity import largest_component_vertices
from repro.graph.csr import CSRGraph
from repro.mst.boruvka import boruvka_mst
from repro.mst.kruskal import kruskal_mst
from repro.mst.prim import prim_mst
from repro.shortest_paths.bellman_ford import bellman_ford
from repro.shortest_paths.delta_stepping import delta_stepping
from repro.shortest_paths.dijkstra import dijkstra
from repro.shortest_paths.voronoi import compute_voronoi_cells
from repro.validation import validate_steiner_tree, validate_voronoi_diagram

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def connected_graph_and_seeds(draw, max_vertices=24, max_seeds=5, max_weight=12):
    """A connected weighted graph (path backbone + random chords, so
    connectivity is guaranteed) and a seed set."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    # backbone path keeps the graph connected
    edges = [(i, i + 1) for i in range(n - 1)]
    n_extra = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(n_extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.append((u, v))
    weights = [
        draw(st.integers(min_value=1, max_value=max_weight)) for _ in edges
    ]
    g = CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64), weights)
    k = draw(st.integers(min_value=1, max_value=min(max_seeds, n)))
    seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    return g, sorted(seeds)


class TestShortestPathProperties:
    @SLOW
    @given(connected_graph_and_seeds())
    def test_sssp_kernels_agree(self, gs):
        g, seeds = gs
        src = seeds[0]
        d1, _ = dijkstra(g, src)
        d2, _ = bellman_ford(g, src)
        d3, _ = delta_stepping(g, src)
        assert np.array_equal(d1, d2)
        assert np.array_equal(d1, d3)

    @SLOW
    @given(connected_graph_and_seeds())
    def test_triangle_inequality_over_edges(self, gs):
        g, seeds = gs
        dist, _ = dijkstra(g, seeds[0])
        for u, v, w in g.iter_edges():
            assert dist[v] <= dist[u] + w
            assert dist[u] <= dist[v] + w


class TestVoronoiProperties:
    @SLOW
    @given(connected_graph_and_seeds())
    def test_diagram_invariants(self, gs):
        g, seeds = gs
        vd = compute_voronoi_cells(g, seeds)
        validate_voronoi_diagram(g, vd)

    @SLOW
    @given(connected_graph_and_seeds())
    def test_cells_cover_connected_graph(self, gs):
        g, seeds = gs
        vd = compute_voronoi_cells(g, seeds)
        # backbone path makes g connected: every vertex must be claimed
        assert vd.reached().all()

    @SLOW
    @given(connected_graph_and_seeds())
    def test_dist_below_any_single_seed_sssp(self, gs):
        g, seeds = gs
        vd = compute_voronoi_cells(g, seeds)
        for s in seeds:
            d, _ = dijkstra(g, s)
            assert (vd.dist <= d).all()


class TestMSTProperties:
    @SLOW
    @given(connected_graph_and_seeds())
    def test_kernels_agree_on_weight(self, gs):
        g, _ = gs
        src, dst, w = g.edge_array()
        weights = {
            int(w[prim_mst(g.n_vertices, src, dst, w)].sum()),
            int(w[kruskal_mst(g.n_vertices, src, dst, w)].sum()),
            int(w[boruvka_mst(g.n_vertices, src, dst, w)].sum()),
        }
        assert len(weights) == 1

    @SLOW
    @given(connected_graph_and_seeds())
    def test_mst_has_n_minus_1_edges(self, gs):
        g, _ = gs
        src, dst, w = g.edge_array()
        idx = prim_mst(g.n_vertices, src, dst, w)
        assert idx.size == g.n_vertices - 1


class TestSteinerTreeProperties:
    @SLOW
    @given(connected_graph_and_seeds())
    def test_sequential_tree_is_valid(self, gs):
        g, seeds = gs
        res = sequential_steiner_tree(g, seeds)
        validate_steiner_tree(g, seeds, res.edges)

    @SLOW
    @given(connected_graph_and_seeds())
    def test_distributed_equals_sequential(self, gs):
        g, seeds = gs
        ref = sequential_steiner_tree(g, seeds)
        res = distributed_steiner_tree(g, seeds, config=SolverConfig(n_ranks=3))
        assert np.array_equal(ref.edges, res.edges)

    @SLOW
    @given(connected_graph_and_seeds(max_vertices=14, max_seeds=4))
    def test_two_approximation_bound(self, gs):
        g, seeds = gs
        opt = exact_steiner_tree(g, seeds)
        res = sequential_steiner_tree(g, seeds)
        assert opt.total_distance <= res.total_distance
        k = len(seeds)
        if k > 1:
            # paper bound: 2 (1 - 1/l) <= 2 (1 - 1/|S|) is NOT the right
            # direction; use the always-valid <= 2 (1 - 1/|S|)^{-1}-free
            # form: D(GS) <= 2 * Dmin
            assert res.total_distance <= 2 * opt.total_distance

    @SLOW
    @given(connected_graph_and_seeds())
    def test_tree_weight_at_most_mst_of_graph(self, gs):
        # the Steiner tree never costs more than a spanning tree of the
        # whole (connected) graph
        g, seeds = gs
        src, dst, w = g.edge_array()
        mst_w = int(w[prim_mst(g.n_vertices, src, dst, w)].sum())
        res = sequential_steiner_tree(g, seeds)
        assert res.total_distance <= mst_w

    @SLOW
    @given(connected_graph_and_seeds())
    def test_monotone_in_seed_subsets(self, gs):
        # adding seeds can only grow the optimal-ish tree weight class;
        # we check the weaker, always-true containment property: a tree
        # for the superset also connects the subset, so D(subset tree)
        # <= D(superset tree) does NOT hold in general for heuristics —
        # instead assert subset tree spans its seeds (validity only).
        g, seeds = gs
        if len(seeds) > 2:
            res = sequential_steiner_tree(g, seeds[:-1])
            validate_steiner_tree(g, seeds[:-1], res.edges)


class TestCSRProperties:
    @SLOW
    @given(connected_graph_and_seeds())
    def test_io_round_trip(self, gs):
        import io

        import numpy as np

        g, _ = gs
        # in-memory npz round trip (same arrays the file format stores)
        buf = io.BytesIO()
        np.savez(buf, indptr=g.indptr, indices=g.indices, weights=g.weights)
        buf.seek(0)
        with np.load(buf) as data:
            from repro.graph.csr import CSRGraph

            back = CSRGraph(data["indptr"], data["indices"], data["weights"])
        assert back == g

    @SLOW
    @given(connected_graph_and_seeds())
    def test_degree_sum_equals_arcs(self, gs):
        g, _ = gs
        assert int(g.degree().sum()) == g.n_arcs

    @SLOW
    @given(connected_graph_and_seeds())
    def test_largest_component_is_everything(self, gs):
        g, _ = gs
        assert largest_component_vertices(g).size == g.n_vertices
