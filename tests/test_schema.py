"""Versioned JSON schema: request parsing, result payloads, envelopes,
and the deprecation shims for pre-schema field names."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import schema
from repro.api.schema import (
    SCHEMA_VERSION,
    SchemaError,
    SolveRequest,
    dumps,
    error_payload,
    parse_request,
    response_payload,
    result_payload,
    upgrade_result_payload,
)
from repro.core.sequential import sequential_steiner_tree

from tests.conftest import component_seeds


class TestParseRequest:
    def test_roundtrip(self):
        req = parse_request(
            {
                "schema_version": 1,
                "id": "r1",
                "op": "solve",
                "graph": "LVJ",
                "seeds": [3, 1, 2],
                "config": {"n_ranks": 8},
            }
        )
        assert req == SolveRequest(
            id="r1", op="solve", graph="LVJ", seeds=(3, 1, 2),
            config={"n_ranks": 8},
        )
        assert parse_request(req.to_payload()) == req

    def test_defaults(self):
        req = parse_request({"id": "x", "graph": "g", "seeds": [1, 2]})
        assert req.op == "solve"
        assert req.schema_version == SCHEMA_VERSION
        assert req.config == {}

    @pytest.mark.parametrize(
        "legacy,canonical,value",
        [
            ("request_id", "id", "r9"),
            ("terminals", "seeds", [4, 5]),
            ("dataset", "graph", "MCO"),
            ("options", "config", {"n_ranks": 4}),
        ],
    )
    def test_legacy_fields_upgrade_with_warning(self, legacy, canonical, value):
        payload = {"id": "r9", "graph": "MCO", "seeds": [4, 5]}
        payload.pop(canonical, None)
        payload[legacy] = value
        with pytest.warns(DeprecationWarning, match=legacy):
            req = parse_request(payload)
        assert getattr(req, canonical) == (
            tuple(value) if canonical == "seeds" else value
        )

    def test_both_spellings_rejected(self):
        with pytest.raises(SchemaError, match="both"):
            parse_request(
                {"id": "a", "request_id": "b", "graph": "g", "seeds": [1]}
            )

    def test_newer_schema_version_rejected(self):
        with pytest.raises(SchemaError, match="newer"):
            parse_request(
                {
                    "schema_version": SCHEMA_VERSION + 1,
                    "id": "a",
                    "graph": "g",
                    "seeds": [1],
                }
            )

    @pytest.mark.parametrize(
        "payload,match",
        [
            ({"graph": "g", "seeds": [1]}, "id"),
            ({"id": "a", "op": "fly"}, "unknown op"),
            ({"id": "a", "graph": 7, "seeds": [1]}, "graph"),
            ({"id": "a", "graph": "g", "seeds": "abc"}, "seeds"),
            ({"id": "a", "graph": "g", "seeds": [1], "config": 3}, "config"),
            ({"id": "a", "seeds": [1]}, "graph"),
            ({"id": "a", "graph": "g"}, "non-empty"),
            ({"id": "a", "graph": "g", "seeds": [1], "schema_version": 0}, "invalid"),
        ],
    )
    def test_malformed_rejected(self, payload, match):
        with pytest.raises(SchemaError, match=match):
            parse_request(payload)

    def test_control_ops_need_no_graph(self):
        for op in ("ping", "stats", "graphs", "shutdown"):
            req = parse_request({"id": "c", "op": op})
            assert req.op == op


class TestResultPayload:
    def test_payload_fields_and_to_json(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=1)
        res = sequential_steiner_tree(random_graph, seeds)
        payload = result_payload(res)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["total_distance"] == res.total_distance
        assert payload["n_edges"] == res.n_edges
        assert payload["seeds"] == [int(s) for s in seeds]
        assert payload["provenance"]["backend"] == "delta-numpy"
        # to_json is the same payload through the same module
        assert json.loads(res.to_json()) == json.loads(
            json.dumps(schema.jsonable(payload))
        )

    def test_upgrade_legacy_result(self):
        with pytest.warns(DeprecationWarning, match="total"):
            up = upgrade_result_payload({"total": 23, "edges": []})
        assert up["total_distance"] == 23
        assert up["schema_version"] == SCHEMA_VERSION

    def test_upgrade_rejects_double_spelling(self):
        with pytest.raises(SchemaError, match="both"):
            upgrade_result_payload({"total": 1, "total_distance": 1})

    def test_canonical_result_passes_through(self):
        src = {"total_distance": 5, "edges": [[0, 1, 5]], "schema_version": 1}
        assert upgrade_result_payload(src) == src


class TestEnvelopes:
    def test_response_payload(self, random_graph):
        seeds = component_seeds(random_graph, 3, seed=2)
        res = sequential_steiner_tree(random_graph, seeds)
        env = response_payload("r1", result=res)
        assert env["ok"] is True and env["id"] == "r1"
        assert env["result"]["total_distance"] == res.total_distance

    def test_error_payload(self):
        env = error_payload("r2", ValueError("boom"))
        assert env["ok"] is False
        assert env["error"] == {"type": "ValueError", "message": "boom"}
        assert error_payload(None, "bad line")["id"] is None

    def test_dumps_single_line_and_numpy_safe(self):
        line = dumps({"id": "x", "arr": np.asarray([1, 2]), "n": np.int64(3)})
        assert "\n" not in line
        assert json.loads(line) == {"id": "x", "arr": [1, 2], "n": 3}
