"""The runtime-engine registry and cross-engine equivalence.

The registry contract (``repro.runtime.engines``): every engine drives a
program to the identical converged state — for the solver, the identical
``(src, dist)`` fixpoint and hence the bit-identical Steiner tree (same
edges, same total weight).  The two bulk-synchronous engines execute the
same superstep semantics (one per-message, one vectorised), so their
local/remote message counts, visit counts and superstep counts must
match *exactly*; the order-independent Steiner-tree-edge walk phase must
match in counts across **all** engines.  Property tests drive the
engines over random partitioned graphs — block and hash partitions,
with and without delegates — and pin all of it down.  The multiprocess
``bsp-mp`` member of the BSP family has its own parity suite in
``tests/test_engine_mp.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SolverConfig
from repro.core.voronoi_visitor import VoronoiProgram
from repro.graph.csr import CSRGraph
from repro.runtime.engine import AsyncEngine, BSPEngine
from repro.runtime.engine_batched import BSPBatchedEngine, supports_batch
from repro.runtime.engines import (
    DEFAULT_ENGINE,
    available_engines,
    engine_help,
    get_engine,
    make_engine,
    register_engine,
    run_phase_with,
    verify_engines_agree,
)
from repro.runtime.partition import block_partition, hash_partition
from tests.conftest import component_seeds, make_connected_graph
from tests.test_engine_conformance import assert_conformance, solve_with

ENGINES = ("async-heap", "bsp", "bsp-batched")

PROPERTY = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def partitioned_instance(draw, max_vertices=22, max_weight=8):
    """A random connected weighted graph, a seed set and a partition
    configuration (rank count, block/hash, optional delegates).

    A path backbone keeps the graph connected; ``max_weight=1``
    degenerates to unit weights — the tie-heaviest case for the
    per-superstep lexicographic reduction the batched engine performs.
    """
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    backbone = [(i, i + 1) for i in range(n - 1)]
    n_chords = draw(st.integers(min_value=0, max_value=2 * n))
    chords = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=n_chords,
            max_size=n_chords,
        )
    )
    edges = backbone + [e for e in chords if e[0] != e[1]]
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=max_weight),
            min_size=len(edges),
            max_size=len(edges),
        )
    )
    graph = CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64), weights)
    k = draw(st.integers(min_value=1, max_value=min(5, n)))
    seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    n_ranks = draw(st.integers(min_value=1, max_value=7))
    partition_fn = draw(st.sampled_from([block_partition, hash_partition]))
    delegate_threshold = draw(st.sampled_from([None, 3, 6]))
    return graph, sorted(seeds), n_ranks, partition_fn, delegate_threshold


def assert_engine_parity(graph, seeds, n_ranks=6, **cfg):
    """The full cross-engine contract on one solver instance — routed
    through the canonical harness (``tests/test_engine_conformance.py``)
    restricted to the in-process trio this module focuses on."""
    return assert_conformance(
        graph, seeds, n_ranks=n_ranks, engines=ENGINES, **cfg
    )


class TestEngineParity:
    @PROPERTY
    @given(partitioned_instance())
    def test_random_partitioned_graphs(self, case):
        graph, seeds, n_ranks, partition_fn, delegate_threshold = case
        partition = "hash" if partition_fn is hash_partition else "block"
        assert_engine_parity(
            graph,
            seeds,
            n_ranks=n_ranks,
            partition=partition,
            delegate_threshold=delegate_threshold,
        )

    @PROPERTY
    @given(partitioned_instance(max_weight=1))
    def test_unit_weight_tie_heavy_graphs(self, case):
        graph, seeds, n_ranks, partition_fn, delegate_threshold = case
        partition = "hash" if partition_fn is hash_partition else "block"
        assert_engine_parity(
            graph,
            seeds,
            n_ranks=n_ranks,
            partition=partition,
            delegate_threshold=delegate_threshold,
        )

    @pytest.mark.parametrize("trial", range(3))
    def test_generator_graphs(self, trial):
        g = make_connected_graph(45, 120, seed=trial + 700)
        assert_engine_parity(g, component_seeds(g, 5, seed=trial))

    def test_fifo_discipline_parity(self, random_graph):
        """Under FIFO the batched engine falls back to the per-message
        loop, so the whole contract still holds."""
        seeds = component_seeds(random_graph, 4, seed=11)
        assert_engine_parity(random_graph, seeds, discipline="fifo")

    def test_delegates_parity(self, random_graph):
        seeds = component_seeds(random_graph, 5, seed=12)
        assert_engine_parity(random_graph, seeds, delegate_threshold=5)

    def test_voronoi_program_state_identical(self, random_graph):
        """Program-level contract, independent of the solver: identical
        (src, dist) fixpoint, and exact counter parity for the BSP pair."""
        seeds = np.asarray(component_seeds(random_graph, 4, seed=13))
        part = block_partition(random_graph, 5)
        results = verify_engines_agree(
            part,
            lambda: VoronoiProgram(part),
            lambda prog: prog.initial_messages(seeds),
            lambda prog: (prog.src, prog.dist),
        )
        assert set(results) == set(available_engines())
        bsp, batched = results["bsp"], results["bsp-batched"]
        assert bsp.stats.n_messages == batched.stats.n_messages
        assert bsp.n_supersteps == batched.n_supersteps
        assert results["async-heap"].n_supersteps is None

    def test_verify_engines_agree_detects_divergence(self, random_graph):
        part = block_partition(random_graph, 4)
        seeds = np.asarray(component_seeds(random_graph, 3, seed=14))

        class Corrupted(VoronoiProgram):
            pass

        def factory():
            # corrupt the state the comparison reads, per engine
            prog = Corrupted(part)
            return prog

        with pytest.raises(AssertionError, match="disagrees"):
            verify_engines_agree(
                part,
                factory,
                lambda prog: prog.initial_messages(seeds),
                # a state that differs on every extraction, so the
                # cross-engine comparison must trip — deterministically
                lambda prog, _c=iter(range(99)): (np.arange(5) + next(_c),),
            )


class TestBatchedEngine:
    def test_supports_batch_detection(self, random_graph):
        part = block_partition(random_graph, 2)
        assert supports_batch(VoronoiProgram(part))

        class Plain:
            def priority(self, payload):
                return 0.0

        assert not supports_batch(Plain())

    def test_fallback_for_non_batch_program(self, random_graph):
        """A program without the batch protocol runs through the scalar
        superstep loop with identical results."""

        class EchoProgram:
            def __init__(self):
                self.visits = []

            def priority(self, payload):
                return float(payload[0])

            def visit(self, vertex, payload, emit):
                self.visits.append(vertex)
                if payload[0] > 0 and vertex + 1 < 16:
                    emit(vertex + 1, (payload[0] - 1,))

            def visit_rank(self, rank, payload, emit):
                raise AssertionError("not used")

        from repro.graph.generators import grid_graph

        part = block_partition(grid_graph(1, 16), 4)
        stats = {}
        visits = {}
        for cls in (BSPEngine, BSPBatchedEngine):
            prog = EchoProgram()
            stats[cls] = cls(part).run_phase("chain", prog, [(0, (7,))])
            visits[cls] = prog.visits
        assert visits[BSPEngine] == visits[BSPBatchedEngine]
        assert (
            stats[BSPEngine].n_messages == stats[BSPBatchedEngine].n_messages
        )

    def test_max_events_guard(self, random_graph):
        from repro.errors import SimulationError

        seeds = component_seeds(random_graph, 4, seed=15)
        for engine in ("bsp", "bsp-batched"):
            with pytest.raises(SimulationError, match="exceeded"):
                solve_with(random_graph, seeds, engine, max_events=3)

    def test_max_events_zero_means_uncapped(self, random_graph):
        """Legacy semantics: a falsy cap disables the guard entirely."""
        seeds = component_seeds(random_graph, 4, seed=15)
        for engine in ENGINES:
            res = solve_with(random_graph, seeds, engine, max_events=0)
            assert res.total_distance > 0

    def test_batched_is_a_bsp_engine(self, random_graph):
        part = block_partition(random_graph, 3)
        engine = make_engine("bsp-batched", part)
        assert isinstance(engine, BSPBatchedEngine)
        assert isinstance(engine, BSPEngine)


class TestRegistry:
    def test_default_listed_first(self):
        names = available_engines()
        assert names[0] == DEFAULT_ENGINE == "async-heap"
        assert {"bsp", "bsp-batched", "bsp-mp"} <= set(names)
        # deterministic iteration order (the reproducible-bench clause):
        # default first, everything else alphabetical
        assert names[1:] == sorted(names[1:])

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="engine"):
            get_engine("mpi")

    def test_engine_help_covers_all(self):
        help_by_name = engine_help()
        assert set(help_by_name) == set(available_engines())
        assert all(help_by_name.values())

    def test_make_engine_types(self, random_graph):
        part = block_partition(random_graph, 2)
        assert isinstance(make_engine("async-heap", part), AsyncEngine)
        assert isinstance(make_engine("bsp", part), BSPEngine)

    def test_register_and_shadow(self, random_graph):
        calls = []

        @register_engine("_test-probe", "test-only probe")
        def probe(partition, machine=None, discipline="priority", **kw):
            calls.append(partition.n_ranks)
            return BSPEngine(partition, machine, discipline)

        try:
            part = block_partition(random_graph, 3)
            prog = VoronoiProgram(part)
            seeds = np.asarray(component_seeds(random_graph, 3, seed=16))
            res = run_phase_with(
                "_test-probe", part, prog, list(prog.initial_messages(seeds))
            )
            assert calls == [3]
            assert res.engine == "_test-probe"
            assert res.elapsed_s >= 0
            assert res.n_supersteps >= 1
        finally:
            from repro.runtime import engines as mod

            mod._REGISTRY.pop("_test-probe")
            mod._HELP.pop("_test-probe")


class TestSolverConfig:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            SolverConfig(engine="mpi")

    def test_default_engine(self):
        assert SolverConfig().engine == "async-heap"
        assert SolverConfig().bsp is False

    def test_bsp_alias_maps_to_bsp_engine(self):
        cfg = SolverConfig(bsp=True)
        assert cfg.engine == "bsp"
        assert cfg.bsp is True

    def test_bsp_flag_mirrors_engine(self):
        assert SolverConfig(engine="bsp-batched").bsp is True
        assert SolverConfig(engine="bsp").bsp is True


class TestSequentialDefaultBackend:
    def test_default_is_vectorised(self, random_graph):
        """ROADMAP lever from PR 1: the shared-memory entry point
        defaults to the delta-numpy kernel (the parameter is now spelled
        ``voronoi_backend``, matching the SolverConfig field; ``None``
        resolves to the vectorised default)."""
        import inspect

        from repro.core.sequential import sequential_steiner_tree

        sig = inspect.signature(sequential_steiner_tree)
        assert "voronoi_backend" in sig.parameters
        seeds = component_seeds(random_graph, 4, seed=17)
        res = sequential_steiner_tree(random_graph, seeds)
        assert res.provenance["backend"] == "delta-numpy"

    def test_default_matches_reference(self, random_graph):
        from repro.core.sequential import sequential_steiner_tree

        seeds = component_seeds(random_graph, 5, seed=17)
        default = sequential_steiner_tree(random_graph, seeds)
        reference = sequential_steiner_tree(
            random_graph, seeds, voronoi_backend="dijkstra"
        )
        assert np.array_equal(default.edges, reference.edges)
        assert default.total_distance == reference.total_distance


class TestExperimentThreading:
    def test_shared_solve_accepts_engine(self):
        from repro.harness.experiments._shared import solve

        ref = solve("CTS", 4, n_ranks=4)
        batched = solve("CTS", 4, n_ranks=4, engine="bsp-batched")
        assert np.array_equal(ref.edges, batched.edges)

    def test_fig5_run_pair_accepts_engine(self):
        from repro.harness.experiments.fig5_fifo_vs_priority import run_pair

        fifo, prio = run_pair("CTS", 4, 4, engine="bsp-batched")
        assert np.array_equal(fifo.edges, prio.edges)

    def test_ablation_covers_all_engines(self):
        from repro.harness.experiments.ablation_async_vs_bsp import run

        rep = run(quick=True)
        for cell in rep.data.values():
            assert cell["bsp_messages"] == cell["bsp_batched_messages"]
            assert cell["batch_wall_speedup"] > 0

    def test_run_experiment_forwards_engine_kwarg(self):
        from repro.harness.registry import run_experiment

        # fig5 accepts engine=; table3 does not — both must run
        rep = run_experiment("fig5", quick=True, engine="bsp-batched")
        assert "runtime engine: bsp-batched" in " ".join(rep.notes)
        run_experiment("table3", quick=True, engine="bsp-batched")


class TestCLI:
    def test_engines_list(self, capsys):
        from repro.harness.cli import main

        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in available_engines():
            assert name in out

    def test_engines_bench(self, capsys):
        from repro.harness.cli import main

        assert main(
            ["engines", "--bench", "--dataset", "CTS", "--seeds", "4",
             "--ranks", "4"]
        ) == 0
        assert "identical tree" in capsys.readouterr().out

    def test_solve_with_engine(self, capsys):
        from repro.harness.cli import main

        rc = main(
            ["solve", "--dataset", "CTS", "--seeds", "5",
             "--engine", "bsp-batched"]
        )
        assert rc == 0
        assert "SteinerTree" in capsys.readouterr().out

    def test_solve_rejects_unknown_engine(self, capsys):
        from repro.harness.cli import main

        rc = main(
            ["solve", "--dataset", "CTS", "--seeds", "5", "--engine", "mpi"]
        )
        assert rc == 2
        assert "engine" in capsys.readouterr().err

    def test_run_rejects_unknown_engine(self, capsys):
        from repro.harness.cli import main

        rc = main(["run", "table3", "--quick", "--engine", "bspp"])
        assert rc == 2
        assert "engine" in capsys.readouterr().err

    def test_run_notes_engine_unaware_experiments(self, capsys):
        from repro.harness.cli import main

        assert main(["run", "table3", "--quick", "--engine", "bsp"]) == 0
        assert "does not thread --engine" in capsys.readouterr().err
