"""Tests for the baseline algorithms: validity, approximation bounds,
agreement with the exact solver and with networkx."""

from __future__ import annotations

import pytest

import networkx as nx

from repro.baselines.exact import MAX_EXACT_SEEDS, exact_steiner_tree
from repro.baselines.kmb import kmb_steiner_tree
from repro.baselines.mehlhorn import mehlhorn_steiner_tree
from repro.baselines.refine import refined_reference_tree
from repro.baselines.takahashi import takahashi_steiner_tree
from repro.baselines.www import www_steiner_tree
from repro.core.sequential import sequential_steiner_tree
from repro.errors import DisconnectedSeedsError, SeedError
from repro.graph.csr import CSRGraph
from repro.shortest_paths.dijkstra import dijkstra
from repro.validation import validate_steiner_tree
from tests.conftest import component_seeds, make_connected_graph

ALL_APPROX = [
    kmb_steiner_tree,
    mehlhorn_steiner_tree,
    www_steiner_tree,
    takahashi_steiner_tree,
    sequential_steiner_tree,
]


class TestApproximationAlgorithms:
    @pytest.mark.parametrize("algo", ALL_APPROX)
    @pytest.mark.parametrize("seed", range(3))
    def test_valid_trees(self, algo, seed):
        g = make_connected_graph(35, 90, seed=seed + 40)
        seeds = component_seeds(g, 5, seed=seed)
        res = algo(g, seeds)
        validate_steiner_tree(g, seeds, res.edges)

    @pytest.mark.parametrize("algo", ALL_APPROX)
    def test_two_approximation_bound(self, algo):
        for seed in range(4):
            g = make_connected_graph(30, 80, seed=seed + 70)
            seeds = component_seeds(g, 5, seed=seed)
            opt = exact_steiner_tree(g, seeds)
            res = algo(g, seeds)
            assert opt.total_distance <= res.total_distance
            assert res.total_distance <= 2 * opt.total_distance

    @pytest.mark.parametrize("algo", ALL_APPROX)
    def test_two_seeds_is_shortest_path(self, algo, random_graph):
        seeds = component_seeds(random_graph, 2, seed=1)
        res = algo(random_graph, seeds)
        dist, _ = dijkstra(random_graph, int(seeds[0]))
        assert res.total_distance == int(dist[seeds[1]])

    @pytest.mark.parametrize(
        "algo", [kmb_steiner_tree, mehlhorn_steiner_tree, www_steiner_tree,
                 takahashi_steiner_tree]
    )
    def test_single_seed(self, algo, random_graph):
        res = algo(random_graph, [5])
        assert res.n_edges == 0

    @pytest.mark.parametrize(
        "algo", [kmb_steiner_tree, mehlhorn_steiner_tree, www_steiner_tree,
                 takahashi_steiner_tree]
    )
    def test_disconnected_raises(self, algo):
        g = CSRGraph.from_edges(4, [(0, 1), (2, 3)], [1, 1])
        with pytest.raises(DisconnectedSeedsError):
            algo(g, [0, 3])

    def test_beats_networkx_or_matches(self, random_graph):
        """Our 2-approximations should be in the same quality class as
        networkx's steiner_tree (also KMB-family)."""
        seeds = component_seeds(random_graph, 5, seed=2)
        nx_tree = nx.algorithms.approximation.steiner_tree(
            random_graph.to_networkx(), [int(s) for s in seeds], weight="weight"
        )
        nx_w = sum(d["weight"] for _, _, d in nx_tree.edges(data=True))
        ours = sequential_steiner_tree(random_graph, seeds)
        assert ours.total_distance <= 2 * nx_w
        assert nx_w <= 2 * ours.total_distance

    def test_takahashi_custom_start(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=3)
        res = takahashi_steiner_tree(random_graph, seeds, start=int(seeds[-1]))
        validate_steiner_tree(random_graph, seeds, res.edges)

    def test_takahashi_bad_start(self, random_graph):
        seeds = component_seeds(random_graph, 4, seed=3)
        bad = next(v for v in range(random_graph.n_vertices) if v not in set(seeds.tolist()))
        with pytest.raises(ValueError):
            takahashi_steiner_tree(random_graph, seeds, start=bad)


class TestExactSolver:
    def brute_force_optimum(self, graph, seeds) -> int:
        """Min over all vertex supersets U ⊇ S of MST(G[U]) — exact by
        the induced-subgraph characterisation of Steiner minimal trees."""
        from itertools import combinations

        from repro.baselines._common import mst_of_vertex_set
        from repro.mst.union_find import UnionFind

        n = graph.n_vertices
        seed_set = {int(s) for s in seeds}
        others = [v for v in range(n) if v not in seed_set]
        best = None
        for r in range(len(others) + 1):
            for extra in combinations(others, r):
                vertices = sorted(seed_set | set(extra))
                rows = mst_of_vertex_set(graph, vertices)
                # must connect all seeds in one component
                uf = UnionFind(n)
                for u, v, _ in rows:
                    uf.union(u, v)
                root = uf.find(int(seeds[0]))
                if any(uf.find(int(s)) != root for s in seeds):
                    continue
                w = sum(e[2] for e in rows)
                if best is None or w < best:
                    best = w
        assert best is not None
        return best

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bruteforce_on_tiny_graphs(self, seed):
        g = make_connected_graph(9, 16, weight_high=9, seed=seed + 300)
        seeds = component_seeds(g, 3, seed=seed)
        res = exact_steiner_tree(g, seeds)
        validate_steiner_tree(g, seeds, res.edges)
        assert res.total_distance == self.brute_force_optimum(g, seeds)

    def test_two_seeds_is_shortest_path(self, random_graph):
        seeds = component_seeds(random_graph, 2, seed=4)
        res = exact_steiner_tree(random_graph, seeds)
        dist, _ = dijkstra(random_graph, int(seeds[0]))
        assert res.total_distance == int(dist[seeds[1]])

    def test_single_seed(self, random_graph):
        res = exact_steiner_tree(random_graph, [0])
        assert res.n_edges == 0

    def test_seed_limit(self, random_graph):
        too_many = component_seeds(random_graph, MAX_EXACT_SEEDS + 1, seed=0)
        if too_many.size > MAX_EXACT_SEEDS:
            with pytest.raises(SeedError, match="limited"):
                exact_steiner_tree(random_graph, too_many)

    def test_disconnected_raises(self):
        g = CSRGraph.from_edges(4, [(0, 1), (2, 3)], [1, 1])
        with pytest.raises(DisconnectedSeedsError):
            exact_steiner_tree(g, [0, 2])

    def test_never_above_approximations(self):
        for seed in range(3):
            g = make_connected_graph(25, 60, seed=seed + 500)
            seeds = component_seeds(g, 4, seed=seed)
            opt = exact_steiner_tree(g, seeds)
            for algo in ALL_APPROX:
                assert opt.total_distance <= algo(g, seeds).total_distance


class TestRefinedReference:
    def test_at_least_as_good_as_all_builders(self, random_graph):
        seeds = component_seeds(random_graph, 6, seed=5)
        ref = refined_reference_tree(random_graph, seeds, passes=2)
        validate_steiner_tree(random_graph, seeds, ref.edges)
        for algo in ALL_APPROX:
            assert ref.total_distance <= algo(random_graph, seeds).total_distance

    def test_matches_exact_on_small_instances(self):
        hits = 0
        for seed in range(4):
            g = make_connected_graph(20, 50, seed=seed + 600)
            seeds = component_seeds(g, 4, seed=seed)
            opt = exact_steiner_tree(g, seeds)
            ref = refined_reference_tree(g, seeds)
            assert ref.total_distance >= opt.total_distance
            if ref.total_distance == opt.total_distance:
                hits += 1
        assert hits >= 2  # usually optimal at this scale
