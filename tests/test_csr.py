"""Unit tests for the CSR graph substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph


def tiny() -> CSRGraph:
    # triangle 0-1-2 plus pendant 3
    edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
    return CSRGraph.from_edges(4, edges, [5, 7, 2, 9])


class TestConstruction:
    def test_counts(self):
        g = tiny()
        assert g.n_vertices == 4
        assert g.n_edges == 4
        assert g.n_arcs == 8

    def test_symmetric_storage(self):
        g = tiny()
        # both directions present, same weight
        assert g.edge_weight(0, 1) == 5
        assert g.edge_weight(1, 0) == 5

    def test_empty_graph(self):
        g = CSRGraph.from_edges(3, np.zeros((0, 2), dtype=np.int64), [])
        assert g.n_vertices == 3
        assert g.n_edges == 0
        assert g.degree(0) == 0

    def test_zero_vertex_graph(self):
        g = CSRGraph.from_edges(0, np.zeros((0, 2), dtype=np.int64), [])
        assert g.n_vertices == 0
        assert g.max_degree == 0
        assert g.avg_degree == 0.0

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1)], [3, 4])
        assert g.n_edges == 1
        assert g.edge_weight(0, 1) == 4

    def test_self_loops_kept_raises_nothing_by_default(self):
        # drop_self_loops=False keeps the loop as an arc pair
        g = CSRGraph.from_edges(2, [(0, 0), (0, 1)], [3, 4], drop_self_loops=False)
        assert g.n_arcs == 4

    def test_duplicate_edges_min_weight(self):
        g = CSRGraph.from_edges(2, [(0, 1), (1, 0), (0, 1)], [9, 3, 5])
        assert g.n_edges == 1
        assert g.edge_weight(0, 1) == 3

    def test_duplicate_edges_error_policy(self):
        with pytest.raises(GraphError, match="duplicate"):
            CSRGraph.from_edges(2, [(0, 1), (0, 1)], [1, 2], dedupe="error")

    def test_out_of_range_endpoint(self):
        with pytest.raises(GraphError, match="out of range"):
            CSRGraph.from_edges(2, [(0, 5)], [1])

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError, match="positive"):
            CSRGraph.from_edges(2, [(0, 1)], [-1])

    def test_zero_weight_rejected(self):
        with pytest.raises(GraphError, match="positive"):
            CSRGraph.from_edges(2, [(0, 1)], [0])

    def test_weight_length_mismatch(self):
        with pytest.raises(GraphError, match="weights length"):
            CSRGraph.from_edges(2, [(0, 1)], [1, 2])

    def test_bad_indptr(self):
        with pytest.raises(GraphError):
            CSRGraph(np.asarray([0, 5]), np.asarray([1]), np.asarray([1]))


class TestQueries:
    def test_degree_vector(self):
        g = tiny()
        assert list(g.degree()) == [2, 2, 3, 1]
        assert g.degree(2) == 3
        assert g.max_degree == 3
        assert g.avg_degree == pytest.approx(2.0)

    def test_neighbors_sorted(self):
        g = tiny()
        assert list(g.neighbors(2)) == [0, 1, 3]

    def test_neighbor_weights_aligned(self):
        g = tiny()
        nbrs = list(g.neighbors(2))
        ws = list(g.neighbor_weights(2))
        assert dict(zip(nbrs, ws)) == {0: 2, 1: 7, 3: 9}

    def test_has_edge(self):
        g = tiny()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 3)

    def test_edge_weight_missing_raises(self):
        with pytest.raises(GraphError, match="no edge"):
            tiny().edge_weight(1, 3)

    def test_edge_array_unique_undirected(self):
        g = tiny()
        src, dst, w = g.edge_array()
        assert src.size == g.n_edges
        assert (src < dst).all()
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert pairs == {(0, 1), (0, 2), (1, 2), (2, 3)}

    def test_iter_edges_matches_edge_array(self):
        g = tiny()
        src, dst, w = g.edge_array()
        assert list(g.iter_edges()) == list(
            zip(src.tolist(), dst.tolist(), w.tolist())
        )

    def test_total_weight(self):
        assert tiny().total_weight() == 5 + 7 + 2 + 9

    def test_nbytes_positive(self):
        assert tiny().nbytes() > 0


class TestDerived:
    def test_reweighted_same_topology(self):
        g = tiny()
        g2 = g.reweighted(np.full(g.n_arcs, 3, dtype=np.int64))
        assert g2.n_edges == g.n_edges
        assert g2.edge_weight(0, 1) == 3

    def test_reweighted_shape_mismatch(self):
        with pytest.raises(GraphError, match="shape"):
            tiny().reweighted(np.ones(3, dtype=np.int64))

    def test_reweighted_rejects_nonpositive(self):
        g = tiny()
        with pytest.raises(GraphError, match="positive"):
            g.reweighted(np.zeros(g.n_arcs, dtype=np.int64))

    def test_induced_subgraph(self):
        g = tiny()
        sub, mapping = g.induced_subgraph([0, 1, 2])
        assert sub.n_vertices == 3
        assert sub.n_edges == 3  # the triangle
        assert list(mapping) == [0, 1, 2]

    def test_induced_subgraph_relabels(self):
        g = tiny()
        sub, mapping = g.induced_subgraph([2, 3])
        assert sub.n_vertices == 2
        assert sub.n_edges == 1
        assert sub.edge_weight(0, 1) == 9
        assert list(mapping) == [2, 3]

    def test_induced_subgraph_out_of_range(self):
        with pytest.raises(GraphError):
            tiny().induced_subgraph([99])

    def test_networkx_round_trip(self):
        g = tiny()
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 4
        back = CSRGraph.from_networkx(nxg)
        assert back == g

    def test_equality(self):
        assert tiny() == tiny()
        other = CSRGraph.from_edges(4, [(0, 1)], [5])
        assert tiny() != other
        assert tiny() != "not a graph"
