"""Tests for the ``repro-steiner check`` static-analysis pass.

Three layers:

* fixture tests — each known-bad file under ``tests/analysis_fixtures/``
  must produce *exactly* the expected ``(rule, line)`` pairs, so a rule
  that drifts (new false positive, lost true positive) fails loudly;
* engine tests — suppression comments, JSON round-trip, exit codes;
* self-application — the repository's own ``src/``, ``benchmarks/`` and
  ``tests/`` trees come out clean (tier 1: this is the gate CI enforces).

The fingerprint regression tests live here too: the exclusion set is
data shared by the runtime (:data:`repro.core.config.FINGERPRINT_EXCLUSIONS`),
the checker (REP201-REP203) and these tests, and must stay pinned.
"""

from __future__ import annotations

import dataclasses
import types
from pathlib import Path
from typing import ClassVar

import pytest

from repro.analysis import (
    DEFAULT_EXCLUDES,
    Report,
    check_source,
    run_check,
    rule_catalogue,
)
from repro.analysis.rules_contracts import check_registry_contracts
from repro.analysis.rules_fingerprint import check_fingerprint_coverage
from repro.core.config import FINGERPRINT_EXCLUSIONS, SolverConfig

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "analysis_fixtures"

ALL_RULE_IDS = {
    "REP101",
    "REP102",
    "REP103",
    "REP201",
    "REP202",
    "REP203",
    "REP301",
    "REP302",
    "REP401",
    "REP402",
    "REP501",
    "REP502",
    "REP503",
    "REP504",
}


def _check_fixture(name: str, synthetic_path: str | None = None):
    source = (FIXTURES / name).read_text()
    return check_source(synthetic_path or str(FIXTURES / name), source)


def _pairs(findings):
    return [(f.rule, f.line) for f in findings]


# --------------------------------------------------------------------- #
# fixture files: exact rule ids and line numbers
# --------------------------------------------------------------------- #
class TestFixtures:
    def test_rng_fixture(self):
        findings = _check_fixture("bad_rng.py")
        assert _pairs(findings) == [
            ("REP101", 12),
            ("REP101", 13),
            ("REP101", 14),
            ("REP101", 15),
            ("REP101", 16),
            ("REP101", 17),
        ]

    def test_set_iteration_fixture(self):
        findings = _check_fixture("bad_set_iter.py")
        assert _pairs(findings) == [
            ("REP102", 8),
            ("REP102", 12),
            ("REP102", 19),
            ("REP102", 23),
        ]

    def test_clock_fixture_in_hot_path(self):
        # REP103 is path-scoped: the same source is flagged under a
        # kernel/engine path and silent elsewhere.
        hot = _check_fixture("bad_clock.py", "src/repro/runtime/_fixture.py")
        assert _pairs(hot) == [("REP103", 16), ("REP103", 17)]

        cold = _check_fixture("bad_clock.py")  # real (tests/...) path
        assert [f for f in cold if f.rule == "REP103"] == []

    def test_prange_fixture(self):
        findings = _check_fixture("bad_prange.py")
        assert _pairs(findings) == [
            ("REP301", 14),
            ("REP302", 15),
            ("REP302", 16),
        ]

    def test_mp_protocol_fixture(self):
        findings = _check_fixture("bad_mp.py")
        assert _pairs(findings) == [("REP401", 5)]
        assert "mp_collect" in findings[0].message
        assert "mp_merge" in findings[0].message

    def test_mp_width_fixture(self):
        findings = _check_fixture("bad_mp_width.py")
        assert _pairs(findings) == [("REP402", 5), ("REP402", 20)]
        assert "never assigns" in findings[0].message
        assert "computes rather than pins" in findings[1].message

    def test_fixture_dir_is_never_scanned_by_default(self):
        # The deliberately-bad fixtures must not fail a normal run over
        # the tests tree.
        assert "analysis_fixtures" in DEFAULT_EXCLUDES
        report = run_check([FIXTURES], repo_rules=False)
        assert report.checked_files == 0


# --------------------------------------------------------------------- #
# suppression comments
# --------------------------------------------------------------------- #
class TestSuppression:
    def test_matching_rule_id_suppresses(self):
        findings = _check_fixture("suppressed.py")
        by_line = {f.line: f for f in findings}
        assert by_line[5].suppressed  # repro: ignore[REP101]
        assert not by_line[6].suppressed  # no directive

    def test_wrong_rule_id_does_not_suppress(self):
        findings = _check_fixture("suppressed.py")
        by_line = {f.line: f for f in findings}
        assert not by_line[7].suppressed  # ignore[REP999] != REP101

    def test_multi_rule_directive(self):
        findings = _check_fixture("suppressed.py")
        by_line = {f.line: f for f in findings}
        assert by_line[8].suppressed  # ignore[REP101, REP103]

    def test_suppressed_findings_do_not_affect_exit_code(self):
        report = Report(findings=_check_fixture("suppressed.py")[:1])
        assert report.findings[0].suppressed
        assert report.exit_code == 0
        assert report.unsuppressed == []


# --------------------------------------------------------------------- #
# report mechanics
# --------------------------------------------------------------------- #
class TestReport:
    def _fixture_report(self) -> Report:
        # File rules only, over the (normally excluded) fixture tree.
        return run_check([FIXTURES], repo_rules=False, excludes=("__pycache__",))

    def test_json_round_trip(self):
        report = self._fixture_report()
        assert report.findings  # sanity: the fixtures fire
        clone = Report.from_json(report.to_json())
        assert clone.findings == report.findings
        assert clone.checked_files == report.checked_files
        assert clone.errors == report.errors
        assert clone.exit_code == report.exit_code
        assert clone.counts() == report.counts()

    def test_exit_code_and_counts(self):
        report = self._fixture_report()
        assert report.exit_code == 1
        counts = report.counts()
        assert counts["REP101"] >= 6  # bad_rng + unsuppressed suppressed.py
        assert counts["REP102"] == 4
        assert counts["REP301"] == 1
        assert counts["REP302"] == 2
        assert counts["REP401"] == 1
        assert counts["REP402"] == 2
        # suppressed findings are recorded but never counted
        assert sum(1 for f in report.findings if f.suppressed) == 2

    def test_render_mentions_each_unsuppressed_finding(self):
        report = self._fixture_report()
        text = report.render()
        for f in report.unsuppressed:
            assert f"{f.line}:{f.col}: {f.rule}" in text
        assert "[suppressed]" not in text
        assert "[suppressed]" in report.render(show_suppressed=True)

    def test_syntax_error_becomes_report_error(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = run_check([bad], repo_rules=False)
        assert report.exit_code == 1
        assert any("SyntaxError" in e for e in report.errors)

    def test_rule_catalogue_is_complete(self):
        assert set(rule_catalogue()) == ALL_RULE_IDS


# --------------------------------------------------------------------- #
# repo rules: fingerprint audit
# --------------------------------------------------------------------- #
class TestFingerprintAudit:
    def test_clean_on_current_config(self):
        assert list(check_fingerprint_coverage()) == []

    def test_stale_exclusion_is_rep201(self, monkeypatch):
        monkeypatch.setitem(
            FINGERPRINT_EXCLUSIONS, "no_such_field", "stale entry"
        )
        rules = [f.rule for f in check_fingerprint_coverage()]
        assert rules == ["REP201"]

    def test_missing_justification_is_rep203(self, monkeypatch):
        monkeypatch.setitem(FINGERPRINT_EXCLUSIONS, "bsp", "   ")
        rules = [f.rule for f in check_fingerprint_coverage()]
        assert rules == ["REP203"]

    def test_uncovered_field_is_rep202(self, monkeypatch):
        # Simulate fingerprint_material() silently dropping a hashed
        # field (the cache-poisoning bug the rule exists to catch).
        victim = next(
            f.name
            for f in dataclasses.fields(SolverConfig)
            if f.name not in FINGERPRINT_EXCLUSIONS
        )
        original = SolverConfig.fingerprint_material

        def dropping(self):
            material = original(self)
            material.pop(victim)
            return material

        monkeypatch.setattr(SolverConfig, "fingerprint_material", dropping)
        findings = list(check_fingerprint_coverage())
        assert [f.rule for f in findings] == ["REP202"]
        assert victim in findings[0].message

    def test_excluded_yet_hashed_is_rep202(self, monkeypatch):
        original = SolverConfig.fingerprint_material

        def leaking(self):
            material = original(self)
            material["bsp"] = self.bsp
            return material

        monkeypatch.setattr(SolverConfig, "fingerprint_material", leaking)
        findings = list(check_fingerprint_coverage())
        assert [f.rule for f in findings] == ["REP202"]
        assert "bsp" in findings[0].message


# --------------------------------------------------------------------- #
# repo rules: registry contracts
# --------------------------------------------------------------------- #
class TestRegistryContracts:
    def test_clean_on_current_registries(self):
        assert list(check_registry_contracts()) == []

    def test_broken_engine_is_rep501(self, monkeypatch):
        from repro.runtime import engines as engines_mod

        def broken_factory(partition, machine=None, discipline=None, **kw):
            return types.SimpleNamespace(close=lambda: None)

        monkeypatch.setitem(engines_mod._REGISTRY, "_broken", broken_factory)
        findings = [
            f for f in check_registry_contracts() if f.rule == "REP501"
        ]
        assert len(findings) == 1
        assert "_broken" in findings[0].message
        assert "run_phase" in findings[0].message

    def test_shm_round_trip_probe_clean(self):
        from repro.analysis.rules_mp import check_shm_round_trip

        assert list(check_shm_round_trip()) == []

    def test_unusable_width_is_rep504(self, monkeypatch):
        from repro.analysis.rules_mp import check_shm_round_trip
        from repro.core import voronoi_visitor

        monkeypatch.setattr(
            voronoi_visitor.VoronoiProgram, "batch_payload_width", 0
        )
        findings = list(check_shm_round_trip())
        assert [f.rule for f in findings] == ["REP504"]
        assert "VoronoiProgram" in findings[0].message
        assert findings[0].path.endswith("voronoi_visitor.py")

    def test_broken_backend_is_rep502(self, monkeypatch):
        from repro.shortest_paths import backends as backends_mod

        def broken_backend(graph, seeds, **options):
            return types.SimpleNamespace(seeds=None)  # not the 4 arrays

        monkeypatch.setitem(
            backends_mod._REGISTRY, "_broken", broken_backend
        )
        findings = [
            f for f in check_registry_contracts() if f.rule == "REP502"
        ]
        assert len(findings) == 1
        assert "_broken" in findings[0].message


# --------------------------------------------------------------------- #
# fingerprint exclusions: the pinned regression (shared data)
# --------------------------------------------------------------------- #
class TestFingerprintExclusionRegression:
    PINNED: ClassVar[set[str]] = {
        "bsp",
        "checkpoint_interval",
        "max_restarts",
        "worker_timeout_s",
        "fault_plan",
        "shm_transport",
        "coalesce_threshold",
        "coalesce_max",
    }

    def test_exclusion_set_is_exactly_pinned(self):
        # Growing this set must be a reviewed decision: a new exclusion
        # means "this field can never change results" — update the pin
        # here *and* the justification in FINGERPRINT_EXCLUSIONS.
        assert set(FINGERPRINT_EXCLUSIONS) == self.PINNED

    def test_every_exclusion_is_justified(self):
        for name, reason in FINGERPRINT_EXCLUSIONS.items():
            assert isinstance(reason, str) and reason.strip(), name

    def test_material_is_fields_minus_exclusions(self):
        field_names = {f.name for f in dataclasses.fields(SolverConfig)}
        material = set(SolverConfig().fingerprint_material())
        assert material == field_names - self.PINNED

    def test_fingerprint_ignores_excluded_fields(self):
        base = SolverConfig(engine="bsp-mp")
        tweaked = dataclasses.replace(
            base,
            checkpoint_interval=7,
            max_restarts=5,
            worker_timeout_s=42.0,
            shm_transport=False,
            coalesce_threshold=1,
            coalesce_max=1,
        )
        assert base.fingerprint() == tweaked.fingerprint()

    def test_fingerprint_tracks_hashed_fields(self):
        base = SolverConfig()
        assert base.fingerprint() != SolverConfig(n_ranks=8).fingerprint()
        assert base.fingerprint() != SolverConfig(engine="bsp").fingerprint()
        assert (
            base.fingerprint()
            != SolverConfig(aggregate_remote_messages=True).fingerprint()
        )


# --------------------------------------------------------------------- #
# self-application (tier 1): the repository is clean under its own rules
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("tree", ["src", "benchmarks", "tests"])
def test_repository_is_clean(tree):
    report = run_check([REPO / tree], repo_rules=(tree == "src"))
    assert report.errors == []
    assert report.unsuppressed == [], "\n" + report.render()
    assert report.exit_code == 0
