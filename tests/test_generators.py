"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    erdos_renyi_graph,
    grid_graph,
    preferential_attachment_graph,
    random_geometric_graph,
    rmat_graph,
)


class TestRMAT:
    def test_vertex_count(self):
        g = rmat_graph(6, 4, seed=1)
        assert g.n_vertices == 64

    def test_deterministic(self):
        assert rmat_graph(6, 4, seed=9) == rmat_graph(6, 4, seed=9)

    def test_seed_changes_graph(self):
        assert rmat_graph(6, 4, seed=1) != rmat_graph(6, 4, seed=2)

    def test_skewed_degrees(self):
        g = rmat_graph(9, 8, seed=3)
        # RMAT hubs: max degree far above the average
        assert g.max_degree > 4 * g.avg_degree

    def test_bad_scale(self):
        with pytest.raises(GraphError):
            rmat_graph(0)
        with pytest.raises(GraphError):
            rmat_graph(40)

    def test_bad_probabilities(self):
        with pytest.raises(GraphError):
            rmat_graph(4, 2, a=0.9, b=0.9, c=0.9)


class TestPreferentialAttachment:
    def test_connected_by_construction(self):
        from repro.graph.connectivity import is_connected

        g = preferential_attachment_graph(100, 3, seed=0)
        assert is_connected(g)

    def test_vertex_count_and_edges(self):
        g = preferential_attachment_graph(50, 2, seed=1)
        assert g.n_vertices == 50
        # each of the (n - attach) arrivals adds `attach` edges
        assert g.n_edges >= (50 - 2) * 2 - 5  # dedupe tolerance

    def test_deterministic(self):
        a = preferential_attachment_graph(60, 3, seed=4)
        b = preferential_attachment_graph(60, 3, seed=4)
        assert a == b

    def test_too_small(self):
        with pytest.raises(GraphError):
            preferential_attachment_graph(1)


class TestErdosRenyi:
    def test_basic(self):
        g = erdos_renyi_graph(30, 60, seed=0)
        assert g.n_vertices == 30
        assert g.n_edges > 0

    def test_deterministic(self):
        assert erdos_renyi_graph(30, 60, seed=5) == erdos_renyi_graph(30, 60, seed=5)

    def test_too_small(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(1, 5)


class TestGrid:
    def test_4_connectivity_edge_count(self):
        g = grid_graph(3, 4)
        # horizontal: 3 * 3, vertical: 2 * 4
        assert g.n_edges == 9 + 8
        assert g.n_vertices == 12

    def test_8_connectivity(self):
        g4 = grid_graph(3, 3)
        g8 = grid_graph(3, 3, diagonal=True)
        assert g8.n_edges == g4.n_edges + 2 * 4  # 4 diagonals each direction

    def test_corner_degree(self):
        g = grid_graph(3, 3)
        assert g.degree(0) == 2
        assert g.degree(4) == 4  # centre

    def test_single_cell(self):
        g = grid_graph(1, 1)
        assert g.n_vertices == 1
        assert g.n_edges == 0

    def test_bad_dims(self):
        with pytest.raises(GraphError):
            grid_graph(0, 3)


class TestRandomGeometric:
    def test_radius_controls_density(self):
        sparse = random_geometric_graph(80, 0.08, seed=1)
        dense = random_geometric_graph(80, 0.25, seed=1)
        assert dense.n_edges > sparse.n_edges

    def test_deterministic(self):
        a = random_geometric_graph(50, 0.2, seed=2)
        b = random_geometric_graph(50, 0.2, seed=2)
        assert a == b

    def test_tiny_radius_falls_back_to_path(self):
        g = random_geometric_graph(10, 1e-6, seed=0)
        assert g.n_edges >= 9  # fallback path keeps it usable

    def test_too_small(self):
        with pytest.raises(GraphError):
            random_geometric_graph(1, 0.5)


class TestUnitWeights:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: rmat_graph(5, 3, seed=0),
            lambda: preferential_attachment_graph(40, 2, seed=0),
            lambda: erdos_renyi_graph(30, 50, seed=0),
            lambda: grid_graph(4, 4),
            lambda: random_geometric_graph(40, 0.3, seed=0),
        ],
    )
    def test_generators_emit_unit_weights(self, factory):
        g = factory()
        if g.n_arcs:
            assert (np.asarray(g.weights) == 1).all()
