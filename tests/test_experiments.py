"""Quick-mode runs of every experiment, asserting the *shape* claims
each paper table/figure makes (not absolute numbers)."""

from __future__ import annotations

import pytest

from repro.harness.registry import run_experiment

pytestmark = pytest.mark.filterwarnings("ignore")


@pytest.fixture(scope="module")
def reports():
    """Run all experiments once in quick mode and share across tests."""
    return {}


def get_report(reports, exp_id):
    if exp_id not in reports:
        reports[exp_id] = run_experiment(exp_id, quick=True)
    return reports[exp_id]


class TestExperimentShapes:
    def test_table1_apsp_grows_vc_flat(self, reports):
        rep = get_report(reports, "table1")
        for ds, cells in rep.data.items():
            ks = sorted(cells)
            apsp_growth = cells[ks[-1]]["apsp"] / cells[ks[0]]["apsp"]
            vc_growth = cells[ks[-1]]["vc"] / cells[ks[0]]["vc"]
            # APSP must grow substantially faster than Voronoi cells
            assert apsp_growth > 1.5 * vc_growth, (ds, apsp_growth, vc_growth)

    def test_table3_has_all_columns(self, reports):
        rep = get_report(reports, "table3")
        for row in rep.data.values():
            assert row["n_vertices"] > 0
            assert row["n_arcs"] > 0

    def test_fig3_speedup_with_ranks(self, reports):
        rep = get_report(reports, "fig3")
        for ds, per_k in rep.data.items():
            for paper_k, per_ranks in per_k.items():
                ranks = sorted(per_ranks)
                totals = [per_ranks[r]["total"] for r in ranks]
                # more ranks -> faster (strong scaling shape)
                assert totals[-1] < totals[0], (ds, paper_k, totals)

    def test_fig3_voronoi_dominates(self, reports):
        rep = get_report(reports, "fig3")
        for per_k in rep.data.values():
            for per_ranks in per_k.values():
                for cell in per_ranks.values():
                    phases = cell["phases"]
                    assert phases["Voronoi Cell"] == max(phases.values())

    def test_fig4_collectives_grow_with_seeds(self, reports):
        rep = get_report(reports, "fig4")
        for ds, per_k in rep.data.items():
            ks = sorted(per_k)
            lo = per_k[ks[0]]["phases"]["Global Min Dist. Edge"]
            hi = per_k[ks[-1]]["phases"]["Global Min Dist. Edge"]
            assert hi >= lo, ds

    def test_table4_trees_much_smaller_than_graph(self, reports):
        from repro.harness.datasets import load_dataset

        rep = get_report(reports, "table4")
        for paper_k, per_ds in rep.data.items():
            for ds, n_edges in per_ds.items():
                if n_edges is None:
                    continue
                assert n_edges < load_dataset(ds).n_edges / 2

    def test_table4_tree_size_grows_with_seeds(self, reports):
        rep = get_report(reports, "table4")
        ks = sorted(rep.data)
        for ds in rep.data[ks[0]]:
            sizes = [
                rep.data[k][ds] for k in ks if rep.data[k].get(ds) is not None
            ]
            assert sizes == sorted(sizes), ds

    def test_fig5_priority_not_slower(self, reports):
        rep = get_report(reports, "fig5")
        for ds, cell in rep.data.items():
            assert cell["speedup"] >= 1.0, ds

    def test_fig6_priority_fewer_messages(self, reports):
        rep = get_report(reports, "fig6")
        for ds, cell in rep.data.items():
            assert cell["reduction"] >= 1.0, ds
            # reduction concentrates in the Voronoi phase
            fifo_vc = cell["fifo"]["per_phase"]["Voronoi Cell"]
            prio_vc = cell["priority"]["per_phase"]["Voronoi Cell"]
            assert fifo_vc >= prio_vc

    def test_fig7_priority_less_sensitive(self, reports):
        rep = get_report(reports, "fig7")
        assert rep.data["fifo_std"] >= rep.data["priority_std"]
        for high, t_fifo in rep.data["times"]["fifo"].items():
            assert t_fifo >= rep.data["times"]["priority"][high]

    def test_table5_proximate_smallest(self, reports):
        rep = get_report(reports, "table5")
        pk = sorted(next(iter(rep.data.values())))[0]
        prox = rep.data["proximate"][pk]["distance"]
        for strat, cells in rep.data.items():
            assert prox <= cells[pk]["distance"], strat

    def test_fig8_memory_positive_breakdown(self, reports):
        rep = get_report(reports, "fig8")
        for ds, per_k in rep.data.items():
            for cell in per_k.values():
                assert cell["total_bytes"] == (
                    cell["graph_bytes"] + cell["runtime_bytes"]
                )

    def test_table6_exact_much_slower(self, reports):
        rep = get_report(reports, "table6")
        for ds, per_k in rep.data.items():
            for cell in per_k.values():
                assert cell["exact_or_ref"] > cell["www"]
                assert cell["exact_or_ref"] > cell["mehlhorn"]

    def test_table7_within_bound(self, reports):
        rep = get_report(reports, "table7")
        assert 1.0 <= rep.data["average_ratio"] <= 2.0
        for per_k in rep.data["cells"].values():
            for cell in per_k.values():
                assert 1.0 <= cell["ratio"] <= 2.0

    def test_fig9_emits_dot(self, reports):
        rep = get_report(reports, "fig9")
        for cell in rep.data.values():
            assert cell["dot"].startswith("graph")
            assert cell["n_steiner"] >= 0

    def test_ablation_bsp_slower(self, reports):
        rep = get_report(reports, "ablation-async-vs-bsp")
        for ds, cell in rep.data.items():
            assert cell["speedup"] >= 1.0, ds

    def test_ablation_delegates_balance(self, reports):
        rep = get_report(reports, "ablation-delegates")
        for ds, cell in rep.data.items():
            assert cell["on"]["imbalance"] <= cell["off"]["imbalance"] + 1e-9
            assert cell["on"]["n_delegates"] > 0

    def test_ablation_mst_agreement_and_collapse(self, reports):
        rep = get_report(reports, "ablation-mst")
        rounds = rep.data["boruvka_rounds"]
        assert rounds == sorted(rounds, reverse=True)
        assert rep.data["mst_weight"] > 0

    def test_fig2_artifacts_consistent(self, reports):
        rep = get_report(reports, "fig2")
        data = rep.data
        # MST over k cells has exactly k-1 edges; pruning removes the rest
        k = len(data["cell_sizes"])
        assert data["n_mst_edges"] == k - 1
        assert data["n_pruned"] == data["n_distance_edges"] - data["n_mst_edges"]
        assert data["total_distance"] > 0

    def test_ablation_kernel_fixpoints_agree(self, reports):
        from repro.harness.experiments.ablation_kernel import _KERNELS

        rep = get_report(reports, "ablation-kernel")
        # the experiment itself raises if fixpoints disagree; here just
        # check every kernel reported a positive time
        for ds, times in rep.data.items():
            assert len(times) == len(_KERNELS)
            assert all(t > 0 for t in times.values()), ds

    def test_ablation_chunking_tradeoff(self, reports):
        rep = get_report(reports, "ablation-chunked-collectives")
        single = rep.data["single shot"]
        smallest = min(
            (cell for label, cell in rep.data.items() if label != "single shot"),
            key=lambda c: c["en_buffer_bytes"],
        )
        assert smallest["en_buffer_bytes"] < single["en_buffer_bytes"]
        assert smallest["collective_time"] > single["collective_time"]
        # chunking never changes the answer
        assert smallest["distance"] == single["distance"]

    def test_ablation_aggregation_helps(self, reports):
        rep = get_report(reports, "ablation-aggregation")
        for ds, cell in rep.data.items():
            assert cell["on_time"] <= cell["off_time"], ds

    def test_reports_render(self, reports):
        # every cached report renders without error
        for exp_id, rep in reports.items():
            text = rep.render()
            assert exp_id in text
