"""Unit tests for weight assignment, connectivity and graph IO."""

from __future__ import annotations

import numpy as np
import pytest

import networkx as nx

from repro.errors import GraphError
from repro.graph.connectivity import (
    bfs_levels,
    connected_components,
    is_connected,
    largest_component_vertices,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi_graph, grid_graph
from repro.graph.io import (
    dataset_size_label,
    load_edge_list,
    load_npz,
    npz_nbytes,
    save_edge_list,
    save_npz,
)
from repro.graph.stats import degree_histogram, graph_stats
from repro.graph.weights import WeightSpec, assign_uniform_weights


class TestWeights:
    def test_range_respected(self):
        g = assign_uniform_weights(grid_graph(10, 10), (3, 9), seed=0)
        assert g.weights.min() >= 3
        assert g.weights.max() <= 9

    def test_symmetric_weights(self):
        g = assign_uniform_weights(grid_graph(5, 5), (1, 100), seed=1)
        for u, v, w in g.iter_edges():
            assert g.edge_weight(v, u) == w

    def test_deterministic(self):
        a = assign_uniform_weights(grid_graph(5, 5), (1, 50), seed=3)
        b = assign_uniform_weights(grid_graph(5, 5), (1, 50), seed=3)
        assert a == b

    def test_seed_matters(self):
        a = assign_uniform_weights(grid_graph(5, 5), (1, 50), seed=3)
        b = assign_uniform_weights(grid_graph(5, 5), (1, 50), seed=4)
        assert a != b

    def test_spec_validation(self):
        with pytest.raises(GraphError):
            WeightSpec(0, 5)
        with pytest.raises(GraphError):
            WeightSpec(10, 5)

    def test_spec_label(self):
        assert WeightSpec(1, 5_000).label() == "[1, 5K]"
        assert WeightSpec(1, 500_000).label() == "[1, 500K]"
        assert WeightSpec(1, 2_000_000).label() == "[1, 2M]"
        assert WeightSpec(1, 123).label() == "[1, 123]"


class TestConnectivity:
    def test_bfs_levels_grid(self):
        g = grid_graph(4, 4)
        lv = bfs_levels(g, 0)
        # manhattan distance on a 4-connected grid
        for r in range(4):
            for c in range(4):
                assert lv[r * 4 + c] == r + c

    def test_bfs_levels_vs_networkx(self):
        g = erdos_renyi_graph(50, 120, seed=2)
        nxg = g.to_networkx()
        lv = bfs_levels(g, 0)
        nx_lv = nx.single_source_shortest_path_length(nxg, 0)
        for v in range(g.n_vertices):
            if v in nx_lv:
                assert lv[v] == nx_lv[v]
            else:
                assert lv[v] == -1

    def test_bfs_source_out_of_range(self):
        with pytest.raises(GraphError):
            bfs_levels(grid_graph(2, 2), 99)

    def test_connected_components_vs_networkx(self):
        g = erdos_renyi_graph(60, 50, seed=3)  # sparse -> multiple CCs
        labels = connected_components(g)
        nxg = g.to_networkx()
        for comp in nx.connected_components(nxg):
            comp = list(comp)
            assert len({int(labels[v]) for v in comp}) == 1

    def test_largest_component(self):
        g = erdos_renyi_graph(60, 50, seed=3)
        comp = largest_component_vertices(g)
        labels = connected_components(g)
        counts = np.bincount(labels)
        assert comp.size == counts.max()

    def test_is_connected(self):
        assert is_connected(grid_graph(3, 3))
        two = CSRGraph.from_edges(4, [(0, 1), (2, 3)], [1, 1])
        assert not is_connected(two)

    def test_trivial_graphs_connected(self):
        assert is_connected(CSRGraph.from_edges(1, np.zeros((0, 2), np.int64), []))
        assert is_connected(CSRGraph.from_edges(0, np.zeros((0, 2), np.int64), []))


class TestIO:
    def test_edge_list_round_trip(self, tmp_path, weighted_grid):
        path = tmp_path / "g.txt"
        save_edge_list(weighted_grid, path)
        back = load_edge_list(path)
        assert back == weighted_grid

    def test_edge_list_without_weights(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        g = load_edge_list(path)
        assert g.n_edges == 2
        assert g.edge_weight(0, 1) == 1

    def test_edge_list_malformed(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3 4\n")
        with pytest.raises(GraphError, match="malformed"):
            load_edge_list(path)

    def test_edge_list_empty(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# n_vertices=5\n")
        g = load_edge_list(path)
        assert g.n_vertices == 5
        assert g.n_edges == 0

    def test_npz_round_trip(self, tmp_path, weighted_grid):
        path = tmp_path / "g.npz"
        save_npz(weighted_grid, path)
        assert load_npz(path) == weighted_grid

    def test_npz_nbytes(self, weighted_grid):
        n = npz_nbytes(weighted_grid)
        assert n >= weighted_grid.nbytes()  # container overhead included

    def test_size_label(self):
        assert dataset_size_label(512) == "512B"
        assert dataset_size_label(2048).endswith("KB")
        assert dataset_size_label(3 << 20).endswith("MB")
        assert dataset_size_label(5 << 30).endswith("GB")
        assert dataset_size_label(7 << 40).endswith("TB")


class TestStats:
    def test_graph_stats(self, weighted_grid):
        st = graph_stats(weighted_grid)
        assert st.n_vertices == 64
        assert st.n_arcs == weighted_grid.n_arcs
        assert st.weight_min >= 1
        assert st.weight_max <= 9
        row = st.as_row()
        assert row["|V|"] == 64

    def test_stats_empty(self):
        g = CSRGraph.from_edges(2, np.zeros((0, 2), np.int64), [])
        st = graph_stats(g)
        assert st.weight_min == 0 and st.weight_max == 0

    def test_degree_histogram(self):
        g = grid_graph(3, 3)
        hist = degree_histogram(g)
        # 4 corners (deg 2), 4 edges (deg 3), 1 centre (deg 4)
        assert hist[2] == 4
        assert hist[3] == 4
        assert hist[4] == 1
