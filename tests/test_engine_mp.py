"""The multiprocess rank-parallel engine (``bsp-mp``).

The contract under test (``repro.runtime.engine_mp``): sharding the
batched supersteps across a forked worker pool changes *nothing
observable* — message counts, visit counts, byte counts, peak queue and
superstep counts are bit-identical to ``bsp-batched`` (and hence to
``bsp``) for any worker count, the converged program state is
identical, and the solver's output tree is bit-identical.  On top of
parity: the fallback rules (workers<=1, no fork, FIFO, non-mp
programs all stay in-process), and pool hygiene — no worker process
survives ``close()``, solver exceptions, or worker-side crashes.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.core.voronoi_visitor import VoronoiProgram
from repro.errors import DisconnectedSeedsError, SimulationError
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_graph
from repro.runtime.engine_batched import BSPBatchedEngine
from repro.runtime.engine_mp import (
    DEFAULT_WORKERS,
    BSPMultiprocessEngine,
    supports_mp,
)
from repro.runtime.shm_transport import SHM_AVAILABLE
from repro.runtime.engines import (
    available_engines,
    make_engine,
    run_phase_with,
)
from repro.runtime.partition import block_partition
from tests.conftest import component_seeds, make_connected_graph

# the canonical parity helpers and matrix axes live in the cross-engine
# conformance harness; this module adds the bsp-mp-specific suites
# (fallback rules, pool hygiene, provenance) on top of them
from tests.test_engine_conformance import (
    COUNTERS as _COUNTERS,
)
from tests.test_engine_conformance import (
    WORKER_COUNTS,
    assert_counts_identical,
    needs_fork,
)

PROPERTY = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def run_voronoi(engine, partition, seeds):
    prog = VoronoiProgram(partition)
    try:
        stats = engine.run_phase(
            "Voronoi Cell", prog, list(prog.initial_messages(seeds))
        )
    finally:
        engine.close()
    return prog, stats


class _CrashOnSecondStep(VoronoiProgram):
    """A program whose batch hook raises after the bootstrap superstep —
    module-level so worker processes can unpickle it by reference."""

    def batch_visit(self, targets, payload, emitter):
        if self.dist[self.dist != np.iinfo(np.int64).max].size > len(
            np.unique(targets)
        ):
            raise RuntimeError("injected worker fault")
        super().batch_visit(targets, payload, emitter)


@needs_fork
class TestParity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_phase_counts_identical_to_batched(self, random_graph, workers):
        seeds = np.asarray(component_seeds(random_graph, 5, seed=21))
        part = block_partition(random_graph, 8)
        ref_engine = BSPBatchedEngine(part)
        ref_prog, ref_stats = run_voronoi(ref_engine, part, seeds)
        mp_engine = BSPMultiprocessEngine(part, workers=workers)
        mp_prog, mp_stats = run_voronoi(mp_engine, part, seeds)
        assert np.array_equal(ref_prog.src, mp_prog.src)
        assert np.array_equal(ref_prog.dist, mp_prog.dist)
        assert_counts_identical(ref_stats, mp_stats, ref_engine, mp_engine)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_solver_counts_identical_to_batched(self, random_graph, workers):
        """Acceptance criterion: message/visit/superstep counts of a
        full solve are bit-identical to ``bsp-batched``, per phase."""
        seeds = component_seeds(random_graph, 5, seed=22)
        ref = DistributedSteinerSolver(
            random_graph, SolverConfig(n_ranks=6, engine="bsp-batched")
        ).solve(seeds)
        mp = DistributedSteinerSolver(
            random_graph,
            SolverConfig(n_ranks=6, engine="bsp-mp", workers=workers),
        ).solve(seeds)
        assert np.array_equal(ref.edges, mp.edges)
        assert ref.total_distance == mp.total_distance
        for p_ref, p_mp in zip(ref.phases, mp.phases):
            for attr in _COUNTERS:
                assert getattr(p_ref, attr) == getattr(p_mp, attr), (
                    p_ref.name,
                    attr,
                )

    @PROPERTY
    @given(
        n=st.integers(min_value=2, max_value=18),
        n_chords=st.integers(min_value=0, max_value=20),
        rng_seed=st.integers(min_value=0, max_value=2**16),
        n_ranks=st.integers(min_value=1, max_value=7),
        k=st.integers(min_value=1, max_value=4),
        workers=st.sampled_from(WORKER_COUNTS),
    )
    def test_random_graphs_hypothesis(
        self, n, n_chords, rng_seed, n_ranks, k, workers
    ):
        """Counts identical to ``bsp-batched`` on random partitioned
        graphs for workers in {1, 2, 4} (the issue's parity clause)."""
        rng = np.random.default_rng(rng_seed)
        backbone = [(i, i + 1) for i in range(n - 1)]
        chords = [
            (int(a), int(b))
            for a, b in rng.integers(0, n, size=(n_chords, 2))
            if a != b
        ]
        edges = np.asarray(backbone + chords, dtype=np.int64)
        weights = rng.integers(1, 9, size=len(edges))
        graph = CSRGraph.from_edges(n, edges, weights)
        seeds = np.unique(rng.integers(0, n, size=k))
        part = block_partition(graph, n_ranks)
        ref_engine = BSPBatchedEngine(part)
        ref_prog, ref_stats = run_voronoi(ref_engine, part, seeds)
        mp_engine = BSPMultiprocessEngine(part, workers=workers)
        mp_prog, mp_stats = run_voronoi(mp_engine, part, seeds)
        assert np.array_equal(ref_prog.src, mp_prog.src)
        assert np.array_equal(ref_prog.dist, mp_prog.dist)
        assert_counts_identical(ref_stats, mp_stats, ref_engine, mp_engine)

    @pytest.mark.parametrize("shm", [True, False], ids=["shm", "pickle"])
    def test_sharded_width1_emissions(self, random_graph, shm):
        """Regression: with coalescing disabled, the *sharded* path must
        merge width-1 emission payloads (TreeEdgeProgram) across workers
        even when one worker's shard emits nothing — the shm decode
        returns them 1-D and a plain vstack used to crash on the length
        mismatch."""
        if shm and not SHM_AVAILABLE:
            pytest.skip("no multiprocessing.shared_memory")
        seeds = component_seeds(random_graph, 5, seed=24)
        ref = DistributedSteinerSolver(
            random_graph, SolverConfig(n_ranks=6, engine="bsp-batched")
        ).solve(seeds)
        mp = DistributedSteinerSolver(
            random_graph,
            SolverConfig(
                n_ranks=6,
                engine="bsp-mp",
                workers=2,
                shm_transport=shm,
                coalesce_max=1,
            ),
        ).solve(seeds)
        assert np.array_equal(ref.edges, mp.edges)
        for p_ref, p_mp in zip(ref.phases, mp.phases):
            for attr in _COUNTERS:
                assert getattr(p_ref, attr) == getattr(p_mp, attr)

    def test_pool_reused_across_phases(self, random_graph):
        """One solve runs phases 1 and 6 on the same engine; the pool
        persists across them and both phases' state merges correctly
        (the tree-edge walk needs phase 1's converged arrays)."""
        seeds = component_seeds(random_graph, 6, seed=23)
        res = DistributedSteinerSolver(
            random_graph, SolverConfig(n_ranks=5, engine="bsp-mp", workers=2)
        ).solve(seeds)
        ref = DistributedSteinerSolver(
            random_graph, SolverConfig(n_ranks=5, engine="bsp-batched")
        ).solve(seeds)
        assert np.array_equal(ref.edges, res.edges)


class TestFallbacks:
    def test_workers_one_stays_in_process(self, random_graph):
        part = block_partition(random_graph, 4)
        engine = BSPMultiprocessEngine(part, workers=1)
        seeds = np.asarray(component_seeds(random_graph, 3, seed=24))
        run_voronoi(engine, part, seeds)
        assert engine.workers_used == 1
        assert engine._pool is None

    def test_workers_cap_at_ranks(self, random_graph):
        part = block_partition(random_graph, 3)
        assert BSPMultiprocessEngine(part, workers=64).workers == 3

    def test_default_workers_is_fixed(self, random_graph):
        """Reproducibility: the default pool size is a constant, not
        ``os.cpu_count()`` — two machines log identical bench configs."""
        part = block_partition(random_graph, 8)
        assert BSPMultiprocessEngine(part).workers == DEFAULT_WORKERS == 2

    def test_invalid_workers_rejected(self, random_graph):
        part = block_partition(random_graph, 4)
        with pytest.raises(ValueError, match="workers"):
            BSPMultiprocessEngine(part, workers=0)

    def test_fifo_falls_back_in_process(self, random_graph):
        part = block_partition(random_graph, 4)
        engine = BSPMultiprocessEngine(part, None, "fifo", workers=2)
        seeds = np.asarray(component_seeds(random_graph, 3, seed=25))
        prog, stats = run_voronoi(engine, part, seeds)
        assert engine.workers_used == 1
        ref_prog, ref_stats = run_voronoi(
            BSPBatchedEngine(part, None, "fifo"), part, seeds
        )
        assert np.array_equal(ref_prog.dist, prog.dist)
        assert ref_stats.n_messages == stats.n_messages

    def test_non_mp_program_falls_back(self, random_graph):
        """A program without the mp protocol runs in-process with
        identical results (and no pool is ever forked)."""

        class EchoProgram:
            def __init__(self):
                self.visits = []

            def priority(self, payload):
                return float(payload[0])

            def visit(self, vertex, payload, emit):
                self.visits.append(vertex)
                if payload[0] > 0 and vertex + 1 < 16:
                    emit(vertex + 1, (payload[0] - 1,))

        part = block_partition(grid_graph(1, 16), 4)
        assert not supports_mp(EchoProgram())
        engine = BSPMultiprocessEngine(part, workers=2)
        try:
            engine.run_phase("chain", EchoProgram(), [(0, (7,))])
        finally:
            engine.close()
        assert engine.workers_used == 1
        assert engine._pool is None

    def test_no_fork_platform_falls_back(self, random_graph, monkeypatch):
        import repro.runtime.engine_mp as mod

        monkeypatch.setattr(mod, "fork_available", lambda: False)
        part = block_partition(random_graph, 4)
        engine = BSPMultiprocessEngine(part, workers=4)
        seeds = np.asarray(component_seeds(random_graph, 3, seed=26))
        prog, _ = run_voronoi(engine, part, seeds)
        assert engine.workers_used == 1
        ref_prog, _ = run_voronoi(BSPBatchedEngine(part), part, seeds)
        assert np.array_equal(ref_prog.dist, prog.dist)


@needs_fork
class TestPoolHygiene:
    def test_no_children_after_close(self, random_graph):
        part = block_partition(random_graph, 4)
        engine = BSPMultiprocessEngine(part, workers=2)
        seeds = np.asarray(component_seeds(random_graph, 3, seed=27))
        run_voronoi(engine, part, seeds)
        assert not any(
            p.name.startswith("bsp-mp-") for p in multiprocessing.active_children()
        )

    def test_close_is_idempotent(self, random_graph):
        part = block_partition(random_graph, 4)
        engine = BSPMultiprocessEngine(part, workers=2)
        seeds = np.asarray(component_seeds(random_graph, 3, seed=28))
        prog = VoronoiProgram(part)
        engine.run_phase(
            "Voronoi Cell", prog, list(prog.initial_messages(seeds))
        )
        engine.close()
        engine.close()  # second close must be a no-op, not an error

    def test_context_manager_closes(self, random_graph):
        part = block_partition(random_graph, 4)
        seeds = np.asarray(component_seeds(random_graph, 3, seed=29))
        with BSPMultiprocessEngine(part, workers=2) as engine:
            prog = VoronoiProgram(part)
            engine.run_phase(
                "Voronoi Cell", prog, list(prog.initial_messages(seeds))
            )
        assert engine._pool is None

    def test_solver_exception_shuts_pool_down(self):
        """Regression (the issue's leak clause): a solver exception after
        the pool has started — disconnected seeds detected in phase 4 —
        must not leak worker processes."""
        # two disjoint 9-vertex paths: phase 1 runs (pool starts),
        # phase 4 raises DisconnectedSeedsError
        edges = [(i, i + 1) for i in range(8)] + [
            (i, i + 1) for i in range(9, 17)
        ]
        graph = CSRGraph.from_edges(
            18, np.asarray(edges, dtype=np.int64), [1] * len(edges)
        )
        solver = DistributedSteinerSolver(
            graph, SolverConfig(n_ranks=4, engine="bsp-mp", workers=2)
        )
        with pytest.raises(DisconnectedSeedsError):
            solver.solve([0, 17])
        assert not any(
            p.name.startswith("bsp-mp-") for p in multiprocessing.active_children()
        )

    def test_join_escalating_kills_sigterm_ignoring_child(self):
        """Regression: pool teardown escalates terminate -> kill, so a
        child that ignores SIGTERM (wedged in a signal-blind section)
        still dies within the bounded grace period."""
        import signal
        import time

        from repro.runtime.engine_mp import _join_escalating

        def stubborn():
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            while True:
                time.sleep(1)

        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=stubborn, daemon=True)
        proc.start()
        t0 = time.monotonic()
        _join_escalating(proc, grace_s=0.2)
        assert not proc.is_alive()
        assert time.monotonic() - t0 < 5  # bounded, never a hang

    def test_worker_crash_surfaces_and_cleans_up(self, random_graph):
        """A worker-side exception must come back as SimulationError
        (with the traceback) and leave no processes behind."""
        part = block_partition(random_graph, 4)
        engine = BSPMultiprocessEngine(part, workers=2)
        seeds = np.asarray(component_seeds(random_graph, 4, seed=30))
        prog = _CrashOnSecondStep(part)
        with pytest.raises(SimulationError, match="injected worker fault"):
            try:
                engine.run_phase(
                    "Voronoi Cell", prog, list(prog.initial_messages(seeds))
                )
            finally:
                engine.close()
        assert not any(
            p.name.startswith("bsp-mp-") for p in multiprocessing.active_children()
        )


class TestRegistryAndProvenance:
    def test_registered(self):
        assert "bsp-mp" in available_engines()

    def test_make_engine_type_and_workers(self, random_graph):
        part = block_partition(random_graph, 8)
        engine = make_engine("bsp-mp", part, workers=3)
        assert isinstance(engine, BSPMultiprocessEngine)
        assert isinstance(engine, BSPBatchedEngine)
        assert engine.workers == 3

    @needs_fork
    def test_run_phase_with_reports_workers(self, random_graph):
        part = block_partition(random_graph, 8)
        seeds = np.asarray(component_seeds(random_graph, 3, seed=31))
        prog = VoronoiProgram(part)
        res = run_phase_with(
            "bsp-mp", part, prog, list(prog.initial_messages(seeds)), workers=2
        )
        assert res.engine == "bsp-mp"
        assert res.workers == 2
        # and the pool run_phase_with forked is gone again
        assert not any(
            p.name.startswith("bsp-mp-") for p in multiprocessing.active_children()
        )

    def test_in_process_engines_report_no_workers(self, random_graph):
        part = block_partition(random_graph, 4)
        seeds = np.asarray(component_seeds(random_graph, 3, seed=32))
        prog = VoronoiProgram(part)
        res = run_phase_with(
            "bsp-batched", part, prog, list(prog.initial_messages(seeds))
        )
        assert res.workers is None

    def test_solver_config_validates_workers(self):
        with pytest.raises(ValueError, match="workers"):
            SolverConfig(engine="bsp-mp", workers=0)
        assert SolverConfig(engine="bsp-mp", workers=4).workers == 4
        assert SolverConfig().workers is None

    def test_supports_mp_detection(self, random_graph):
        part = block_partition(random_graph, 2)
        assert supports_mp(VoronoiProgram(part))

        from repro.core.tree_edge import TreeEdgeProgram

        n = random_graph.n_vertices
        prog = TreeEdgeProgram(
            part,
            np.zeros(n, dtype=np.int64),
            np.arange(n, dtype=np.int64),
            np.zeros(n, dtype=np.int64),
        )
        assert supports_mp(prog)


@needs_fork
class TestCLI:
    def test_solve_with_workers(self, capsys):
        from repro.harness.cli import main

        rc = main(
            ["solve", "--dataset", "CTS", "--seeds", "5",
             "--engine", "bsp-mp", "--workers", "2"]
        )
        assert rc == 0
        assert "SteinerTree" in capsys.readouterr().out

    def test_solve_workers_match_batched_counts(self, capsys):
        """CLI-level acceptance check: identical phase message counts
        between --engine bsp-mp --workers 4 and --engine bsp-batched."""
        from repro.harness.cli import main

        outs = []
        for argv in (
            ["solve", "--dataset", "CTS", "--seeds", "5",
             "--engine", "bsp-mp", "--workers", "4"],
            ["solve", "--dataset", "CTS", "--seeds", "5",
             "--engine", "bsp-batched"],
        ):
            assert main(argv) == 0
            outs.append(capsys.readouterr().out)
        assert outs[0] == outs[1]

    def test_engines_bench_deterministic_counts(self, capsys):
        """The bench's non-timing columns are identical across runs —
        the reproducible-CI-logs clause."""
        from repro.harness.cli import main

        def counts_only():
            out = capsys.readouterr().out
            keep = []
            for line in out.splitlines():
                if "wall" in line and "sim" in line:
                    keep.append(
                        (line.split()[0], line.split("msgs=")[1].split()[0])
                    )
            return keep

        argv = ["engines", "--bench", "--dataset", "CTS", "--seeds", "4",
                "--ranks", "4", "--workers", "2"]
        assert main(argv) == 0
        first = counts_only()
        assert main(argv) == 0
        assert counts_only() == first
        assert any(name == "bsp-mp" for name, _ in first)
