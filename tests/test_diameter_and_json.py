"""Tests for diameter approximation and the JSON report export."""

from __future__ import annotations

import json

import numpy as np
import pytest

import networkx as nx

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.diameter import approximate_diameter, double_sweep_lower_bound
from repro.graph.generators import grid_graph
from tests.conftest import make_connected_graph


class TestDoubleSweep:
    def test_exact_on_path(self):
        n = 10
        g = CSRGraph.from_edges(
            n, [(i, i + 1) for i in range(n - 1)], [3] * (n - 1)
        )
        lb, a, b = double_sweep_lower_bound(g, 4)
        assert lb == 3 * (n - 1)
        assert {a, b} == {0, n - 1}

    def test_exact_on_unit_grid(self):
        g = grid_graph(5, 5)
        lb, _, _ = double_sweep_lower_bound(g, 12)  # centre start
        assert lb == 8  # opposite corners

    def test_lower_bound_property(self):
        for seed in range(4):
            g = make_connected_graph(30, 80, seed=seed + 5000)
            lb, _, _ = double_sweep_lower_bound(g, 0)
            nxg = g.to_networkx()
            true_diam = max(
                max(lengths.values())
                for _, lengths in nx.all_pairs_dijkstra_path_length(
                    nxg, weight="weight"
                )
            )
            assert lb <= true_diam

    def test_bad_start(self):
        with pytest.raises(GraphError):
            double_sweep_lower_bound(grid_graph(2, 2), 99)


class TestApproximateDiameter:
    def test_monotone_in_probes(self):
        g = make_connected_graph(40, 100, seed=6000)
        one = approximate_diameter(g, n_probes=1, seed=1)
        many = approximate_diameter(g, n_probes=6, seed=1)
        assert many >= one

    def test_deterministic(self):
        g = make_connected_graph(40, 100, seed=6001)
        assert approximate_diameter(g, seed=2) == approximate_diameter(g, seed=2)

    def test_empty_graph(self):
        g = CSRGraph.from_edges(0, np.zeros((0, 2), np.int64), [])
        assert approximate_diameter(g) == 0

    def test_bad_probe_count(self):
        with pytest.raises(GraphError):
            approximate_diameter(grid_graph(2, 2), n_probes=0)


class TestJsonExport:
    def test_report_round_trips(self):
        from repro.harness.registry import run_experiment

        rep = run_experiment("fig2", quick=True)
        parsed = json.loads(rep.to_json())
        assert parsed["exp_id"] == "fig2"
        assert parsed["data"]["total_distance"] > 0

    def test_numpy_values_coerced(self):
        from repro.harness.experiments._shared import ExperimentReport

        rep = ExperimentReport(
            "x",
            "t",
            data={
                "i": np.int64(5),
                "f": np.float64(1.5),
                "arr": np.asarray([1, 2]),
                "nested": {"k": (np.int64(1), np.int64(2))},
            },
        )
        parsed = json.loads(rep.to_json())
        assert parsed["data"] == {
            "i": 5,
            "f": 1.5,
            "arr": [1, 2],
            "nested": {"k": [1, 2]},
        }

    def test_cli_json_flag(self, capsys):
        from repro.harness.cli import main

        assert main(["run", "fig2", "--quick", "--json"]) == 0
        out = capsys.readouterr().out
        parsed = json.loads(out)
        assert parsed["exp_id"] == "fig2"
