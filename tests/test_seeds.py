"""Unit tests for the seed-selection strategies (§V / §V-E)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SeedError
from repro.graph.connectivity import bfs_levels, largest_component_vertices
from repro.seeds.selection import (
    SeedStrategy,
    bfs_level_seeds,
    eccentric_seeds,
    proximate_seeds,
    select_seeds,
    uniform_random_seeds,
    validate_seed_set,
)
from tests.conftest import make_connected_graph


ALL_STRATEGIES = list(SeedStrategy)


def mean_pairwise_hops(graph, seeds):
    """Average pairwise BFS distance between seeds."""
    total, count = 0, 0
    for s in seeds:
        lv = bfs_levels(graph, int(s))
        for t in seeds:
            if t != s:
                total += int(lv[t])
                count += 1
    return total / count


class TestStrategies:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_basic_contract(self, citation_graph, strategy):
        seeds = select_seeds(citation_graph, 8, strategy, seed=0)
        assert seeds.size == 8
        assert np.unique(seeds).size == 8
        comp = set(largest_component_vertices(citation_graph).tolist())
        assert all(int(s) in comp for s in seeds)
        assert np.array_equal(seeds, np.sort(seeds))

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_deterministic(self, citation_graph, strategy):
        a = select_seeds(citation_graph, 6, strategy, seed=3)
        b = select_seeds(citation_graph, 6, strategy, seed=3)
        assert np.array_equal(a, b)

    def test_string_strategy_accepted(self, citation_graph):
        seeds = select_seeds(citation_graph, 4, "uniform-random", seed=1)
        assert seeds.size == 4

    def test_unknown_strategy_rejected(self, citation_graph):
        with pytest.raises(ValueError):
            select_seeds(citation_graph, 4, "nonsense")

    def test_proximate_closer_than_eccentric(self, citation_graph):
        prox = proximate_seeds(citation_graph, 8, seed=2)
        ecc = eccentric_seeds(citation_graph, 8, seed=2)
        assert mean_pairwise_hops(citation_graph, prox) < mean_pairwise_hops(
            citation_graph, ecc
        )

    def test_bfs_level_spreads_across_levels(self, citation_graph):
        seeds = bfs_level_seeds(citation_graph, 12, seed=4)
        # stratified sampling should hit more than one level
        lv = bfs_levels(citation_graph, int(seeds[0]))
        assert len({int(lv[s]) for s in seeds}) > 1

    def test_too_many_seeds(self):
        g = make_connected_graph(20, 40, seed=0)
        with pytest.raises(SeedError, match="cannot select"):
            uniform_random_seeds(g, 10_000)

    def test_zero_seeds(self, citation_graph):
        with pytest.raises(SeedError):
            uniform_random_seeds(citation_graph, 0)


class TestValidateSeedSet:
    def test_normalises_and_sorts(self, small_grid):
        out = validate_seed_set(small_grid, [5, 2, 9])
        assert list(out) == [2, 5, 9]

    def test_rejects_duplicates(self, small_grid):
        with pytest.raises(SeedError):
            validate_seed_set(small_grid, [1, 1])

    def test_rejects_empty(self, small_grid):
        with pytest.raises(SeedError):
            validate_seed_set(small_grid, [])

    def test_rejects_out_of_range(self, small_grid):
        with pytest.raises(SeedError):
            validate_seed_set(small_grid, [-3])
        with pytest.raises(SeedError):
            validate_seed_set(small_grid, [10_000])
