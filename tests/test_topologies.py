"""Solver behaviour on special topologies — the degenerate shapes where
tie-breaking, pruning and walk logic are most stressed."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import exact_steiner_tree
from repro.core.config import SolverConfig
from repro.core.sequential import sequential_steiner_tree
from repro.core.solver import distributed_steiner_tree
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_graph
from repro.validation import validate_steiner_tree


def solve_both(graph, seeds):
    ref = sequential_steiner_tree(graph, seeds)
    res = distributed_steiner_tree(graph, seeds, config=SolverConfig(n_ranks=3))
    assert np.array_equal(ref.edges, res.edges)
    validate_steiner_tree(graph, seeds, ref.edges)
    return ref


class TestPathGraph:
    def test_endpoints(self):
        n = 12
        g = CSRGraph.from_edges(
            n, [(i, i + 1) for i in range(n - 1)], list(range(1, n))
        )
        res = solve_both(g, [0, n - 1])
        # the only tree is the whole path
        assert res.n_edges == n - 1
        assert res.total_distance == sum(range(1, n))

    def test_interior_seeds_trim_the_path(self):
        n = 12
        g = CSRGraph.from_edges(
            n, [(i, i + 1) for i in range(n - 1)], [2] * (n - 1)
        )
        res = solve_both(g, [3, 5, 8])
        # tree spans exactly vertices 3..8
        assert set(res.vertices().tolist()) == set(range(3, 9))
        assert res.total_distance == 2 * 5


class TestStarGraph:
    def test_leaves_as_seeds(self):
        # hub 0, leaves 1..8
        g = CSRGraph.from_edges(9, [(0, i) for i in range(1, 9)], [3] * 8)
        seeds = [1, 4, 7]
        res = solve_both(g, seeds)
        # optimal: hub + the three spokes
        assert res.total_distance == 9
        assert set(res.steiner_vertices().tolist()) == {0}

    def test_hub_as_seed(self):
        g = CSRGraph.from_edges(5, [(0, i) for i in range(1, 5)], [1] * 4)
        res = solve_both(g, [0, 2])
        assert res.total_distance == 1
        assert res.n_edges == 1


class TestCompleteGraph:
    def test_uniform_weights(self):
        n = 8
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        g = CSRGraph.from_edges(n, edges, [5] * len(edges))
        seeds = [0, 3, 6]
        res = solve_both(g, seeds)
        # any pair of direct edges is optimal: weight 10, no Steiner vertex
        assert res.total_distance == 10
        assert res.steiner_vertices().size == 0

    def test_matches_exact(self):
        n = 7
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        weights = [((i * 7 + j * 3) % 9) + 1 for i, j in edges]
        g = CSRGraph.from_edges(n, edges, weights)
        seeds = [0, 2, 5]
        res = solve_both(g, seeds)
        opt = exact_steiner_tree(g, seeds)
        assert res.total_distance <= 2 * opt.total_distance


class TestTies:
    def test_all_unit_weights_grid(self):
        g = grid_graph(9, 9)
        seeds = [0, 8, 72, 80]
        res = solve_both(g, seeds)
        # manhattan lower bound: connecting 4 corners of an 8x8 span
        assert res.total_distance >= 24

    def test_parallel_shortest_paths(self):
        # diamond: two equal-cost routes between seeds; tie-break must
        # pick exactly one deterministically
        g = CSRGraph.from_edges(
            4, [(0, 1), (1, 3), (0, 2), (2, 3)], [1, 1, 1, 1]
        )
        res = solve_both(g, [0, 3])
        assert res.total_distance == 2
        assert res.n_edges == 2

    def test_equidistant_seed_claims(self):
        # vertex 1 is equidistant from seeds 0 and 2: must join cell of
        # the smaller seed id (0) in every implementation
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)], [4, 4])
        ref = sequential_steiner_tree(g, [0, 2])
        assert ref.diagram.src[1] == 0


class TestTwoCells:
    def test_single_bridge(self):
        # two triangles joined by one bridge edge
        g = CSRGraph.from_edges(
            6,
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
            [2, 2, 2, 2, 2, 2, 10],
        )
        res = solve_both(g, [0, 5])
        # forced through the bridge
        assert any((u, v) == (2, 3) for u, v, _ in res.edges)

    def test_multiple_equal_bridges(self):
        # two bridges with identical total distance: deterministic pick
        g = CSRGraph.from_edges(
            4, [(0, 1), (0, 2), (1, 3), (2, 3)], [1, 1, 5, 5]
        )
        a = solve_both(g, [0, 3])
        b = solve_both(g, [0, 3])
        assert np.array_equal(a.edges, b.edges)


class TestSelfConsistency:
    @pytest.mark.parametrize("n_ranks", [1, 2, 5, 16, 33])
    def test_rank_counts_beyond_vertices(self, n_ranks):
        g = grid_graph(4, 4)
        res = distributed_steiner_tree(
            g, [0, 15], config=SolverConfig(n_ranks=n_ranks)
        )
        ref = sequential_steiner_tree(g, [0, 15])
        assert res.total_distance == ref.total_distance
